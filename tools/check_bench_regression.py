#!/usr/bin/env python3
"""Gate a google-benchmark run against a checked-in baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json \
        --bench 'BM_EpochServe/500000/1' [--tolerance 0.25]

Both files are google-benchmark JSON exports. The run should be made
with --benchmark_repetitions so it contains aggregate rows; the gate
compares the *median* real_time of each guarded benchmark (falling back
to the plain row when no median aggregate exists, e.g. a single-shot
baseline) and fails — exit 1 — when

    current_median > baseline_median * (1 + tolerance)

Medians rather than means keep one noisy-neighbour iteration on a shared
CI runner from tripping the gate; the default tolerance of 25% is wide
for the same reason. Refresh the baseline (commit the new CURRENT.json
as the baseline file) whenever the benchmark workload or the reference
hardware changes intentionally.
"""

from __future__ import annotations

import argparse
import json
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def median_real_time_ns(doc: dict, bench: str) -> float | None:
    """Median real_time of `bench` in nanoseconds, or None when absent."""
    median = None
    plain = None
    for row in doc.get("benchmarks", []):
        scale = _UNIT_TO_NS.get(row.get("time_unit", "ns"), 1.0)
        if row.get("name") == bench + "_median":
            median = row["real_time"] * scale
        elif row.get("name") == bench and row.get("run_type", "iteration") != "aggregate":
            plain = row["real_time"] * scale
    return median if median is not None else plain


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument("baseline", help="checked-in baseline benchmark JSON")
    parser.add_argument(
        "--bench",
        action="append",
        required=True,
        help="benchmark name to guard (repeatable), e.g. BM_EpochServe/500000/1",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args()

    current = _load(args.current)
    baseline = _load(args.baseline)

    failures = []
    for bench in args.bench:
        base_ns = median_real_time_ns(baseline, bench)
        cur_ns = median_real_time_ns(current, bench)
        if base_ns is None:
            print(f"SKIP {bench}: not in baseline {args.baseline}")
            continue
        if cur_ns is None:
            failures.append(f"{bench}: present in baseline but missing from this run")
            continue
        ratio = cur_ns / base_ns
        verdict = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(
            f"{verdict:9s} {bench}: median {cur_ns / 1e6:.3f} ms vs "
            f"baseline {base_ns / 1e6:.3f} ms ({(ratio - 1.0) * 100.0:+.1f}%)"
        )
        if verdict == "REGRESSED":
            failures.append(
                f"{bench}: {ratio:.2f}x baseline exceeds 1.{int(args.tolerance * 100):02d}x"
            )

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
