// Automotive vertical scenario — one of the verticals the paper's
// introduction motivates ("vertical industries — such as automotive,
// e-health — are considering network slicing").
//
// A V2X assistance slice needs a 10 ms end-to-end latency bound, which
// forces edge-datacenter placement and a short transport path. This
// example shows:
//   * how the latency SLA steers the embedding (edge DC, mmWave path),
//   * UE attach through the slice's dedicated PLMN + its own EPC,
//   * what happens when the edge is full (a second automotive tenant is
//     bounced with a precise error).

#include <iostream>

#include "core/testbed.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

int main() {
  auto tb = core::make_testbed(/*seed=*/1234);

  // --- Tenant 1: a car maker requests a V2X slice ------------------------
  const traffic::VerticalProfile profile = traffic::profile_for(traffic::Vertical::automotive);
  core::SliceSpec spec = core::SliceSpec::from_profile(profile, Duration::hours(24.0));
  std::cout << "requesting automotive slice: " << spec.expected_throughput.as_mbps()
            << " Mb/s, max latency " << spec.max_latency.as_millis() << " ms, edge required\n";

  const RequestId request = tb->orchestrator->submit(
      spec, traffic::make_traffic(traffic::Vertical::automotive, Rng(5)));
  const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
  std::cout << "verdict: " << core::to_string(record->state) << "\n";

  // Where did it land?
  const cloud::Datacenter* dc = tb->cloud.find_datacenter(record->embedding.datacenter);
  const transport::PathReservation* path =
      tb->transport->find_path(record->embedding.paths.front());
  std::cout << "placed in " << dc->name() << " (" << cloud::to_string(dc->kind())
            << "), path delay " << path->route.total_delay.as_millis() << " ms over "
            << path->route.hops() << " hops\n";

  // --- Wait for the install timeline, then attach vehicles ----------------
  tb->simulator.run_for(Duration::seconds(30.0));
  std::cout << "slice state after install: " << core::to_string(record->state) << "\n";

  for (int vehicle = 0; vehicle < 5; ++vehicle) {
    const Result<UeId> ue = tb->ran.attach_ue(record->embedding.plmn, ran::Cqi{11});
    const Result<Duration> attach = tb->epc->attach_ue(record->id);
    if (ue.ok() && attach.ok()) {
      std::cout << "vehicle " << vehicle << " attached as UE " << ue.value().value()
                << " (control-plane latency " << attach.value().as_millis() << " ms)\n";
    }
  }
  std::cout << "UEs on the slice PLMN: " << tb->ran.attached_ues(record->embedding.plmn)
            << ", active bearers: " << tb->epc->find(record->id)->active_bearers << "\n";

  // --- Serve a commuting day ------------------------------------------------
  tb->simulator.run_for(Duration::hours(12.0));
  const core::OrchestratorSummary mid = tb->orchestrator->summary();
  std::cout << "\nafter 12 h: reserved " << record->reserved.as_mbps() << " / "
            << record->spec.expected_throughput.as_mbps()
            << " Mb/s contracted (overbooking reclaimed the rest), gain "
            << mid.multiplexing_gain << ", violations " << mid.violation_epochs << "\n";

  // --- Tenant 2: another automotive tenant wants the edge too --------------
  // Fill the edge first so the request cannot fit.
  // The first slice already uses one host; these two VMs soak up what
  // remains on both hosts, so no host can fit another 13-vCPU footprint.
  cloud::StackTemplate filler;
  filler.name = "edge-filler";
  filler.resources = {{"a", cloud::Flavor{"f", ComputeCapacity{18.0, 1024.0, 10.0}}},
                      {"b", cloud::Flavor{"f", ComputeCapacity{30.0, 1024.0, 10.0}}}};
  const Result<StackId> soaked = tb->cloud.create_stack(tb->edge_dc, filler);
  std::cout << "\nfilling the edge with other workloads: "
            << (soaked.ok() ? "done" : soaked.error().message) << "\n";

  const RequestId second = tb->orchestrator->submit(
      core::SliceSpec::from_profile(profile, Duration::hours(4.0)));
  std::cout << "\nsecond automotive tenant (edge now full): "
            << core::to_string(tb->orchestrator->find_by_request(second)->state) << "\n";
  return 0;
}
