// scenario_runner — drive declarative scenarios against the Fig. 2 testbed.
//
//   scenario_runner list [dir]
//       Show every scenario in `dir` (default: scenarios/) with its
//       horizon and targets.
//   scenario_runner validate <file>...
//       Parse each file and report the first error (with line/column and
//       field path). Exit 1 if any file is invalid.
//   scenario_runner run <file> [--threads N] [--seed N] [--record path]
//                       [--out path] [--trace path] [--federation-metrics path]
//                       [--wall-profile] [--quiet]
//       Execute the scenario and print the scorecard JSON. Exit 1 when
//       the scenario declares targets and the run misses any of them.
//   scenario_runner record <file> <journal> [run flags]
//       Shorthand for `run <file> --record <journal>`.
//   scenario_runner replay <journal> [run flags]
//       Re-run a recorded request/event stream; the scorecard is
//       byte-identical to the recorded run's.
//   scenario_runner edge <file> --region rX [--port N] [--threads N] [--trace]
//       Serve one region of a "metro" scenario as its own OS process
//       (prints "PORT <n>" once listening). A broker process started
//       with `run <file> --edge rX=PORT ...` drives it over loopback.
//
// A "metro" scenario (topology: "metro") is dispatched to the
// federation runner; --transport socket serves every region over a
// loopback socket in-process, and --edge rX=PORT connects region rX to
// an already-running `scenario_runner edge` process instead.
// --broker-port exposes the broker's REST facade for slicectl.
//
// Scorecards are deterministic: same scenario + seed => same bytes, at
// any --threads setting and over any --transport/--edge combination
// (wall_profile is the one opt-in exception).
//
// --trace enables sim-clock span tracing and writes a Chrome trace after
// the run: for metro scenarios the broker's *merged* federation trace
// (every region stitched into its own lane), otherwise this process's
// tracer export. Remote edge processes must be started with `edge
// --trace` so their spans are available for the merge. --trace output is
// deterministic too: same bytes at any --threads/--transport/--edge
// combination. --federation-metrics (metro only) writes the broker's
// merged federation metrics document after the run.

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "federation/runner.hpp"
#include "scenario/recorder.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/trace.hpp"

using namespace slices;

namespace {

int fail(const std::string& message) {
  std::cerr << "scenario_runner: " << message << "\n";
  return 2;
}

int usage() {
  std::cerr << "usage: scenario_runner <list|validate|run|record|replay|edge> ...\n"
               "       (see the header comment in examples/scenario_runner.cpp)\n";
  return 2;
}

struct RunFlags {
  scenario::RunOptions options;
  federation::FederatedRunOptions federated;
  std::optional<std::uint64_t> seed_override;
  std::string out_path;
  std::string trace_path;
  std::string federation_metrics_path;
  bool quiet = false;
};

/// Tracing setup shared by `run --trace` and `edge --trace`: sim-clock
/// timestamps only (wall clock would break byte-parity across runs), a
/// lane ring big enough that no scenario-scale run overwrites spans, and
/// a clear() so identity counters start from a known state.
void enable_deterministic_tracing() {
  telemetry::trace::Tracer::instance().set_lane_capacity(1u << 20);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::set_enabled(true);
  telemetry::trace::clear();
}

/// Write `body` to `path`; false (after printing) on failure.
bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  if (!out) {
    fail("cannot write " + path);
    return false;
  }
  return true;
}

/// Parses trailing --flags shared by run/record/replay. Returns false
/// (after printing) on a malformed flag.
bool parse_run_flags(int argc, char** argv, int first, RunFlags& flags) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        fail(arg + " needs a " + what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const char* v = value("count");
      if (v == nullptr) return false;
      flags.options.epoch_threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      flags.federated.epoch_threads = flags.options.epoch_threads;
    } else if (arg == "--transport") {
      const char* v = value("kind (inproc|socket)");
      if (v == nullptr) return false;
      const std::string kind = v;
      if (kind != "inproc" && kind != "socket") {
        fail("--transport must be inproc or socket, got '" + kind + "'");
        return false;
      }
      flags.federated.socket_transport = kind == "socket";
    } else if (arg == "--edge") {
      const char* v = value("region=port mapping");
      if (v == nullptr) return false;
      const std::string mapping = v;
      const std::size_t eq = mapping.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= mapping.size()) {
        fail("--edge wants rX=PORT, got '" + mapping + "'");
        return false;
      }
      flags.federated.remote_edges[mapping.substr(0, eq)] =
          static_cast<std::uint16_t>(std::strtoul(mapping.c_str() + eq + 1, nullptr, 10));
    } else if (arg == "--broker-port") {
      const char* v = value("port");
      if (v == nullptr) return false;
      flags.federated.broker_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = value("seed");
      if (v == nullptr) return false;
      flags.seed_override = std::strtoull(v, nullptr, 10);
    } else if (arg == "--record") {
      const char* v = value("path");
      if (v == nullptr) return false;
      flags.options.record_path = v;
      flags.federated.record_path = v;
    } else if (arg == "--out") {
      const char* v = value("path");
      if (v == nullptr) return false;
      flags.out_path = v;
    } else if (arg == "--trace") {
      const char* v = value("path");
      if (v == nullptr) return false;
      flags.trace_path = v;
    } else if (arg == "--federation-metrics") {
      const char* v = value("path");
      if (v == nullptr) return false;
      flags.federation_metrics_path = v;
    } else if (arg == "--wall-profile") {
      flags.options.wall_profile = true;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else {
      fail("unknown flag '" + arg + "'");
      return false;
    }
  }
  return true;
}

/// Shared tail of both runner paths: write/print the serialized card
/// and surface target misses on the exit code.
int report(const std::string& serialized, bool targets_met,
           const std::vector<std::string>& target_failures, const RunFlags& flags) {
  if (!flags.out_path.empty()) {
    std::ofstream out(flags.out_path, std::ios::binary | std::ios::trunc);
    out << serialized;
    if (!out) return fail("cannot write scorecard to " + flags.out_path);
  }
  if (!flags.quiet) std::cout << serialized;

  if (!targets_met) {
    for (const std::string& miss : target_failures)
      std::cerr << "scenario_runner: target missed: " << miss << "\n";
    return 1;
  }
  return 0;
}

int execute_federated(scenario::Scenario loaded, const RunFlags& flags) {
  if (flags.options.wall_profile)
    return fail("--wall-profile is not supported for metro scenarios");
  // The facade's live GET /federation/trace is useless without spans,
  // so a run serving the facade traces even when no --trace file was
  // asked for. Tracing-on never changes the scorecard (federation_test
  // pins byte-parity with tracing enabled).
  if (!flags.trace_path.empty() || flags.federated.broker_port != 0) {
    enable_deterministic_tracing();
  }
  federation::FederatedRunner runner(std::move(loaded), flags.federated);
  const Result<federation::FederatedScorecard> card = runner.run();
  if (!card.ok()) return fail(card.error().message);
  // Export order is part of the determinism contract: the trace first
  // (so the metrics pulls' bus.call spans stay out of it), then the
  // merged metrics. Both exports drive the bus from this thread, like
  // the run loop did.
  if (!flags.trace_path.empty()) {
    std::string trace;
    runner.broker()->export_federated_trace(trace);
    if (!write_file(flags.trace_path, trace)) return 2;
  }
  if (!flags.federation_metrics_path.empty()) {
    const std::int64_t end_us =
        (SimTime::origin() + runner.scenario().duration).as_micros();
    const json::Value doc = runner.broker()->federation_metrics_json(end_us);
    if (!write_file(flags.federation_metrics_path, json::serialize_pretty(doc) + "\n"))
      return 2;
  }
  return report(card.value().serialize(), card.value().targets_met,
                card.value().target_failures, flags);
}

int execute(scenario::Scenario loaded, const RunFlags& flags) {
  if (flags.seed_override) loaded.seed = *flags.seed_override;
  if (loaded.topology == "metro") return execute_federated(std::move(loaded), flags);
  if (!flags.federation_metrics_path.empty())
    return fail("--federation-metrics needs a metro scenario");
  if (!flags.trace_path.empty()) enable_deterministic_tracing();
  scenario::ScenarioRunner runner(std::move(loaded), flags.options);
  const Result<scenario::Scorecard> card = runner.run();
  if (!card.ok()) return fail(card.error().message);
  if (!flags.trace_path.empty()) {
    std::string trace;
    telemetry::trace::Tracer::instance().export_chrome_json(trace);
    if (!write_file(flags.trace_path, trace)) return 2;
  }
  return report(card.value().serialize(), card.value().targets_met,
                card.value().target_failures, flags);
}

int cmd_list(int argc, char** argv) {
  const std::filesystem::path dir = argc >= 3 ? argv[2] : "scenarios";
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  if (ec) return fail("cannot list " + dir.string() + ": " + ec.message());
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    const Result<scenario::Scenario> loaded = scenario::load_scenario_file(file.string());
    if (!loaded.ok()) {
      std::cout << file.string() << "\n    INVALID: " << loaded.error().message << "\n";
      continue;
    }
    const scenario::Scenario& s = loaded.value();
    std::cout << s.name << "  (" << file.string() << ")\n    " << s.duration.as_hours()
              << "h, seed " << s.seed << ", " << s.phases.size() << " phases, "
              << s.events.size() << " events, " << s.requests.size()
              << " explicit requests" << (s.targets.any() ? ", scored" : "") << "\n    "
              << s.description << "\n";
  }
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 3) return usage();
  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    const Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[i]);
    if (loaded.ok()) {
      std::cout << argv[i] << ": ok (" << loaded.value().name << ")\n";
    } else {
      std::cout << argv[i] << ": " << loaded.error().message << "\n";
      rc = 1;
    }
  }
  return rc;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  RunFlags flags;
  if (!parse_run_flags(argc, argv, 3, flags)) return 2;
  Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[2]);
  if (!loaded.ok()) return fail(loaded.error().message);
  return execute(std::move(loaded.value()), flags);
}

int cmd_record(int argc, char** argv) {
  if (argc < 4) return usage();
  RunFlags flags;
  flags.options.record_path = argv[3];
  flags.federated.record_path = argv[3];
  if (!parse_run_flags(argc, argv, 4, flags)) return 2;
  Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[2]);
  if (!loaded.ok()) return fail(loaded.error().message);
  return execute(std::move(loaded.value()), flags);
}

net::HttpServer* g_edge_server = nullptr;

void stop_edge_server(int) {
  if (g_edge_server != nullptr) g_edge_server->stop();
}

/// Serve one region of a metro scenario as a standalone process. The
/// broker process (`run ... --edge rX=PORT`) drives the region's clock
/// and admission over loopback; this process only answers.
int cmd_edge(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string region;
  std::uint16_t port = 0;
  std::size_t threads = 1;
  bool trace = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        fail(arg + " needs a value");
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--region") {
      const char* v = value();
      if (v == nullptr) return 2;
      region = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return 2;
      port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return 2;
      threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--trace") {
      trace = true;
    } else {
      return fail("unknown flag '" + arg + "'");
    }
  }
  if (region.empty()) return fail("edge needs --region rX");

  Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[2]);
  if (!loaded.ok()) return fail(loaded.error().message);
  if (loaded.value().topology != "metro")
    return fail("edge serves metro scenarios only (topology is '" +
                loaded.value().topology + "')");

  Result<federation::MetroFabric> fabric =
      federation::make_metro_fabric(loaded.value().federation, loaded.value().seed);
  if (!fabric.ok()) return fail(fabric.error().message);
  const federation::RegionPlan* plan = nullptr;
  for (const federation::RegionPlan& p : fabric.value().regions) {
    if (p.name == region) plan = &p;
  }
  if (plan == nullptr) return fail("'" + region + "' is not a region of this scenario");

  // Tracing must be live before the node interns its component so the
  // region's span ids come out identical to an in-process run's.
  if (trace) enable_deterministic_tracing();
  federation::EdgeNode node(*plan, loaded.value(), threads);
  Result<std::unique_ptr<net::HttpServer>> server =
      net::HttpServer::bind(node.make_router(), port);
  if (!server.ok()) return fail(server.error().message);

  g_edge_server = server.value().get();
  std::signal(SIGINT, stop_edge_server);
  std::signal(SIGTERM, stop_edge_server);
  std::cout << "PORT " << server.value()->port() << "\n" << std::flush;
  (void)server.value()->run();
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) return usage();
  RunFlags flags;
  if (!parse_run_flags(argc, argv, 3, flags)) return 2;
  Result<scenario::Scenario> loaded = scenario::load_recording(argv[2]);
  if (!loaded.ok()) return fail(loaded.error().message);
  return execute(std::move(loaded.value()), flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list(argc, argv);
  if (cmd == "validate") return cmd_validate(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "record") return cmd_record(argc, argv);
  if (cmd == "replay") return cmd_replay(argc, argv);
  if (cmd == "edge") return cmd_edge(argc, argv);
  return usage();
}
