// e-health vertical scenario — the penalty-aware tenant.
//
// Remote patient monitoring offers little traffic most of the time but
// declares a high per-violation penalty: bursts (emergencies) must get
// through. This example runs the same slice under two broker risk
// settings and prints the dashboard economics side by side — the
// "gains vs. penalties" trade-off of the demo, seen from one tenant.

#include <iostream>

#include "core/testbed.hpp"
#include "dashboard/table.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

namespace {

struct Outcome {
  double reserved_mbps;
  double gain;
  std::uint64_t violations;
  double earned;
  double penalties;
  double net;
};

Outcome run_with_risk(double risk_quantile) {
  core::OrchestratorConfig config;
  config.overbooking.risk_quantile = risk_quantile;
  config.overbooking.warmup_observations = 4;
  config.overbooking.floor_fraction = 0.05;
  auto tb = core::make_testbed(/*seed=*/77, config);

  const traffic::VerticalProfile profile = traffic::profile_for(traffic::Vertical::ehealth);
  core::SliceSpec spec = core::SliceSpec::from_profile(profile, Duration::hours(48.0));
  const RequestId request = tb->orchestrator->submit(
      spec, traffic::make_traffic(traffic::Vertical::ehealth, Rng(99)));
  tb->simulator.run_for(Duration::hours(47.0));

  const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
  const core::SliceLedgerEntry* ledger = tb->orchestrator->ledger().find(record->id);
  const core::OrchestratorSummary summary = tb->orchestrator->summary();
  return Outcome{record->reserved.as_mbps(),
                 summary.multiplexing_gain,
                 record->violation_epochs,
                 ledger->earned.as_units(),
                 ledger->penalties.as_units(),
                 ledger->net().as_units()};
}

}  // namespace

int main() {
  std::cout << "e-health slice: 10 Mb/s contracted, high penalty ("
            << traffic::profile_for(traffic::Vertical::ehealth).penalty_per_violation
            << " per violation epoch), bursty emergency traffic\n\n";

  dashboard::TextTable table({"broker risk", "reserved Mb/s", "gain", "violations",
                              "earned", "penalties", "tenant net"});
  for (const auto& [label, q] :
       {std::pair{"aggressive (q=0.50)", 0.50}, {"balanced   (q=0.95)", 0.95},
        {"cautious   (q=0.99)", 0.99}}) {
    const Outcome outcome = run_with_risk(q);
    table.add_row({label, dashboard::TextTable::num(outcome.reserved_mbps),
                   dashboard::TextTable::num(outcome.gain, 3),
                   std::to_string(outcome.violations),
                   dashboard::TextTable::num(outcome.earned, 2),
                   dashboard::TextTable::num(outcome.penalties, 2),
                   dashboard::TextTable::num(outcome.net, 2)});
  }
  std::cout << table.render();
  std::cout << "\nthe broker reclaims the idle floor between bursts; how much headroom it\n"
               "keeps for emergencies is the risk quantile. With a high-penalty tenant the\n"
               "cautious setting usually maximizes the operator's net revenue.\n";
  return 0;
}
