// Quickstart: bring up the Fig. 2 testbed, request one end-to-end slice
// the way the demo dashboard does, let it run for a (simulated) day and
// print the dashboard.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <iostream>

#include "core/testbed.hpp"
#include "dashboard/dashboard.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

int main() {
  // 1. The whole testbed (RAN + transport + cloud + EPC + orchestrator)
  //    from one call. The seed makes the run reproducible.
  std::unique_ptr<core::Testbed> tb = core::make_testbed(/*seed=*/42);

  // 2. Build a slice request the way the dashboard form would: an eMBB
  //    video vertical, 24 hours, with the vertical's default SLA terms.
  const traffic::VerticalProfile profile = traffic::profile_for(traffic::Vertical::embb_video);
  core::SliceSpec spec = core::SliceSpec::from_profile(profile, Duration::hours(24.0));

  // 3. Submit it together with a demand workload (what the tenant's
  //    users will actually offer once the slice is live).
  const RequestId request = tb->orchestrator->submit(
      spec, traffic::make_traffic(traffic::Vertical::embb_video, Rng(7)));

  const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
  std::cout << "request " << request.value() << " -> slice " << record->id.value()
            << " state=" << core::to_string(record->state) << "\n";
  std::cout << "install timeline: "
            << tb->orchestrator->last_install_timeline().total().as_seconds()
            << " s (EPC deploy "
            << tb->orchestrator->last_install_timeline().epc_deploy.as_seconds() << " s)\n\n";

  // 4. Let the simulated day play out: the orchestrator monitors,
  //    forecasts and reconfigures every 15 minutes.
  tb->simulator.run_for(Duration::hours(25.0));

  // 5. Render what the demo's control dashboard would show.
  dashboard::Dashboard dash(tb.get());
  std::cout << dash.render_all() << "\n";
  return 0;
}
