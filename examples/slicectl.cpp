// slicectl — a command-line client for the orchestrator's REST API.
//
// Against a running dashboard_server (or any deployment of the
// orchestrator router over HttpServer):
//
//   slicectl <port> report
//   slicectl <port> list
//   slicectl <port> get <slice-id>
//   slicectl <port> request <vertical> <hours> [throughput_mbps]
//   slicectl <port> resize <slice-id> <throughput_mbps>
//   slicectl <port> delete <slice-id>
//   slicectl <port> store-status
//   slicectl <port> snapshot
//   slicectl <port> restore
//   slicectl <port> compact
//   slicectl <port> health
//   slicectl <port> audit <slice-id>
//   slicectl <port> trace dump [--clear]
//   slicectl <port> trace clear
//
// Against a federation broker facade (scenario_runner run --broker-port):
//
//   slicectl <port> federation regions      per-region health/occupancy
//   slicectl <port> federation placements   the broker's decision log
//   slicectl <port> federation health       broker liveness
//   slicectl <port> federation metrics [--region rX]
//       merged metro-wide metrics (broker SLO registry + per-region
//       exports + the cross-region merge); --region prints one
//       region's export only
//   slicectl <port> federation trace [--region rX]
//       the merged Chrome trace (load in Perfetto); --region keeps
//       only that region's lane
//   slicectl <port> federation dashboard
//       the text federation pane (broker SLO table + per-region
//       roll-up) rendered from the same metrics document
//   slicectl <port> federation mobility
//       the handover pane: per-region handover attempt/success/drop
//       counters plus the broker's inter-region roam funnel
//
// Offline (no server required):
//
//   slicectl scenario validate <file>...
//   slicectl scenario run <file> [--threads N]
//
// (a thin front for the full scenario_runner tool — see
// examples/scenario_runner.cpp for record/replay and flags).
//
// With no arguments it runs a scripted self-contained session: spins up
// an embedded testbed + HTTP server, then walks through request/list/
// resize/delete like an operator at the demo booth.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "core/testbed.hpp"
#include "dashboard/dashboard.hpp"
#include "federation/runner.hpp"
#include "net/http_server.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

namespace {

int fail(const std::string& message) {
  std::cerr << "slicectl: " << message << "\n";
  return 1;
}

Result<net::Response> call(std::uint16_t port, net::Method method, std::string target,
                           std::string body = {}) {
  net::Request request;
  request.method = method;
  request.target = std::move(target);
  if (!body.empty()) {
    request.headers.insert_or_assign("Content-Type", "application/json");
    request.body = std::move(body);
  }
  return net::http_request(port, request);
}

int print_response(const Result<net::Response>& response) {
  if (!response.ok()) return fail(response.error().message);
  const int code = static_cast<int>(response.value().status);
  std::cout << code << " " << net::reason_phrase(response.value().status) << "\n";
  if (!response.value().body.empty()) {
    const Result<json::Value> doc = json::parse(response.value().body);
    std::cout << (doc.ok() ? json::serialize_pretty(doc.value()) : response.value().body)
              << "\n";
  }
  return code >= 200 && code < 300 ? 0 : 1;
}

int run_command(std::uint16_t port, int argc, char** argv) {
  const std::string cmd = argv[2];
  if (cmd == "report") return print_response(call(port, net::Method::get, "/report"));
  if (cmd == "list") return print_response(call(port, net::Method::get, "/slices"));
  if (cmd == "get" && argc >= 4) {
    return print_response(call(port, net::Method::get, std::string("/slices/") + argv[3]));
  }
  if (cmd == "request" && argc >= 5) {
    json::Value body;
    body["vertical"] = argv[3];
    body["duration_hours"] = std::atof(argv[4]);
    if (argc >= 6) body["throughput_mbps"] = std::atof(argv[5]);
    return print_response(
        call(port, net::Method::post, "/slices", json::serialize(body)));
  }
  if (cmd == "resize" && argc >= 5) {
    json::Value body;
    body["throughput_mbps"] = std::atof(argv[4]);
    return print_response(call(port, net::Method::patch,
                               std::string("/slices/") + argv[3], json::serialize(body)));
  }
  if (cmd == "delete" && argc >= 4) {
    return print_response(call(port, net::Method::del, std::string("/slices/") + argv[3]));
  }
  if (cmd == "store-status") {
    return print_response(call(port, net::Method::get, "/store/status"));
  }
  if (cmd == "snapshot") {
    return print_response(call(port, net::Method::post, "/store/snapshot"));
  }
  if (cmd == "restore") {
    return print_response(call(port, net::Method::post, "/store/restore"));
  }
  if (cmd == "compact") {
    return print_response(call(port, net::Method::post, "/store/compact"));
  }
  if (cmd == "health") {
    return print_response(call(port, net::Method::get, "/healthz"));
  }
  if (cmd == "audit" && argc >= 4) {
    return print_response(
        call(port, net::Method::get, std::string("/slices/") + argv[3] + "/audit"));
  }
  if (cmd == "federation" && argc >= 4) {
    const std::string sub = argv[3];
    if (sub == "regions") {
      return print_response(call(port, net::Method::get, "/federation/regions"));
    }
    if (sub == "placements") {
      return print_response(call(port, net::Method::get, "/federation/placements"));
    }
    if (sub == "health") {
      return print_response(call(port, net::Method::get, "/federation/healthz"));
    }
    if (sub == "dashboard") {
      const Result<net::Response> response =
          call(port, net::Method::get, "/federation/metrics");
      if (!response.ok()) return fail(response.error().message);
      if (static_cast<int>(response.value().status) != 200) return print_response(response);
      const Result<json::Value> doc = json::parse(response.value().body);
      if (!doc.ok()) return fail("bad metrics body: " + doc.error().message);
      std::cout << dashboard::Dashboard::render_federation(doc.value());
      return 0;
    }
    if (sub == "mobility") {
      const Result<net::Response> response =
          call(port, net::Method::get, "/federation/metrics");
      if (!response.ok()) return fail(response.error().message);
      if (static_cast<int>(response.value().status) != 200) return print_response(response);
      const Result<json::Value> doc = json::parse(response.value().body);
      if (!doc.ok()) return fail("bad metrics body: " + doc.error().message);
      const std::string pane = dashboard::Dashboard::render_mobility(doc.value());
      if (pane.empty()) {
        std::cout << "no mobility signal (scenario has no mobility block, or no "
                     "handovers yet)\n";
        return 0;
      }
      std::cout << pane;
      return 0;
    }
    const char* region =
        (argc >= 6 && std::strcmp(argv[4], "--region") == 0) ? argv[5] : nullptr;
    if (sub == "metrics") {
      const Result<net::Response> response =
          call(port, net::Method::get, "/federation/metrics");
      if (region == nullptr) return print_response(response);
      if (!response.ok()) return fail(response.error().message);
      const Result<json::Value> doc = json::parse(response.value().body);
      if (!doc.ok()) return fail("bad metrics body: " + doc.error().message);
      const json::Value* regions = doc.value().find("regions");
      const json::Value* entry = regions != nullptr ? regions->find(region) : nullptr;
      if (entry == nullptr)
        return fail(std::string("no region '") + region + "' in the metrics document");
      std::cout << json::serialize_pretty(*entry) << "\n";
      return 0;
    }
    if (sub == "trace") {
      const Result<net::Response> response =
          call(port, net::Method::get, "/federation/trace");
      if (!response.ok()) return fail(response.error().message);
      if (static_cast<int>(response.value().status) != 200) return print_response(response);
      if (region == nullptr) {
        // Raw bytes: a Chrome trace is for redirecting into a file and
        // loading in Perfetto, not for pretty-printing.
        std::cout << response.value().body << "\n";
        return 0;
      }
      const Result<json::Value> doc = json::parse(response.value().body);
      if (!doc.ok()) return fail("bad trace body: " + doc.error().message);
      const json::Value* events = doc.value().find("traceEvents");
      if (events == nullptr || !events->is_array())
        return fail("trace body has no traceEvents");
      // Resolve the region's lane from the thread_name metadata, then
      // keep only that lane's events (metadata included).
      const std::string lane = std::string("edge.") + region;
      double lane_tid = -1.0;
      for (const json::Value& e : events->as_array()) {
        const json::Value* ph = e.find("ph");
        const json::Value* name = e.find("name");
        const json::Value* args = e.find("args");
        const json::Value* tid = e.find("tid");
        if (ph != nullptr && ph->is_string() && ph->as_string() == "M" &&
            name != nullptr && name->is_string() && name->as_string() == "thread_name" &&
            args != nullptr && tid != nullptr && tid->is_number()) {
          const json::Value* lane_name = args->find("name");
          if (lane_name != nullptr && lane_name->is_string() &&
              lane_name->as_string() == lane) {
            lane_tid = tid->as_number();
          }
        }
      }
      if (lane_tid < 0.0) return fail("no lane named '" + lane + "' in the trace");
      json::Array kept;
      for (const json::Value& e : events->as_array()) {
        const json::Value* tid = e.find("tid");
        if (tid != nullptr && tid->is_number() && tid->as_number() == lane_tid)
          kept.push_back(e);
      }
      json::Object out;
      out.emplace("displayTimeUnit", std::string("ms"));
      out.emplace("traceEvents", std::move(kept));
      std::cout << json::serialize(json::Value(std::move(out))) << "\n";
      return 0;
    }
  }
  if (cmd == "trace" && argc >= 4) {
    const std::string sub = argv[3];
    if (sub == "dump") {
      const bool clear = argc >= 5 && std::strcmp(argv[4], "--clear") == 0;
      return print_response(
          call(port, net::Method::get, clear ? "/trace?clear=1" : "/trace"));
    }
    if (sub == "clear") {
      return print_response(call(port, net::Method::del, "/trace"));
    }
  }
  return fail("unknown command or missing arguments (see header comment for usage)");
}

int scenario_command(int argc, char** argv) {
  if (argc < 4) return fail("usage: slicectl scenario <validate|run> <file>...");
  const std::string sub = argv[2];
  if (sub == "validate") {
    int rc = 0;
    for (int i = 3; i < argc; ++i) {
      const Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[i]);
      if (loaded.ok()) {
        std::cout << argv[i] << ": ok (" << loaded.value().name << ")\n";
      } else {
        std::cout << argv[i] << ": " << loaded.error().message << "\n";
        rc = 1;
      }
    }
    return rc;
  }
  if (sub == "run") {
    scenario::RunOptions options;
    if (argc >= 6 && std::strcmp(argv[4], "--threads") == 0)
      options.epoch_threads = static_cast<std::size_t>(std::atoi(argv[5]));
    Result<scenario::Scenario> loaded = scenario::load_scenario_file(argv[3]);
    if (!loaded.ok()) return fail(loaded.error().message);
    if (loaded.value().topology == "metro") {
      federation::FederatedRunOptions federated;
      federated.epoch_threads = options.epoch_threads;
      federation::FederatedRunner runner(std::move(loaded.value()), federated);
      const Result<federation::FederatedScorecard> card = runner.run();
      if (!card.ok()) return fail(card.error().message);
      std::cout << card.value().serialize();
      if (!card.value().targets_met) {
        for (const std::string& miss : card.value().target_failures)
          std::cerr << "slicectl: target missed: " << miss << "\n";
        return 1;
      }
      return 0;
    }
    scenario::ScenarioRunner runner(std::move(loaded.value()), options);
    const Result<scenario::Scorecard> card = runner.run();
    if (!card.ok()) return fail(card.error().message);
    std::cout << card.value().serialize();
    if (!card.value().targets_met) {
      for (const std::string& miss : card.value().target_failures)
        std::cerr << "slicectl: target missed: " << miss << "\n";
      return 1;
    }
    return 0;
  }
  return fail("unknown scenario subcommand '" + sub + "'");
}

int scripted_session() {
  auto tb = core::make_testbed(7);
  Result<std::unique_ptr<net::HttpServer>> bound =
      net::HttpServer::bind(tb->orchestrator->make_router(), 0);
  if (!bound.ok()) return fail(bound.error().message);
  net::HttpServer& server = *bound.value();
  std::thread server_thread([&server] { server.run(); });
  const std::uint16_t port = server.port();
  std::cout << "embedded orchestrator on port " << port << "\n";

  const auto step = [&](const char* title, net::Method method, std::string target,
                        std::string body = {}) {
    std::cout << "\n$ " << title << "\n";
    return print_response(call(port, method, std::move(target), std::move(body)));
  };

  json::Value request;
  request["vertical"] = "automotive";
  request["duration_hours"] = 12.0;
  int rc = step("slicectl request automotive 12", net::Method::post, "/slices",
                json::serialize(request));
  tb->simulator.run_for(Duration::seconds(30.0));  // let it activate
  rc |= step("slicectl list", net::Method::get, "/slices");
  json::Value resize;
  resize["throughput_mbps"] = 12.0;
  rc |= step("slicectl resize 1 12", net::Method::patch, "/slices/1",
             json::serialize(resize));
  rc |= step("slicectl report", net::Method::get, "/report");
  rc |= step("slicectl health", net::Method::get, "/healthz");
  rc |= step("slicectl audit 1", net::Method::get, "/slices/1/audit");
  rc |= step("slicectl delete 1", net::Method::del, "/slices/1");

  server.stop();
  server_thread.join();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "scenario") == 0) return scenario_command(argc, argv);
  if (argc < 3) return scripted_session();
  const int port = std::atoi(argv[1]);
  if (port <= 0 || port > 65535) return fail("bad port");
  return run_command(static_cast<std::uint16_t>(port), argc, argv);
}
