// The full demonstration of the paper, end to end: slices requested
// on-demand through the orchestrator's REST dashboard API, monitored
// once deployed, dynamically reconfigured (overbooked) to admit more
// tenants, with the control dashboard rendered at each act.
//
// This mirrors the demo script of §3: request slices with duration /
// latency / throughput / price / penalty, watch acceptance and
// rejection, watch UEs attach "after few seconds", and watch the
// gains-vs-penalties panel as the multiplexing gain builds up.

#include <iostream>
#include <vector>

#include "core/testbed.hpp"
#include "core/ue_population.hpp"
#include "dashboard/dashboard.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

namespace {

/// Submit a slice the way the dashboard form does: a JSON POST to the
/// orchestrator's REST API.
RequestId submit_via_rest(core::Testbed& tb, const char* vertical, double hours,
                          double throughput_mbps, double price, double penalty) {
  json::Value body;
  body["vertical"] = vertical;
  body["duration_hours"] = hours;
  body["throughput_mbps"] = throughput_mbps;
  body["price_per_hour"] = price;
  body["penalty_per_violation"] = penalty;
  const Result<json::Value> resp =
      tb.bus.call_json("orchestrator", net::Method::post, "/slices", body);
  if (!resp.ok()) {
    std::cout << "  -> REJECTED: " << resp.error().message << "\n";
    return RequestId::invalid();
  }
  const auto request = static_cast<std::uint64_t>(resp.value().find("request")->as_number());
  std::cout << "  -> " << resp.value().find("state")->as_string() << " (slice "
            << resp.value().find("slice")->as_int() << ")\n";
  return RequestId{request};
}

std::unique_ptr<core::UePopulation> bring_users_online(core::Testbed& tb, RequestId request,
                                                       traffic::Vertical v,
                                                       std::uint64_t seed) {
  // REST submissions carry SLA terms only; the tenant's user population
  // (session churn of UEs on the slice PLMN) and its demand process
  // come online here.
  const core::SliceRecord* record = tb.orchestrator->find_by_request(request);
  if (record == nullptr || !record->is_live()) return nullptr;
  (void)tb.orchestrator->attach_workload(record->id, traffic::make_traffic(v, Rng(seed)));

  core::UePopulationConfig sessions;
  sessions.arrivals_per_hour = 40.0;
  sessions.mean_holding = Duration::minutes(15.0);
  auto population = std::make_unique<core::UePopulation>(
      &tb.simulator, &tb.ran, tb.epc.get(), record->id, record->embedding.plmn, sessions,
      Rng(seed * 131));
  population->start();
  return population;
}

void act(const char* title) { std::cout << "\n=== " << title << " ===\n"; }

}  // namespace

int main() {
  core::OrchestratorConfig config;
  config.overbooking.warmup_observations = 8;
  auto tb = core::make_testbed(/*seed=*/2018, config);
  dashboard::Dashboard dash(tb.get());

  act("Act 1 — the operator requests three slices through the dashboard");
  std::cout << "video CDN, 48 h, 30 Mb/s, 30/h, penalty 2:\n";
  const RequestId video = submit_via_rest(*tb, "embb_video", 48.0, 30.0, 30.0, 2.0);
  std::cout << "automotive V2X, 48 h, 15 Mb/s, 45/h, penalty 8:\n";
  const RequestId v2x = submit_via_rest(*tb, "automotive", 48.0, 15.0, 45.0, 8.0);
  std::cout << "e-health, 48 h, 8 Mb/s, 25/h, penalty 15:\n";
  (void)submit_via_rest(*tb, "ehealth", 48.0, 8.0, 25.0, 15.0);

  act("Act 2 — a few seconds later, the slices are on the air; users arrive");
  tb->simulator.run_for(Duration::seconds(30.0));
  std::vector<std::unique_ptr<core::UePopulation>> populations;
  populations.push_back(bring_users_online(*tb, video, traffic::Vertical::embb_video, 1));
  populations.push_back(bring_users_online(*tb, v2x, traffic::Vertical::automotive, 2));
  tb->simulator.run_for(Duration::minutes(30.0));
  for (const auto& population : populations) {
    if (population != nullptr) {
      std::cout << "  population: " << population->active_ues() << " UEs online ("
                << population->total_arrivals() << " arrivals so far)\n";
    }
  }
  std::cout << dash.render_slices();

  act("Act 3 — half a day of monitoring: forecasts learned, reservations shrunk");
  tb->simulator.run_for(Duration::hours(12.0));
  std::cout << dash.render_headline();

  act("Act 4 — overbooking in action: a fourth slice fits in reclaimed capacity");
  std::cout << "cloud gaming, 24 h, 20 Mb/s, 50/h, penalty 6:\n";
  (void)submit_via_rest(*tb, "cloud_gaming", 24.0, 20.0, 50.0, 6.0);
  tb->simulator.run_for(Duration::hours(1.0));
  std::cout << dash.render_slices();

  act("Act 5 — and one that must bounce: more than the whole RAN");
  std::cout << "greedy tenant, 24 h, 500 Mb/s:\n";
  (void)submit_via_rest(*tb, "embb_video", 24.0, 500.0, 500.0, 1.0);

  act("Act 6 — the closing dashboard");
  tb->simulator.run_for(Duration::hours(12.0));
  std::cout << dash.render_all();

  std::cout << "\nfinal multiplexing gain "
            << tb->orchestrator->summary().multiplexing_gain << " with "
            << tb->orchestrator->summary().violation_epochs << " violation epochs\n";
  return 0;
}
