// Serves the demo's control dashboard over real HTTP.
//
// Runs the Fig. 2 testbed for a simulated day with three slices, then
// exposes the orchestrator's REST API (slice CRUD + /report) and a
// /dashboard endpoint with the full JSON snapshot on a loopback TCP
// port — the external-tool integration surface of the demo.
//
// Usage:
//   dashboard_server            # bind an ephemeral port and serve until ^C
//   dashboard_server --selftest # serve one scripted client, print, exit 0

#include <cstring>
#include <iostream>
#include <thread>

#include "core/testbed.hpp"
#include "dashboard/dashboard.hpp"
#include "net/http_server.hpp"
#include "traffic/verticals.hpp"

using namespace slices;

int main(int argc, char** argv) {
  const bool selftest = argc > 1 && std::strcmp(argv[1], "--selftest") == 0;

  // Bring the testbed to an interesting state: three slices, one day in.
  auto tb = core::make_testbed(/*seed=*/99);
  for (const traffic::Vertical v :
       {traffic::Vertical::embb_video, traffic::Vertical::automotive,
        traffic::Vertical::ehealth}) {
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(72.0)),
        traffic::make_traffic(v, Rng(4)));
    tb->simulator.run_for(Duration::hours(4.0));
  }
  tb->simulator.run_for(Duration::hours(12.0));

  // The served router: the orchestrator's own REST API plus a
  // /dashboard endpoint with the full snapshot.
  auto router = tb->orchestrator->make_router();
  dashboard::Dashboard dash(tb.get());
  router->add(net::Method::get, "/dashboard", [&dash](const net::RouteContext&) {
    return net::Response::json(net::Status::ok, json::serialize_pretty(dash.snapshot()));
  });

  Result<std::unique_ptr<net::HttpServer>> bound = net::HttpServer::bind(router, 0);
  if (!bound.ok()) {
    std::cerr << "bind failed: " << bound.error().message << "\n";
    return 1;
  }
  net::HttpServer& server = *bound.value();
  std::cout << "dashboard serving on http://127.0.0.1:" << server.port() << "\n"
            << "  GET /report     — gains vs penalties headline\n"
            << "  GET /slices     — the slice table\n"
            << "  GET /dashboard  — full JSON snapshot\n";

  if (!selftest) {
    server.run();
    return 0;
  }

  // Self-test: a scripted client hits the API while the server thread
  // handles exactly its connections, then everything shuts down.
  std::thread server_thread([&server] { server.run(); });

  net::Request report;
  report.method = net::Method::get;
  report.target = "/report";
  const Result<net::Response> r1 = net::http_request(server.port(), report);
  if (!r1.ok() || r1.value().status != net::Status::ok) {
    std::cerr << "/report failed\n";
    return 1;
  }
  std::cout << "\nGET /report ->\n" << r1.value().body << "\n";

  net::Request snapshot;
  snapshot.method = net::Method::get;
  snapshot.target = "/dashboard";
  const Result<net::Response> r2 = net::http_request(server.port(), snapshot);
  if (!r2.ok() || r2.value().status != net::Status::ok) {
    std::cerr << "/dashboard failed\n";
    return 1;
  }
  std::cout << "\nGET /dashboard -> " << r2.value().body.size() << " bytes of JSON\n";

  server.stop();
  server_thread.join();
  std::cout << "self-test OK (" << server.connections_served() << " connections served)\n";
  return 0;
}
