#pragma once
// Synthetic slice traffic models.
//
// The paper demonstrates overbooking with real verticals on a testbed;
// we substitute controlled synthetic demand processes (see DESIGN.md).
// What matters for the broker is the *structure* of demand: diurnal
// seasonality (forecastable, the multiplexing-gain source), burstiness
// (the SLA-violation risk source) and session dynamics. Each model is a
// stateful process sampled once per monitoring period with its own
// deterministic RNG stream.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace slices::traffic {

/// A stateful demand process. `sample(t)` returns the offered demand
/// (Mb/s) for the monitoring period ending at `t`; calls must be made
/// with non-decreasing `t`.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// Demand in Mb/s for the period ending at `t` (never negative).
  [[nodiscard]] virtual double sample(SimTime t) = 0;

  /// Long-run mean demand in Mb/s (used to size SLAs in generators).
  [[nodiscard]] virtual double mean_rate() const noexcept = 0;

  /// Peak demand the process can (plausibly) offer, in Mb/s. SLAs are
  /// typically contracted at this level — the gap between peak and the
  /// instantaneous demand is precisely what overbooking reclaims.
  [[nodiscard]] virtual double peak_rate() const noexcept = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Constant-bit-rate demand (e.g. an industrial control stream).
class ConstantTraffic final : public TrafficModel {
 public:
  explicit ConstantTraffic(double rate_mbps) : rate_(rate_mbps) { assert(rate_mbps >= 0.0); }

  [[nodiscard]] double sample(SimTime) override { return rate_; }
  [[nodiscard]] double mean_rate() const noexcept override { return rate_; }
  [[nodiscard]] double peak_rate() const noexcept override { return rate_; }
  [[nodiscard]] std::string_view name() const noexcept override { return "constant"; }

 private:
  double rate_;
};

/// Sinusoidal diurnal demand with multiplicative Gaussian noise:
///   d(t) = mean + amplitude * sin(2π (t+phase)/period) + noise.
/// The canonical "office hours" vertical load from the forecasting
/// literature the paper builds on.
class DiurnalTraffic final : public TrafficModel {
 public:
  DiurnalTraffic(double mean_mbps, double amplitude_mbps, Duration period, Duration phase,
                 double noise_fraction, Rng rng)
      : mean_(mean_mbps),
        amplitude_(amplitude_mbps),
        period_(period),
        phase_(phase),
        noise_fraction_(noise_fraction),
        rng_(rng) {
    assert(mean_mbps >= 0.0);
    assert(amplitude_mbps >= 0.0 && amplitude_mbps <= mean_mbps);
    assert(period > Duration::zero());
    assert(noise_fraction >= 0.0);
  }

  [[nodiscard]] double sample(SimTime t) override {
    const double angle = 2.0 * std::numbers::pi *
                         ((t.as_seconds() + phase_.as_seconds()) / period_.as_seconds());
    const double base = mean_ + amplitude_ * std::sin(angle);
    const double noisy = base * (1.0 + noise_fraction_ * rng_.normal());
    return std::max(0.0, noisy);
  }
  [[nodiscard]] double mean_rate() const noexcept override { return mean_; }
  [[nodiscard]] double peak_rate() const noexcept override {
    // Mean + amplitude plus ~2σ of noise at the crest.
    return (mean_ + amplitude_) * (1.0 + 2.0 * noise_fraction_);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "diurnal"; }

 private:
  double mean_;
  double amplitude_;
  Duration period_;
  Duration phase_;
  double noise_fraction_;
  Rng rng_;
};

/// M/G/∞ session model: sessions arrive Poisson with (optionally
/// diurnally modulated) rate and hold exponential durations; each active
/// session offers `per_session_mbps`. Sampled as the stationary Poisson
/// occupancy at the modulated load — captures user-population dynamics
/// of eMBB verticals.
class SessionTraffic final : public TrafficModel {
 public:
  /// `arrivals_per_hour` is the *mean* arrival rate; when
  /// `diurnal_depth` > 0 the instantaneous rate swings ±depth·mean over
  /// a 24h period.
  SessionTraffic(double arrivals_per_hour, Duration mean_holding, double per_session_mbps,
                 double diurnal_depth, Rng rng)
      : arrivals_per_hour_(arrivals_per_hour),
        mean_holding_(mean_holding),
        per_session_mbps_(per_session_mbps),
        diurnal_depth_(diurnal_depth),
        rng_(rng) {
    assert(arrivals_per_hour >= 0.0);
    assert(mean_holding > Duration::zero());
    assert(per_session_mbps >= 0.0);
    assert(diurnal_depth >= 0.0 && diurnal_depth <= 1.0);
  }

  [[nodiscard]] double sample(SimTime t) override {
    const double angle = 2.0 * std::numbers::pi * (t.as_hours() / 24.0);
    const double rate = arrivals_per_hour_ * (1.0 + diurnal_depth_ * std::sin(angle));
    const double offered_load = std::max(0.0, rate) * mean_holding_.as_hours();
    const auto active = static_cast<double>(rng_.poisson(offered_load));
    return active * per_session_mbps_;
  }
  [[nodiscard]] double mean_rate() const noexcept override {
    return arrivals_per_hour_ * mean_holding_.as_hours() * per_session_mbps_;
  }
  [[nodiscard]] double peak_rate() const noexcept override {
    const double peak_load =
        arrivals_per_hour_ * (1.0 + diurnal_depth_) * mean_holding_.as_hours();
    // Poisson peak occupancy ≈ mean + 3σ.
    return (peak_load + 3.0 * std::sqrt(std::max(peak_load, 1.0))) * per_session_mbps_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "sessions"; }

 private:
  double arrivals_per_hour_;
  Duration mean_holding_;
  double per_session_mbps_;
  double diurnal_depth_;
  Rng rng_;
};

/// Two-state Markov-modulated on/off process: `base` demand always, plus
/// `burst` while in the ON state. Dwell times are geometric in sampling
/// periods. The hard case for overbooking — bursts are unforecastable.
class OnOffTraffic final : public TrafficModel {
 public:
  OnOffTraffic(double base_mbps, double burst_mbps, double p_on_to_off, double p_off_to_on,
               Rng rng)
      : base_(base_mbps),
        burst_(burst_mbps),
        p_on_to_off_(p_on_to_off),
        p_off_to_on_(p_off_to_on),
        rng_(rng) {
    assert(base_mbps >= 0.0 && burst_mbps >= 0.0);
    assert(p_on_to_off > 0.0 && p_on_to_off <= 1.0);
    assert(p_off_to_on > 0.0 && p_off_to_on <= 1.0);
  }

  [[nodiscard]] double sample(SimTime) override {
    if (on_) {
      if (rng_.bernoulli(p_on_to_off_)) on_ = false;
    } else {
      if (rng_.bernoulli(p_off_to_on_)) on_ = true;
    }
    return on_ ? base_ + burst_ : base_;
  }
  [[nodiscard]] double mean_rate() const noexcept override {
    const double duty = p_off_to_on_ / (p_off_to_on_ + p_on_to_off_);
    return base_ + duty * burst_;
  }
  [[nodiscard]] double peak_rate() const noexcept override { return base_ + burst_; }
  [[nodiscard]] std::string_view name() const noexcept override { return "onoff"; }

 private:
  double base_;
  double burst_;
  double p_on_to_off_;
  double p_off_to_on_;
  Rng rng_;
  bool on_ = false;
};

/// Piecewise-constant demand multiplier over simulated time. Built once
/// (e.g. from a scenario's phase timeline) and shared immutable between
/// every ModulatedTraffic instance of a run, so a single timeline can
/// surge the whole tenant population at once.
class PiecewiseEnvelope {
 public:
  struct Segment {
    SimTime start;
    SimTime end;     ///< exclusive
    double scale = 1.0;
  };

  /// Segments must be pre-validated: sorted, non-overlapping, scale >= 0.
  explicit PiecewiseEnvelope(std::vector<Segment> segments)
      : segments_(std::move(segments)) {}

  /// Multiplier in effect at `t` (1.0 outside every segment).
  [[nodiscard]] double scale_at(SimTime t) const noexcept {
    for (const Segment& s : segments_) {
      if (t >= s.start && t < s.end) return s.scale;
    }
    return 1.0;
  }

  /// Largest multiplier any segment applies (>= 1.0).
  [[nodiscard]] double peak_scale() const noexcept {
    double peak = 1.0;
    for (const Segment& s : segments_) peak = std::max(peak, s.scale);
    return peak;
  }

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return segments_; }

 private:
  std::vector<Segment> segments_;
};

/// Wraps a demand process with a shared time-varying envelope — the
/// flash-crowd/demand-surge primitive: d'(t) = envelope(t) * d(t).
class ModulatedTraffic final : public TrafficModel {
 public:
  ModulatedTraffic(std::unique_ptr<TrafficModel> base,
                   std::shared_ptr<const PiecewiseEnvelope> envelope)
      : base_(std::move(base)), envelope_(std::move(envelope)) {
    assert(base_ != nullptr && envelope_ != nullptr);
  }

  [[nodiscard]] double sample(SimTime t) override {
    return envelope_->scale_at(t) * base_->sample(t);
  }
  [[nodiscard]] double mean_rate() const noexcept override { return base_->mean_rate(); }
  [[nodiscard]] double peak_rate() const noexcept override {
    return envelope_->peak_scale() * base_->peak_rate();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "modulated"; }

 private:
  std::unique_ptr<TrafficModel> base_;
  std::shared_ptr<const PiecewiseEnvelope> envelope_;
};

/// Composite: sum of two component processes (e.g. diurnal + bursts).
class CompositeTraffic final : public TrafficModel {
 public:
  CompositeTraffic(std::unique_ptr<TrafficModel> a, std::unique_ptr<TrafficModel> b)
      : a_(std::move(a)), b_(std::move(b)) {
    assert(a_ != nullptr && b_ != nullptr);
  }

  [[nodiscard]] double sample(SimTime t) override { return a_->sample(t) + b_->sample(t); }
  [[nodiscard]] double mean_rate() const noexcept override {
    return a_->mean_rate() + b_->mean_rate();
  }
  [[nodiscard]] double peak_rate() const noexcept override {
    return a_->peak_rate() + b_->peak_rate();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "composite"; }

 private:
  std::unique_ptr<TrafficModel> a_;
  std::unique_ptr<TrafficModel> b_;
};

}  // namespace slices::traffic
