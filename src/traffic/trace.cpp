#include "traffic/trace.hpp"

#include <cassert>
#include <charconv>
#include <string>

namespace slices::traffic {

TraceTraffic::TraceTraffic(std::vector<double> samples_mbps, bool loop)
    : samples_(std::move(samples_mbps)), loop_(loop) {
  assert(!samples_.empty());
  double sum = 0.0;
  for (const double v : samples_) {
    assert(v >= 0.0);
    sum += v;
    if (v > peak_) peak_ = v;
  }
  mean_ = sum / static_cast<double>(samples_.size());
}

double TraceTraffic::sample(SimTime) {
  const std::size_t index =
      loop_ ? cursor_ % samples_.size()
            : (cursor_ < samples_.size() ? cursor_ : samples_.size() - 1);
  ++cursor_;
  return samples_[index];
}

Result<std::vector<double>> parse_trace_csv(std::string_view text) {
  std::vector<double> out;
  std::size_t line_number = 0;
  bool first_data_row = true;
  while (!text.empty()) {
    ++line_number;
    const std::size_t eol = text.find('\n');
    std::string_view line = eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    // Use the last comma-separated field (rows may be "t,value").
    const std::size_t comma = line.rfind(',');
    const std::string_view field =
        comma == std::string_view::npos ? line : line.substr(comma + 1);

    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
      if (first_data_row) {
        first_data_row = false;  // header row
        continue;
      }
      return make_error(Errc::protocol_error,
                        "trace line " + std::to_string(line_number) + ": bad number '" +
                            std::string(field) + "'");
    }
    first_data_row = false;
    if (value < 0.0) {
      return make_error(Errc::invalid_argument,
                        "trace line " + std::to_string(line_number) + ": negative demand");
    }
    out.push_back(value);
  }
  if (out.empty()) return make_error(Errc::invalid_argument, "empty trace");
  return out;
}

}  // namespace slices::traffic
