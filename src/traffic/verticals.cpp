#include "traffic/verticals.hpp"

#include <cassert>

namespace slices::traffic {

std::string_view to_string(Vertical v) noexcept {
  switch (v) {
    case Vertical::embb_video: return "embb_video";
    case Vertical::automotive: return "automotive";
    case Vertical::ehealth: return "ehealth";
    case Vertical::iot_metering: return "iot_metering";
    case Vertical::cloud_gaming: return "cloud_gaming";
  }
  return "?";
}

std::vector<Vertical> all_verticals() {
  return {Vertical::embb_video, Vertical::automotive, Vertical::ehealth,
          Vertical::iot_metering, Vertical::cloud_gaming};
}

VerticalProfile profile_for(Vertical v) {
  VerticalProfile p;
  p.vertical = v;
  p.label = std::string(to_string(v));
  switch (v) {
    case Vertical::embb_video:
      // Video CDN slice: big pipe, relaxed latency, cheap per Mb.
      p.expected_throughput_mbps = 60.0;
      p.max_latency = Duration::millis(50.0);
      p.edge_compute = {4.0, 8192.0, 80.0};
      p.price_per_hour = 30.0;
      p.penalty_per_violation = 2.0;
      p.needs_edge = false;
      break;
    case Vertical::automotive:
      // V2X assistance: tight latency forces edge placement; traffic
      // follows commuting rush hours.
      p.expected_throughput_mbps = 20.0;
      p.max_latency = Duration::millis(10.0);
      p.edge_compute = {8.0, 16384.0, 40.0};
      p.price_per_hour = 45.0;
      p.penalty_per_violation = 8.0;
      p.needs_edge = true;
      break;
    case Vertical::ehealth:
      // Remote-monitoring: modest rate but violations are expensive.
      p.expected_throughput_mbps = 10.0;
      p.max_latency = Duration::millis(20.0);
      p.edge_compute = {2.0, 4096.0, 20.0};
      p.price_per_hour = 25.0;
      p.penalty_per_violation = 15.0;
      p.needs_edge = true;
      break;
    case Vertical::iot_metering:
      // Smart metering: tiny steady load, loose latency, cheap.
      p.expected_throughput_mbps = 2.0;
      p.max_latency = Duration::millis(200.0);
      p.edge_compute = {1.0, 1024.0, 10.0};
      p.price_per_hour = 5.0;
      p.penalty_per_violation = 1.0;
      p.needs_edge = false;
      break;
    case Vertical::cloud_gaming:
      // Gaming: evening-peaked, latency-sensitive, pays well.
      p.expected_throughput_mbps = 40.0;
      p.max_latency = Duration::millis(15.0);
      p.edge_compute = {12.0, 24576.0, 60.0};
      p.price_per_hour = 50.0;
      p.penalty_per_violation = 6.0;
      p.needs_edge = true;
      break;
  }
  return p;
}

std::unique_ptr<TrafficModel> make_traffic(Vertical v, Rng rng) {
  const Duration day = Duration::hours(24.0);
  switch (v) {
    case Vertical::embb_video: {
      // Strong day/night swing around ~55% of contracted peak.
      return std::make_unique<DiurnalTraffic>(
          /*mean=*/32.0, /*amplitude=*/22.0, day, /*phase=*/Duration::hours(-6.0),
          /*noise=*/0.08, rng);
    }
    case Vertical::automotive: {
      // Two commuting humps approximated by a 12h-period diurnal plus a
      // session layer for platoons of vehicles.
      auto rush = std::make_unique<DiurnalTraffic>(8.0, 5.0, Duration::hours(12.0),
                                                   Duration::hours(-3.0), 0.10, rng.fork());
      auto sessions = std::make_unique<SessionTraffic>(
          /*arrivals_per_hour=*/120.0, /*holding=*/Duration::minutes(3.0),
          /*per_session=*/0.5, /*diurnal_depth=*/0.6, rng.fork());
      return std::make_unique<CompositeTraffic>(std::move(rush), std::move(sessions));
    }
    case Vertical::ehealth: {
      // Low floor with emergency bursts (hard to forecast).
      auto floor = std::make_unique<ConstantTraffic>(2.0);
      auto bursts = std::make_unique<OnOffTraffic>(/*base=*/0.0, /*burst=*/6.0,
                                                   /*p_on_off=*/0.30, /*p_off_on=*/0.05,
                                                   rng.fork());
      return std::make_unique<CompositeTraffic>(std::move(floor), std::move(bursts));
    }
    case Vertical::iot_metering: {
      // Nearly flat with small reporting waves.
      return std::make_unique<DiurnalTraffic>(1.2, 0.4, Duration::hours(6.0),
                                              Duration::zero(), 0.05, rng);
    }
    case Vertical::cloud_gaming: {
      // Evening peak (phase shifts crest to ~21h) + session churn.
      auto evening = std::make_unique<DiurnalTraffic>(20.0, 14.0, day, Duration::hours(3.0),
                                                      0.10, rng.fork());
      auto sessions = std::make_unique<SessionTraffic>(60.0, Duration::minutes(40.0), 0.2,
                                                       0.8, rng.fork());
      return std::make_unique<CompositeTraffic>(std::move(evening), std::move(sessions));
    }
  }
  assert(false && "unknown vertical");
  return std::make_unique<ConstantTraffic>(0.0);
}

}  // namespace slices::traffic
