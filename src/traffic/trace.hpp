#pragma once
// Trace-replay traffic: bridges recorded demand (one sample per
// monitoring period) into the synthetic harness — the substitution path
// back toward real vertical traces when they are available.

#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "traffic/model.hpp"

namespace slices::traffic {

/// Replays a fixed series of demand samples in order; loops around by
/// default, or holds the last value when looping is disabled.
class TraceTraffic final : public TrafficModel {
 public:
  /// Precondition: at least one sample, all non-negative.
  explicit TraceTraffic(std::vector<double> samples_mbps, bool loop = true);

  [[nodiscard]] double sample(SimTime) override;
  [[nodiscard]] double mean_rate() const noexcept override { return mean_; }
  [[nodiscard]] double peak_rate() const noexcept override { return peak_; }
  [[nodiscard]] std::string_view name() const noexcept override { return "trace"; }

  [[nodiscard]] std::size_t length() const noexcept { return samples_.size(); }
  /// Samples consumed so far (wraps do not reset it).
  [[nodiscard]] std::size_t position() const noexcept { return cursor_; }

 private:
  std::vector<double> samples_;
  bool loop_;
  std::size_t cursor_ = 0;
  double mean_ = 0.0;
  double peak_ = 0.0;
};

/// Parse a demand trace from CSV text. Accepted row shapes: `value` or
/// `t,value` (the time column is ignored — samples are period-indexed).
/// Blank lines and lines starting with '#' are skipped; a non-numeric
/// first data row is treated as a header. Errors: protocol_error
/// (malformed row), invalid_argument (negative value or empty trace).
[[nodiscard]] Result<std::vector<double>> parse_trace_csv(std::string_view text);

}  // namespace slices::traffic
