#pragma once
// Vertical-industry traffic profiles.
//
// The paper motivates slicing with vertical industries "such as
// automotive, e-health". Each profile bundles a demand model with the
// SLA-shaping attributes a vertical typically contracts: latency bound,
// throughput expectation, unit price and violation penalty scale.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "traffic/model.hpp"

namespace slices::traffic {

/// Identifies one of the built-in vertical profiles.
enum class Vertical {
  embb_video,    ///< eMBB video distribution: high-rate, strongly diurnal.
  automotive,    ///< V2X-style: moderate rate, tight latency, rush-hour peaks.
  ehealth,       ///< e-health telemetry: modest rate, high penalty, bursty.
  iot_metering,  ///< mMTC metering: low constant rate, loose latency.
  cloud_gaming,  ///< latency-sensitive eMBB with evening seasonality.
};

[[nodiscard]] std::string_view to_string(Vertical v) noexcept;

/// All built-in verticals, for sweeps.
[[nodiscard]] std::vector<Vertical> all_verticals();

/// SLA-shaping attributes of a vertical (per slice instance).
struct VerticalProfile {
  Vertical vertical;
  std::string label;
  double expected_throughput_mbps = 0.0;  ///< contracted (peak-level) rate
  Duration max_latency;                   ///< end-to-end latency bound
  ComputeCapacity edge_compute;           ///< edge footprint (beyond the EPC)
  double price_per_hour = 0.0;            ///< willingness to pay
  double penalty_per_violation = 0.0;     ///< SLA-violation charge
  bool needs_edge = false;                ///< must be placed at the edge DC
};

/// Profile attributes for `v`. Deterministic (no RNG).
[[nodiscard]] VerticalProfile profile_for(Vertical v);

/// Demand process for one slice instance of vertical `v`, scaled so that
/// its peak approaches the profile's contracted throughput. `rng` seeds
/// the instance's private stream.
[[nodiscard]] std::unique_ptr<TrafficModel> make_traffic(Vertical v, Rng rng);

}  // namespace slices::traffic
