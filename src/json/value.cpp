#include "json/value.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>

namespace slices::json {
namespace {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void escape_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_into(std::string& out, double d) {
  // Integers within the exactly-representable range print without a
  // fractional part so ids round-trip textually.
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", d);
  out.append(buf, static_cast<std::size_t>(n));
}

void serialize_into(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  switch (v.type()) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += v.as_bool() ? "true" : "false"; break;
    case Type::number: number_into(out, v.as_number()); break;
    case Type::string: escape_into(out, v.as_string()); break;
    case Type::array: {
      const Array& arr = v.as_array();
      out.push_back('[');
      bool first = true;
      for (const Value& item : arr) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        serialize_into(out, item, indent, depth + 1);
      }
      if (!arr.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::object: {
      const Object& obj = v.as_object();
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        escape_into(out, key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        serialize_into(out, item, indent, depth + 1);
      }
      if (!obj.empty()) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Parsing — recursive descent with explicit depth limit.
// ---------------------------------------------------------------------------

constexpr int kMaxDepth = 256;

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options) : text_(text), options_(options) {}

  Result<Value> run() {
    skip_ws();
    Result<Value> v = parse_value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Error fail(std::string why) const {
    if (options_.error_offset != nullptr) *options_.error_offset = pos_;
    return make_error(Errc::protocol_error,
                      "json parse error at byte " + std::to_string(pos_) + ": " + std::move(why));
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) noexcept {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return consume_literal("null") ? Result<Value>(Value(nullptr)) : fail("bad literal");
      case 't': return consume_literal("true") ? Result<Value>(Value(true)) : fail("bad literal");
      case 'f': return consume_literal("false") ? Result<Value>(Value(false)) : fail("bad literal");
      case '"': return parse_string_value();
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof()) {
      const char c = peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) return fail("malformed number");
    if (!std::isfinite(d)) return fail("non-finite number");
    return Value(d);
  }

  Result<std::string> parse_string_raw() {
    assert(peek() == '"');
    ++pos_;
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are rejected —
            // config payloads in this system are ASCII).
            if (code >= 0xD800 && code <= 0xDFFF) return fail("surrogate escapes unsupported");
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Result<Value> parse_string_value() {
    Result<std::string> s = parse_string_raw();
    if (!s.ok()) return s.error();
    return Value(std::move(s).value());
  }

  Result<Value> parse_array(int depth) {
    assert(peek() == '[');
    ++pos_;
    Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      skip_ws();
      Result<Value> item = parse_value(depth + 1);
      if (!item.ok()) return item;
      arr.push_back(std::move(item).value());
      skip_ws();
      if (eof()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Value(std::move(arr));
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object(int depth) {
    assert(peek() == '{');
    ++pos_;
    Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      Result<std::string> key = parse_string_raw();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || text_[pos_++] != ':') return fail("expected ':' after key");
      skip_ws();
      Result<Value> item = parse_value(depth + 1);
      if (!item.ok()) return item;
      if (options_.reject_duplicate_keys && obj.contains(key.value())) {
        return fail("duplicate object key '" + key.value() + "'");
      }
      obj.insert_or_assign(std::move(key).value(), std::move(item).value());
      skip_ws();
      if (eof()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Value(std::move(obj));
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize(const Value& v) {
  std::string out;
  serialize_into(out, v, /*indent=*/0, /*depth=*/0);
  return out;
}

void serialize(const Value& v, std::string& out) {
  out.clear();
  serialize_into(out, v, /*indent=*/0, /*depth=*/0);
}

std::string serialize_pretty(const Value& v) {
  std::string out;
  serialize_into(out, v, /*indent=*/2, /*depth=*/0);
  return out;
}

void append_escaped(std::string& out, std::string_view s) { escape_into(out, s); }

void append_number(std::string& out, double d) { number_into(out, d); }

Result<Value> parse(std::string_view text) { return Parser(text, ParseOptions{}).run(); }

Result<Value> parse(std::string_view text, const ParseOptions& options) {
  return Parser(text, options).run();
}

}  // namespace slices::json
