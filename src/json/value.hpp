#pragma once
// JSON document model used by the REST layer between domain controllers
// and the end-to-end orchestrator (the paper exchanges monitoring data
// and configuration over REST APIs).
//
// Design: a single variant-backed Value with checked accessors. Parsing
// returns Result<Value> (wire data is untrusted); accessors on a Value a
// caller has already validated assert instead.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace slices::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps serialization deterministic (sorted keys), which the
/// tests and golden files rely on.
using Object = std::map<std::string, Value, std::less<>>;

enum class Type { null, boolean, number, string, array, object };

[[nodiscard]] constexpr std::string_view to_string(Type t) noexcept {
  switch (t) {
    case Type::null: return "null";
    case Type::boolean: return "boolean";
    case Type::number: return "number";
    case Type::string: return "string";
    case Type::array: return "array";
    case Type::object: return "object";
  }
  return "?";
}

/// A JSON value (null / bool / double / string / array / object).
class Value {
 public:
  Value() noexcept : v_(nullptr) {}
  Value(std::nullptr_t) noexcept : v_(nullptr) {}            // NOLINT
  Value(bool b) noexcept : v_(b) {}                          // NOLINT
  Value(double d) noexcept : v_(d) {}                        // NOLINT
  Value(int i) noexcept : v_(static_cast<double>(i)) {}      // NOLINT
  Value(std::int64_t i) noexcept : v_(static_cast<double>(i)) {}  // NOLINT
  Value(std::uint64_t i) noexcept : v_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}               // NOLINT
  Value(std::string s) noexcept : v_(std::move(s)) {}        // NOLINT
  Value(std::string_view s) : v_(std::string(s)) {}          // NOLINT
  Value(Array a) noexcept : v_(std::move(a)) {}              // NOLINT
  Value(Object o) noexcept : v_(std::move(o)) {}             // NOLINT

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(v_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::null; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::boolean; }
  [[nodiscard]] bool is_number() const noexcept { return type() == Type::number; }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::string; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::array; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::object; }

  // Checked accessors (assert on type mismatch — caller validated shape).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return static_cast<std::int64_t>(std::get<double>(v_)); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept {
    if (!is_object()) return nullptr;
    const auto& obj = std::get<Object>(v_);
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }

  /// Fallible typed getters for untrusted documents.
  [[nodiscard]] Result<double> get_number(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr || !v->is_number())
      return make_error(Errc::protocol_error, "missing/invalid number field '" + std::string(key) + "'");
    return v->as_number();
  }
  [[nodiscard]] Result<std::string> get_string(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr || !v->is_string())
      return make_error(Errc::protocol_error, "missing/invalid string field '" + std::string(key) + "'");
    return v->as_string();
  }
  [[nodiscard]] Result<bool> get_bool(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr || !v->is_bool())
      return make_error(Errc::protocol_error, "missing/invalid bool field '" + std::string(key) + "'");
    return v->as_bool();
  }

  /// Mutating object index (creates the member, like std::map).
  Value& operator[](const std::string& key) {
    if (!is_object()) v_ = Object{};
    return std::get<Object>(v_)[key];
  }

  friend bool operator==(const Value& a, const Value& b) noexcept { return a.v_ == b.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Serialize to compact JSON (no whitespace). Deterministic: object
/// members emit in key order.
[[nodiscard]] std::string serialize(const Value& v);

/// Serialize compact JSON into `out` (cleared first), reusing its
/// capacity — the allocation-free variant for per-epoch hot paths.
void serialize(const Value& v, std::string& out);

/// Serialize with 2-space indentation for human-readable dashboards.
[[nodiscard]] std::string serialize_pretty(const Value& v);

/// Append the JSON text of a string (quoted + escaped) to `out` —
/// exactly what serialize() emits for a string Value. Together with
/// append_number this lets hot paths emit documents straight into a
/// buffer without building a DOM first.
void append_escaped(std::string& out, std::string_view s);

/// Append the JSON text of a number to `out` — exactly what
/// serialize() emits for a number Value (integers without a fractional
/// part, everything else %.17g).
void append_number(std::string& out, double d);

/// Parse a JSON document. Rejects trailing garbage, unterminated
/// strings, bad escapes, deep nesting (>256 levels) and non-finite
/// numbers, returning Errc::protocol_error with a byte offset.
[[nodiscard]] Result<Value> parse(std::string_view text);

/// Knobs for untrusted configuration documents (scenario/config files)
/// where silent data loss is worse than a parse failure.
struct ParseOptions {
  /// Reject objects with repeated keys instead of last-wins overwrite —
  /// a duplicated key in a hand-edited config is almost always a typo'd
  /// intent, not an intentional override.
  bool reject_duplicate_keys = false;
  /// When non-null, receives the byte offset of the failure (unchanged
  /// on success). Callers with the original text can turn it into a
  /// line:column position.
  std::size_t* error_offset = nullptr;
};

/// parse() with explicit options; the plain overload forwards to this
/// with defaults (wire traffic keeps the permissive behaviour).
[[nodiscard]] Result<Value> parse(std::string_view text, const ParseOptions& options);

}  // namespace slices::json
