#pragma once
// REST routing: maps (method, path pattern) to handlers. Patterns use
// "{name}" placeholders ("/slices/{id}/usage"); matched segments are
// handed to the handler as decoded path parameters.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/http.hpp"
#include "net/url.hpp"

namespace slices::net {

/// Decoded request context passed to handlers.
struct RouteContext {
  const Request* request = nullptr;                 ///< Full original request.
  std::map<std::string, std::string> path_params;   ///< "{id}" -> "7"
  std::map<std::string, std::string> query;         ///< Query parameters.

  /// Fetch a path parameter; Errc::internal if the pattern lacked it
  /// (programming error surfaced as a 500 rather than UB).
  [[nodiscard]] Result<std::string> param(std::string_view name) const;
  /// Fetch a path parameter and parse it as a non-negative integer id.
  [[nodiscard]] Result<std::uint64_t> id_param(std::string_view name) const;
};

using Handler = std::function<Response(const RouteContext&)>;

/// A router owning an ordered list of routes. First match wins; routes
/// are typically registered most-specific first.
class Router {
 public:
  /// Register a handler for `method` + `pattern`.
  void add(Method method, std::string pattern, Handler handler);

  /// Dispatch a request: 404 on no route, 400 on malformed target.
  [[nodiscard]] Response dispatch(const Request& request) const;

  [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  struct Route {
    Method method;
    std::vector<std::string> pattern_segments;
    Handler handler;
  };

  static bool match(const Route& route, const std::vector<std::string>& segments,
                    std::map<std::string, std::string>& params);

  std::vector<Route> routes_;
};

}  // namespace slices::net
