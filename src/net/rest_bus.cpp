#include "net/rest_bus.hpp"

namespace slices::net {

void RestBus::register_service(std::string name, std::shared_ptr<Router> router) {
  stats_.try_emplace(name);
  services_.insert_or_assign(std::move(name), std::move(router));
}

void RestBus::unregister_service(const std::string& name) { services_.erase(name); }

bool RestBus::has_service(const std::string& name) const noexcept {
  return services_.contains(name);
}

Result<Response> RestBus::call(const std::string& name, const Request& request) {
  const auto it = services_.find(name);
  if (it == services_.end())
    return make_error(Errc::unavailable, "no service registered as '" + name + "'");
  BusStats& stats = stats_[name];
  ++stats.requests;

  // Full wire round trip: the request crosses the codec exactly as it
  // would cross a TCP connection.
  const std::string request_wire = request.encode();
  stats.bytes_tx += request_wire.size();
  Result<Request> decoded = parse_request(request_wire);
  if (!decoded.ok()) return decoded.error();

  const Response served = it->second->dispatch(decoded.value());

  const std::string response_wire = served.encode();
  stats.bytes_rx += response_wire.size();
  Result<Response> redecoded = parse_response(response_wire);
  if (!redecoded.ok()) return redecoded.error();

  const int code = static_cast<int>(redecoded.value().status);
  if (code >= 200 && code < 300) {
    ++stats.responses_ok;
  } else {
    ++stats.responses_error;
  }
  return redecoded;
}

Result<json::Value> RestBus::call_json(const std::string& name, Method method,
                                       const std::string& target, const json::Value& body) {
  Request req;
  req.method = method;
  req.target = target;
  if (!body.is_null()) {
    req.headers.insert_or_assign("Content-Type", "application/json");
    req.body = json::serialize(body);
  }
  Result<Response> resp = call(name, req);
  if (!resp.ok()) return resp.error();

  const Response& r = resp.value();
  const int code = static_cast<int>(r.status);
  if (code < 200 || code >= 300) {
    return make_error(errc_from_status(r.status),
                      "service '" + name + "' " + target + " -> " + std::to_string(code) +
                          (r.body.empty() ? "" : (" " + r.body)));
  }
  if (r.body.empty()) return json::Value(nullptr);
  return json::parse(r.body);
}

Result<json::Value> RestBus::get_json(const std::string& name, const std::string& target) {
  return call_json(name, Method::get, target, json::Value(nullptr));
}

}  // namespace slices::net
