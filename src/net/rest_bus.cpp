#include "net/rest_bus.hpp"

#include "net/http_server.hpp"
#include "telemetry/trace.hpp"

namespace slices::net {

void RestBus::register_service(std::string name, std::shared_ptr<Router> router) {
  ServiceEntry& entry = services_[std::move(name)];
  entry.router = std::move(router);
  entry.remote_port = 0;
}

void RestBus::register_remote(std::string name, std::uint16_t port) {
  ServiceEntry& entry = services_[std::move(name)];
  entry.router = nullptr;
  entry.remote_port = port;
}

void RestBus::unregister_service(const std::string& name) {
  const auto it = services_.find(name);
  if (it != services_.end()) {
    it->second.router = nullptr;
    it->second.remote_port = 0;
  }
}

bool RestBus::has_service(const std::string& name) const noexcept {
  const auto it = services_.find(name);
  return it != services_.end() &&
         (it->second.router != nullptr || it->second.remote_port != 0);
}

Result<Response> RestBus::call(const std::string& name, const Request& request) {
  TRACE_SCOPE("bus.call");
  const auto it = services_.find(name);
  if (it == services_.end() ||
      (it->second.router == nullptr && it->second.remote_port == 0))
    return make_error(Errc::unavailable, "no service registered as '" + name + "'");
  BusStats& stats = it->second.stats;
  ++stats.requests;

  // Stamp the live trace context onto the request so callee spans parent
  // this bus.call span: in-struct on the direct-dispatch path, as an
  // X-Slices-Trace header across the socket backend. All three paths use
  // the same stamped copy, so byte counters and wire-check bytes stay
  // transport-invariant whether tracing is on or off.
  const Request* req = &request;
  Request stamped;
  if (telemetry::trace::enabled()) {
    const telemetry::trace::Context ctx =
        telemetry::trace::Tracer::instance().current_context();
    if (ctx.valid()) {
      stamped = request;
      std::string encoded;
      telemetry::trace::encode_context(ctx, encoded);
      stamped.headers.insert_or_assign(telemetry::trace::kContextHeader, std::move(encoded));
      req = &stamped;
    }
  }

  // Remote backend: the exchange crosses a real loopback socket (the
  // server encodes/parses on its side), so every call pays the full
  // wire codec by construction.
  if (it->second.router == nullptr) {
    stats.bytes_tx += req->encoded_size();
    Result<Response> resp = http_request(it->second.remote_port, *req);
    if (!resp.ok()) {
      ++stats.responses_error;
      return resp;
    }
    stats.bytes_rx += resp.value().encoded_size();
    const int code = static_cast<int>(resp.value().status);
    if (code >= 200 && code < 300) {
      ++stats.responses_ok;
    } else {
      ++stats.responses_error;
    }
    return resp;
  }

  // Sampled wire check (and the first call of every service): the
  // request crosses the codec exactly as it would cross a TCP
  // connection, keeping the wire format continuously verified.
  if (wire_check_interval_ <= 1 || stats.requests % wire_check_interval_ == 1) {
    const std::string request_wire = req->encode();
    stats.bytes_tx += request_wire.size();
    Result<Request> decoded = parse_request(request_wire);
    if (!decoded.ok()) return decoded.error();

    const Response served = it->second.router->dispatch(decoded.value());

    const std::string response_wire = served.encode();
    stats.bytes_rx += response_wire.size();
    Result<Response> redecoded = parse_response(response_wire);
    if (!redecoded.ok()) return redecoded.error();

    const int code = static_cast<int>(redecoded.value().status);
    if (code >= 200 && code < 300) {
      ++stats.responses_ok;
    } else {
      ++stats.responses_error;
    }
    return redecoded;
  }

  // Fast path: dispatch directly, skipping the codec. Counters account
  // the exact bytes the wire would have carried, and the response gets
  // the canonical Content-Length header a codec round trip would add,
  // so callers cannot tell the two paths apart.
  stats.bytes_tx += req->encoded_size();
  Response served = it->second.router->dispatch(*req);
  stats.bytes_rx += served.encoded_size();
  served.headers.insert_or_assign("Content-Length", std::to_string(served.body.size()));

  const int code = static_cast<int>(served.status);
  if (code >= 200 && code < 300) {
    ++stats.responses_ok;
  } else {
    ++stats.responses_error;
  }
  return served;
}

Result<json::Value> RestBus::call_json(const std::string& name, Method method,
                                       const std::string& target, const json::Value& body) {
  Request req;
  req.method = method;
  req.target = target;
  if (!body.is_null()) {
    req.headers.insert_or_assign("Content-Type", "application/json");
    json::serialize(body, json_buffer_);  // reuses the buffer's capacity
    req.body = json_buffer_;
  }
  Result<Response> resp = call(name, req);
  if (!resp.ok()) return resp.error();

  const Response& r = resp.value();
  const int code = static_cast<int>(r.status);
  if (code < 200 || code >= 300) {
    return make_error(errc_from_status(r.status),
                      "service '" + name + "' " + target + " -> " + std::to_string(code) +
                          (r.body.empty() ? "" : (" " + r.body)));
  }
  if (r.body.empty()) return json::Value(nullptr);
  return json::parse(r.body);
}

Result<json::Value> RestBus::get_json(const std::string& name, const std::string& target) {
  return call_json(name, Method::get, target, json::Value(nullptr));
}

std::map<std::string, BusStats> RestBus::stats() const {
  std::map<std::string, BusStats> out;
  for (const auto& [name, entry] : services_) out.emplace(name, entry.stats);
  return out;
}

}  // namespace slices::net
