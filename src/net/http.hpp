#pragma once
// HTTP/1.1 message model and wire codec.
//
// The paper's controllers feed monitoring data to the orchestrator
// "through REST APIs". We reproduce that interface layer faithfully: all
// controller <-> orchestrator traffic is encoded to real HTTP/1.1 bytes
// and parsed back (see RestBus), so the message path exercised here is
// the same one an out-of-process deployment would use.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace slices::net {

enum class Method { get, post, put, del, patch };

[[nodiscard]] constexpr std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::get: return "GET";
    case Method::post: return "POST";
    case Method::put: return "PUT";
    case Method::del: return "DELETE";
    case Method::patch: return "PATCH";
  }
  return "?";
}

/// Parse an HTTP method token; nullopt for unsupported methods.
[[nodiscard]] std::optional<Method> parse_method(std::string_view token) noexcept;

/// Common status codes used by the controller APIs.
enum class Status : int {
  ok = 200,
  created = 201,
  no_content = 204,
  bad_request = 400,
  not_found = 404,
  conflict = 409,
  unprocessable = 422,
  too_many_requests = 429,
  internal_error = 500,
  service_unavailable = 503,
};

[[nodiscard]] std::string_view reason_phrase(Status s) noexcept;

/// Map a domain error onto the HTTP status a controller returns.
[[nodiscard]] Status status_from_errc(Errc code) noexcept;
/// Inverse mapping used by the client side.
[[nodiscard]] Errc errc_from_status(Status s) noexcept;

/// Case-insensitive header map (HTTP field names are case-insensitive).
struct CaseInsensitiveLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept;
};
using Headers = std::map<std::string, std::string, CaseInsensitiveLess>;

/// An HTTP request: method, origin-form target (path + optional query),
/// headers and body.
struct Request {
  Method method = Method::get;
  std::string target = "/";
  Headers headers;
  std::string body;

  /// Serialize to HTTP/1.1 wire format (adds Content-Length).
  [[nodiscard]] std::string encode() const;

  /// Exact byte count encode() would produce, without building the
  /// string (used by the bus fast path to keep traffic counters exact).
  [[nodiscard]] std::size_t encoded_size() const noexcept;
};

/// An HTTP response.
struct Response {
  Status status = Status::ok;
  Headers headers;
  std::string body;

  [[nodiscard]] std::string encode() const;

  /// Exact byte count encode() would produce (see Request::encoded_size).
  [[nodiscard]] std::size_t encoded_size() const noexcept;

  /// Build a JSON response with Content-Type set.
  [[nodiscard]] static Response json(Status status, std::string body_json);
  /// Build an error response with a JSON problem body.
  [[nodiscard]] static Response from_error(const Error& e);
};

/// Parse one complete request from wire bytes. Requires the full message
/// to be present (the bus delivers whole messages); enforces
/// Content-Length consistency and rejects malformed start lines.
[[nodiscard]] Result<Request> parse_request(std::string_view wire);

/// Parse one complete response from wire bytes.
[[nodiscard]] Result<Response> parse_response(std::string_view wire);

}  // namespace slices::net
