#include "net/url.hpp"

namespace slices::net {
namespace {

Error bad(std::string why) { return make_error(Errc::protocol_error, "url: " + std::move(why)); }

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool is_unreserved(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '.' || c == '_' || c == '~';
}

}  // namespace

std::string Target::path() const {
  if (segments.empty()) return "/";
  std::string out;
  for (const std::string& seg : segments) {
    out.push_back('/');
    out += seg;
  }
  return out;
}

Result<std::string> percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) return bad("truncated escape");
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) return bad("invalid escape");
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string percent_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

Result<Target> parse_target(std::string_view target) {
  if (target.empty() || target.front() != '/') return bad("target must start with '/'");

  Target out;
  std::string_view path = target;
  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  path.remove_prefix(1);  // leading '/'
  while (!path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view raw =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    path = slash == std::string_view::npos ? std::string_view{} : path.substr(slash + 1);
    if (raw.empty()) return bad("empty path segment");
    Result<std::string> seg = percent_decode(raw);
    if (!seg.ok()) return seg.error();
    out.segments.push_back(std::move(seg).value());
  }

  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    const std::string_view raw_key = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    const std::string_view raw_val =
        eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1);
    Result<std::string> key = percent_decode(raw_key);
    if (!key.ok()) return key.error();
    Result<std::string> val = percent_decode(raw_val);
    if (!val.ok()) return val.error();
    out.query.insert_or_assign(std::move(key).value(), std::move(val).value());
  }
  return out;
}

}  // namespace slices::net
