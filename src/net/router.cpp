#include "net/router.hpp"

#include <charconv>

namespace slices::net {

Result<std::string> RouteContext::param(std::string_view name) const {
  const auto it = path_params.find(std::string(name));
  if (it == path_params.end())
    return make_error(Errc::internal, "route pattern has no parameter '" + std::string(name) + "'");
  return it->second;
}

Result<std::uint64_t> RouteContext::id_param(std::string_view name) const {
  Result<std::string> raw = param(name);
  if (!raw.ok()) return raw.error();
  const std::string& s = raw.value();
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    return make_error(Errc::invalid_argument, "'" + s + "' is not a valid id");
  return v;
}

void Router::add(Method method, std::string pattern, Handler handler) {
  Result<Target> parsed = parse_target(pattern);
  // Route patterns are compile-time constants in this codebase; a bad
  // one is a programming error.
  if (!parsed.ok()) throw std::invalid_argument("bad route pattern: " + pattern);
  routes_.push_back(Route{method, std::move(parsed.value().segments), std::move(handler)});
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   std::map<std::string, std::string>& params) {
  if (route.pattern_segments.size() != segments.size()) return false;
  std::map<std::string, std::string> captured;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pat = route.pattern_segments[i];
    if (pat.size() >= 2 && pat.front() == '{' && pat.back() == '}') {
      captured.insert_or_assign(pat.substr(1, pat.size() - 2), segments[i]);
    } else if (pat != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

Response Router::dispatch(const Request& request) const {
  Result<Target> target = parse_target(request.target);
  if (!target.ok()) return Response::from_error(target.error());

  bool path_known = false;
  for (const Route& route : routes_) {
    std::map<std::string, std::string> params;
    if (!match(route, target.value().segments, params)) continue;
    path_known = true;
    if (route.method != request.method) continue;
    RouteContext ctx;
    ctx.request = &request;
    ctx.path_params = std::move(params);
    ctx.query = target.value().query;
    return route.handler(ctx);
  }
  if (path_known)
    return Response::from_error(make_error(Errc::not_found, "method not allowed on this resource"));
  return Response::from_error(
      make_error(Errc::not_found, "no route for " + target.value().path()));
}

}  // namespace slices::net
