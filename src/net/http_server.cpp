#include "net/http_server.hpp"

#include <charconv>

#include "telemetry/trace.hpp"

namespace slices::net {
namespace {

/// Read from `conn` until a complete HTTP message (terminated head +
/// Content-Length-satisfied body) or EOF/limit. Returns the raw bytes.
Result<std::string> read_message(TcpConnection& conn) {
  std::string wire;
  std::size_t expected_total = 0;  // 0 = head not complete yet
  while (wire.size() < kMaxRequestBytes) {
    if (expected_total == 0) {
      const std::size_t head_end = wire.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        std::size_t content_length = 0;
        // Scan header block for Content-Length (case-insensitive match
        // is done by the full parser; a simple scan suffices to size
        // the read because we re-parse afterwards anyway).
        const std::string head = wire.substr(0, head_end);
        for (const char* name : {"Content-Length:", "content-length:", "Content-length:"}) {
          const std::size_t pos = head.find(name);
          if (pos == std::string::npos) continue;
          const char* first = head.data() + pos + std::string_view(name).size();
          while (first < head.data() + head.size() && *first == ' ') ++first;
          std::from_chars(first, head.data() + head.size(), content_length);
          break;
        }
        expected_total = head_end + 4 + content_length;
      }
    }
    if (expected_total > 0 && wire.size() >= expected_total) {
      return wire.substr(0, expected_total);
    }
    Result<std::string> chunk = conn.receive_some();
    if (!chunk.ok()) return chunk.error();
    if (chunk.value().empty()) {
      // EOF: deliver what we have (the parser will reject partials).
      return wire;
    }
    wire += chunk.value();
  }
  return make_error(Errc::protocol_error, "request exceeds size limit");
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::bind(std::shared_ptr<Router> router,
                                                     std::uint16_t port) {
  Result<TcpListener> listener = TcpListener::bind_loopback(port);
  if (!listener.ok()) return listener.error();
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(router), std::move(listener).value()));
}

Result<void> HttpServer::serve_one() {
  Result<TcpConnection> accepted = listener_.accept_one();
  if (!accepted.ok()) return accepted.error();
  TcpConnection conn = std::move(accepted).value();

  Response response;
  const Result<std::string> wire = read_message(conn);
  if (!wire.ok()) {
    response = Response::from_error(wire.error());
  } else {
    const Result<Request> request = parse_request(wire.value());
    if (!request.ok()) {
      response = Response::from_error(request.error());
    } else {
      // Adopt a carried trace context (if any) so spans opened by the
      // handler parent the caller's span exactly like a direct dispatch
      // would. Invalid/absent headers make this a no-op.
      telemetry::trace::Context ctx;
      const auto trace_header =
          request.value().headers.find(telemetry::trace::kContextHeader);
      if (trace_header != request.value().headers.end()) {
        ctx = telemetry::trace::parse_context(trace_header->second);
      }
      telemetry::trace::ContextScope trace_scope(ctx);
      response = router_->dispatch(request.value());
    }
  }
  response.headers.insert_or_assign("Connection", "close");
  (void)conn.send_all(response.encode());
  conn.shutdown_write();
  ++served_;
  return {};
}

std::uint64_t HttpServer::run() {
  std::uint64_t handled = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!serve_one().ok()) break;  // listener closed (stop) or fatal
    ++handled;
  }
  return handled;
}

Result<Response> http_request(std::uint16_t port, const Request& request) {
  Result<TcpConnection> connected = connect_loopback(port);
  if (!connected.ok()) return connected.error();
  TcpConnection conn = std::move(connected).value();

  if (Result<void> sent = conn.send_all(request.encode()); !sent.ok()) return sent.error();
  conn.shutdown_write();

  std::string wire;
  while (wire.size() < kMaxRequestBytes) {
    Result<std::string> chunk = conn.receive_some();
    if (!chunk.ok()) return chunk.error();
    if (chunk.value().empty()) break;  // server closed: full response in hand
    wire += chunk.value();
  }
  return parse_response(wire);
}

}  // namespace slices::net
