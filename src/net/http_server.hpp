#pragma once
// Blocking HTTP/1.1 server over real sockets.
//
// Exposes any Router (the same ones the RestBus serves in-process) on a
// loopback TCP port: accept -> read one full request (header-delimited,
// Content-Length-bounded body) -> dispatch -> write response -> close.
// One connection at a time, one request per connection — the demo
// dashboard's query pattern. `serve_one()` processes a single
// connection; `run()` loops until `stop()` closes the listener from
// another thread.

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/http.hpp"
#include "net/router.hpp"
#include "net/tcp.hpp"

namespace slices::net {

/// Hard cap on one request's wire size (headers + body).
inline constexpr std::size_t kMaxRequestBytes = 4 * 1024 * 1024;

class HttpServer {
 public:
  /// Bind 127.0.0.1:`port` (0 = ephemeral). The router must outlive the
  /// server. Returned by pointer because the server owns an atomic stop
  /// flag shared with other threads and must not move. Errors:
  /// unavailable (bind/listen failure).
  [[nodiscard]] static Result<std::unique_ptr<HttpServer>> bind(std::shared_ptr<Router> router,
                                                                std::uint16_t port = 0);

  /// The bound port.
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Accept and fully serve exactly one connection. Malformed requests
  /// get a 400; oversized ones a 400 after a bounded read. Returns an
  /// error only when the listener itself failed (e.g. stopped).
  [[nodiscard]] Result<void> serve_one();

  /// Serve until stop(); returns the number of connections handled.
  std::uint64_t run();

  /// Unblock run()/serve_one() by closing the listener (thread-safe to
  /// call from another thread).
  void stop() noexcept {
    stopping_.store(true, std::memory_order_relaxed);
    listener_.close();
  }

  [[nodiscard]] std::uint64_t connections_served() const noexcept { return served_; }

 private:
  HttpServer(std::shared_ptr<Router> router, TcpListener listener) noexcept
      : router_(std::move(router)), listener_(std::move(listener)) {}

  std::shared_ptr<Router> router_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::uint64_t served_ = 0;
};

/// Blocking HTTP client for tests/tools: one request over a fresh
/// loopback connection.
[[nodiscard]] Result<Response> http_request(std::uint16_t port, const Request& request);

}  // namespace slices::net
