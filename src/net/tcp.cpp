#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace slices::net {
namespace {

Error sys_error(std::string what) {
  return make_error(Errc::unavailable, what + ": " + std::strerror(errno));
}

}  // namespace

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<void> TcpConnection::send_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

Result<std::string> TcpConnection::receive_some(std::size_t max_bytes) {
  std::string buffer(max_bytes, '\0');
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buffer.data(), buffer.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("recv");
    }
    buffer.resize(static_cast<std::size_t>(n));
    return buffer;
  }
}

void TcpConnection::shutdown_write() noexcept { ::shutdown(fd_.get(), SHUT_WR); }

Result<TcpListener> TcpListener::bind_loopback(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    return sys_error("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    return sys_error("bind");
  }
  if (::listen(fd.get(), 16) != 0) return sys_error("listen");

  // Recover the actual port for ephemeral binds.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return sys_error("getsockname");
  }
  return TcpListener(std::move(fd), ntohs(bound.sin_port));
}

void TcpListener::close() noexcept {
  if (fd_.valid()) {
    // Wake any thread blocked in accept(): shutdown on a listening
    // socket makes accept return (EINVAL); closing alone would leave
    // that thread blocked forever. The fd itself is NOT closed here —
    // freeing the descriptor number while another thread still uses it
    // would let the kernel reuse it for an unrelated socket. The
    // destructor (which runs after any accept loop has been joined)
    // releases it.
    ::shutdown(fd_.get(), SHUT_RDWR);
  }
}

Result<TcpConnection> TcpListener::accept_one() {
  while (true) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      // Request/response exchanges are small; disable Nagle for latency.
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpConnection(FdHandle(client));
    }
    if (errno == EINTR) continue;
    return sys_error("accept");
  }
}

Result<TcpConnection> connect_loopback(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  while (true) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpConnection(std::move(fd));
    }
    if (errno == EINTR) continue;
    return sys_error("connect");
  }
}

}  // namespace slices::net
