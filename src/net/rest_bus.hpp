#pragma once
// In-process REST bus.
//
// The testbed in the paper connects three domain controllers to the
// end-to-end orchestrator via REST over an IP network. Here services
// (routers) register under a name ("ran", "transport", "cloud") and
// clients issue requests by service name.
//
// Hot-path exchanges dispatch straight into the service router; every
// wire_check_interval-th call per service instead round-trips through
// the real HTTP/1.1 codec — encode -> parse -> dispatch -> encode ->
// parse — so the wire format stays continuously verified without paying
// codec cost on every monitoring exchange. Traffic counters are exact
// on both paths (the fast path accounts the bytes encode() would have
// produced), and both paths return byte-identical responses.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "json/value.hpp"
#include "net/http.hpp"
#include "net/router.hpp"

namespace slices::net {

/// Per-service traffic counters, exposed for the dashboard.
struct BusStats {
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;     ///< 2xx
  std::uint64_t responses_error = 0;  ///< everything else
  std::uint64_t bytes_tx = 0;         ///< request wire bytes
  std::uint64_t bytes_rx = 0;         ///< response wire bytes
};

/// Name-addressed registry of REST services with a synchronous client.
class RestBus {
 public:
  /// Default sampling: one call in 64 per service crosses the full
  /// HTTP/1.1 codec; the rest take the direct-dispatch fast path.
  static constexpr std::uint64_t kDefaultWireCheckInterval = 64;

  /// Register a service; replaces any previous router under `name`.
  /// Traffic counters of a previously registered `name` are kept.
  void register_service(std::string name, std::shared_ptr<Router> router);

  /// Register a remote service reachable over a real loopback socket
  /// (an HttpServer in another thread or another OS process). Calls to
  /// `name` issue one blocking HTTP/1.1 request per exchange; byte
  /// counters stay exact. Replaces any in-process router under `name`
  /// (and vice versa — register_service switches the entry back to
  /// direct dispatch).
  void register_remote(std::string name, std::uint16_t port);

  /// Remove a service (subsequent calls see Errc::unavailable). Its
  /// traffic counters remain visible in stats().
  void unregister_service(const std::string& name);

  [[nodiscard]] bool has_service(const std::string& name) const noexcept;

  /// Issue `request` to service `name`. Every wire_check_interval-th
  /// call per service crosses the full wire codec; others dispatch
  /// directly. Errors: unavailable (unknown service) or protocol_error
  /// (codec, on sampled calls).
  [[nodiscard]] Result<Response> call(const std::string& name, const Request& request);

  /// How often the wire codec is exercised: every `interval`-th call
  /// per service (1 = every call, restoring the always-encode
  /// behaviour). Must be >= 1.
  void set_wire_check_interval(std::uint64_t interval) noexcept {
    wire_check_interval_ = interval == 0 ? 1 : interval;
  }
  [[nodiscard]] std::uint64_t wire_check_interval() const noexcept {
    return wire_check_interval_;
  }

  /// Convenience: JSON request/response round trip. Non-2xx responses
  /// come back as errors carrying the response body as message.
  [[nodiscard]] Result<json::Value> call_json(const std::string& name, Method method,
                                              const std::string& target,
                                              const json::Value& body);
  /// GET returning parsed JSON.
  [[nodiscard]] Result<json::Value> get_json(const std::string& name, const std::string& target);

  /// Per-service traffic counters (includes unregistered services that
  /// saw traffic). Returned by value: the bus keeps router and counters
  /// in one combined entry internally.
  [[nodiscard]] std::map<std::string, BusStats> stats() const;

 private:
  /// Router + counters in one map node: call() resolves a service with
  /// a single string lookup.
  struct ServiceEntry {
    std::shared_ptr<Router> router;  ///< nullptr once unregistered/remote
    std::uint16_t remote_port = 0;   ///< != 0: reach over a loopback socket
    BusStats stats;
  };

  std::map<std::string, ServiceEntry> services_;
  std::uint64_t wire_check_interval_ = kDefaultWireCheckInterval;
  std::string json_buffer_;  ///< reused request-body serialization buffer
};

}  // namespace slices::net
