#pragma once
// In-process REST bus.
//
// The testbed in the paper connects three domain controllers to the
// end-to-end orchestrator via REST over an IP network. Here services
// (routers) register under a name ("ran", "transport", "cloud") and
// clients issue requests by service name. Each exchange is round-tripped
// through the real HTTP/1.1 codec — encode -> parse -> dispatch ->
// encode -> parse — so the full wire path is exercised while keeping the
// system deterministic and self-contained.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "json/value.hpp"
#include "net/http.hpp"
#include "net/router.hpp"

namespace slices::net {

/// Per-service traffic counters, exposed for the dashboard.
struct BusStats {
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;     ///< 2xx
  std::uint64_t responses_error = 0;  ///< everything else
  std::uint64_t bytes_tx = 0;         ///< request wire bytes
  std::uint64_t bytes_rx = 0;         ///< response wire bytes
};

/// Name-addressed registry of REST services with a synchronous client.
class RestBus {
 public:
  /// Register a service; replaces any previous router under `name`.
  void register_service(std::string name, std::shared_ptr<Router> router);

  /// Remove a service (subsequent calls see Errc::unavailable).
  void unregister_service(const std::string& name);

  [[nodiscard]] bool has_service(const std::string& name) const noexcept;

  /// Issue `request` to service `name` through the wire codec.
  /// Errors: unavailable (unknown service) or protocol_error (codec).
  [[nodiscard]] Result<Response> call(const std::string& name, const Request& request);

  /// Convenience: JSON request/response round trip. Non-2xx responses
  /// come back as errors carrying the response body as message.
  [[nodiscard]] Result<json::Value> call_json(const std::string& name, Method method,
                                              const std::string& target,
                                              const json::Value& body);
  /// GET returning parsed JSON.
  [[nodiscard]] Result<json::Value> get_json(const std::string& name, const std::string& target);

  [[nodiscard]] const std::map<std::string, BusStats>& stats() const noexcept { return stats_; }

 private:
  std::map<std::string, std::shared_ptr<Router>> services_;
  std::map<std::string, BusStats> stats_;
};

}  // namespace slices::net
