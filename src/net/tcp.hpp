#pragma once
// Minimal RAII TCP primitives for the HTTP server/client.
//
// The in-process RestBus covers simulation runs; HttpServer (built on
// these primitives) exposes the very same routers over real sockets so
// the dashboard can be driven by external tools. Blocking I/O,
// IPv4 loopback-oriented, single-threaded accept loop — deliberately
// simple and fully owned (no external dependencies).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace slices::net {

/// RAII file-descriptor handle (move-only).
class FdHandle {
 public:
  FdHandle() noexcept = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Give up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Close now (idempotent).
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream with send-all / bounded-receive helpers.
class TcpConnection {
 public:
  explicit TcpConnection(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Write the whole buffer; Errc::unavailable on peer reset.
  [[nodiscard]] Result<void> send_all(std::string_view data);

  /// Read up to `max_bytes` (returns what arrived; empty = EOF).
  [[nodiscard]] Result<std::string> receive_some(std::size_t max_bytes = 64 * 1024);

  /// Half-close the write side (signals end of request to the peer).
  void shutdown_write() noexcept;

 private:
  FdHandle fd_;
};

/// A listening IPv4 TCP socket.
class TcpListener {
 public:
  /// Bind to 127.0.0.1:`port` (0 = ephemeral) and listen. Errors:
  /// unavailable with errno detail.
  [[nodiscard]] static Result<TcpListener> bind_loopback(std::uint16_t port);

  /// The actually bound port (useful after binding port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept one connection (blocking). Errors: unavailable when the
  /// listener was closed from another thread (clean shutdown path).
  [[nodiscard]] Result<TcpConnection> accept_one();

  /// Stop accepting: a blocked accept_one() (possibly in another
  /// thread) fails immediately and new connects are refused.
  /// Implemented as shutdown() — merely closing the fd does NOT unblock
  /// a pending accept on Linux, and freeing the descriptor number under
  /// a racing thread is unsafe; the destructor releases the fd.
  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

 private:
  TcpListener(FdHandle fd, std::uint16_t port) noexcept : fd_(std::move(fd)), port_(port) {}

  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:`port`. Errors: unavailable.
[[nodiscard]] Result<TcpConnection> connect_loopback(std::uint16_t port);

}  // namespace slices::net
