#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace slices::net {
namespace {

constexpr std::string_view kCrlf = "\r\n";

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

Error protocol_error(std::string why) {
  return make_error(Errc::protocol_error, "http: " + std::move(why));
}

/// Shared head parsing: splits start line + header fields + body, checks
/// Content-Length. Returns the start line; fills headers/body.
Result<std::string_view> split_message(std::string_view wire, Headers& headers,
                                       std::string& body) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return protocol_error("missing header terminator");
  std::string_view head = wire.substr(0, head_end);
  std::string_view rest = wire.substr(head_end + 4);

  const std::size_t line_end = head.find(kCrlf);
  const std::string_view start_line = head.substr(0, line_end);
  std::string_view field_block =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);

  while (!field_block.empty()) {
    const std::size_t eol = field_block.find(kCrlf);
    const std::string_view line =
        eol == std::string_view::npos ? field_block : field_block.substr(0, eol);
    field_block = eol == std::string_view::npos ? std::string_view{} : field_block.substr(eol + 2);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return protocol_error("header field without ':'");
    const std::string_view name = trim(line.substr(0, colon));
    if (name.empty()) return protocol_error("empty header field name");
    headers.insert_or_assign(std::string(name), std::string(trim(line.substr(colon + 1))));
  }

  const auto it = headers.find("Content-Length");
  if (it != headers.end()) {
    std::size_t length = 0;
    const std::string& v = it->second;
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), length);
    if (ec != std::errc{} || ptr != v.data() + v.size())
      return protocol_error("bad Content-Length");
    if (rest.size() != length) return protocol_error("body length mismatch");
    body.assign(rest);
  } else if (!rest.empty()) {
    return protocol_error("body without Content-Length");
  }
  return start_line;
}

void encode_head(std::string& out, const Headers& headers, std::size_t body_size) {
  for (const auto& [name, value] : headers) {
    if (headers.key_comp()(name, "Content-Length") == false &&
        headers.key_comp()("Content-Length", name) == false) {
      continue;  // emitted canonically below
    }
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
  }
  out += "Content-Length: ";
  out += std::to_string(body_size);
  out += kCrlf;
  out += kCrlf;
}

std::size_t decimal_digits(std::size_t v) noexcept {
  std::size_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

/// Byte count encode_head() would append. Must mirror it exactly.
std::size_t encoded_head_size(const Headers& headers, std::size_t body_size) noexcept {
  std::size_t n = 0;
  for (const auto& [name, value] : headers) {
    if (headers.key_comp()(name, "Content-Length") == false &&
        headers.key_comp()("Content-Length", name) == false) {
      continue;
    }
    n += name.size() + 2 + value.size() + 2;
  }
  n += 16 + decimal_digits(body_size) + 2 + 2;  // "Content-Length: " N CRLF CRLF
  return n;
}

}  // namespace

std::optional<Method> parse_method(std::string_view token) noexcept {
  if (token == "GET") return Method::get;
  if (token == "POST") return Method::post;
  if (token == "PUT") return Method::put;
  if (token == "DELETE") return Method::del;
  if (token == "PATCH") return Method::patch;
  return std::nullopt;
}

std::string_view reason_phrase(Status s) noexcept {
  switch (s) {
    case Status::ok: return "OK";
    case Status::created: return "Created";
    case Status::no_content: return "No Content";
    case Status::bad_request: return "Bad Request";
    case Status::not_found: return "Not Found";
    case Status::conflict: return "Conflict";
    case Status::unprocessable: return "Unprocessable Entity";
    case Status::too_many_requests: return "Too Many Requests";
    case Status::internal_error: return "Internal Server Error";
    case Status::service_unavailable: return "Service Unavailable";
  }
  return "Unknown";
}

Status status_from_errc(Errc code) noexcept {
  switch (code) {
    case Errc::invalid_argument: return Status::bad_request;
    case Errc::not_found: return Status::not_found;
    case Errc::conflict: return Status::conflict;
    case Errc::insufficient_capacity: return Status::conflict;
    case Errc::sla_unsatisfiable: return Status::unprocessable;
    case Errc::unavailable: return Status::service_unavailable;
    case Errc::protocol_error: return Status::bad_request;
    case Errc::timeout: return Status::service_unavailable;
    case Errc::internal: return Status::internal_error;
  }
  return Status::internal_error;
}

Errc errc_from_status(Status s) noexcept {
  switch (s) {
    case Status::bad_request: return Errc::invalid_argument;
    case Status::not_found: return Errc::not_found;
    case Status::conflict: return Errc::conflict;
    case Status::unprocessable: return Errc::sla_unsatisfiable;
    case Status::too_many_requests: return Errc::unavailable;
    case Status::service_unavailable: return Errc::unavailable;
    default: return Errc::internal;
  }
}

bool CaseInsensitiveLess::operator()(std::string_view a, std::string_view b) const noexcept {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](char x, char y) { return ascii_lower(x) < ascii_lower(y); });
}

std::string Request::encode() const {
  std::string out;
  out += to_string(method);
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\n";
  encode_head(out, headers, body.size());
  out += body;
  return out;
}

std::size_t Request::encoded_size() const noexcept {
  return to_string(method).size() + 1 + target.size() + 11  // " HTTP/1.1\r\n"
         + encoded_head_size(headers, body.size()) + body.size();
}

std::string Response::encode() const {
  std::string out;
  out += "HTTP/1.1 ";
  out += std::to_string(static_cast<int>(status));
  out += ' ';
  out += reason_phrase(status);
  out += kCrlf;
  encode_head(out, headers, body.size());
  out += body;
  return out;
}

std::size_t Response::encoded_size() const noexcept {
  return 9  // "HTTP/1.1 "
         + decimal_digits(static_cast<std::size_t>(static_cast<int>(status))) + 1 +
         reason_phrase(status).size() + 2 + encoded_head_size(headers, body.size()) +
         body.size();
}

Response Response::json(Status status, std::string body_json) {
  Response r;
  r.status = status;
  r.headers.insert_or_assign("Content-Type", "application/json");
  r.body = std::move(body_json);
  return r;
}

Response Response::from_error(const Error& e) {
  std::string body = "{\"error\":\"";
  body += to_string(e.code);
  body += "\",\"message\":\"";
  // Escape minimal set for a safe JSON string.
  for (const char c : e.message) {
    if (c == '"' || c == '\\') body.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) body.push_back(c);
  }
  body += "\"}";
  return json(status_from_errc(e.code), std::move(body));
}

Result<Request> parse_request(std::string_view wire) {
  Request req;
  Result<std::string_view> start = split_message(wire, req.headers, req.body);
  if (!start.ok()) return start.error();
  const std::string_view line = start.value();

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1)
    return protocol_error("malformed request line");
  const std::optional<Method> m = parse_method(line.substr(0, sp1));
  if (!m) return protocol_error("unsupported method");
  req.method = *m;
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (req.target.empty() || req.target.front() != '/')
    return protocol_error("target must be origin-form");
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0")
    return protocol_error("unsupported HTTP version");
  return req;
}

Result<Response> parse_response(std::string_view wire) {
  Response resp;
  Result<std::string_view> start = split_message(wire, resp.headers, resp.body);
  if (!start.ok()) return start.error();
  const std::string_view line = start.value();

  if (line.substr(0, 5) != "HTTP/") return protocol_error("malformed status line");
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return protocol_error("malformed status line");
  const std::string_view code_sv = line.substr(sp1 + 1, 3);
  int code = 0;
  const auto [ptr, ec] = std::from_chars(code_sv.data(), code_sv.data() + code_sv.size(), code);
  if (ec != std::errc{} || code < 100 || code > 599) return protocol_error("bad status code");
  resp.status = static_cast<Status>(code);
  return resp;
}

}  // namespace slices::net
