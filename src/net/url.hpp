#pragma once
// Origin-form URL target parsing: path segmentation, query-string
// decoding and percent-decoding, as used by the REST routers.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace slices::net {

/// A parsed request target: decoded path segments plus query parameters.
struct Target {
  std::vector<std::string> segments;           ///< "/a/b/c" -> {"a","b","c"}
  std::map<std::string, std::string> query;    ///< "?x=1&y=2" -> {{"x","1"},{"y","2"}}

  /// Rebuild the canonical path ("/a/b/c"; "/" when empty).
  [[nodiscard]] std::string path() const;
};

/// Percent-decode a component; rejects truncated/invalid %XX sequences.
[[nodiscard]] Result<std::string> percent_decode(std::string_view s);

/// Percent-encode everything outside unreserved characters.
[[nodiscard]] std::string percent_encode(std::string_view s);

/// Parse an origin-form target ("/slices/7?verbose=1"). Rejects targets
/// not starting with '/', empty interior segments and bad escapes.
[[nodiscard]] Result<Target> parse_target(std::string_view target);

}  // namespace slices::net
