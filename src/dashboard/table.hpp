#pragma once
// Fixed-width ASCII table renderer used by the dashboard panels.

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace slices::dashboard {

/// Accumulates rows and renders a boxed, column-aligned table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Format a double with fixed precision (column helper).
  [[nodiscard]] static std::string num(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Render with +---+ separators.
  [[nodiscard]] std::string render() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }

    std::string rule = "+";
    for (const std::size_t w : width) rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    const auto render_row = [&](const std::vector<std::string>& row) {
      std::string out = "|";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
      }
      return out + "\n";
    };

    std::string out = rule + render_row(headers_) + rule;
    for (const auto& row : rows_) out += render_row(row);
    out += rule;
    return out;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slices::dashboard
