#include "dashboard/dashboard.hpp"

#include "dashboard/table.hpp"

namespace slices::dashboard {

std::string Dashboard::render_slices() const {
  TextTable table({"slice", "tenant", "vertical", "state", "contracted Mb/s",
                   "reserved Mb/s", "violations", "earned", "penalties"});
  for (const core::SliceRecord* record : testbed_->orchestrator->all_slices()) {
    const core::SliceLedgerEntry* ledger =
        testbed_->orchestrator->ledger().find(record->id);
    table.add_row({std::to_string(record->id.value()),
                   record->spec.tenant_name,
                   std::string(traffic::to_string(record->spec.vertical)),
                   std::string(core::to_string(record->state)),
                   TextTable::num(record->spec.expected_throughput.as_mbps()),
                   TextTable::num(record->reserved.as_mbps()),
                   std::to_string(record->violation_epochs),
                   ledger == nullptr ? "0.00" : TextTable::num(ledger->earned.as_units(), 2),
                   ledger == nullptr ? "0.00"
                                     : TextTable::num(ledger->penalties.as_units(), 2)});
  }
  return "== Network slices ==\n" + table.render();
}

std::string Dashboard::render_domains() const {
  std::string out = "== Domain utilization ==\n";

  TextTable cells({"cell", "total PRB", "reserved PRB", "free PRB"});
  for (const CellId id : {testbed_->cell_a, testbed_->cell_b}) {
    const ran::Cell* cell = testbed_->ran.find_cell(id);
    if (cell == nullptr) continue;
    cells.add_row({cell->name(), std::to_string(cell->total_prbs().value),
                   std::to_string(cell->reserved_prbs().value),
                   std::to_string(cell->unreserved_prbs().value)});
  }
  out += cells.render();

  TextTable links({"link", "tech", "nominal Mb/s", "effective Mb/s", "reserved Mb/s",
                   "delay ms"});
  const transport::TransportController& tc = *testbed_->transport;
  for (const transport::Link& link : tc.topology().links()) {
    const transport::Node* from = tc.topology().find_node(link.from);
    const transport::Node* to = tc.topology().find_node(link.to);
    links.add_row({from->name + "->" + to->name,
                   std::string(transport::to_string(link.technology)),
                   TextTable::num(link.nominal_capacity.as_mbps(), 0),
                   TextTable::num(tc.fading().effective_capacity(link).as_mbps(), 0),
                   TextTable::num(tc.reserved_on(link.id).as_mbps(), 0),
                   TextTable::num(link.delay.as_millis(), 1)});
  }
  out += links.render();

  TextTable dcs({"datacenter", "kind", "vCPU used", "vCPU total", "stacks"});
  for (const cloud::Datacenter* dc : testbed_->cloud.datacenters()) {
    dcs.add_row({dc->name(), std::string(cloud::to_string(dc->kind())),
                 TextTable::num(dc->used_capacity().vcpus, 0),
                 TextTable::num(dc->total_capacity().vcpus, 0),
                 std::to_string(dc->vm_count())});
  }
  out += dcs.render();
  return out;
}

std::string Dashboard::render_headline() const {
  const core::OrchestratorSummary s = testbed_->orchestrator->summary();
  TextTable table({"metric", "value"});
  table.add_row({"active slices", std::to_string(s.active_slices)});
  table.add_row({"admitted / rejected",
                 std::to_string(s.admitted_total) + " / " + std::to_string(s.rejected_total)});
  table.add_row({"contracted Mb/s", TextTable::num(s.contracted_total.as_mbps())});
  table.add_row({"reserved Mb/s", TextTable::num(s.reserved_total.as_mbps())});
  table.add_row({"multiplexing gain", TextTable::num(s.multiplexing_gain, 3)});
  table.add_row({"earned", TextTable::num(s.earned.as_units(), 2)});
  table.add_row({"penalties", TextTable::num(s.penalties.as_units(), 2)});
  table.add_row({"net revenue", TextTable::num(s.net.as_units(), 2)});
  table.add_row({"violation epochs", std::to_string(s.violation_epochs)});
  table.add_row({"reconfigurations", std::to_string(s.reconfigurations)});
  return "== Overbooking gains vs penalties ==\n" + table.render();
}

std::string Dashboard::render_bus() const {
  TextTable table({"service", "requests", "2xx", "errors", "tx bytes", "rx bytes"});
  for (const auto& [name, stats] : testbed_->bus.stats()) {
    table.add_row({name, std::to_string(stats.requests), std::to_string(stats.responses_ok),
                   std::to_string(stats.responses_error), std::to_string(stats.bytes_tx),
                   std::to_string(stats.bytes_rx)});
  }
  return "== REST bus ==\n" + table.render();
}

std::string Dashboard::render_health() const {
  const json::Value health = testbed_->orchestrator->health_json();
  const auto field = [&](std::string_view key) -> const json::Value* {
    return health.find(key);
  };
  TextTable table({"check", "value"});
  if (const json::Value* status = field("status"); status != nullptr && status->is_string()) {
    table.add_row({"status", status->as_string()});
  }
  if (const json::Value* components = field("components");
      components != nullptr && components->is_object()) {
    for (const auto& [name, up] : components->as_object()) {
      table.add_row({name, up.is_bool() && up.as_bool() ? "up" : "down"});
    }
  }
  if (const json::Value* journal = field("journal");
      journal != nullptr && journal->is_object()) {
    const json::Value* lag = journal->find("lag_records");
    table.add_row({"journal lag",
                   lag != nullptr && lag->is_number()
                       ? std::to_string(static_cast<std::uint64_t>(lag->as_number()))
                       : "detached"});
  }
  if (const json::Value* epoch = field("last_epoch");
      epoch != nullptr && epoch->is_object()) {
    const json::Value* t = epoch->find("t_s");
    if (t != nullptr && t->is_number()) {
      table.add_row({"last epoch (h)", TextTable::num(t->as_number() / 3600.0, 2)});
    }
    const json::Value* dur = epoch->find("duration_us");
    if (dur != nullptr && dur->is_number()) {
      table.add_row({"epoch wall (us)",
                     std::to_string(static_cast<std::int64_t>(dur->as_number()))});
    }
  }
  if (const json::Value* trace = field("trace"); trace != nullptr && trace->is_object()) {
    const json::Value* spans = trace->find("spans");
    const json::Value* enabled = trace->find("enabled");
    std::string summary = enabled != nullptr && enabled->is_bool() && enabled->as_bool()
                              ? "on" : "off";
    if (spans != nullptr && spans->is_number()) {
      summary += ", " + std::to_string(static_cast<std::uint64_t>(spans->as_number())) +
                 " spans";
    }
    table.add_row({"tracing", summary});
  }
  return "== Health ==\n" + table.render();
}

std::string Dashboard::render_events(std::size_t count) const {
  TextTable table({"t (h)", "slice", "event", "detail"});
  for (const core::Event& event : testbed_->orchestrator->events().recent(count)) {
    table.add_row({TextTable::num(event.time.as_hours(), 2),
                   std::to_string(event.slice.value()),
                   std::string(core::to_string(event.kind)), event.detail});
  }
  return "== Recent events ==\n" + table.render();
}

std::string Dashboard::render_federation(const json::Value& metrics) {
  const auto num = [](const json::Value* section, const char* key) -> double {
    if (section == nullptr) return 0.0;
    const json::Value* v = section->find(key);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };

  std::string out = "== Federation ==\n";
  if (const json::Value* broker = metrics.find("broker"); broker != nullptr) {
    const json::Value* gauges = broker->find("gauges");
    TextTable table({"broker metric", "value"});
    table.add_row({"submitted", TextTable::num(num(gauges, "federation.submitted"), 0)});
    table.add_row({"placed local / remote",
                   TextTable::num(num(gauges, "federation.placed_local"), 0) + " / " +
                       TextTable::num(num(gauges, "federation.placed_remote"), 0)});
    table.add_row({"edge rejected", TextTable::num(num(gauges, "federation.edge_rejected"), 0)});
    table.add_row({"no region", TextTable::num(num(gauges, "federation.rejected_no_region"), 0)});
    table.add_row({"deferred total / queued",
                   TextTable::num(num(gauges, "federation.deferred_total"), 0) + " / " +
                       TextTable::num(num(gauges, "federation.deferred_depth"), 0)});
    table.add_row({"backbone reserved Mb/s",
                   TextTable::num(num(gauges, "federation.backbone_reserved_mbps"))});
    table.add_row({"backbone leases",
                   TextTable::num(num(gauges, "federation.backbone_leases"), 0)});
    out += table.render();
  }

  if (const json::Value* regions = metrics.find("regions");
      regions != nullptr && regions->is_object()) {
    TextTable table({"region", "active", "contracted Mb/s", "reserved Mb/s",
                     "headroom Mb/s", "violations", "penalty cents"});
    for (const auto& [name, doc] : regions->as_object()) {
      if (!doc.is_object()) {
        table.add_row({name, "-", "-", "-", "-", "-", "-"});  // unreachable edge
        continue;
      }
      const json::Value* gauges = doc.find("gauges");
      const json::Value* counters = doc.find("counters");
      table.add_row({name,
                     TextTable::num(num(gauges, "orchestrator.active_slices"), 0),
                     TextTable::num(num(gauges, "orchestrator.contracted_mbps")),
                     TextTable::num(num(gauges, "orchestrator.reserved_mbps")),
                     TextTable::num(num(gauges, "orchestrator.slo.headroom_mbps")),
                     TextTable::num(num(counters, "orchestrator.slo.violation_epochs"), 0),
                     TextTable::num(num(counters, "orchestrator.slo.penalty_cents"), 0)});
    }
    out += table.render();
  }
  const std::string mobility = render_mobility(metrics);
  if (!mobility.empty()) out += mobility;
  return out;
}

std::string Dashboard::render_mobility(const json::Value& metrics) {
  const auto num = [](const json::Value* section, const char* key) -> double {
    if (section == nullptr) return 0.0;
    const json::Value* v = section->find(key);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };

  const json::Value* broker = metrics.find("broker");
  const json::Value* broker_gauges = broker != nullptr ? broker->find("gauges") : nullptr;
  const double roam_attempts = num(broker_gauges, "federation.roam_attempts");
  const double roam_admitted = num(broker_gauges, "federation.roam_admitted");
  const double roam_dropped = num(broker_gauges, "federation.roam_dropped");

  TextTable table({"region", "HO attempts", "HO success", "HO drops", "success %"});
  double total_attempts = 0.0;
  if (const json::Value* regions = metrics.find("regions");
      regions != nullptr && regions->is_object()) {
    for (const auto& [name, doc] : regions->as_object()) {
      if (!doc.is_object()) continue;  // unreachable edge
      const json::Value* counters = doc.find("counters");
      const double attempts = num(counters, "ran.handover.attempts");
      if (attempts <= 0.0) continue;  // region without mobile UEs
      total_attempts += attempts;
      const double successes = num(counters, "ran.handover.success");
      table.add_row({name, TextTable::num(attempts, 0), TextTable::num(successes, 0),
                     TextTable::num(num(counters, "ran.handover.drops"), 0),
                     TextTable::num(100.0 * successes / attempts, 1)});
    }
  }
  if (total_attempts <= 0.0 && roam_attempts <= 0.0) return {};  // no mobility signal

  std::string out = "== Mobility ==\n" + table.render();
  TextTable roam({"roam metric", "value"});
  roam.add_row({"attempts", TextTable::num(roam_attempts, 0)});
  roam.add_row({"admitted", TextTable::num(roam_admitted, 0)});
  roam.add_row({"dropped", TextTable::num(roam_dropped, 0)});
  out += roam.render();
  return out;
}

std::string Dashboard::render_all() const {
  return render_headline() + "\n" + render_slices() + "\n" + render_domains() + "\n" +
         render_events() + "\n" + render_bus() + "\n" + render_health();
}

json::Value Dashboard::snapshot() const {
  const core::OrchestratorSummary s = testbed_->orchestrator->summary();
  json::Object headline;
  headline.emplace("active_slices", static_cast<double>(s.active_slices));
  headline.emplace("admitted_total", static_cast<double>(s.admitted_total));
  headline.emplace("rejected_total", static_cast<double>(s.rejected_total));
  headline.emplace("contracted_mbps", s.contracted_total.as_mbps());
  headline.emplace("reserved_mbps", s.reserved_total.as_mbps());
  headline.emplace("multiplexing_gain", s.multiplexing_gain);
  headline.emplace("earned", s.earned.as_units());
  headline.emplace("penalties", s.penalties.as_units());
  headline.emplace("net_revenue", s.net.as_units());
  headline.emplace("violation_epochs", static_cast<double>(s.violation_epochs));

  json::Array slice_rows;
  for (const core::SliceRecord* record : testbed_->orchestrator->all_slices()) {
    json::Object row;
    row.emplace("slice", static_cast<double>(record->id.value()));
    row.emplace("tenant", record->spec.tenant_name);
    row.emplace("vertical", std::string(traffic::to_string(record->spec.vertical)));
    row.emplace("state", std::string(core::to_string(record->state)));
    row.emplace("contracted_mbps", record->spec.expected_throughput.as_mbps());
    row.emplace("reserved_mbps", record->reserved.as_mbps());
    row.emplace("violation_epochs", static_cast<double>(record->violation_epochs));
    slice_rows.push_back(std::move(row));
  }

  json::Object root;
  root.emplace("headline", std::move(headline));
  root.emplace("slices", std::move(slice_rows));
  root.emplace("health", testbed_->orchestrator->health_json());
  root.emplace("telemetry", testbed_->registry.snapshot());
  return root;
}

}  // namespace slices::dashboard
