#pragma once
// The control dashboard of the demo, rendered as text/JSON.
//
// "All operations are displayed in a control dashboard that shows the
// installed network slices resource utilization as well as the achieved
// multiplexing gains." The Dashboard reads orchestrator + controller
// state and renders the same panels: the slice table, per-domain
// utilization, and the gains-vs-penalties headline.

#include <string>

#include "core/testbed.hpp"
#include "json/value.hpp"

namespace slices::dashboard {

/// Renders panels from a live testbed. Non-owning; the testbed must
/// outlive the dashboard.
class Dashboard {
 public:
  explicit Dashboard(const core::Testbed* testbed) : testbed_(testbed) {}

  /// The slice table: one row per request ever submitted.
  [[nodiscard]] std::string render_slices() const;

  /// Per-domain utilization: cells (PRBs), links (reserved/effective),
  /// datacenters (vCPUs).
  [[nodiscard]] std::string render_domains() const;

  /// The headline panel: multiplexing gain, earned vs penalties, net.
  [[nodiscard]] std::string render_headline() const;

  /// REST-bus traffic counters (the controller <-> orchestrator feed).
  [[nodiscard]] std::string render_bus() const;

  /// Liveness panel: the orchestrator's /healthz document as a table
  /// (status, component reachability, journal lag, last epoch, tracer).
  [[nodiscard]] std::string render_health() const;

  /// The most recent orchestration events (the demo's activity feed).
  [[nodiscard]] std::string render_events(std::size_t count = 12) const;

  /// Federation pane, rendered from a broker /federation/metrics
  /// document (GET it from the facade or Broker::federation_metrics_json):
  /// broker placement/SLO instruments plus a per-region roll-up of each
  /// edge's registry export. Static because the document comes from the
  /// broker, not from this dashboard's single-region testbed.
  [[nodiscard]] static std::string render_federation(const json::Value& metrics);

  /// Mobility pane from the same merged /federation/metrics document:
  /// per-region handover attempt/success/drop counters (the edges'
  /// ran.handover.* instruments) plus the broker's inter-region roam
  /// funnel. Empty string when the run carries no mobility signal, so
  /// static-UE deployments render exactly as before.
  [[nodiscard]] static std::string render_mobility(const json::Value& metrics);

  /// All panels concatenated.
  [[nodiscard]] std::string render_all() const;

  /// Machine-readable snapshot of everything the panels show.
  [[nodiscard]] json::Value snapshot() const;

 private:
  const core::Testbed* testbed_;
};

}  // namespace slices::dashboard
