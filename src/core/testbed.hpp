#pragma once
// The Fig. 2 testbed, in software.
//
// Builds the full end-to-end deployment the demo runs on: two 20 MHz
// MOCN eNBs, a transport network with parallel mmWave and µwave wireless
// links into an OpenFlow switch and fiber toward the edge and core
// datacenters, two OpenStack-style datacenters, the EPC manager, the
// REST bus with every controller registered, and the orchestrator on
// top. One call gives benches/examples a ready system.

#include <cstdint>
#include <memory>

#include "cloud/controller.hpp"
#include "common/thread_pool.hpp"
#include "core/orchestrator.hpp"
#include "epc/epc.hpp"
#include "net/rest_bus.hpp"
#include "ran/controller.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "transport/controller.hpp"

namespace slices::core {

/// A fully wired testbed. Members are declared in dependency order so
/// destruction is safe (orchestrator first, substrates last).
struct Testbed {
  sim::Simulator simulator;
  telemetry::MonitorRegistry registry;
  /// Epoch-serving workers; created when config.epoch_threads > 1 and
  /// attached to the RAN and transport controllers.
  std::unique_ptr<ThreadPool> pool;
  net::RestBus bus;
  ran::RanController ran{&registry};
  cloud::CloudController cloud{&registry};
  std::unique_ptr<transport::TransportController> transport;
  std::unique_ptr<epc::EpcManager> epc;
  std::unique_ptr<Orchestrator> orchestrator;

  // Well-known handles of the Fig. 2 layout.
  NodeId ran_gateway;
  NodeId switch_node;      ///< the programmable (PF5240-like) switch
  NodeId edge_gateway;
  NodeId core_gateway;
  LinkId mmwave_uplink;    ///< RAN gw -> switch over mmWave
  LinkId uwave_uplink;     ///< RAN gw -> switch over µwave (backup)
  DatacenterId edge_dc;
  DatacenterId core_dc;
  CellId cell_a;
  CellId cell_b;
};

/// Build the Fig. 2 testbed. `seed` drives every stochastic process
/// (fading; traffic models are seeded by the caller). The orchestrator
/// is constructed with `config` and started (periodic loop armed).
[[nodiscard]] std::unique_ptr<Testbed> make_testbed(std::uint64_t seed,
                                                    OrchestratorConfig config = {});

}  // namespace slices::core
