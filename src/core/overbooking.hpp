#pragma once
// The overbooking engine — the heart of the paper.
//
// "Allocated network slices might be dynamically re-configured
// (overbooked) to accommodate new slice requests" (paper §3). The engine
// keeps one DemandEstimator per live slice; each orchestration cycle it
// proposes a reservation for every slice:
//
//   target = clamp( headroom × upper_bound(q, horizon),
//                   floor_fraction × contracted, contracted )
//
// where upper_bound comes from the forecast plus the residual-quantile
// safety margin. The difference (contracted − target) is the reclaimed
// capacity that lets additional slices in; the risk quantile q is the
// knob behind the dashboard's "gains vs. penalties" display.

#include <cstddef>
#include <map>
#include <optional>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "forecast/demand_estimator.hpp"

namespace slices::core {

/// Which forecaster family the engine instantiates per slice (the A2
/// ablation knob; `adaptive` is the library default: EWMA warm-up with
/// periodic reselection over the full candidate set).
enum class EstimatorKind { adaptive, naive, ewma, holt_winters };

[[nodiscard]] std::string_view to_string(EstimatorKind k) noexcept;

/// Tuning of the overbooking engine.
struct OverbookingConfig {
  bool enabled = true;
  /// Residual-quantile confidence; higher = safer = less reclaimed.
  double risk_quantile = 0.95;
  /// Monitoring periods the upper bound must cover (reconfiguration
  /// cannot happen faster than this).
  std::size_t horizon = 4;
  /// Never shrink a reservation below this fraction of contract.
  double floor_fraction = 0.10;
  /// Multiplier on the upper bound (engineering headroom).
  double headroom = 1.05;
  /// Minimum observations before a slice may be overbooked at all.
  std::size_t warmup_observations = 8;
  /// Season length hint for per-slice estimators, in monitoring
  /// periods. The default matches one day of 15-minute epochs.
  std::size_t season_length = 96;
  /// Forecaster family used for per-slice demand estimation.
  EstimatorKind estimator = EstimatorKind::adaptive;
};

/// Per-slice demand learning + reservation targeting.
class OverbookingEngine {
 public:
  explicit OverbookingEngine(OverbookingConfig config = {}) : config_(config) {}

  [[nodiscard]] const OverbookingConfig& config() const noexcept { return config_; }

  /// Start learning a slice's demand. Idempotent.
  void track(SliceId slice);

  /// Forget a slice (on teardown/expiry).
  void untrack(SliceId slice);

  [[nodiscard]] bool tracks(SliceId slice) const noexcept {
    return estimators_.contains(slice);
  }

  /// Feed one monitoring period's *offered demand* (not served rate —
  /// the engine must learn what tenants want, not what they got).
  void observe(SliceId slice, double demand_mbps);

  /// Reservation the engine proposes for the next cycle; equals
  /// `contracted` when overbooking is disabled, the slice is unknown,
  /// still warming up, or the forecast is not ready.
  [[nodiscard]] DataRate target_reservation(SliceId slice, DataRate contracted) const;

  /// contracted − target (>= 0): capacity reclaimable from this slice.
  [[nodiscard]] DataRate reclaimable(SliceId slice, DataRate contracted) const {
    return clamp_non_negative(contracted - target_reservation(slice, contracted));
  }

  /// Access a slice's estimator (nullptr when untracked). Exposed for
  /// dashboards/tests.
  [[nodiscard]] const forecast::DemandEstimator* find(SliceId slice) const noexcept;

 private:
  OverbookingConfig config_;
  std::map<SliceId, forecast::DemandEstimator> estimators_;
};

}  // namespace slices::core
