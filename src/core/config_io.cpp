#include "core/config_io.hpp"

#include <cmath>
#include <set>

#include "json/value.hpp"

namespace slices::core {
namespace {

Error bad(std::string why) { return make_error(Errc::invalid_argument, std::move(why)); }

Result<void> check_keys(const json::Object& object, std::set<std::string_view> allowed) {
  for (const auto& [key, value] : object) {
    if (!allowed.contains(key)) return Error{Errc::invalid_argument, "unknown key '" + key + "'"};
  }
  return {};
}

}  // namespace

Result<OrchestratorConfig> config_from_json(std::string_view text) {
  Result<json::Value> doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  if (!doc.value().is_object()) return bad("config must be an object");
  const json::Object& root = doc.value().as_object();

  if (Result<void> r = check_keys(
          root, {"monitoring_period_minutes", "admission_policy", "admission_window_hours",
                 "admission_patience_hours", "sla_tolerance", "reconfigure_threshold",
                 "edge_breakout_fraction", "overbooking"});
      !r.ok()) {
    return r.error();
  }

  OrchestratorConfig config;
  const auto number = [&root](const char* key, double fallback) {
    const auto it = root.find(key);
    return it != root.end() && it->second.is_number() ? it->second.as_number() : fallback;
  };

  const double period = number("monitoring_period_minutes",
                               config.monitoring_period.as_seconds() / 60.0);
  if (period <= 0.0 || !std::isfinite(period)) return bad("monitoring period must be > 0");
  config.monitoring_period = Duration::minutes(period);

  if (const auto it = root.find("admission_policy"); it != root.end()) {
    if (!it->second.is_string()) return bad("admission_policy must be a string");
    if (make_policy(it->second.as_string()) == nullptr)
      return bad("unknown admission policy '" + it->second.as_string() + "'");
    config.admission_policy = it->second.as_string();
  }

  const double window = number("admission_window_hours", 0.0);
  if (window < 0.0) return bad("admission window must be >= 0");
  config.admission_window = Duration::hours(window);

  const double patience = number("admission_patience_hours", 0.0);
  if (patience < 0.0) return bad("admission patience must be >= 0");
  config.admission_patience = Duration::hours(patience);

  config.sla_tolerance = number("sla_tolerance", config.sla_tolerance);
  if (config.sla_tolerance < 0.0 || config.sla_tolerance >= 1.0)
    return bad("sla_tolerance must be in [0,1)");
  config.reconfigure_threshold =
      number("reconfigure_threshold", config.reconfigure_threshold);
  if (config.reconfigure_threshold < 0.0) return bad("reconfigure_threshold must be >= 0");
  config.edge_breakout_fraction =
      number("edge_breakout_fraction", config.edge_breakout_fraction);
  if (config.edge_breakout_fraction < 0.0 || config.edge_breakout_fraction > 1.0)
    return bad("edge_breakout_fraction must be in [0,1]");

  if (const auto it = root.find("overbooking"); it != root.end()) {
    if (!it->second.is_object()) return bad("overbooking must be an object");
    const json::Object& ob = it->second.as_object();
    if (Result<void> r = check_keys(ob, {"enabled", "risk_quantile", "horizon",
                                         "floor_fraction", "headroom",
                                         "warmup_observations", "season_length",
                                         "estimator"});
        !r.ok()) {
      return r.error();
    }
    OverbookingConfig& overbooking = config.overbooking;
    if (const auto e = ob.find("enabled"); e != ob.end()) {
      if (!e->second.is_bool()) return bad("overbooking.enabled must be a bool");
      overbooking.enabled = e->second.as_bool();
    }
    const auto ob_number = [&ob](const char* key, double fallback) {
      const auto it2 = ob.find(key);
      return it2 != ob.end() && it2->second.is_number() ? it2->second.as_number() : fallback;
    };
    overbooking.risk_quantile = ob_number("risk_quantile", overbooking.risk_quantile);
    if (overbooking.risk_quantile < 0.0 || overbooking.risk_quantile > 1.0)
      return bad("risk_quantile must be in [0,1]");
    const double horizon = ob_number("horizon", static_cast<double>(overbooking.horizon));
    if (horizon < 1.0) return bad("horizon must be >= 1");
    overbooking.horizon = static_cast<std::size_t>(horizon);
    overbooking.floor_fraction = ob_number("floor_fraction", overbooking.floor_fraction);
    if (overbooking.floor_fraction < 0.0 || overbooking.floor_fraction > 1.0)
      return bad("floor_fraction must be in [0,1]");
    overbooking.headroom = ob_number("headroom", overbooking.headroom);
    if (overbooking.headroom <= 0.0) return bad("headroom must be > 0");
    overbooking.warmup_observations = static_cast<std::size_t>(
        ob_number("warmup_observations", static_cast<double>(overbooking.warmup_observations)));
    const double season =
        ob_number("season_length", static_cast<double>(overbooking.season_length));
    if (season < 2.0) return bad("season_length must be >= 2");
    overbooking.season_length = static_cast<std::size_t>(season);
    if (const auto e = ob.find("estimator"); e != ob.end()) {
      if (!e->second.is_string()) return bad("estimator must be a string");
      const std::string& name = e->second.as_string();
      bool matched = false;
      for (const EstimatorKind kind :
           {EstimatorKind::adaptive, EstimatorKind::naive, EstimatorKind::ewma,
            EstimatorKind::holt_winters}) {
        if (to_string(kind) == name) {
          overbooking.estimator = kind;
          matched = true;
        }
      }
      if (!matched) return bad("unknown estimator '" + name + "'");
    }
  }
  return config;
}

}  // namespace slices::core
