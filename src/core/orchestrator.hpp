#pragma once
// The end-to-end network-slicing orchestrator (Fig. 1 of the paper).
//
// Hierarchically placed on top of the three domain controllers (radio,
// transport, cloud) plus the EPC manager, it:
//   * admits slice requests under a revenue-maximization policy,
//   * embeds admitted slices across all domains atomically (PLMN
//     install, PRB allocation, delay/capacity-constrained path, EPC
//     stack + optional edge service), with rollback on any failure,
//   * runs the closed monitoring → forecasting → reconfiguration loop
//     every monitoring period, overbooking idle reservations to make
//     room for new slices,
//   * tracks SLA violations and keeps the gains-vs-penalties ledger the
//     demo dashboard displays.
//
// Monitoring flows through the REST bus when one is attached (the
// paper's controllers feed the orchestrator over REST); resource
// configuration uses the controllers' typed APIs so multi-domain
// transactions can roll back precisely.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/controller.hpp"
#include "common/ids.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/admission.hpp"
#include "core/catalog.hpp"
#include "core/events.hpp"
#include "core/overbooking.hpp"
#include "core/revenue.hpp"
#include "core/slice.hpp"
#include "epc/epc.hpp"
#include "net/rest_bus.hpp"
#include "ran/controller.hpp"
#include "sim/simulator.hpp"
#include "store/store.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "traffic/model.hpp"
#include "transport/controller.hpp"

namespace slices::core {

/// Orchestrator tuning.
struct OrchestratorConfig {
  /// Monitoring/orchestration cycle (one epoch).
  Duration monitoring_period = Duration::minutes(15.0);
  OverbookingConfig overbooking;
  std::string admission_policy = "knapsack_revenue";
  /// When > 0, requests are not decided on arrival but queued and
  /// auctioned as a batch every window (the broker model of the slice-
  /// broker literature — this is where revenue-max policies beat FCFS).
  /// Zero (default) decides each request immediately.
  Duration admission_window = Duration::zero();
  /// Batched mode only: how long a request that lost an auction stays
  /// queued for later auctions before being finally rejected. Zero
  /// (default) rejects at the first lost auction.
  Duration admission_patience = Duration::zero();
  /// Throughput SLA tolerance: a violation epoch is one where
  /// served < (1 − tolerance) × min(demand, contracted).
  double sla_tolerance = 0.05;
  /// CQI assumed when planning radio capacity for not-yet-active slices.
  ran::Cqi planning_cqi{10};
  /// Reconfigure a reservation only when it moves by more than this
  /// fraction of contract (hysteresis against thrashing).
  double reconfigure_threshold = 0.02;
  /// Slices placed at an edge datacenter also get a breakout path from
  /// the edge to the core cloud (internet/centralized services), sized
  /// at this fraction of the contract. 0 disables the second leg.
  double edge_breakout_fraction = 0.25;
  /// Delay bound of the breakout leg (it is not latency-critical).
  Duration breakout_delay_bound = Duration::millis(50.0);

  // Installation-stage latencies (see experiment D4). Each stage draws
  // multiplicative lognormal-ish jitter of `install_jitter` relative
  // std-dev, seeded per orchestrator, so repeated installs show a
  // realistic latency distribution.
  Duration plmn_install_time = Duration::millis(800.0);
  Duration ran_reserve_time = Duration::millis(300.0);
  Duration path_setup_time_per_rule = Duration::millis(50.0);
  Duration activation_margin = Duration::millis(500.0);
  double install_jitter = 0.15;
  std::uint64_t install_jitter_seed = 0x1057a11;

  /// Worker threads (including the calling one) for sharding per-cell
  /// RAN serving and per-path transport serving inside each epoch.
  /// 1 = fully sequential. The parallel phases reduce deterministically,
  /// so every value produces bit-for-bit identical results.
  std::size_t epoch_threads = 1;
};

/// Breakdown of one slice's installation timeline (experiment D4).
struct InstallTimeline {
  Duration plmn_install;
  Duration ran_reservation;
  Duration path_setup;
  Duration epc_deploy;
  Duration activation_margin;

  [[nodiscard]] Duration total() const noexcept {
    return plmn_install + ran_reservation + path_setup + epc_deploy + activation_margin;
  }
};

/// Aggregate numbers for the dashboard's headline panel.
struct OrchestratorSummary {
  std::size_t active_slices = 0;
  std::size_t installing_slices = 0;
  std::uint64_t admitted_total = 0;
  std::uint64_t rejected_total = 0;
  DataRate contracted_total;    ///< sum of contracted rates (active)
  DataRate reserved_total;      ///< sum of current reservations (active)
  double multiplexing_gain = 1.0;  ///< contracted / reserved (>= 1 with OB)
  Money earned;
  Money penalties;
  Money net;
  std::uint64_t violation_epochs = 0;
  std::uint64_t reconfigurations = 0;
};

/// What a crash-recovery replay did (docs/persistence.md).
struct RecoveryStats {
  bool had_snapshot = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t events_replayed = 0;
  std::size_t records_recovered = 0;     ///< slice records reconstructed
  std::size_t reinstalled = 0;           ///< live slices re-embedded into the domains
  std::size_t reinstall_failures = 0;    ///< live slices the substrate could no longer fit
  bool journal_truncated = false;        ///< a torn tail was dropped
  double replay_millis = 0.0;            ///< wall-clock of the whole recovery
};

/// The end-to-end orchestrator.
class Orchestrator {
 public:
  /// All collaborators are owned by the caller and must outlive the
  /// orchestrator. `bus` and `registry` may be nullptr (no REST
  /// monitoring / no telemetry).
  Orchestrator(sim::Simulator* simulator, ran::RanController* ran,
               transport::TransportController* transport, cloud::CloudController* cloud,
               epc::EpcManager* epc, net::RestBus* bus,
               telemetry::MonitorRegistry* registry, OrchestratorConfig config = {});

  /// Where slices enter/exit the transport network: the RAN-side
  /// gateway and one gateway node per datacenter. Must be called before
  /// the first submit().
  void set_attachment_points(NodeId ran_gateway,
                             std::map<DatacenterId, NodeId> datacenter_gateways);

  /// Begin the periodic orchestration loop on the simulator.
  void start();

  // --- Dashboard-facing API -------------------------------------------------

  /// Submit a slice request; decided immediately (admission + embedding).
  /// Returns the request id; inspect find_by_request() for the verdict.
  RequestId submit(const SliceSpec& spec);

  /// Submit with an attached demand workload (sampled every epoch while
  /// the slice is active).
  RequestId submit(const SliceSpec& spec, std::unique_ptr<traffic::TrafficModel> workload);

  /// Attach (or replace) the demand workload of an existing slice —
  /// e.g. one submitted over REST, where the form carries SLA terms
  /// only. Errors: not_found.
  [[nodiscard]] Result<void> attach_workload(SliceId slice,
                                             std::unique_ptr<traffic::TrafficModel> workload);

  /// Tenant-initiated contract change: set a live slice's contracted
  /// throughput to `new_contract`. Growth re-validates radio and
  /// transport capacity atomically (insufficient_capacity leaves the
  /// old contract untouched); shrinking always succeeds. The EPC
  /// data-plane VNF keeps its deploy-time sizing (scaling VNFs in place
  /// is out of demo scope). Errors: not_found, conflict (not active),
  /// invalid_argument, insufficient_capacity.
  [[nodiscard]] Result<void> resize_slice(SliceId slice, DataRate new_contract);

  /// Operator-initiated early teardown. Errors: not_found, conflict
  /// (slice not live).
  [[nodiscard]] Result<void> terminate(SliceId slice);

  [[nodiscard]] const SliceRecord* find_by_request(RequestId request) const noexcept;
  [[nodiscard]] const SliceRecord* find_slice(SliceId slice) const noexcept;
  [[nodiscard]] std::vector<const SliceRecord*> all_slices() const;

  [[nodiscard]] const RevenueLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }

  /// Replace the slice-template catalog used by the REST dashboard API
  /// (defaults to SliceCatalog::builtin()).
  void set_catalog(SliceCatalog catalog) { catalog_ = std::move(catalog); }
  [[nodiscard]] const SliceCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const OverbookingEngine& overbooking() const noexcept { return engine_; }
  [[nodiscard]] OverbookingEngine& overbooking() noexcept { return engine_; }
  [[nodiscard]] const OrchestratorConfig& config() const noexcept { return config_; }

  /// Installation timeline of the most recent successful embedding.
  [[nodiscard]] const InstallTimeline& last_install_timeline() const noexcept {
    return last_timeline_;
  }

  /// Headline dashboard numbers, computed on demand.
  [[nodiscard]] OrchestratorSummary summary() const;

  // --- Durable state store (docs/persistence.md) ---------------------------

  /// Attach the write-ahead store. From here on every state transition
  /// (submit/admit/reject/activate/resize/reconfigure/expire/terminate
  /// and per-epoch accruals) is journaled at its commit point, and a
  /// full-state snapshot is cut whenever the store asks for one. The
  /// store must be open() and must outlive the orchestrator. Pass
  /// nullptr to detach (stops journaling).
  void attach_store(store::StateStore* store) { store_ = store; }
  [[nodiscard]] store::StateStore* attached_store() const noexcept { return store_; }

  /// Rebuild orchestrator state from the attached store's recovered
  /// input (latest valid snapshot + journal tail): reload the durable
  /// state, replay events past the snapshot, re-install live slices
  /// into the RAN/transport/cloud controllers and the EPC, and
  /// re-schedule their activation/expiry timers. Fast-forwards the
  /// simulator to the last journaled timestamp first, so recovered
  /// timers land in the future. Demand workloads are soft state and
  /// must be re-attached afterwards (attach_workload). Errors:
  /// unavailable (no store attached / not open), conflict (this
  /// orchestrator already holds slice state).
  [[nodiscard]] Result<RecoveryStats> recover_from_store();

  /// Durable-state dump: everything recovery needs to reconstruct this
  /// orchestrator, deterministically serialized (used for snapshots and
  /// for state-equality checks in tests). Soft state — forecaster
  /// internals, the event ring, install-jitter RNG — is excluded.
  [[nodiscard]] json::Value state_json() const;

  /// Cut a snapshot now (also truncates the journal). Errors:
  /// unavailable (no store attached / not open) plus I/O errors.
  [[nodiscard]] Result<std::uint64_t> snapshot_now();

  /// Stats of the last recover_from_store(), if one ran.
  [[nodiscard]] const std::optional<RecoveryStats>& last_recovery() const noexcept {
    return last_recovery_;
  }

  // --- Fault injection / scenario hooks (docs/scenarios.md) ----------------

  /// Suspend or resume the monitoring/orchestration loop (a controller
  /// restart or control-plane blackout): while suspended, run_epoch
  /// returns immediately — no serving, no accrual, no reconfiguration —
  /// and /healthz reports the loop as stale once two periods pass.
  void set_suspended(bool suspended);
  [[nodiscard]] bool suspended() const noexcept { return suspended_; }

  /// Declare an injected fault active/cleared under a stable component
  /// name (e.g. "link.mmwave", "dc.edge-dc"). Faults are recorded in the
  /// event log (audit trail) with the given detail fields and surfaced
  /// in health_json() under "faults" — /healthz turns "degraded" while
  /// any fault is active. Clearing an unknown fault is a no-op.
  void note_fault(const std::string& component, bool active, std::string detail,
                  json::Object fields = {});
  [[nodiscard]] const std::map<std::string, std::string>& active_faults() const noexcept {
    return active_faults_;
  }

  /// Observer called after every accepted submit() with the new record
  /// (state pending or already decided). Used by the scenario recorder
  /// to capture a live run's request stream. Pass nullptr to detach.
  using SubmitObserver = std::function<void(const SliceRecord&)>;
  void set_submit_observer(SubmitObserver observer) { submit_observer_ = std::move(observer); }

  /// Liveness/health document served at GET /healthz: component
  /// reachability over the bus, journal lag, last-epoch freshness,
  /// active injected faults and tracer status. Pure read — safe to call
  /// from tests and dashboards.
  [[nodiscard]] json::Value health_json() const;

  /// REST facade — the dashboard API of the demo (slice CRUD + report).
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

  /// Run one monitoring/orchestration epoch immediately (the periodic
  /// loop calls this; tests/benches may call it directly).
  void run_epoch(SimTime now);

  /// Capacity this orchestrator believes it can still sell: physical
  /// radio headroom plus what the overbooking engine can reclaim from
  /// live slices. This is the forecast-headroom signal a federation
  /// broker uses for delegated cross-region admission.
  [[nodiscard]] DataRate sellable_capacity() const;

 private:
  struct Workload {
    std::unique_ptr<traffic::TrafficModel> model;
  };

  /// Try to admit + embed `record` (in pending state). On success the
  /// record moves to installing and activation is scheduled.
  void decide(SliceRecord& record);

  /// Batch auction of all pending requests (admission_window mode).
  void decide_pending_batch();

  /// SLO instrument: the headroom the admission policy saw for this
  /// decision, recorded as a histogram (distribution over decisions)
  /// and a series (headroom over time).
  void record_admission_headroom(DataRate sellable);

  /// Shared admit path: reclaim, embed, transition, schedule activation.
  /// Returns false (and rejects) on embedding failure.
  bool try_admit(SliceRecord& record);

  /// Embed across all domains; rolls back on failure.
  [[nodiscard]] Result<InstallTimeline> embed(SliceRecord& record);

  /// Release every domain resource the record holds (best effort,
  /// idempotent) and untrack it from the overbooking engine.
  void tear_down(SliceRecord& record);

  void activate(SliceId slice);
  void expire(SliceId slice);

  /// Shrink reservations of live slices to the engine's targets;
  /// returns the total reclaimed rate.
  DataRate apply_overbooking(SimTime now);

  /// Reservation a given path leg should carry for a base (contract or
  /// overbooked) rate: leg 0 is the access path at the full rate,
  /// further legs are breakout at the configured fraction.
  [[nodiscard]] DataRate leg_rate(std::size_t leg_index, DataRate base) const noexcept {
    return leg_index == 0 ? base : base * config_.edge_breakout_fraction;
  }

  /// Pull /metrics of every domain over the REST bus (when attached).
  void poll_domain_metrics();

  void publish_summary(SimTime now);

  // --- Durability internals (docs/persistence.md) --------------------------

  /// Append one journal operation (stamps "t_us"; cuts a snapshot when
  /// the store's cadence asks for one). No-op without an open store;
  /// journal I/O failures are logged, never fatal to the control plane.
  void journal_op(const char* op, json::Object fields);

  /// Replay one journaled operation onto in-memory state (no domain
  /// side effects — reinstall happens once, after replay).
  void apply_journal_op(const json::Value& op);

  /// Install a snapshot's durable-state dump wholesale.
  void load_state(const json::Value& state);

  /// Re-embed every installing/active record into the domain
  /// controllers after a replay; slices the substrate can no longer fit
  /// are torn down and marked terminated (degrade, never crash).
  void reinstall_recovered(RecoveryStats& stats);

  sim::Simulator* simulator_;
  ran::RanController* ran_;
  transport::TransportController* transport_;
  cloud::CloudController* cloud_;
  epc::EpcManager* epc_;
  net::RestBus* bus_;
  telemetry::MonitorRegistry* registry_;
  OrchestratorConfig config_;
  std::unique_ptr<AdmissionPolicy> policy_;
  Rng install_jitter_rng_{0};
  OverbookingEngine engine_;
  RevenueLedger ledger_;
  EventLog events_;
  SliceCatalog catalog_ = SliceCatalog::builtin();
  Logger log_{"orchestrator"};

  NodeId ran_gateway_;
  std::map<DatacenterId, NodeId> dc_gateways_;

  // Telemetry handles interned on first use so the epoch loop never
  // rebuilds "slice.N.*" / "orchestrator.*" key strings.
  struct SliceHandles {
    telemetry::SeriesHandle demand;
    telemetry::SeriesHandle achieved;
    telemetry::SeriesHandle reserved;
    telemetry::Counter* violations = nullptr;  ///< "slice.N.violations"
  };
  struct SummaryHandles {
    telemetry::SeriesHandle active_slices;
    telemetry::SeriesHandle multiplexing_gain;
    telemetry::SeriesHandle contracted_mbps;
    telemetry::SeriesHandle reserved_mbps;
    telemetry::SeriesHandle net_revenue;
    telemetry::SeriesHandle penalties;
  };
  std::map<SliceId, SliceHandles> slice_handles_;
  SummaryHandles summary_handles_;

  // Overbooking SLO instruments (docs/observability.md): the headroom
  // signal at each admission decision, realized demand against the
  // forecast reservation each epoch, and the SLA-breach ledger as
  // counters. Everything here is sim-derived, so the contents are
  // compared by determinism_test like any other registry instrument.
  struct SloInstruments {
    telemetry::Histogram* admission_headroom = nullptr;
    telemetry::Counter* violation_epochs = nullptr;
    telemetry::Counter* penalty_cents = nullptr;
    telemetry::SeriesHandle headroom_mbps;
    telemetry::SeriesHandle demand_mbps;
    telemetry::SeriesHandle forecast_error_mbps;
  };
  SloInstruments slo_;

  // Latency histograms, interned eagerly in the constructor so the set
  // of registered instruments (and hence /metrics bytes) never depends
  // on which code paths ran. Only filled when trace::wall_clock() is on
  // — wall durations are nondeterministic and must stay out of the
  // default registry contents (see docs/observability.md).
  struct EpochHistograms {
    telemetry::Histogram* epoch_us = nullptr;
    telemetry::Histogram* ran_us = nullptr;
    telemetry::Histogram* transport_us = nullptr;
    telemetry::Histogram* reduce_us = nullptr;
    telemetry::Histogram* admission_us = nullptr;
  };
  EpochHistograms hist_;

  // Per-epoch scratch, reused so the steady-state epoch loop does not
  // reallocate the demand/report vectors it hands to the RAN and
  // transport kernels.
  std::vector<std::pair<PlmnId, DataRate>> epoch_ran_demands_;
  std::vector<ran::RanServeReport> epoch_radio_reports_;
  std::vector<std::pair<PathId, DataRate>> epoch_path_demands_;
  std::vector<transport::PathServeReport> epoch_path_reports_;

  // Freshness facts for /healthz (wall duration is -1 while wall-clock
  // profiling is off).
  SimTime last_epoch_at_;
  std::size_t last_epoch_active_ = 0;
  std::int64_t last_epoch_wall_us_ = -1;
  bool epoch_ran_ = false;

  std::map<SliceId, SliceRecord> records_;
  std::map<RequestId, SliceId> by_request_;
  std::map<SliceId, Workload> workloads_;
  IdAllocator<SliceTag> slice_ids_;
  IdAllocator<RequestTag> request_ids_;
  std::uint64_t next_plmn_ = 100001;  // PLMN code pool for dynamic installs
  std::uint64_t admitted_total_ = 0;
  std::uint64_t rejected_total_ = 0;
  std::uint64_t reconfigurations_ = 0;
  InstallTimeline last_timeline_;
  bool started_ = false;
  bool suspended_ = false;
  std::map<std::string, std::string> active_faults_;  ///< component -> detail
  SubmitObserver submit_observer_;
  store::StateStore* store_ = nullptr;
  std::optional<RecoveryStats> last_recovery_;
};

}  // namespace slices::core
