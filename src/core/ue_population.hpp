#pragma once
// Session-level user dynamics for a live slice.
//
// In the demo, "user devices associated with the PLMN-id of the new
// slices are allowed to connect to the respective services". This
// process animates that population: UEs arrive Poisson, hold for an
// exponential time, attach to the RAN under the slice's PLMN and run
// the EPC attach procedure, then detach on departure — all as simulator
// events. Attach attempts while the EPC is still deploying are counted
// as blocked (the "few seconds" gating, observable in telemetry).

#include <cstdint>

#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "epc/epc.hpp"
#include "ran/controller.hpp"
#include "sim/simulator.hpp"

namespace slices::core {

/// Tuning of one slice's session process.
struct UePopulationConfig {
  double arrivals_per_hour = 30.0;
  Duration mean_holding = Duration::minutes(20.0);
  int cqi_min = 5;   ///< arriving UEs draw CQI uniformly in [min, max]
  int cqi_max = 14;
};

/// Drives UE churn for one slice. Construct after the slice is
/// embedded; call start() (idempotent); stop() detaches everyone and
/// halts arrivals (call before the slice is torn down).
class UePopulation {
 public:
  UePopulation(sim::Simulator* simulator, ran::RanController* ran, epc::EpcManager* epc,
               SliceId slice, PlmnId plmn, UePopulationConfig config, Rng rng);
  ~UePopulation() { stop(); }

  UePopulation(const UePopulation&) = delete;
  UePopulation& operator=(const UePopulation&) = delete;

  /// Begin the arrival process.
  void start();

  /// Halt arrivals and detach every active UE.
  void stop();

  [[nodiscard]] std::size_t active_ues() const noexcept { return active_.size(); }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t total_blocked() const noexcept { return blocked_; }
  [[nodiscard]] std::uint64_t total_departures() const noexcept { return departures_; }

 private:
  void schedule_next_arrival();
  void on_arrival();
  void on_departure(UeId ue);

  sim::Simulator* simulator_;
  ran::RanController* ran_;
  epc::EpcManager* epc_;
  SliceId slice_;
  PlmnId plmn_;
  UePopulationConfig config_;
  Rng rng_;
  bool running_ = false;
  sim::EventId pending_arrival_{};
  DenseIdMap<UeId, sim::EventId> active_;  // UE -> its departure event
  std::uint64_t arrivals_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t departures_ = 0;
};

}  // namespace slices::core
