#include "core/request_generator.hpp"

#include <cassert>

namespace slices::core {

RequestGenerator::RequestGenerator(RequestGeneratorConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  assert(config_.arrivals_per_hour > 0.0);
  assert(config_.min_duration > Duration::zero());
  assert(config_.max_duration >= config_.min_duration);
  assert(config_.price_dispersion >= 0.0 && config_.price_dispersion < 1.0);
  if (config_.verticals.empty()) config_.verticals = traffic::all_verticals();
}

Duration RequestGenerator::next_interarrival() {
  return Duration::hours(rng_.exponential(config_.arrivals_per_hour));
}

GeneratedRequest RequestGenerator::next_request() {
  const std::size_t pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(config_.verticals.size()) - 1));
  const traffic::Vertical vertical = config_.verticals[pick];
  const Duration duration = Duration::seconds(rng_.uniform(
      config_.min_duration.as_seconds(), config_.max_duration.as_seconds()));

  SliceSpec spec = SliceSpec::from_profile(traffic::profile_for(vertical), duration);
  const double price_scale =
      rng_.uniform(1.0 - config_.price_dispersion, 1.0 + config_.price_dispersion);
  spec.price_per_hour = spec.price_per_hour * price_scale;
  spec.penalty_per_violation = spec.penalty_per_violation * price_scale;

  GeneratedRequest out;
  out.spec = std::move(spec);
  out.workload = traffic::make_traffic(vertical, rng_.fork());
  return out;
}

}  // namespace slices::core
