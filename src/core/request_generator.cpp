#include "core/request_generator.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace slices::core {
namespace {

/// Gap returned when the remaining schedule has rate zero forever —
/// far beyond any practical scenario horizon, never scheduled in
/// practice (callers stop at the scenario end).
constexpr double kNeverHours = 1e8;

}  // namespace

RequestGenerator::RequestGenerator(RequestGeneratorConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  assert(config_.arrivals_per_hour >= 0.0);
  assert(config_.min_duration > Duration::zero());
  assert(config_.max_duration >= config_.min_duration);
  assert(config_.price_dispersion >= 0.0 && config_.price_dispersion < 1.0);
  assert(config_.diurnal_depth >= 0.0 && config_.diurnal_depth <= 1.0);
  assert(config_.diurnal_period > Duration::zero());
  // The constant-rate entry point requires a positive rate; schedules
  // may legitimately contain zero-rate stretches.
  assert(config_.arrivals_per_hour > 0.0 || !config_.rate_schedule.empty());
#ifndef NDEBUG
  for (std::size_t i = 1; i < config_.rate_schedule.size(); ++i) {
    assert(config_.rate_schedule[i - 1].at < config_.rate_schedule[i].at &&
           "rate_schedule must be sorted by time");
  }
  for (const RatePoint& p : config_.rate_schedule) assert(p.arrivals_per_hour >= 0.0);
#endif
  if (config_.verticals.empty()) config_.verticals = traffic::all_verticals();
}

double RequestGenerator::step_rate_at(Duration at) const noexcept {
  double rate = config_.arrivals_per_hour;
  for (const RatePoint& p : config_.rate_schedule) {
    if (p.at <= at) {
      rate = p.arrivals_per_hour;
    } else {
      break;
    }
  }
  return rate;
}

std::optional<Duration> RequestGenerator::next_boundary(Duration at) const noexcept {
  for (const RatePoint& p : config_.rate_schedule) {
    if (p.at > at) return p.at;
  }
  return std::nullopt;
}

double RequestGenerator::rate_at(SimTime t) const noexcept {
  const Duration elapsed = Duration::micros(t.as_micros());
  double rate = step_rate_at(elapsed);
  if (config_.diurnal_depth > 0.0) {
    const double angle = 2.0 * std::numbers::pi *
                         (t.as_seconds() / config_.diurnal_period.as_seconds());
    rate *= 1.0 + config_.diurnal_depth * std::sin(angle);
  }
  return rate < 0.0 ? 0.0 : rate;
}

Duration RequestGenerator::next_interarrival() {
  assert(config_.rate_schedule.empty() && config_.diurnal_depth == 0.0 &&
         "time-varying stream: use next_interarrival(SimTime)");
  return Duration::hours(rng_.exponential(config_.arrivals_per_hour));
}

Duration RequestGenerator::next_interarrival(SimTime from) {
  const Duration elapsed = Duration::micros(from.as_micros());

  // Constant rate: the exact draw (and RNG consumption) of the original
  // generator, so old seeds replay bit-identically.
  if (config_.rate_schedule.empty() && config_.diurnal_depth == 0.0) {
    return Duration::hours(rng_.exponential(config_.arrivals_per_hour));
  }

  if (config_.diurnal_depth == 0.0) {
    // Piecewise-constant: exponential within the current step; if the
    // draw crosses the next boundary, restart there (memoryless — the
    // restarted process is exactly the non-homogeneous one).
    Duration at = elapsed;
    while (true) {
      const double rate = step_rate_at(at);
      const std::optional<Duration> boundary = next_boundary(at);
      if (rate <= 0.0) {
        if (!boundary) return Duration::hours(kNeverHours);
        at = *boundary;
        continue;
      }
      const Duration gap = Duration::hours(rng_.exponential(rate));
      if (boundary && at + gap >= *boundary) {
        at = *boundary;
        continue;
      }
      return at + gap - elapsed;
    }
  }

  // Diurnal modulation: Lewis–Shedler thinning against the peak rate.
  double peak_step = config_.arrivals_per_hour;
  for (const RatePoint& p : config_.rate_schedule) {
    peak_step = std::max(peak_step, p.arrivals_per_hour);
  }
  const double rate_max = peak_step * (1.0 + config_.diurnal_depth);
  if (rate_max <= 0.0) return Duration::hours(kNeverHours);
  Duration at = elapsed;
  // Bounded candidate count: each iteration advances `at` by an Exp
  // draw, so hitting the bound means the accepted rate is ~0 everywhere.
  for (int i = 0; i < 1000000; ++i) {
    at += Duration::hours(rng_.exponential(rate_max));
    const double rate = rate_at(SimTime::from_micros(at.as_micros()));
    if (rng_.uniform() * rate_max < rate) return at - elapsed;
  }
  return Duration::hours(kNeverHours);
}

GeneratedRequest RequestGenerator::next_request() {
  const std::size_t pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(config_.verticals.size()) - 1));
  const traffic::Vertical vertical = config_.verticals[pick];
  const Duration duration = Duration::seconds(rng_.uniform(
      config_.min_duration.as_seconds(), config_.max_duration.as_seconds()));

  SliceSpec spec = SliceSpec::from_profile(traffic::profile_for(vertical), duration);
  const double price_scale =
      rng_.uniform(1.0 - config_.price_dispersion, 1.0 + config_.price_dispersion);
  spec.price_per_hour = spec.price_per_hour * price_scale;
  spec.penalty_per_violation = spec.penalty_per_violation * price_scale;

  GeneratedRequest out;
  out.spec = std::move(spec);
  // Same RNG consumption as the original `rng_.fork()` (which seeded the
  // child with next_u64()), but the seed is kept so record/replay can
  // rebuild an identical workload process.
  out.workload_seed = rng_.next_u64();
  out.workload = traffic::make_traffic(vertical, Rng(out.workload_seed));
  return out;
}

}  // namespace slices::core
