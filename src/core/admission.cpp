#include "core/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace slices::core {

std::vector<RequestId> FcfsPolicy::select(std::span<const CandidateRequest> candidates,
                                          DataRate capacity) const {
  std::vector<RequestId> admitted;
  DataRate remaining = capacity;
  for (const CandidateRequest& c : candidates) {
    if (c.spec.expected_throughput <= remaining) {
      admitted.push_back(c.id);
      remaining -= c.spec.expected_throughput;
    }
  }
  return admitted;
}

std::vector<RequestId> GreedyRevenuePolicy::select(
    std::span<const CandidateRequest> candidates, DataRate capacity) const {
  std::vector<const CandidateRequest*> order;
  order.reserve(candidates.size());
  for (const CandidateRequest& c : candidates) order.push_back(&c);
  std::stable_sort(order.begin(), order.end(),
                   [](const CandidateRequest* a, const CandidateRequest* b) {
                     const double da = a->spec.gross_revenue().as_units() /
                                       std::max(1e-9, a->spec.expected_throughput.as_mbps());
                     const double db = b->spec.gross_revenue().as_units() /
                                       std::max(1e-9, b->spec.expected_throughput.as_mbps());
                     return da > db;
                   });

  std::vector<RequestId> admitted;
  DataRate remaining = capacity;
  for (const CandidateRequest* c : order) {
    if (c->spec.expected_throughput <= remaining) {
      admitted.push_back(c->id);
      remaining -= c->spec.expected_throughput;
    }
  }
  return admitted;
}

std::vector<RequestId> KnapsackRevenuePolicy::select(
    std::span<const CandidateRequest> candidates, DataRate capacity) const {
  const int cap = std::min(max_capacity_mbps_,
                           static_cast<int>(std::floor(capacity.as_mbps())));
  if (cap <= 0 || candidates.empty()) return {};

  // Item weights: ceil(Mb/s) so the discretization never under-counts.
  std::vector<int> weight(candidates.size());
  std::vector<std::int64_t> value(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    weight[i] = static_cast<int>(std::ceil(candidates[i].spec.expected_throughput.as_mbps()));
    value[i] = candidates[i].spec.gross_revenue().as_cents();
  }

  // DP over capacity with take-decision tracking. The take matrix is a
  // single flat n×(cap+1) byte buffer — one allocation instead of one
  // heap node per row, and row-major so the inner loop walks one
  // contiguous stripe.
  const std::size_t n = candidates.size();
  const std::size_t stride = static_cast<std::size_t>(cap) + 1;
  std::vector<std::int64_t> best(stride, 0);
  std::vector<char> take(n * stride, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (weight[i] > cap || value[i] <= 0) continue;
    char* take_row = take.data() + i * stride;
    for (int w = cap; w >= weight[i]; --w) {
      const std::int64_t with_item =
          best[static_cast<std::size_t>(w - weight[i])] + value[i];
      if (with_item > best[static_cast<std::size_t>(w)]) {
        best[static_cast<std::size_t>(w)] = with_item;
        take_row[w] = 1;
      }
    }
  }

  // Backtrack.
  std::vector<RequestId> admitted;
  int w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (w >= 0 && take[i * stride + static_cast<std::size_t>(w)] != 0) {
      admitted.push_back(candidates[i].id);
      w -= weight[i];
    }
  }
  std::reverse(admitted.begin(), admitted.end());
  return admitted;
}

std::unique_ptr<AdmissionPolicy> make_policy(std::string_view name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "greedy_revenue") return std::make_unique<GreedyRevenuePolicy>();
  if (name == "knapsack_revenue") return std::make_unique<KnapsackRevenuePolicy>();
  return nullptr;
}

}  // namespace slices::core
