#include "core/testbed.hpp"

namespace slices::core {

std::unique_ptr<Testbed> make_testbed(std::uint64_t seed, OrchestratorConfig config) {
  auto tb = std::make_unique<Testbed>();

  // --- RAN: two commercial-grade 20 MHz MOCN small cells ------------------
  tb->cell_a = CellId{1};
  tb->cell_b = CellId{2};
  tb->ran.add_cell(ran::Cell(tb->cell_a, "enb-a", ran::Bandwidth::mhz20,
                             ran::SharingPolicy::pooled));
  tb->ran.add_cell(ran::Cell(tb->cell_b, "enb-b", ran::Bandwidth::mhz20,
                             ran::SharingPolicy::pooled));

  // --- Transport: wireless fronthaul + OpenFlow switch + wired tails ------
  transport::Topology topo;
  tb->ran_gateway = topo.add_node("ran-gw", transport::NodeKind::enb_gateway);
  tb->switch_node = topo.add_node("pf5240", transport::NodeKind::openflow_switch);
  tb->edge_gateway = topo.add_node("edge-gw", transport::NodeKind::edge_gateway);
  tb->core_gateway = topo.add_node("core-gw", transport::NodeKind::core_gateway);

  // Parallel wireless uplinks: mmWave is the fast default, µwave the
  // slower but steadier alternative — rerouting between them is the
  // transport reconfiguration story.
  const auto [mm_fwd, mm_rev] = topo.add_bidirectional(
      tb->ran_gateway, tb->switch_node, transport::LinkTechnology::mmwave,
      DataRate::mbps(1000.0), Duration::millis(1.0));
  const auto [uw_fwd, uw_rev] = topo.add_bidirectional(
      tb->ran_gateway, tb->switch_node, transport::LinkTechnology::uwave,
      DataRate::mbps(400.0), Duration::millis(2.5));
  (void)mm_rev;
  (void)uw_rev;
  tb->mmwave_uplink = mm_fwd;
  tb->uwave_uplink = uw_fwd;

  topo.add_bidirectional(tb->switch_node, tb->edge_gateway,
                         transport::LinkTechnology::fiber, DataRate::mbps(10000.0),
                         Duration::millis(0.5));
  topo.add_bidirectional(tb->switch_node, tb->core_gateway,
                         transport::LinkTechnology::fiber, DataRate::mbps(10000.0),
                         Duration::millis(4.0));
  topo.add_bidirectional(tb->edge_gateway, tb->core_gateway,
                         transport::LinkTechnology::fiber, DataRate::mbps(10000.0),
                         Duration::millis(3.5));

  tb->transport = std::make_unique<transport::TransportController>(
      std::move(topo), Rng(seed ^ 0x7261696eULL), &tb->registry);

  // --- Cloud: scarce edge DC + roomy core DC ------------------------------
  tb->edge_dc = tb->cloud.add_datacenter("edge-dc", cloud::DatacenterKind::edge,
                                         /*cpu_allocation_ratio=*/1.0);
  tb->cloud.add_host(tb->edge_dc, "edge-host-1", ComputeCapacity{32.0, 131072.0, 1000.0});
  tb->cloud.add_host(tb->edge_dc, "edge-host-2", ComputeCapacity{32.0, 131072.0, 1000.0});

  tb->core_dc = tb->cloud.add_datacenter("core-dc", cloud::DatacenterKind::core,
                                         /*cpu_allocation_ratio=*/2.0);
  for (int i = 1; i <= 4; ++i) {
    tb->cloud.add_host(tb->core_dc, "core-host-" + std::to_string(i),
                       ComputeCapacity{64.0, 262144.0, 4000.0});
  }
  tb->cloud.finalize(cloud::PlacementPolicy::first_fit);

  tb->epc = std::make_unique<epc::EpcManager>(&tb->cloud);

  // --- Epoch worker pool ---------------------------------------------------
  if (config.epoch_threads > 1) {
    tb->pool = std::make_unique<ThreadPool>(config.epoch_threads);
    tb->ran.set_thread_pool(tb->pool.get());
    tb->transport->set_thread_pool(tb->pool.get());
  }

  // --- REST bus: controllers feed the orchestrator over HTTP --------------
  tb->bus.register_service("ran", tb->ran.make_router());
  tb->bus.register_service("transport", tb->transport->make_router());
  tb->bus.register_service("cloud", tb->cloud.make_router());

  // --- The orchestrator on top --------------------------------------------
  tb->orchestrator = std::make_unique<Orchestrator>(
      &tb->simulator, &tb->ran, tb->transport.get(), &tb->cloud, tb->epc.get(), &tb->bus,
      &tb->registry, config);
  tb->orchestrator->set_attachment_points(
      tb->ran_gateway,
      {{tb->edge_dc, tb->edge_gateway}, {tb->core_dc, tb->core_gateway}});
  tb->bus.register_service("orchestrator", tb->orchestrator->make_router());
  tb->orchestrator->start();

  return tb;
}

}  // namespace slices::core
