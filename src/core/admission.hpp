#pragma once
// Admission-control policies.
//
// The orchestrator "applies admission control policies based on a
// revenue maximization strategy" (paper §1, citing the 5G network slice
// broker). A policy ranks a batch of pending requests against the radio
// capacity the orchestrator believes is available (physical free
// capacity plus whatever the overbooking engine can reclaim) and selects
// the subset to admit. Radio throughput is the binding dimension in the
// testbed; transport and compute feasibility are enforced afterwards by
// the embedder, which may still bounce an admitted request.

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "core/slice.hpp"

namespace slices::core {

/// A pending request as seen by a policy.
struct CandidateRequest {
  RequestId id;
  SliceSpec spec;
};

/// Strategy interface: choose which candidates to admit within
/// `capacity` (sum of admitted expected throughputs must fit).
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Returns the ids to admit, in admission order.
  [[nodiscard]] virtual std::vector<RequestId> select(
      std::span<const CandidateRequest> candidates, DataRate capacity) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// First-come-first-served: admit in arrival order while capacity lasts.
/// The baseline a plain NFV orchestrator implements.
class FcfsPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] std::vector<RequestId> select(std::span<const CandidateRequest> candidates,
                                              DataRate capacity) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "fcfs"; }
};

/// Greedy revenue density: sort by gross revenue per Mb/s, admit while
/// capacity lasts. Near-optimal and O(n log n).
class GreedyRevenuePolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] std::vector<RequestId> select(std::span<const CandidateRequest> candidates,
                                              DataRate capacity) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "greedy_revenue"; }
};

/// Exact 0/1 knapsack over Mb/s-discretized capacity maximizing gross
/// revenue — the revenue-maximization strategy of the paper. Capacity is
/// clamped to `max_capacity_mbps` cells to bound the DP table.
class KnapsackRevenuePolicy final : public AdmissionPolicy {
 public:
  explicit KnapsackRevenuePolicy(int max_capacity_mbps = 4096)
      : max_capacity_mbps_(max_capacity_mbps) {}

  [[nodiscard]] std::vector<RequestId> select(std::span<const CandidateRequest> candidates,
                                              DataRate capacity) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "knapsack_revenue"; }

 private:
  int max_capacity_mbps_;
};

/// Factory by name ("fcfs" | "greedy_revenue" | "knapsack_revenue").
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_policy(std::string_view name);

}  // namespace slices::core
