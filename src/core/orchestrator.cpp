#include "core/orchestrator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <set>

#include "json/value.hpp"

namespace slices::core {

// --- Durable-state serialization (docs/persistence.md) ----------------------
//
// Journal operations and snapshots are written by this process and read
// back only by it, but disk contents can be damaged, so every reader is
// tolerant: missing/odd fields fall back to safe defaults instead of
// asserting. Rates are stored in exact bits-per-second and money in
// exact cents so a dump -> load round trip is bit-identical.

namespace {

double field_num(const json::Value& v, std::string_view key, double fallback = 0.0) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->is_number() ? f->as_number() : fallback;
}

std::string field_str(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->is_string() ? f->as_string() : std::string{};
}

bool field_bool(const json::Value& v, std::string_view key, bool fallback = false) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->is_bool() ? f->as_bool() : fallback;
}

std::int64_t field_i64(const json::Value& v, std::string_view key) {
  return static_cast<std::int64_t>(field_num(v, key));
}

std::uint64_t field_u64(const json::Value& v, std::string_view key, double fallback = 0.0) {
  const double n = field_num(v, key, fallback);
  return n <= 0.0 ? 0 : static_cast<std::uint64_t>(n);
}

template <typename Tag>
Id<Tag> field_id(const json::Value& v, std::string_view key) {
  const double n = field_num(v, key, -1.0);
  return n < 0.0 ? Id<Tag>::invalid() : Id<Tag>{static_cast<std::uint64_t>(n)};
}

/// Ids are serialized as -1 when invalid (JSON has no uint64).
double id_num(std::uint64_t value, bool valid) {
  return valid ? static_cast<double>(value) : -1.0;
}

json::Value spec_to_json(const SliceSpec& spec) {
  json::Object out;
  out.emplace("tenant", spec.tenant_name);
  out.emplace("vertical", std::string(traffic::to_string(spec.vertical)));
  out.emplace("duration_us", static_cast<double>(spec.duration.as_micros()));
  out.emplace("max_latency_us", static_cast<double>(spec.max_latency.as_micros()));
  out.emplace("throughput_bps", spec.expected_throughput.bits_per_second());
  out.emplace("vcpus", spec.edge_compute.vcpus);
  out.emplace("memory_mb", spec.edge_compute.memory_mb);
  out.emplace("disk_gb", spec.edge_compute.disk_gb);
  out.emplace("price_cents_per_hour", static_cast<double>(spec.price_per_hour.as_cents()));
  out.emplace("penalty_cents", static_cast<double>(spec.penalty_per_violation.as_cents()));
  out.emplace("needs_edge", spec.needs_edge);
  return json::Value{std::move(out)};
}

SliceSpec spec_from_json(const json::Value& v) {
  SliceSpec spec;
  spec.tenant_name = field_str(v, "tenant");
  const std::string vertical = field_str(v, "vertical");
  for (const traffic::Vertical candidate : traffic::all_verticals()) {
    if (traffic::to_string(candidate) == vertical) spec.vertical = candidate;
  }
  spec.duration = Duration::micros(field_i64(v, "duration_us"));
  spec.max_latency = Duration::micros(field_i64(v, "max_latency_us"));
  spec.expected_throughput = DataRate::bps(field_num(v, "throughput_bps"));
  spec.edge_compute.vcpus = field_num(v, "vcpus");
  spec.edge_compute.memory_mb = field_num(v, "memory_mb");
  spec.edge_compute.disk_gb = field_num(v, "disk_gb");
  spec.price_per_hour = Money::cents(field_i64(v, "price_cents_per_hour"));
  spec.penalty_per_violation = Money::cents(field_i64(v, "penalty_cents"));
  spec.needs_edge = field_bool(v, "needs_edge");
  return spec;
}

SliceState state_from_string(std::string_view s) noexcept {
  for (const SliceState candidate :
       {SliceState::pending, SliceState::rejected, SliceState::installing, SliceState::active,
        SliceState::expired, SliceState::terminated}) {
    if (to_string(candidate) == s) return candidate;
  }
  return SliceState::terminated;  // unknown state: safest terminal
}

json::Value embedding_to_json(const Embedding& e) {
  json::Object out;
  out.emplace("plmn", id_num(e.plmn.value(), e.plmn.valid()));
  out.emplace("datacenter", id_num(e.datacenter.value(), e.datacenter.valid()));
  json::Array paths;
  for (const PathId p : e.paths) paths.push_back(static_cast<double>(p.value()));
  out.emplace("paths", std::move(paths));
  // The Heat engine allocates fresh StackIds, so only *presence* of the
  // edge service stack is durable; the id is re-created on reinstall.
  out.emplace("edge_stack", e.edge_stack.has_value());
  return json::Value{std::move(out)};
}

Embedding embedding_from_json(const json::Value& v) {
  Embedding e;
  e.plmn = field_id<PlmnTag>(v, "plmn");
  e.datacenter = field_id<DatacenterTag>(v, "datacenter");
  if (const json::Value* paths = v.find("paths"); paths != nullptr && paths->is_array()) {
    for (const json::Value& p : paths->as_array()) {
      if (p.is_number() && p.as_number() >= 0.0) {
        e.paths.push_back(PathId{static_cast<std::uint64_t>(p.as_number())});
      }
    }
  }
  // Placeholder until reinstall re-creates the stack (has_value is what
  // the durable representation preserves).
  if (field_bool(v, "edge_stack")) e.edge_stack = StackId::invalid();
  return e;
}

json::Value record_to_json(const SliceRecord& r) {
  json::Object out;
  out.emplace("slice", static_cast<double>(r.id.value()));
  out.emplace("request", static_cast<double>(r.request.value()));
  out.emplace("spec", spec_to_json(r.spec));
  out.emplace("state", std::string(to_string(r.state)));
  out.emplace("submitted_at_us", static_cast<double>(r.submitted_at.as_micros()));
  out.emplace("activates_at_us", static_cast<double>(r.activates_at.as_micros()));
  out.emplace("active_at_us", static_cast<double>(r.active_at.as_micros()));
  out.emplace("ends_at_us", static_cast<double>(r.ends_at.as_micros()));
  out.emplace("embedding", embedding_to_json(r.embedding));
  out.emplace("reserved_bps", r.reserved.bits_per_second());
  out.emplace("violation_epochs", static_cast<double>(r.violation_epochs));
  out.emplace("served_epochs", static_cast<double>(r.served_epochs));
  return json::Value{std::move(out)};
}

SliceRecord record_from_json(const json::Value& v) {
  SliceRecord r;
  r.id = field_id<SliceTag>(v, "slice");
  r.request = field_id<RequestTag>(v, "request");
  if (const json::Value* spec = v.find("spec")) r.spec = spec_from_json(*spec);
  r.state = state_from_string(field_str(v, "state"));
  r.submitted_at = SimTime::from_micros(field_i64(v, "submitted_at_us"));
  r.activates_at = SimTime::from_micros(field_i64(v, "activates_at_us"));
  r.active_at = SimTime::from_micros(field_i64(v, "active_at_us"));
  r.ends_at = SimTime::from_micros(field_i64(v, "ends_at_us"));
  if (const json::Value* e = v.find("embedding")) r.embedding = embedding_from_json(*e);
  r.reserved = DataRate::bps(field_num(v, "reserved_bps"));
  r.violation_epochs = field_u64(v, "violation_epochs");
  r.served_epochs = field_u64(v, "served_epochs");
  return r;
}

}  // namespace

Orchestrator::Orchestrator(sim::Simulator* simulator, ran::RanController* ran,
                           transport::TransportController* transport,
                           cloud::CloudController* cloud, epc::EpcManager* epc,
                           net::RestBus* bus, telemetry::MonitorRegistry* registry,
                           OrchestratorConfig config)
    : simulator_(simulator),
      ran_(ran),
      transport_(transport),
      cloud_(cloud),
      epc_(epc),
      bus_(bus),
      registry_(registry),
      config_(std::move(config)),
      install_jitter_rng_(config_.install_jitter_seed),
      engine_(config_.overbooking) {
  assert(simulator_ != nullptr && ran_ != nullptr && transport_ != nullptr &&
         cloud_ != nullptr && epc_ != nullptr);
  policy_ = make_policy(config_.admission_policy);
  assert(policy_ != nullptr && "unknown admission policy name");
  if (registry_ != nullptr) {
    hist_.epoch_us = &registry_->histogram("orchestrator.epoch_us");
    hist_.ran_us = &registry_->histogram("orchestrator.epoch.ran_us");
    hist_.transport_us = &registry_->histogram("orchestrator.epoch.transport_us");
    hist_.reduce_us = &registry_->histogram("orchestrator.epoch.reduce_us");
    hist_.admission_us = &registry_->histogram("orchestrator.admission_us");
    slo_.admission_headroom = &registry_->histogram("orchestrator.slo.admission_headroom_mbps");
    slo_.violation_epochs = &registry_->counter("orchestrator.slo.violation_epochs");
    slo_.penalty_cents = &registry_->counter("orchestrator.slo.penalty_cents");
    slo_.headroom_mbps = registry_->handle("orchestrator.slo.headroom_mbps");
    slo_.demand_mbps = registry_->handle("orchestrator.slo.demand_mbps");
    slo_.forecast_error_mbps = registry_->handle("orchestrator.slo.forecast_error_mbps");
  }
}

namespace {

/// Wall-clock phase timer for the latency histograms. Inert (no clock
/// reads, no records) unless wall-clock profiling is enabled, so the
/// default configuration stays deterministic.
class WallPhaseTimer {
 public:
  explicit WallPhaseTimer(telemetry::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr && telemetry::trace::wall_clock()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  WallPhaseTimer(const WallPhaseTimer&) = delete;
  WallPhaseTimer& operator=(const WallPhaseTimer&) = delete;
  ~WallPhaseTimer() { stop(); }

  /// Record now instead of at destruction; returns the elapsed µs
  /// (-1 when not armed). Idempotent.
  std::int64_t stop() {
    if (!armed_) return -1;
    armed_ = false;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
    hist_->record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
    return us;
  }

 private:
  telemetry::Histogram* hist_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void Orchestrator::set_attachment_points(NodeId ran_gateway,
                                         std::map<DatacenterId, NodeId> datacenter_gateways) {
  ran_gateway_ = ran_gateway;
  dc_gateways_ = std::move(datacenter_gateways);
}

void Orchestrator::start() {
  if (started_) return;
  started_ = true;
  simulator_->add_periodic(
      config_.monitoring_period, [this](SimTime now) { run_epoch(now); },
      config_.monitoring_period);
  if (config_.admission_window > Duration::zero()) {
    simulator_->add_periodic(
        config_.admission_window, [this](SimTime) { decide_pending_batch(); },
        config_.admission_window);
  }
}

RequestId Orchestrator::submit(const SliceSpec& spec) { return submit(spec, nullptr); }

RequestId Orchestrator::submit(const SliceSpec& spec,
                               std::unique_ptr<traffic::TrafficModel> workload) {
  // Keep the trace sim-clock current for admission spans that fire
  // between epochs (run_epoch refreshes it on its own cadence).
  telemetry::trace::set_sim_now(simulator_->now().as_micros());
  const RequestId request = request_ids_.next();
  const SliceId slice = slice_ids_.next();

  SliceRecord record;
  record.id = slice;
  record.request = request;
  record.spec = spec;
  record.state = SliceState::pending;
  record.submitted_at = simulator_->now();

  by_request_.emplace(request, slice);
  if (workload != nullptr) {
    workloads_.emplace(slice, Workload{std::move(workload)});
  }
  auto [it, inserted] = records_.emplace(slice, std::move(record));
  assert(inserted);
  events_.record(simulator_->now(), EventKind::request_submitted, slice,
                 spec.tenant_name + " requests " +
                     std::to_string(spec.expected_throughput.as_mbps()) + " Mb/s for " +
                     std::to_string(spec.duration.as_hours()) + " h");
  {
    json::Object op;
    op.emplace("slice", static_cast<double>(slice.value()));
    op.emplace("request", static_cast<double>(request.value()));
    op.emplace("spec", spec_to_json(spec));
    journal_op("submit", std::move(op));
  }
  if (config_.admission_window > Duration::zero()) {
    // Batched mode: decided at the next auction.
    if (submit_observer_) submit_observer_(it->second);
    return request;
  }
  decide(it->second);
  if (submit_observer_) submit_observer_(it->second);
  return request;
}

void Orchestrator::set_suspended(bool suspended) {
  if (suspended_ == suspended) return;
  suspended_ = suspended;
  note_fault("orchestrator", suspended,
             suspended ? "control plane suspended (restart in progress)"
                       : "control plane resumed");
}

void Orchestrator::note_fault(const std::string& component, bool active, std::string detail,
                              json::Object fields) {
  if (active) {
    active_faults_[component] = detail;
  } else if (active_faults_.erase(component) == 0) {
    return;  // clearing a fault that was never injected: no-op
  }
  fields.emplace("component", component);
  events_.record(simulator_->now(),
                 active ? EventKind::fault_injected : EventKind::fault_cleared, SliceId{},
                 component + ": " + detail, std::move(fields));
}

DataRate Orchestrator::sellable_capacity() const {
  DataRate capacity = ran_->available_capacity(config_.planning_cqi);
  for (const auto& [slice, other] : records_) {
    if (other.state == SliceState::active) {
      capacity += engine_.reclaimable(slice, other.spec.expected_throughput);
    }
  }
  return capacity;
}

bool Orchestrator::try_admit(SliceRecord& record) {
  TRACE_SCOPE("orch.admit.try");
  // Materialize the reclaim the capacity estimate assumed, then embed.
  apply_overbooking(simulator_->now());
  Result<InstallTimeline> timeline = embed(record);
  if (timeline.ok()) {
    record.state = SliceState::installing;
    last_timeline_ = timeline.value();
    ++admitted_total_;
    const SliceId slice = record.id;
    record.activates_at = simulator_->now() + timeline.value().total();
    simulator_->schedule_at(record.activates_at, [this, slice] { activate(slice); });
    json::Object audit;
    audit.emplace("reserved_mbps", record.reserved.as_mbps());
    audit.emplace("price_per_hour", record.spec.price_per_hour.as_units());
    audit.emplace("expected_revenue",
                  (record.spec.price_per_hour * record.spec.duration.as_hours()).as_units());
    audit.emplace("penalty_per_violation", record.spec.penalty_per_violation.as_units());
    audit.emplace("install_s", timeline.value().total().as_seconds());
    events_.record(simulator_->now(), EventKind::slice_admitted, slice,
                   "installing; ready in " +
                       std::to_string(timeline.value().total().as_seconds()) + " s",
                   std::move(audit));
    log_.info("admitted slice " + std::to_string(slice.value()) + " (" +
              record.spec.tenant_name + ")");
    json::Object op;
    op.emplace("slice", static_cast<double>(slice.value()));
    op.emplace("reserved_bps", record.reserved.bits_per_second());
    op.emplace("activates_at_us", static_cast<double>(record.activates_at.as_micros()));
    op.emplace("embedding", embedding_to_json(record.embedding));
    // embed() consumes a PLMN code even on failure, so admits and
    // rejects both carry the watermark for replay.
    op.emplace("next_plmn", static_cast<double>(next_plmn_));
    journal_op("admit", std::move(op));
    return true;
  }
  json::Object audit;
  audit.emplace("reason", timeline.error().message);
  audit.emplace("stage", std::string("embedding"));
  events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                 timeline.error().message, std::move(audit));
  log_.info("embedding failed: " + timeline.error().message);
  record.state = SliceState::rejected;
  ++rejected_total_;
  json::Object op;
  op.emplace("slice", static_cast<double>(record.id.value()));
  op.emplace("next_plmn", static_cast<double>(next_plmn_));
  journal_op("reject", std::move(op));
  return false;
}

void Orchestrator::record_admission_headroom(DataRate sellable) {
  if (registry_ == nullptr) return;
  const double mbps = sellable.as_mbps();
  slo_.admission_headroom->record(static_cast<std::uint64_t>(mbps < 0.0 ? 0.0 : mbps + 0.5));
  slo_.headroom_mbps.observe(simulator_->now(), mbps);
}

void Orchestrator::decide(SliceRecord& record) {
  assert(record.state == SliceState::pending);
  TRACE_SCOPE("orch.admit.decide");
  WallPhaseTimer timer(hist_.admission_us);
  const DataRate sellable = sellable_capacity();
  record_admission_headroom(sellable);
  const CandidateRequest candidate{record.request, record.spec};
  const std::vector<RequestId> selected = policy_->select({&candidate, 1}, sellable);
  if (!selected.empty() && selected.front() == record.request) {
    try_admit(record);
    return;
  }
  json::Object audit;
  audit.emplace("reason", std::string("declined"));
  audit.emplace("stage", std::string("policy"));
  audit.emplace("policy", std::string(policy_->name()));
  events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                 "declined by " + std::string(policy_->name()) + " policy",
                 std::move(audit));
  record.state = SliceState::rejected;
  ++rejected_total_;
  json::Object op;
  op.emplace("slice", static_cast<double>(record.id.value()));
  op.emplace("next_plmn", static_cast<double>(next_plmn_));
  journal_op("reject", std::move(op));
}

void Orchestrator::decide_pending_batch() {
  TRACE_SCOPE("orch.admit.batch");
  WallPhaseTimer timer(hist_.admission_us);
  std::vector<CandidateRequest> candidates;
  for (const auto& [slice, record] : records_) {
    if (record.state == SliceState::pending) {
      candidates.push_back(CandidateRequest{record.request, record.spec});
    }
  }
  if (candidates.empty()) return;

  const DataRate sellable = sellable_capacity();
  record_admission_headroom(sellable);
  const std::vector<RequestId> selected = policy_->select(candidates, sellable);
  const std::set<RequestId> chosen(selected.begin(), selected.end());

  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::pending) continue;
    if (chosen.contains(record.request)) {
      try_admit(record);
    } else {
      // Patient requests stay queued for later auctions until their
      // deadline; impatient ones (the default) are rejected now.
      const bool patient =
          config_.admission_patience > Duration::zero() &&
          simulator_->now() - record.submitted_at < config_.admission_patience;
      if (patient) continue;
      json::Object audit;
      audit.emplace("reason", std::string("lost_auction"));
      audit.emplace("stage", std::string("policy"));
      audit.emplace("policy", std::string(policy_->name()));
      events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                     "lost the " + std::string(policy_->name()) + " batch auction",
                     std::move(audit));
      record.state = SliceState::rejected;
      ++rejected_total_;
      json::Object op;
      op.emplace("slice", static_cast<double>(record.id.value()));
      op.emplace("next_plmn", static_cast<double>(next_plmn_));
      journal_op("reject", std::move(op));
    }
  }
}

Result<InstallTimeline> Orchestrator::embed(SliceRecord& record) {
  TRACE_SCOPE("orch.admit.embed");
  const SliceSpec& spec = record.spec;
  Embedding embedding;

  // 1. RAN: dynamic PLMN install (slice <-> PLMN mapping of the demo).
  embedding.plmn = PlmnId{next_plmn_++};
  if (Result<void> r = ran_->install_plmn(embedding.plmn); !r.ok()) return r.error();

  // 2. RAN: PRB reservation sized for the contracted throughput.
  if (Result<ran::RanAllocation> r = ran_->set_allocation(
          embedding.plmn, spec.expected_throughput, config_.planning_cqi);
      !r.ok()) {
    (void)ran_->remove_plmn(embedding.plmn);
    return r.error();
  }

  const auto rollback_ran = [&] {
    ran_->release_allocation(embedding.plmn);
    (void)ran_->remove_plmn(embedding.plmn);
  };

  // 3. Cloud: pick the datacenter for EPC + the vertical's edge service.
  const ComputeCapacity footprint =
      epc::epc_stack_template(record.id, spec.expected_throughput).footprint() +
      spec.edge_compute;
  const std::optional<DatacenterId> dc = cloud_->choose_datacenter(footprint, spec.needs_edge);
  if (!dc) {
    rollback_ran();
    return make_error(Errc::insufficient_capacity,
                      spec.needs_edge ? "no edge datacenter fits the slice"
                                      : "no datacenter fits the slice");
  }
  embedding.datacenter = *dc;
  const auto gw = dc_gateways_.find(*dc);
  if (gw == dc_gateways_.end()) {
    rollback_ran();
    return make_error(Errc::internal, "datacenter has no transport gateway configured");
  }

  // 4. Transport: delay/capacity-constrained dedicated path.
  Result<PathId> path = transport_->allocate_path(record.id, ran_gateway_, gw->second,
                                                  spec.expected_throughput, spec.max_latency);
  if (!path.ok()) {
    rollback_ran();
    return path.error();
  }
  embedding.paths.push_back(path.value());

  const auto rollback_transport = [&] {
    for (const PathId p : embedding.paths) (void)transport_->release_path(p);
  };

  // 4b. Edge placements also get a breakout leg toward the core cloud
  // (centralized services / internet), at a fraction of the contract.
  const cloud::Datacenter* placed = cloud_->find_datacenter(*dc);
  if (config_.edge_breakout_fraction > 0.0 && placed != nullptr &&
      placed->kind() == cloud::DatacenterKind::edge) {
    const auto core_gw = [&]() -> std::optional<NodeId> {
      for (const auto& [dc_id, node] : dc_gateways_) {
        const cloud::Datacenter* candidate = cloud_->find_datacenter(dc_id);
        if (candidate != nullptr && candidate->kind() == cloud::DatacenterKind::core) {
          return node;
        }
      }
      return std::nullopt;
    }();
    if (core_gw.has_value() && *core_gw != gw->second) {
      Result<PathId> breakout = transport_->allocate_path(
          record.id, gw->second, *core_gw, leg_rate(1, spec.expected_throughput),
          config_.breakout_delay_bound);
      if (!breakout.ok()) {
        rollback_transport();
        rollback_ran();
        return breakout.error();
      }
      embedding.paths.push_back(breakout.value());
    }
  }

  // 5. Cloud/EPC: deploy the slice's virtualized core as a Heat stack.
  Result<Duration> epc_time =
      epc_->deploy(record.id, *dc, spec.expected_throughput);
  if (!epc_time.ok()) {
    rollback_transport();
    rollback_ran();
    return epc_time.error();
  }

  // 6. Optional edge service stack for the vertical itself.
  if (spec.edge_compute.vcpus > 0.0) {
    cloud::StackTemplate svc;
    svc.name = "svc-slice-" + std::to_string(record.id.value());
    svc.resources.push_back(
        cloud::ResourceSpec{"svc", cloud::Flavor{"svc", spec.edge_compute}});
    Result<StackId> stack = cloud_->create_stack(*dc, svc);
    if (!stack.ok()) {
      (void)epc_->remove(record.id);
      rollback_transport();
      rollback_ran();
      return stack.error();
    }
    embedding.edge_stack = stack.value();
  }

  record.embedding = embedding;
  record.reserved = spec.expected_throughput;

  const auto jitter = [this](Duration d) {
    if (config_.install_jitter <= 0.0) return d;
    const double factor =
        std::max(0.2, 1.0 + config_.install_jitter * install_jitter_rng_.normal());
    return d * factor;
  };
  InstallTimeline timeline;
  timeline.plmn_install = jitter(config_.plmn_install_time);
  timeline.ran_reservation = jitter(config_.ran_reserve_time);
  const transport::PathReservation* reservation = transport_->find_path(path.value());
  timeline.path_setup =
      jitter(config_.path_setup_time_per_rule *
             static_cast<double>(reservation == nullptr ? 1 : reservation->route.hops()));
  timeline.epc_deploy = jitter(epc_time.value());
  timeline.activation_margin = config_.activation_margin;
  return timeline;
}

void Orchestrator::tear_down(SliceRecord& record) {
  for (const PathId path : record.embedding.paths) {
    (void)transport_->release_path(path);
  }
  record.embedding.paths.clear();
  if (record.embedding.edge_stack) {
    (void)cloud_->delete_stack(*record.embedding.edge_stack);
    record.embedding.edge_stack.reset();
  }
  (void)epc_->remove(record.id);
  if (record.embedding.plmn.valid()) {
    ran_->release_allocation(record.embedding.plmn);
    (void)ran_->remove_plmn(record.embedding.plmn);
    record.embedding.plmn = PlmnId::invalid();
  }
  engine_.untrack(record.id);
  record.reserved = DataRate::zero();
}

void Orchestrator::activate(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return;
  SliceRecord& record = it->second;
  if (record.state != SliceState::installing) return;  // terminated meanwhile

  const Result<void> r = epc_->activate(slice);
  assert(r.ok());
  (void)r;
  record.state = SliceState::active;
  record.active_at = simulator_->now();
  record.ends_at = record.active_at + record.spec.duration;
  engine_.track(slice);
  simulator_->schedule_at(record.ends_at, [this, slice] { expire(slice); });
  events_.record(simulator_->now(), EventKind::slice_active, slice,
                 "serving; expires at " + std::to_string(record.ends_at.as_hours()) + " h");
  log_.info("slice " + std::to_string(slice.value()) + " active");
  json::Object op;
  op.emplace("slice", static_cast<double>(slice.value()));
  op.emplace("at_us", static_cast<double>(record.active_at.as_micros()));
  op.emplace("ends_at_us", static_cast<double>(record.ends_at.as_micros()));
  journal_op("activate", std::move(op));
}

void Orchestrator::expire(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return;
  SliceRecord& record = it->second;
  if (record.state != SliceState::active) return;
  tear_down(record);
  record.state = SliceState::expired;
  events_.record(simulator_->now(), EventKind::slice_expired, slice,
                 std::to_string(record.violation_epochs) + " violation epochs over its life");
  log_.info("slice " + std::to_string(slice.value()) + " expired");
  json::Object op;
  op.emplace("slice", static_cast<double>(slice.value()));
  journal_op("expire", std::move(op));
}

Result<void> Orchestrator::resize_slice(SliceId slice, DataRate new_contract) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return make_error(Errc::not_found, "unknown slice");
  SliceRecord& record = it->second;
  if (record.state != SliceState::active)
    return make_error(Errc::conflict, "slice is not active");
  if (new_contract <= DataRate::zero())
    return make_error(Errc::invalid_argument, "contract must be positive");

  const DataRate old_reserved = record.reserved;

  // Radio first (atomic in itself).
  Result<ran::RanAllocation> radio =
      ran_->set_allocation(record.embedding.plmn, new_contract, config_.planning_cqi);
  if (!radio.ok()) return radio.error();

  // Transport next; on failure restore the radio reservation.
  for (std::size_t i = 0; i < record.embedding.paths.size(); ++i) {
    Result<void> resized =
        transport_->resize_path(record.embedding.paths[i], leg_rate(i, new_contract));
    if (!resized.ok()) {
      for (std::size_t j = 0; j < i; ++j) {
        (void)transport_->resize_path(record.embedding.paths[j], leg_rate(j, old_reserved));
      }
      (void)ran_->set_allocation(record.embedding.plmn, old_reserved, config_.planning_cqi);
      return resized.error();
    }
  }

  json::Object audit;
  audit.emplace("from_mbps", record.spec.expected_throughput.as_mbps());
  audit.emplace("to_mbps", new_contract.as_mbps());
  record.spec.expected_throughput = new_contract;
  record.reserved = new_contract;  // overbooking re-targets next epoch
  events_.record(simulator_->now(), EventKind::slice_resized, slice,
                 "contract now " + std::to_string(new_contract.as_mbps()) + " Mb/s",
                 std::move(audit));
  ++reconfigurations_;
  json::Object op;
  op.emplace("slice", static_cast<double>(slice.value()));
  op.emplace("contract_bps", new_contract.bits_per_second());
  op.emplace("reserved_bps", record.reserved.bits_per_second());
  journal_op("resize", std::move(op));
  log_.info("slice " + std::to_string(slice.value()) + " resized to " +
            std::to_string(new_contract.as_mbps()) + " Mb/s");
  return {};
}

Result<void> Orchestrator::attach_workload(SliceId slice,
                                           std::unique_ptr<traffic::TrafficModel> workload) {
  if (!records_.contains(slice)) return make_error(Errc::not_found, "unknown slice");
  workloads_.insert_or_assign(slice, Workload{std::move(workload)});
  return {};
}

Result<void> Orchestrator::terminate(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return make_error(Errc::not_found, "unknown slice");
  SliceRecord& record = it->second;
  if (!record.is_live()) return make_error(Errc::conflict, "slice is not live");
  tear_down(record);
  record.state = SliceState::terminated;
  events_.record(simulator_->now(), EventKind::slice_terminated, slice,
                 "operator-initiated teardown");
  json::Object op;
  op.emplace("slice", static_cast<double>(slice.value()));
  journal_op("terminate", std::move(op));
  return {};
}

const SliceRecord* Orchestrator::find_by_request(RequestId request) const noexcept {
  const auto it = by_request_.find(request);
  if (it == by_request_.end()) return nullptr;
  return find_slice(it->second);
}

const SliceRecord* Orchestrator::find_slice(SliceId slice) const noexcept {
  const auto it = records_.find(slice);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const SliceRecord*> Orchestrator::all_slices() const {
  std::vector<const SliceRecord*> out;
  out.reserve(records_.size());
  for (const auto& [slice, record] : records_) out.push_back(&record);
  return out;
}

DataRate Orchestrator::apply_overbooking(SimTime now) {
  (void)now;
  DataRate reclaimed = DataRate::zero();
  if (!config_.overbooking.enabled) return reclaimed;

  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active) continue;
    const DataRate contracted = record.spec.expected_throughput;
    const DataRate target = engine_.target_reservation(slice, contracted);
    const double delta_mbps = target.as_mbps() - record.reserved.as_mbps();
    if (std::abs(delta_mbps) <
        config_.reconfigure_threshold * contracted.as_mbps()) {
      continue;  // hysteresis
    }

    // Radio first; transport follows. Growing can fail when new slices
    // took the headroom — that is the overbooking risk; keep what we
    // can get and try again next epoch.
    Result<ran::RanAllocation> radio =
        ran_->set_allocation(record.embedding.plmn, target, config_.planning_cqi);
    if (!radio.ok()) {
      log_.debug("grow-back failed for slice " + std::to_string(slice.value()) + ": " +
                 radio.error().message);
      continue;
    }
    for (std::size_t leg = 0; leg < record.embedding.paths.size(); ++leg) {
      (void)transport_->resize_path(record.embedding.paths[leg], leg_rate(leg, target));
    }
    reclaimed += clamp_non_negative(record.reserved - target);
    json::Object audit;
    audit.emplace("from_mbps", record.reserved.as_mbps());
    audit.emplace("to_mbps", target.as_mbps());
    audit.emplace("reclaimed_mbps",
                  clamp_non_negative(record.reserved - target).as_mbps());
    audit.emplace("contracted_mbps", contracted.as_mbps());
    events_.record(simulator_->now(), EventKind::slice_reconfigured, slice,
                   "reservation " + std::to_string(record.reserved.as_mbps()) + " -> " +
                       std::to_string(target.as_mbps()) + " Mb/s",
                   std::move(audit));
    record.reserved = target;
    ++reconfigurations_;
    json::Object op;
    op.emplace("slice", static_cast<double>(slice.value()));
    op.emplace("reserved_bps", target.bits_per_second());
    journal_op("reconfigure", std::move(op));
  }
  return reclaimed;
}

void Orchestrator::run_epoch(SimTime now) {
  if (suspended_) return;  // control-plane blackout: the epoch is simply missed
  telemetry::trace::set_sim_now(now.as_micros());
  TRACE_SCOPE("orch.serve_epoch");
  WallPhaseTimer epoch_timer(hist_.epoch_us);

  // 1. Sample offered demand of every active slice. The demand and
  // report vectors are members reused across epochs (capacity sticks).
  std::vector<std::pair<PlmnId, DataRate>>& ran_demands = epoch_ran_demands_;
  ran_demands.clear();
  std::map<SliceId, DataRate> demand_of;
  {
    TRACE_SCOPE("orch.epoch.sample_demand");
    for (auto& [slice, record] : records_) {
      if (record.state != SliceState::active) continue;
      DataRate demand = DataRate::zero();
      const auto wl = workloads_.find(slice);
      if (wl != workloads_.end()) {
        demand = DataRate::mbps(std::max(0.0, wl->second.model->sample(now)));
      }
      demand_of.emplace(slice, demand);
      ran_demands.emplace_back(record.embedding.plmn, demand);
    }
  }

  // 2. Radio serves (allocation-free epoch kernel; see ran/controller.hpp).
  std::vector<ran::RanServeReport>& radio_reports = epoch_radio_reports_;
  {
    TRACE_SCOPE("orch.epoch.ran_serve");
    WallPhaseTimer timer(hist_.ran_us);
    ran_->serve_epoch_into(ran_demands, now, radio_reports);
  }
  std::map<PlmnId, DataRate> radio_served;
  for (const ran::RanServeReport& r : radio_reports) radio_served.emplace(r.plmn, r.served);

  // 3. Transport carries what the radio delivered (allocation-free
  // epoch kernel over reused buffers; see transport/controller.hpp).
  std::vector<std::pair<PathId, DataRate>>& path_demands = epoch_path_demands_;
  path_demands.clear();
  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active || record.embedding.paths.empty()) continue;
    const auto served = radio_served.find(record.embedding.plmn);
    const DataRate offered =
        served == radio_served.end() ? DataRate::zero() : min(demand_of[slice], served->second);
    path_demands.emplace_back(record.embedding.paths.front(), offered);
  }
  std::vector<transport::PathServeReport>& path_reports = epoch_path_reports_;
  {
    TRACE_SCOPE("orch.epoch.transport_serve");
    WallPhaseTimer timer(hist_.transport_us);
    transport_->serve_epoch_into(path_demands, now, path_reports);
  }
  std::map<SliceId, const transport::PathServeReport*> path_by_slice;
  for (const transport::PathServeReport& r : path_reports) path_by_slice.emplace(r.slice, &r);

  {
    TRACE_SCOPE("orch.epoch.cloud_record");
    cloud_->record_epoch(now);
  }

  // 4. SLA check + revenue accrual + demand learning per active slice
  // (the sequential reduction over the parallel serve results). Closed
  // explicitly after the epoch journal append, before phase 5.
  std::optional<telemetry::trace::Scope> reduce_scope;
  reduce_scope.emplace("orch.epoch.reduce");
  WallPhaseTimer reduce_timer(hist_.reduce_us);
  json::Array epoch_entries;  // journaled so replay re-applies exact accruals
  double epoch_demand_mbps = 0.0;    // realized demand across active slices
  double epoch_reserved_mbps = 0.0;  // forecast-driven reservations held
  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active) continue;
    const DataRate demand = demand_of[slice];
    const auto pr = path_by_slice.find(slice);
    const DataRate achieved =
        pr == path_by_slice.end() ? DataRate::zero() : pr->second->served;
    const bool delay_violated = pr != path_by_slice.end() && pr->second->delay_violated;

    const DataRate entitled = min(demand, record.spec.expected_throughput);
    const bool throughput_violated =
        achieved < entitled * (1.0 - config_.sla_tolerance) &&
        entitled > DataRate::zero();

    const bool violated = throughput_violated || delay_violated;
    json::Object epoch_entry;
    epoch_entry.emplace("slice", static_cast<double>(slice.value()));
    // Same Money expression ledger_.accrue uses — replay re-applies the
    // exact cents instead of re-deriving price x hours.
    epoch_entry.emplace("accrued_cents",
                        static_cast<double>((record.spec.price_per_hour *
                                             config_.monitoring_period.as_hours())
                                                .as_cents()));
    epoch_entry.emplace("violation", violated);
    epoch_entry.emplace("penalty_cents",
                        static_cast<double>(record.spec.penalty_per_violation.as_cents()));
    epoch_entry.emplace("demand_mbps", demand.as_mbps());
    epoch_entries.push_back(std::move(epoch_entry));

    ledger_.accrue(slice, record.spec.price_per_hour, config_.monitoring_period);
    ++record.served_epochs;
    if (throughput_violated || delay_violated) {
      ledger_.charge_violation(slice, record.spec.penalty_per_violation);
      ++record.violation_epochs;
      json::Object audit;
      audit.emplace("achieved_mbps", achieved.as_mbps());
      audit.emplace("entitled_mbps", entitled.as_mbps());
      audit.emplace("delay_violated", delay_violated);
      audit.emplace("penalty", record.spec.penalty_per_violation.as_units());
      events_.record(now, EventKind::sla_violation, slice,
                     delay_violated ? "delay bound breached"
                                    : "served " + std::to_string(achieved.as_mbps()) +
                                          " of entitled " +
                                          std::to_string(entitled.as_mbps()) + " Mb/s",
                     std::move(audit));
    }

    engine_.observe(slice, demand.as_mbps());
    epoch_demand_mbps += demand.as_mbps();
    epoch_reserved_mbps += record.reserved.as_mbps();

    if (registry_ != nullptr) {
      auto handle_it = slice_handles_.find(slice);
      if (handle_it == slice_handles_.end()) {
        const std::string prefix = "slice." + std::to_string(slice.value());
        handle_it = slice_handles_
                        .emplace(slice, SliceHandles{registry_->handle(prefix + ".demand_mbps"),
                                                     registry_->handle(prefix + ".achieved_mbps"),
                                                     registry_->handle(prefix + ".reserved_mbps"),
                                                     &registry_->counter(prefix + ".violations")})
                        .first;
      }
      handle_it->second.demand.observe(now, demand.as_mbps());
      handle_it->second.achieved.observe(now, achieved.as_mbps());
      handle_it->second.reserved.observe(now, record.reserved.as_mbps());
      if (violated) {
        handle_it->second.violations->increment();
        slo_.violation_epochs->increment();
        slo_.penalty_cents->increment(
            static_cast<std::uint64_t>(record.spec.penalty_per_violation.as_cents()));
      }
    }
  }
  // Forecast error is signed: positive = reserved above realized demand
  // (headroom the overbooking engine could still reclaim), negative =
  // under-reservation (the precursor of violation epochs).
  if (registry_ != nullptr) {
    slo_.demand_mbps.observe(now, epoch_demand_mbps);
    slo_.forecast_error_mbps.observe(now, epoch_reserved_mbps - epoch_demand_mbps);
  }

  if (!epoch_entries.empty()) {
    json::Object op;
    op.emplace("slices", std::move(epoch_entries));
    journal_op("epoch", std::move(op));
  }
  reduce_scope.reset();
  reduce_timer.stop();

  // 5. Reconfiguration: shrink/grow reservations toward forecast targets.
  {
    TRACE_SCOPE("orch.epoch.overbooking");
    apply_overbooking(now);
  }

  // 6. Monitoring over REST (the paper's controller -> orchestrator feed).
  {
    TRACE_SCOPE("orch.epoch.poll_metrics");
    poll_domain_metrics();
  }

  {
    TRACE_SCOPE("orch.epoch.publish");
    publish_summary(now);
  }

  epoch_ran_ = true;
  last_epoch_at_ = now;
  last_epoch_active_ = demand_of.size();
  last_epoch_wall_us_ = epoch_timer.stop();
}

void Orchestrator::poll_domain_metrics() {
  if (bus_ == nullptr) return;
  // The poll transfers each domain's serialized metrics document over
  // the bus (the paper's monitoring feed); only the response status is
  // inspected here — dashboards parse the body, the epoch loop must not
  // pay for a JSON parse it would throw away.
  net::Request request;
  request.target = "/metrics";
  for (const char* domain : {"ran", "transport", "cloud"}) {
    if (!bus_->has_service(domain)) continue;
    const Result<net::Response> response = bus_->call(domain, request);
    if (!response.ok()) {
      log_.warn(std::string("metrics poll failed for ") + domain + ": " +
                response.error().message);
    } else if (response.value().status != net::Status::ok) {
      log_.warn(std::string("metrics poll failed for ") + domain + ": HTTP " +
                std::to_string(static_cast<int>(response.value().status)));
    }
  }
}

OrchestratorSummary Orchestrator::summary() const {
  OrchestratorSummary s;
  for (const auto& [slice, record] : records_) {
    if (record.state == SliceState::active) {
      ++s.active_slices;
      s.contracted_total += record.spec.expected_throughput;
      s.reserved_total += record.reserved;
    } else if (record.state == SliceState::installing) {
      ++s.installing_slices;
    }
  }
  s.admitted_total = admitted_total_;
  s.rejected_total = rejected_total_;
  s.multiplexing_gain = s.reserved_total > DataRate::zero()
                            ? s.contracted_total / s.reserved_total
                            : 1.0;
  s.earned = ledger_.total_earned();
  s.penalties = ledger_.total_penalties();
  s.net = ledger_.net_revenue();
  s.violation_epochs = ledger_.total_violation_epochs();
  s.reconfigurations = reconfigurations_;
  return s;
}

void Orchestrator::publish_summary(SimTime now) {
  if (registry_ == nullptr) return;
  const OrchestratorSummary s = summary();
  if (!summary_handles_.active_slices.valid()) {
    summary_handles_.active_slices = registry_->handle("orchestrator.active_slices");
    summary_handles_.multiplexing_gain = registry_->handle("orchestrator.multiplexing_gain");
    summary_handles_.contracted_mbps = registry_->handle("orchestrator.contracted_mbps");
    summary_handles_.reserved_mbps = registry_->handle("orchestrator.reserved_mbps");
    summary_handles_.net_revenue = registry_->handle("orchestrator.net_revenue");
    summary_handles_.penalties = registry_->handle("orchestrator.penalties");
  }
  summary_handles_.active_slices.observe(now, static_cast<double>(s.active_slices));
  summary_handles_.multiplexing_gain.observe(now, s.multiplexing_gain);
  summary_handles_.contracted_mbps.observe(now, s.contracted_total.as_mbps());
  summary_handles_.reserved_mbps.observe(now, s.reserved_total.as_mbps());
  summary_handles_.net_revenue.observe(now, s.net.as_units());
  summary_handles_.penalties.observe(now, s.penalties.as_units());
}

// --- Durability (docs/persistence.md) ---------------------------------------

void Orchestrator::journal_op(const char* op, json::Object fields) {
  if (store_ == nullptr || !store_->is_open()) return;
  fields.emplace("op", std::string(op));
  fields.emplace("t_us", static_cast<double>(simulator_->now().as_micros()));
  if (const Result<std::uint64_t> seq = store_->append(std::move(fields)); !seq.ok()) {
    // Durability degrades, the control plane keeps running.
    log_.warn(std::string("journal append failed (") + op + "): " + seq.error().message);
    return;
  }
  if (store_->wants_snapshot()) {
    if (const Result<std::uint64_t> snap = snapshot_now(); !snap.ok()) {
      log_.warn("auto-snapshot failed: " + snap.error().message);
    }
  }
}

json::Value Orchestrator::state_json() const {
  json::Object out;
  json::Array records;
  for (const auto& [slice, record] : records_) records.push_back(record_to_json(record));
  out.emplace("records", std::move(records));
  json::Object ledger;
  for (const auto& [slice, entry] : ledger_.entries()) {
    json::Object e;
    e.emplace("earned_cents", static_cast<double>(entry.earned.as_cents()));
    e.emplace("penalty_cents", static_cast<double>(entry.penalties.as_cents()));
    e.emplace("violation_epochs", static_cast<double>(entry.violation_epochs));
    ledger.emplace(std::to_string(slice.value()), std::move(e));
  }
  out.emplace("ledger", std::move(ledger));
  out.emplace("admitted_total", static_cast<double>(admitted_total_));
  out.emplace("rejected_total", static_cast<double>(rejected_total_));
  out.emplace("reconfigurations", static_cast<double>(reconfigurations_));
  out.emplace("next_plmn", static_cast<double>(next_plmn_));
  return json::Value{std::move(out)};
}

Result<std::uint64_t> Orchestrator::snapshot_now() {
  if (store_ == nullptr || !store_->is_open())
    return make_error(Errc::unavailable, "no open state store attached");
  json::Object wrapped;
  wrapped.emplace("t_us", static_cast<double>(simulator_->now().as_micros()));
  wrapped.emplace("data", state_json());
  return store_->write_snapshot(json::Value{std::move(wrapped)});
}

void Orchestrator::load_state(const json::Value& state) {
  if (const json::Value* records = state.find("records");
      records != nullptr && records->is_array()) {
    for (const json::Value& v : records->as_array()) {
      SliceRecord record = record_from_json(v);
      if (!record.id.valid()) continue;
      if (record.state == SliceState::active) engine_.track(record.id);
      by_request_.insert_or_assign(record.request, record.id);
      records_.insert_or_assign(record.id, std::move(record));
    }
  }
  if (const json::Value* ledger = state.find("ledger");
      ledger != nullptr && ledger->is_object()) {
    for (const auto& [key, entry] : ledger->as_object()) {
      SliceLedgerEntry e;
      e.earned = Money::cents(field_i64(entry, "earned_cents"));
      e.penalties = Money::cents(field_i64(entry, "penalty_cents"));
      e.violation_epochs = field_u64(entry, "violation_epochs");
      ledger_.restore(SliceId{std::strtoull(key.c_str(), nullptr, 10)}, e);
    }
  }
  admitted_total_ = field_u64(state, "admitted_total");
  rejected_total_ = field_u64(state, "rejected_total");
  reconfigurations_ = field_u64(state, "reconfigurations");
  next_plmn_ = std::max(next_plmn_, field_u64(state, "next_plmn"));
}

void Orchestrator::apply_journal_op(const json::Value& op) {
  const std::string kind = field_str(op, "op");

  if (kind == "epoch") {
    const json::Value* entries = op.find("slices");
    if (entries == nullptr || !entries->is_array()) return;
    for (const json::Value& entry : entries->as_array()) {
      const SliceId s = field_id<SliceTag>(entry, "slice");
      const auto it = records_.find(s);
      if (it == records_.end()) continue;
      ledger_.add_earned(s, Money::cents(field_i64(entry, "accrued_cents")));
      ++it->second.served_epochs;
      if (field_bool(entry, "violation")) {
        ledger_.charge_violation(s, Money::cents(field_i64(entry, "penalty_cents")));
        ++it->second.violation_epochs;
      }
      // Warm the forecaster with the journaled offered demand so
      // overbooking targets pick up where the crashed process left off.
      if (engine_.tracks(s)) engine_.observe(s, field_num(entry, "demand_mbps"));
    }
    return;
  }

  const SliceId slice = field_id<SliceTag>(op, "slice");
  if (!slice.valid()) return;

  if (kind == "submit") {
    if (records_.contains(slice)) return;
    SliceRecord record;
    record.id = slice;
    record.request = field_id<RequestTag>(op, "request");
    if (const json::Value* spec = op.find("spec")) record.spec = spec_from_json(*spec);
    record.state = SliceState::pending;
    record.submitted_at = SimTime::from_micros(field_i64(op, "t_us"));
    by_request_.insert_or_assign(record.request, slice);
    records_.insert_or_assign(slice, std::move(record));
    return;
  }

  const auto it = records_.find(slice);
  if (it == records_.end()) return;
  SliceRecord& record = it->second;

  if (kind == "admit") {
    record.state = SliceState::installing;
    record.reserved = DataRate::bps(field_num(op, "reserved_bps"));
    record.activates_at = SimTime::from_micros(field_i64(op, "activates_at_us"));
    if (const json::Value* e = op.find("embedding")) record.embedding = embedding_from_json(*e);
    ++admitted_total_;
    next_plmn_ = std::max(next_plmn_, field_u64(op, "next_plmn"));
  } else if (kind == "reject") {
    record.state = SliceState::rejected;
    ++rejected_total_;
    next_plmn_ = std::max(next_plmn_, field_u64(op, "next_plmn"));
  } else if (kind == "activate") {
    record.state = SliceState::active;
    record.active_at = SimTime::from_micros(field_i64(op, "at_us"));
    record.ends_at = SimTime::from_micros(field_i64(op, "ends_at_us"));
    engine_.track(slice);
  } else if (kind == "resize") {
    record.spec.expected_throughput = DataRate::bps(field_num(op, "contract_bps"));
    record.reserved = DataRate::bps(field_num(op, "reserved_bps"));
    ++reconfigurations_;
  } else if (kind == "reconfigure") {
    record.reserved = DataRate::bps(field_num(op, "reserved_bps"));
    ++reconfigurations_;
  } else if (kind == "expire" || kind == "terminate") {
    // Mirror what tear_down leaves in memory (the domain releases
    // themselves have no meaning during replay — nothing is installed).
    record.embedding.paths.clear();
    record.embedding.edge_stack.reset();
    record.embedding.plmn = PlmnId::invalid();
    record.reserved = DataRate::zero();
    engine_.untrack(slice);
    record.state = kind == "expire" ? SliceState::expired : SliceState::terminated;
  } else {
    log_.warn("replay skipped unknown journal op '" + kind + "'");
  }
}

void Orchestrator::reinstall_recovered(RecoveryStats& stats) {
  const auto core_gateway = [this]() -> std::optional<NodeId> {
    for (const auto& [dc_id, node] : dc_gateways_) {
      const cloud::Datacenter* candidate = cloud_->find_datacenter(dc_id);
      if (candidate != nullptr && candidate->kind() == cloud::DatacenterKind::core) return node;
    }
    return std::nullopt;
  }();

  for (auto& [slice, record] : records_) {
    if (!record.is_live()) continue;
    const SliceId id = slice;
    const bool ok = [&]() -> bool {
      const Embedding& e = record.embedding;
      if (!e.plmn.valid() || !e.datacenter.valid()) return false;
      const auto gw = dc_gateways_.find(e.datacenter);
      if (gw == dc_gateways_.end()) return false;
      if (!ran_->install_plmn(e.plmn).ok()) return false;
      if (!ran_->set_allocation(e.plmn, record.reserved, config_.planning_cqi).ok())
        return false;
      for (std::size_t i = 0; i < e.paths.size(); ++i) {
        const NodeId src = i == 0 ? ran_gateway_ : gw->second;
        if (i > 0 && !core_gateway.has_value()) return false;
        const NodeId dst = i == 0 ? gw->second : *core_gateway;
        const Duration bound = i == 0 ? record.spec.max_latency : config_.breakout_delay_bound;
        if (!transport_
                 ->restore_path(e.paths[i], id, src, dst, leg_rate(i, record.reserved), bound)
                 .ok()) {
          return false;
        }
      }
      if (!epc_->deploy(id, e.datacenter, record.spec.expected_throughput).ok()) return false;
      if (e.edge_stack.has_value()) {
        cloud::StackTemplate svc;
        svc.name = "svc-slice-" + std::to_string(id.value());
        svc.resources.push_back(
            cloud::ResourceSpec{"svc", cloud::Flavor{"svc", record.spec.edge_compute}});
        const Result<StackId> stack = cloud_->create_stack(e.datacenter, svc);
        if (!stack.ok()) return false;
        record.embedding.edge_stack = stack.value();
      }
      if (record.state == SliceState::active) {
        if (!epc_->activate(id).ok()) return false;
        engine_.track(id);
        simulator_->schedule_at(record.ends_at, [this, id] { expire(id); });
      } else {
        simulator_->schedule_at(record.activates_at, [this, id] { activate(id); });
      }
      return true;
    }();
    if (ok) {
      ++stats.reinstalled;
      continue;
    }
    // Degrade, never crash: the substrate could not re-fit this slice
    // (capacity moved while we were down, or the record was damaged).
    ++stats.reinstall_failures;
    tear_down(record);
    record.state = SliceState::terminated;
    events_.record(simulator_->now(), EventKind::slice_terminated, id,
                   "substrate could not re-fit the slice on recovery");
    log_.warn("recovery could not reinstall slice " + std::to_string(id.value()));
    json::Object op;
    op.emplace("slice", static_cast<double>(id.value()));
    journal_op("terminate", op);
  }
}

Result<RecoveryStats> Orchestrator::recover_from_store() {
  if (store_ == nullptr || !store_->is_open())
    return make_error(Errc::unavailable, "no open state store attached");
  if (!records_.empty() || admitted_total_ != 0 || rejected_total_ != 0)
    return make_error(Errc::conflict, "orchestrator already holds slice state");

  const auto wall_start = std::chrono::steady_clock::now();
  const store::RecoveredInput& in = store_->recovered();

  RecoveryStats stats;
  stats.had_snapshot = in.has_snapshot;
  stats.snapshot_seq = in.snapshot_seq;
  stats.journal_truncated = in.journal_truncated;

  // Fast-forward the simulator to the last journaled instant *before*
  // touching state: anything pending in between (periodic epochs armed
  // by start()) fires against an empty orchestrator and is harmless,
  // and every recovered timer then lands in the future.
  std::int64_t last_us = 0;
  if (in.has_snapshot) last_us = field_i64(in.snapshot_state, "t_us");
  for (const json::Value& op : in.events) {
    last_us = std::max(last_us, field_i64(op, "t_us"));
  }
  if (SimTime::from_micros(last_us) > simulator_->now()) {
    (void)simulator_->run_until(SimTime::from_micros(last_us));
  }

  if (in.has_snapshot) {
    if (const json::Value* data = in.snapshot_state.find("data")) load_state(*data);
  }
  for (const json::Value& op : in.events) {
    apply_journal_op(op);
    ++stats.events_replayed;
  }
  stats.records_recovered = records_.size();

  // Keep every allocator ahead of the ids we restored.
  for (const auto& [slice, record] : records_) {
    slice_ids_.advance_past(slice);
    request_ids_.advance_past(record.request);
  }

  reinstall_recovered(stats);

  store_->discard_recovered();
  stats.replay_millis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();
  last_recovery_ = stats;
  if (registry_ != nullptr) {
    registry_->observe("store.recover_ms", simulator_->now(), stats.replay_millis);
    registry_->observe("store.recovered_records", simulator_->now(),
                       static_cast<double>(stats.records_recovered));
  }
  events_.record(simulator_->now(), EventKind::state_recovered, SliceId{0},
                 "replayed " + std::to_string(stats.events_replayed) + " events, " +
                     std::to_string(stats.reinstalled) + " slices reinstalled, " +
                     std::to_string(stats.reinstall_failures) + " lost");
  log_.info("state recovered: " + std::to_string(stats.records_recovered) + " records, " +
            std::to_string(stats.events_replayed) + " events replayed");
  return stats;
}

json::Value Orchestrator::health_json() const {
  const SimTime now = simulator_->now();

  // Component liveness: reachability of every domain service over the
  // monitoring bus (absent bus = standalone mode, reported as such).
  json::Object components;
  for (const char* domain : {"ran", "transport", "cloud"}) {
    components.emplace(domain, bus_ != nullptr && bus_->has_service(domain));
  }

  // Journal lag: records appended since the last snapshot — what a
  // crash would have to replay.
  bool store_degraded = false;
  json::Object journal;
  journal.emplace("attached", store_ != nullptr);
  if (store_ != nullptr) {
    journal.emplace("open", store_->is_open());
    journal.emplace("lag_records", static_cast<double>(store_->journal_records()));
    journal.emplace("bytes", static_cast<double>(store_->journal_bytes()));
    store_degraded = !store_->is_open();
  }

  json::Object last_epoch;
  last_epoch.emplace("ran", epoch_ran_);
  bool epoch_stale = false;
  if (epoch_ran_) {
    last_epoch.emplace("t_s", last_epoch_at_.as_seconds());
    last_epoch.emplace("active_slices", static_cast<double>(last_epoch_active_));
    if (last_epoch_wall_us_ >= 0) {
      last_epoch.emplace("duration_us", static_cast<double>(last_epoch_wall_us_));
    }
    epoch_stale = started_ && now - last_epoch_at_ > config_.monitoring_period * 2.0;
  } else {
    // Before the first epoch the loop is healthy as long as one is due.
    epoch_stale = started_ && now.as_micros() > (config_.monitoring_period * 2.0).as_micros();
  }
  last_epoch.emplace("stale", epoch_stale);

  json::Object faults;
  for (const auto& [component, detail] : active_faults_) faults.emplace(component, detail);

  json::Object out;
  out.emplace("status", epoch_stale || store_degraded || !active_faults_.empty()
                            ? std::string("degraded")
                            : std::string("ok"));
  out.emplace("faults", std::move(faults));
  out.emplace("suspended", suspended_);
  out.emplace("started", started_);
  out.emplace("sim_time_s", now.as_seconds());
  out.emplace("components", std::move(components));
  out.emplace("journal", std::move(journal));
  out.emplace("last_epoch", std::move(last_epoch));
  out.emplace("trace", telemetry::trace::Tracer::instance().status_json());
  return json::Value{std::move(out)};
}

std::shared_ptr<net::Router> Orchestrator::make_router() {
  auto router = std::make_shared<net::Router>();

  const auto record_json = [this](const SliceRecord& record) {
    json::Object entry;
    entry.emplace("slice", static_cast<double>(record.id.value()));
    entry.emplace("request", static_cast<double>(record.request.value()));
    entry.emplace("tenant", record.spec.tenant_name);
    entry.emplace("vertical", std::string(traffic::to_string(record.spec.vertical)));
    entry.emplace("state", std::string(to_string(record.state)));
    entry.emplace("contracted_mbps", record.spec.expected_throughput.as_mbps());
    entry.emplace("reserved_mbps", record.reserved.as_mbps());
    entry.emplace("max_latency_ms", record.spec.max_latency.as_millis());
    entry.emplace("violation_epochs", static_cast<double>(record.violation_epochs));
    if (const SliceLedgerEntry* ledger = ledger_.find(record.id)) {
      entry.emplace("earned", ledger->earned.as_units());
      entry.emplace("penalties", ledger->penalties.as_units());
    }
    return json::Value(std::move(entry));
  };

  router->add(net::Method::post, "/slices", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const json::Value& v = doc.value();

    // Two ways to name what is requested: a catalog template, or a
    // vertical + duration (the raw dashboard form).
    SliceSpec spec;
    if (const json::Value* tmpl = v.find("template"); tmpl != nullptr && tmpl->is_string()) {
      Result<SliceSpec> from_catalog =
          v.find("duration_hours") != nullptr && v.find("duration_hours")->is_number()
              ? catalog_.instantiate(tmpl->as_string(),
                                     Duration::hours(v.find("duration_hours")->as_number()))
              : catalog_.instantiate(tmpl->as_string());
      if (!from_catalog.ok()) return net::Response::from_error(from_catalog.error());
      spec = std::move(from_catalog).value();
    } else {
      const Result<std::string> vertical_name = v.get_string("vertical");
      if (!vertical_name.ok()) return net::Response::from_error(vertical_name.error());
      std::optional<traffic::Vertical> vertical;
      for (const traffic::Vertical candidate : traffic::all_verticals()) {
        if (traffic::to_string(candidate) == vertical_name.value()) vertical = candidate;
      }
      if (!vertical)
        return net::Response::from_error(make_error(
            Errc::invalid_argument, "unknown vertical '" + vertical_name.value() + "'"));

      const Result<double> hours = v.get_number("duration_hours");
      if (!hours.ok()) return net::Response::from_error(hours.error());
      spec = SliceSpec::from_profile(traffic::profile_for(*vertical),
                                     Duration::hours(hours.value()));
    }
    // Dashboard overrides of the profile defaults.
    if (const json::Value* f = v.find("throughput_mbps"); f != nullptr && f->is_number())
      spec.expected_throughput = DataRate::mbps(f->as_number());
    if (const json::Value* f = v.find("max_latency_ms"); f != nullptr && f->is_number())
      spec.max_latency = Duration::millis(f->as_number());
    if (const json::Value* f = v.find("price_per_hour"); f != nullptr && f->is_number())
      spec.price_per_hour = Money::units(f->as_number());
    if (const json::Value* f = v.find("penalty_per_violation"); f != nullptr && f->is_number())
      spec.penalty_per_violation = Money::units(f->as_number());
    if (const json::Value* f = v.find("tenant"); f != nullptr && f->is_string())
      spec.tenant_name = f->as_string();

    const RequestId request = submit(spec);
    const SliceRecord* record = find_by_request(request);
    assert(record != nullptr);
    json::Object body;
    body.emplace("request", static_cast<double>(request.value()));
    body.emplace("slice", static_cast<double>(record->id.value()));
    body.emplace("state", std::string(to_string(record->state)));
    const net::Status status = record->state == SliceState::rejected
                                   ? net::Status::conflict
                                   : net::Status::created;
    return net::Response::json(status, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/slices", [this, record_json](const net::RouteContext&) {
    json::Array out;
    for (const auto& [slice, record] : records_) out.push_back(record_json(record));
    json::Object body;
    body.emplace("slices", std::move(out));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/slices/{id}",
              [this, record_json](const net::RouteContext& ctx) {
                const Result<std::uint64_t> id = ctx.id_param("id");
                if (!id.ok()) return net::Response::from_error(id.error());
                const SliceRecord* record = find_slice(SliceId{id.value()});
                if (record == nullptr)
                  return net::Response::from_error(make_error(Errc::not_found, "unknown slice"));
                return net::Response::json(net::Status::ok, json::serialize(record_json(*record)));
              });

  router->add(net::Method::del, "/slices/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = terminate(SliceId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::patch, "/slices/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> rate = doc.value().get_number("throughput_mbps");
    if (!rate.ok()) return net::Response::from_error(rate.error());
    const Result<void> r = resize_slice(SliceId{id.value()}, DataRate::mbps(rate.value()));
    if (!r.ok()) return net::Response::from_error(r.error());
    return net::Response::json(net::Status::ok, "{}");
  });

  router->add(net::Method::get, "/templates", [this](const net::RouteContext&) {
    json::Array out;
    for (const std::string& name : catalog_.names()) {
      const SliceTemplate* entry = catalog_.find(name);
      json::Object row;
      row.emplace("name", name);
      row.emplace("vertical", std::string(traffic::to_string(entry->vertical)));
      row.emplace("duration_hours", entry->default_duration.as_hours());
      out.push_back(std::move(row));
    }
    json::Object body;
    body.emplace("templates", std::move(out));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/events", [this](const net::RouteContext& ctx) {
    std::vector<Event> events;
    const auto after = ctx.query.find("after");
    if (after != ctx.query.end()) {
      events = events_.since(std::strtoull(after->second.c_str(), nullptr, 10));
    } else {
      events = events_.recent(100);
    }
    json::Array out;
    for (const Event& event : events) out.push_back(event.to_json());
    json::Object body;
    body.emplace("events", std::move(out));
    body.emplace("total_recorded", static_cast<double>(events_.total_recorded()));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/report", [this](const net::RouteContext&) {
    const OrchestratorSummary s = summary();
    json::Object body;
    body.emplace("active_slices", static_cast<double>(s.active_slices));
    body.emplace("installing_slices", static_cast<double>(s.installing_slices));
    body.emplace("admitted_total", static_cast<double>(s.admitted_total));
    body.emplace("rejected_total", static_cast<double>(s.rejected_total));
    body.emplace("contracted_mbps", s.contracted_total.as_mbps());
    body.emplace("reserved_mbps", s.reserved_total.as_mbps());
    body.emplace("multiplexing_gain", s.multiplexing_gain);
    body.emplace("earned", s.earned.as_units());
    body.emplace("penalties", s.penalties.as_units());
    body.emplace("net_revenue", s.net.as_units());
    body.emplace("violation_epochs", static_cast<double>(s.violation_epochs));
    body.emplace("reconfigurations", static_cast<double>(s.reconfigurations));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/slices/{id}/audit", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const SliceRecord* record = find_slice(SliceId{id.value()});
    if (record == nullptr)
      return net::Response::from_error(make_error(Errc::not_found, "unknown slice"));
    json::Array out;
    for (const Event& event : events_.for_slice(record->id)) out.push_back(event.to_json());
    json::Object body;
    body.emplace("slice", static_cast<double>(record->id.value()));
    body.emplace("state", std::string(to_string(record->state)));
    body.emplace("events", std::move(out));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/healthz", [this](const net::RouteContext&) {
    return net::Response::json(net::Status::ok, json::serialize(health_json()));
  });

  // Same shape as EdgeNode::metrics_body so one scraper handles both:
  // the registry snapshot plus the tracer status (whose lane_detail
  // carries the per-lane ring-overwrite drop counters).
  router->add(net::Method::get, "/metrics", [this](const net::RouteContext&) {
    std::string body = "{\"metrics\":";
    if (registry_ != nullptr) {
      std::string registry_body;
      registry_->metrics_body(registry_body);
      body += registry_body;
    } else {
      body += "null";
    }
    body += ",\"trace\":";
    body += json::serialize(telemetry::trace::Tracer::instance().status_json());
    body.push_back('}');
    return net::Response::json(net::Status::ok, std::move(body));
  });

  router->add(net::Method::get, "/trace", [](const net::RouteContext& ctx) {
    auto& tracer = telemetry::trace::Tracer::instance();
    std::string body;
    tracer.export_chrome_json(body);
    if (const auto clear = ctx.query.find("clear");
        clear != ctx.query.end() && clear->second != "0") {
      tracer.clear();
    }
    return net::Response::json(net::Status::ok, std::move(body));
  });

  router->add(net::Method::del, "/trace", [](const net::RouteContext&) {
    auto& tracer = telemetry::trace::Tracer::instance();
    const std::size_t cleared = tracer.span_count();
    tracer.clear();
    json::Object body;
    body.emplace("cleared_spans", static_cast<double>(cleared));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/store/status", [this](const net::RouteContext&) {
    if (store_ == nullptr)
      return net::Response::from_error(make_error(Errc::unavailable, "no state store attached"));
    json::Value status = store_->status_json();
    if (last_recovery_.has_value()) {
      json::Object recovery;
      recovery.emplace("had_snapshot", last_recovery_->had_snapshot);
      recovery.emplace("snapshot_seq", static_cast<double>(last_recovery_->snapshot_seq));
      recovery.emplace("events_replayed", static_cast<double>(last_recovery_->events_replayed));
      recovery.emplace("records_recovered",
                       static_cast<double>(last_recovery_->records_recovered));
      recovery.emplace("reinstalled", static_cast<double>(last_recovery_->reinstalled));
      recovery.emplace("reinstall_failures",
                       static_cast<double>(last_recovery_->reinstall_failures));
      recovery.emplace("journal_truncated", last_recovery_->journal_truncated);
      recovery.emplace("replay_ms", last_recovery_->replay_millis);
      status["last_recovery"] = json::Value(std::move(recovery));
    }
    return net::Response::json(net::Status::ok, json::serialize(status));
  });

  router->add(net::Method::post, "/store/snapshot", [this](const net::RouteContext&) {
    const Result<std::uint64_t> seq = snapshot_now();
    if (!seq.ok()) return net::Response::from_error(seq.error());
    json::Object body;
    body.emplace("snapshot_seq", static_cast<double>(seq.value()));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/store/compact", [this](const net::RouteContext&) {
    if (store_ == nullptr || !store_->is_open())
      return net::Response::from_error(
          make_error(Errc::unavailable, "no open state store attached"));
    const Result<std::uint64_t> reclaimed = store_->compact();
    if (!reclaimed.ok()) return net::Response::from_error(reclaimed.error());
    json::Object body;
    body.emplace("bytes_reclaimed", static_cast<double>(reclaimed.value()));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/store/restore", [this](const net::RouteContext&) {
    const Result<RecoveryStats> stats = recover_from_store();
    if (!stats.ok()) return net::Response::from_error(stats.error());
    json::Object body;
    body.emplace("had_snapshot", stats.value().had_snapshot);
    body.emplace("events_replayed", static_cast<double>(stats.value().events_replayed));
    body.emplace("records_recovered", static_cast<double>(stats.value().records_recovered));
    body.emplace("reinstalled", static_cast<double>(stats.value().reinstalled));
    body.emplace("reinstall_failures",
                 static_cast<double>(stats.value().reinstall_failures));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  return router;
}

}  // namespace slices::core
