#include "core/orchestrator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>

#include "json/value.hpp"

namespace slices::core {

Orchestrator::Orchestrator(sim::Simulator* simulator, ran::RanController* ran,
                           transport::TransportController* transport,
                           cloud::CloudController* cloud, epc::EpcManager* epc,
                           net::RestBus* bus, telemetry::MonitorRegistry* registry,
                           OrchestratorConfig config)
    : simulator_(simulator),
      ran_(ran),
      transport_(transport),
      cloud_(cloud),
      epc_(epc),
      bus_(bus),
      registry_(registry),
      config_(std::move(config)),
      install_jitter_rng_(config_.install_jitter_seed),
      engine_(config_.overbooking) {
  assert(simulator_ != nullptr && ran_ != nullptr && transport_ != nullptr &&
         cloud_ != nullptr && epc_ != nullptr);
  policy_ = make_policy(config_.admission_policy);
  assert(policy_ != nullptr && "unknown admission policy name");
}

void Orchestrator::set_attachment_points(NodeId ran_gateway,
                                         std::map<DatacenterId, NodeId> datacenter_gateways) {
  ran_gateway_ = ran_gateway;
  dc_gateways_ = std::move(datacenter_gateways);
}

void Orchestrator::start() {
  if (started_) return;
  started_ = true;
  simulator_->add_periodic(
      config_.monitoring_period, [this](SimTime now) { run_epoch(now); },
      config_.monitoring_period);
  if (config_.admission_window > Duration::zero()) {
    simulator_->add_periodic(
        config_.admission_window, [this](SimTime) { decide_pending_batch(); },
        config_.admission_window);
  }
}

RequestId Orchestrator::submit(const SliceSpec& spec) { return submit(spec, nullptr); }

RequestId Orchestrator::submit(const SliceSpec& spec,
                               std::unique_ptr<traffic::TrafficModel> workload) {
  const RequestId request = request_ids_.next();
  const SliceId slice = slice_ids_.next();

  SliceRecord record;
  record.id = slice;
  record.request = request;
  record.spec = spec;
  record.state = SliceState::pending;
  record.submitted_at = simulator_->now();

  by_request_.emplace(request, slice);
  if (workload != nullptr) {
    workloads_.emplace(slice, Workload{std::move(workload)});
  }
  auto [it, inserted] = records_.emplace(slice, std::move(record));
  assert(inserted);
  events_.record(simulator_->now(), EventKind::request_submitted, slice,
                 spec.tenant_name + " requests " +
                     std::to_string(spec.expected_throughput.as_mbps()) + " Mb/s for " +
                     std::to_string(spec.duration.as_hours()) + " h");
  if (config_.admission_window > Duration::zero()) {
    // Batched mode: decided at the next auction.
    return request;
  }
  decide(it->second);
  return request;
}

DataRate Orchestrator::sellable_capacity() const {
  DataRate capacity = ran_->available_capacity(config_.planning_cqi);
  for (const auto& [slice, other] : records_) {
    if (other.state == SliceState::active) {
      capacity += engine_.reclaimable(slice, other.spec.expected_throughput);
    }
  }
  return capacity;
}

bool Orchestrator::try_admit(SliceRecord& record) {
  // Materialize the reclaim the capacity estimate assumed, then embed.
  apply_overbooking(simulator_->now());
  Result<InstallTimeline> timeline = embed(record);
  if (timeline.ok()) {
    record.state = SliceState::installing;
    last_timeline_ = timeline.value();
    ++admitted_total_;
    const SliceId slice = record.id;
    simulator_->schedule_after(timeline.value().total(), [this, slice] { activate(slice); });
    events_.record(simulator_->now(), EventKind::slice_admitted, slice,
                   "installing; ready in " +
                       std::to_string(timeline.value().total().as_seconds()) + " s");
    log_.info("admitted slice " + std::to_string(slice.value()) + " (" +
              record.spec.tenant_name + ")");
    return true;
  }
  events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                 timeline.error().message);
  log_.info("embedding failed: " + timeline.error().message);
  record.state = SliceState::rejected;
  ++rejected_total_;
  return false;
}

void Orchestrator::decide(SliceRecord& record) {
  assert(record.state == SliceState::pending);
  const CandidateRequest candidate{record.request, record.spec};
  const std::vector<RequestId> selected =
      policy_->select({&candidate, 1}, sellable_capacity());
  if (!selected.empty() && selected.front() == record.request) {
    try_admit(record);
    return;
  }
  events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                 "declined by " + std::string(policy_->name()) + " policy");
  record.state = SliceState::rejected;
  ++rejected_total_;
}

void Orchestrator::decide_pending_batch() {
  std::vector<CandidateRequest> candidates;
  for (const auto& [slice, record] : records_) {
    if (record.state == SliceState::pending) {
      candidates.push_back(CandidateRequest{record.request, record.spec});
    }
  }
  if (candidates.empty()) return;

  const std::vector<RequestId> selected = policy_->select(candidates, sellable_capacity());
  const std::set<RequestId> chosen(selected.begin(), selected.end());

  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::pending) continue;
    if (chosen.contains(record.request)) {
      try_admit(record);
    } else {
      // Patient requests stay queued for later auctions until their
      // deadline; impatient ones (the default) are rejected now.
      const bool patient =
          config_.admission_patience > Duration::zero() &&
          simulator_->now() - record.submitted_at < config_.admission_patience;
      if (patient) continue;
      events_.record(simulator_->now(), EventKind::slice_rejected, record.id,
                     "lost the " + std::string(policy_->name()) + " batch auction");
      record.state = SliceState::rejected;
      ++rejected_total_;
    }
  }
}

Result<InstallTimeline> Orchestrator::embed(SliceRecord& record) {
  const SliceSpec& spec = record.spec;
  Embedding embedding;

  // 1. RAN: dynamic PLMN install (slice <-> PLMN mapping of the demo).
  embedding.plmn = PlmnId{next_plmn_++};
  if (Result<void> r = ran_->install_plmn(embedding.plmn); !r.ok()) return r.error();

  // 2. RAN: PRB reservation sized for the contracted throughput.
  if (Result<ran::RanAllocation> r = ran_->set_allocation(
          embedding.plmn, spec.expected_throughput, config_.planning_cqi);
      !r.ok()) {
    (void)ran_->remove_plmn(embedding.plmn);
    return r.error();
  }

  const auto rollback_ran = [&] {
    ran_->release_allocation(embedding.plmn);
    (void)ran_->remove_plmn(embedding.plmn);
  };

  // 3. Cloud: pick the datacenter for EPC + the vertical's edge service.
  const ComputeCapacity footprint =
      epc::epc_stack_template(record.id, spec.expected_throughput).footprint() +
      spec.edge_compute;
  const std::optional<DatacenterId> dc = cloud_->choose_datacenter(footprint, spec.needs_edge);
  if (!dc) {
    rollback_ran();
    return make_error(Errc::insufficient_capacity,
                      spec.needs_edge ? "no edge datacenter fits the slice"
                                      : "no datacenter fits the slice");
  }
  embedding.datacenter = *dc;
  const auto gw = dc_gateways_.find(*dc);
  if (gw == dc_gateways_.end()) {
    rollback_ran();
    return make_error(Errc::internal, "datacenter has no transport gateway configured");
  }

  // 4. Transport: delay/capacity-constrained dedicated path.
  Result<PathId> path = transport_->allocate_path(record.id, ran_gateway_, gw->second,
                                                  spec.expected_throughput, spec.max_latency);
  if (!path.ok()) {
    rollback_ran();
    return path.error();
  }
  embedding.paths.push_back(path.value());

  const auto rollback_transport = [&] {
    for (const PathId p : embedding.paths) (void)transport_->release_path(p);
  };

  // 4b. Edge placements also get a breakout leg toward the core cloud
  // (centralized services / internet), at a fraction of the contract.
  const cloud::Datacenter* placed = cloud_->find_datacenter(*dc);
  if (config_.edge_breakout_fraction > 0.0 && placed != nullptr &&
      placed->kind() == cloud::DatacenterKind::edge) {
    const auto core_gw = [&]() -> std::optional<NodeId> {
      for (const auto& [dc_id, node] : dc_gateways_) {
        const cloud::Datacenter* candidate = cloud_->find_datacenter(dc_id);
        if (candidate != nullptr && candidate->kind() == cloud::DatacenterKind::core) {
          return node;
        }
      }
      return std::nullopt;
    }();
    if (core_gw.has_value() && *core_gw != gw->second) {
      Result<PathId> breakout = transport_->allocate_path(
          record.id, gw->second, *core_gw, leg_rate(1, spec.expected_throughput),
          config_.breakout_delay_bound);
      if (!breakout.ok()) {
        rollback_transport();
        rollback_ran();
        return breakout.error();
      }
      embedding.paths.push_back(breakout.value());
    }
  }

  // 5. Cloud/EPC: deploy the slice's virtualized core as a Heat stack.
  Result<Duration> epc_time =
      epc_->deploy(record.id, *dc, spec.expected_throughput);
  if (!epc_time.ok()) {
    rollback_transport();
    rollback_ran();
    return epc_time.error();
  }

  // 6. Optional edge service stack for the vertical itself.
  if (spec.edge_compute.vcpus > 0.0) {
    cloud::StackTemplate svc;
    svc.name = "svc-slice-" + std::to_string(record.id.value());
    svc.resources.push_back(
        cloud::ResourceSpec{"svc", cloud::Flavor{"svc", spec.edge_compute}});
    Result<StackId> stack = cloud_->create_stack(*dc, svc);
    if (!stack.ok()) {
      (void)epc_->remove(record.id);
      rollback_transport();
      rollback_ran();
      return stack.error();
    }
    embedding.edge_stack = stack.value();
  }

  record.embedding = embedding;
  record.reserved = spec.expected_throughput;

  const auto jitter = [this](Duration d) {
    if (config_.install_jitter <= 0.0) return d;
    const double factor =
        std::max(0.2, 1.0 + config_.install_jitter * install_jitter_rng_.normal());
    return d * factor;
  };
  InstallTimeline timeline;
  timeline.plmn_install = jitter(config_.plmn_install_time);
  timeline.ran_reservation = jitter(config_.ran_reserve_time);
  const transport::PathReservation* reservation = transport_->find_path(path.value());
  timeline.path_setup =
      jitter(config_.path_setup_time_per_rule *
             static_cast<double>(reservation == nullptr ? 1 : reservation->route.hops()));
  timeline.epc_deploy = jitter(epc_time.value());
  timeline.activation_margin = config_.activation_margin;
  return timeline;
}

void Orchestrator::tear_down(SliceRecord& record) {
  for (const PathId path : record.embedding.paths) {
    (void)transport_->release_path(path);
  }
  record.embedding.paths.clear();
  if (record.embedding.edge_stack) {
    (void)cloud_->delete_stack(*record.embedding.edge_stack);
    record.embedding.edge_stack.reset();
  }
  (void)epc_->remove(record.id);
  if (record.embedding.plmn.valid()) {
    ran_->release_allocation(record.embedding.plmn);
    (void)ran_->remove_plmn(record.embedding.plmn);
    record.embedding.plmn = PlmnId::invalid();
  }
  engine_.untrack(record.id);
  record.reserved = DataRate::zero();
}

void Orchestrator::activate(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return;
  SliceRecord& record = it->second;
  if (record.state != SliceState::installing) return;  // terminated meanwhile

  const Result<void> r = epc_->activate(slice);
  assert(r.ok());
  (void)r;
  record.state = SliceState::active;
  record.active_at = simulator_->now();
  record.ends_at = record.active_at + record.spec.duration;
  engine_.track(slice);
  simulator_->schedule_at(record.ends_at, [this, slice] { expire(slice); });
  events_.record(simulator_->now(), EventKind::slice_active, slice,
                 "serving; expires at " + std::to_string(record.ends_at.as_hours()) + " h");
  log_.info("slice " + std::to_string(slice.value()) + " active");
}

void Orchestrator::expire(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return;
  SliceRecord& record = it->second;
  if (record.state != SliceState::active) return;
  tear_down(record);
  record.state = SliceState::expired;
  events_.record(simulator_->now(), EventKind::slice_expired, slice,
                 std::to_string(record.violation_epochs) + " violation epochs over its life");
  log_.info("slice " + std::to_string(slice.value()) + " expired");
}

Result<void> Orchestrator::resize_slice(SliceId slice, DataRate new_contract) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return make_error(Errc::not_found, "unknown slice");
  SliceRecord& record = it->second;
  if (record.state != SliceState::active)
    return make_error(Errc::conflict, "slice is not active");
  if (new_contract <= DataRate::zero())
    return make_error(Errc::invalid_argument, "contract must be positive");

  const DataRate old_reserved = record.reserved;

  // Radio first (atomic in itself).
  Result<ran::RanAllocation> radio =
      ran_->set_allocation(record.embedding.plmn, new_contract, config_.planning_cqi);
  if (!radio.ok()) return radio.error();

  // Transport next; on failure restore the radio reservation.
  for (std::size_t i = 0; i < record.embedding.paths.size(); ++i) {
    Result<void> resized =
        transport_->resize_path(record.embedding.paths[i], leg_rate(i, new_contract));
    if (!resized.ok()) {
      for (std::size_t j = 0; j < i; ++j) {
        (void)transport_->resize_path(record.embedding.paths[j], leg_rate(j, old_reserved));
      }
      (void)ran_->set_allocation(record.embedding.plmn, old_reserved, config_.planning_cqi);
      return resized.error();
    }
  }

  record.spec.expected_throughput = new_contract;
  record.reserved = new_contract;  // overbooking re-targets next epoch
  events_.record(simulator_->now(), EventKind::slice_resized, slice,
                 "contract now " + std::to_string(new_contract.as_mbps()) + " Mb/s");
  ++reconfigurations_;
  log_.info("slice " + std::to_string(slice.value()) + " resized to " +
            std::to_string(new_contract.as_mbps()) + " Mb/s");
  return {};
}

Result<void> Orchestrator::attach_workload(SliceId slice,
                                           std::unique_ptr<traffic::TrafficModel> workload) {
  if (!records_.contains(slice)) return make_error(Errc::not_found, "unknown slice");
  workloads_.insert_or_assign(slice, Workload{std::move(workload)});
  return {};
}

Result<void> Orchestrator::terminate(SliceId slice) {
  const auto it = records_.find(slice);
  if (it == records_.end()) return make_error(Errc::not_found, "unknown slice");
  SliceRecord& record = it->second;
  if (!record.is_live()) return make_error(Errc::conflict, "slice is not live");
  tear_down(record);
  record.state = SliceState::terminated;
  events_.record(simulator_->now(), EventKind::slice_terminated, slice,
                 "operator-initiated teardown");
  return {};
}

const SliceRecord* Orchestrator::find_by_request(RequestId request) const noexcept {
  const auto it = by_request_.find(request);
  if (it == by_request_.end()) return nullptr;
  return find_slice(it->second);
}

const SliceRecord* Orchestrator::find_slice(SliceId slice) const noexcept {
  const auto it = records_.find(slice);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const SliceRecord*> Orchestrator::all_slices() const {
  std::vector<const SliceRecord*> out;
  out.reserve(records_.size());
  for (const auto& [slice, record] : records_) out.push_back(&record);
  return out;
}

DataRate Orchestrator::apply_overbooking(SimTime now) {
  (void)now;
  DataRate reclaimed = DataRate::zero();
  if (!config_.overbooking.enabled) return reclaimed;

  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active) continue;
    const DataRate contracted = record.spec.expected_throughput;
    const DataRate target = engine_.target_reservation(slice, contracted);
    const double delta_mbps = target.as_mbps() - record.reserved.as_mbps();
    if (std::abs(delta_mbps) <
        config_.reconfigure_threshold * contracted.as_mbps()) {
      continue;  // hysteresis
    }

    // Radio first; transport follows. Growing can fail when new slices
    // took the headroom — that is the overbooking risk; keep what we
    // can get and try again next epoch.
    Result<ran::RanAllocation> radio =
        ran_->set_allocation(record.embedding.plmn, target, config_.planning_cqi);
    if (!radio.ok()) {
      log_.debug("grow-back failed for slice " + std::to_string(slice.value()) + ": " +
                 radio.error().message);
      continue;
    }
    for (std::size_t leg = 0; leg < record.embedding.paths.size(); ++leg) {
      (void)transport_->resize_path(record.embedding.paths[leg], leg_rate(leg, target));
    }
    reclaimed += clamp_non_negative(record.reserved - target);
    events_.record(simulator_->now(), EventKind::slice_reconfigured, slice,
                   "reservation " + std::to_string(record.reserved.as_mbps()) + " -> " +
                       std::to_string(target.as_mbps()) + " Mb/s");
    record.reserved = target;
    ++reconfigurations_;
  }
  return reclaimed;
}

void Orchestrator::run_epoch(SimTime now) {
  // 1. Sample offered demand of every active slice.
  std::vector<std::pair<PlmnId, DataRate>> ran_demands;
  std::map<SliceId, DataRate> demand_of;
  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active) continue;
    DataRate demand = DataRate::zero();
    const auto wl = workloads_.find(slice);
    if (wl != workloads_.end()) {
      demand = DataRate::mbps(std::max(0.0, wl->second.model->sample(now)));
    }
    demand_of.emplace(slice, demand);
    ran_demands.emplace_back(record.embedding.plmn, demand);
  }

  // 2. Radio serves.
  const std::vector<ran::RanServeReport> radio_reports = ran_->serve_epoch(ran_demands, now);
  std::map<PlmnId, DataRate> radio_served;
  for (const ran::RanServeReport& r : radio_reports) radio_served.emplace(r.plmn, r.served);

  // 3. Transport carries what the radio delivered.
  std::vector<std::pair<PathId, DataRate>> path_demands;
  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active || record.embedding.paths.empty()) continue;
    const auto served = radio_served.find(record.embedding.plmn);
    const DataRate offered =
        served == radio_served.end() ? DataRate::zero() : min(demand_of[slice], served->second);
    path_demands.emplace_back(record.embedding.paths.front(), offered);
  }
  const std::vector<transport::PathServeReport> path_reports =
      transport_->serve_epoch(path_demands, now);
  std::map<SliceId, const transport::PathServeReport*> path_by_slice;
  for (const transport::PathServeReport& r : path_reports) path_by_slice.emplace(r.slice, &r);

  cloud_->record_epoch(now);

  // 4. SLA check + revenue accrual + demand learning per active slice.
  for (auto& [slice, record] : records_) {
    if (record.state != SliceState::active) continue;
    const DataRate demand = demand_of[slice];
    const auto pr = path_by_slice.find(slice);
    const DataRate achieved =
        pr == path_by_slice.end() ? DataRate::zero() : pr->second->served;
    const bool delay_violated = pr != path_by_slice.end() && pr->second->delay_violated;

    const DataRate entitled = min(demand, record.spec.expected_throughput);
    const bool throughput_violated =
        achieved < entitled * (1.0 - config_.sla_tolerance) &&
        entitled > DataRate::zero();

    ledger_.accrue(slice, record.spec.price_per_hour, config_.monitoring_period);
    ++record.served_epochs;
    if (throughput_violated || delay_violated) {
      ledger_.charge_violation(slice, record.spec.penalty_per_violation);
      ++record.violation_epochs;
      events_.record(now, EventKind::sla_violation, slice,
                     delay_violated ? "delay bound breached"
                                    : "served " + std::to_string(achieved.as_mbps()) +
                                          " of entitled " +
                                          std::to_string(entitled.as_mbps()) + " Mb/s");
    }

    engine_.observe(slice, demand.as_mbps());

    if (registry_ != nullptr) {
      const std::string prefix = "slice." + std::to_string(slice.value());
      registry_->observe(prefix + ".demand_mbps", now, demand.as_mbps());
      registry_->observe(prefix + ".achieved_mbps", now, achieved.as_mbps());
      registry_->observe(prefix + ".reserved_mbps", now, record.reserved.as_mbps());
    }
  }

  // 5. Reconfiguration: shrink/grow reservations toward forecast targets.
  apply_overbooking(now);

  // 6. Monitoring over REST (the paper's controller -> orchestrator feed).
  poll_domain_metrics();

  publish_summary(now);
}

void Orchestrator::poll_domain_metrics() {
  if (bus_ == nullptr) return;
  for (const char* domain : {"ran", "transport", "cloud"}) {
    if (!bus_->has_service(domain)) continue;
    const Result<json::Value> snapshot = bus_->get_json(domain, "/metrics");
    if (!snapshot.ok()) {
      log_.warn(std::string("metrics poll failed for ") + domain + ": " +
                snapshot.error().message);
    }
  }
}

OrchestratorSummary Orchestrator::summary() const {
  OrchestratorSummary s;
  for (const auto& [slice, record] : records_) {
    if (record.state == SliceState::active) {
      ++s.active_slices;
      s.contracted_total += record.spec.expected_throughput;
      s.reserved_total += record.reserved;
    } else if (record.state == SliceState::installing) {
      ++s.installing_slices;
    }
  }
  s.admitted_total = admitted_total_;
  s.rejected_total = rejected_total_;
  s.multiplexing_gain = s.reserved_total > DataRate::zero()
                            ? s.contracted_total / s.reserved_total
                            : 1.0;
  s.earned = ledger_.total_earned();
  s.penalties = ledger_.total_penalties();
  s.net = ledger_.net_revenue();
  s.violation_epochs = ledger_.total_violation_epochs();
  s.reconfigurations = reconfigurations_;
  return s;
}

void Orchestrator::publish_summary(SimTime now) {
  if (registry_ == nullptr) return;
  const OrchestratorSummary s = summary();
  registry_->observe("orchestrator.active_slices", now, static_cast<double>(s.active_slices));
  registry_->observe("orchestrator.multiplexing_gain", now, s.multiplexing_gain);
  registry_->observe("orchestrator.contracted_mbps", now, s.contracted_total.as_mbps());
  registry_->observe("orchestrator.reserved_mbps", now, s.reserved_total.as_mbps());
  registry_->observe("orchestrator.net_revenue", now, s.net.as_units());
  registry_->observe("orchestrator.penalties", now, s.penalties.as_units());
}

std::shared_ptr<net::Router> Orchestrator::make_router() {
  auto router = std::make_shared<net::Router>();

  const auto record_json = [this](const SliceRecord& record) {
    json::Object entry;
    entry.emplace("slice", static_cast<double>(record.id.value()));
    entry.emplace("request", static_cast<double>(record.request.value()));
    entry.emplace("tenant", record.spec.tenant_name);
    entry.emplace("vertical", std::string(traffic::to_string(record.spec.vertical)));
    entry.emplace("state", std::string(to_string(record.state)));
    entry.emplace("contracted_mbps", record.spec.expected_throughput.as_mbps());
    entry.emplace("reserved_mbps", record.reserved.as_mbps());
    entry.emplace("max_latency_ms", record.spec.max_latency.as_millis());
    entry.emplace("violation_epochs", static_cast<double>(record.violation_epochs));
    if (const SliceLedgerEntry* ledger = ledger_.find(record.id)) {
      entry.emplace("earned", ledger->earned.as_units());
      entry.emplace("penalties", ledger->penalties.as_units());
    }
    return json::Value(std::move(entry));
  };

  router->add(net::Method::post, "/slices", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const json::Value& v = doc.value();

    // Two ways to name what is requested: a catalog template, or a
    // vertical + duration (the raw dashboard form).
    SliceSpec spec;
    if (const json::Value* tmpl = v.find("template"); tmpl != nullptr && tmpl->is_string()) {
      Result<SliceSpec> from_catalog =
          v.find("duration_hours") != nullptr && v.find("duration_hours")->is_number()
              ? catalog_.instantiate(tmpl->as_string(),
                                     Duration::hours(v.find("duration_hours")->as_number()))
              : catalog_.instantiate(tmpl->as_string());
      if (!from_catalog.ok()) return net::Response::from_error(from_catalog.error());
      spec = std::move(from_catalog).value();
    } else {
      const Result<std::string> vertical_name = v.get_string("vertical");
      if (!vertical_name.ok()) return net::Response::from_error(vertical_name.error());
      std::optional<traffic::Vertical> vertical;
      for (const traffic::Vertical candidate : traffic::all_verticals()) {
        if (traffic::to_string(candidate) == vertical_name.value()) vertical = candidate;
      }
      if (!vertical)
        return net::Response::from_error(make_error(
            Errc::invalid_argument, "unknown vertical '" + vertical_name.value() + "'"));

      const Result<double> hours = v.get_number("duration_hours");
      if (!hours.ok()) return net::Response::from_error(hours.error());
      spec = SliceSpec::from_profile(traffic::profile_for(*vertical),
                                     Duration::hours(hours.value()));
    }
    // Dashboard overrides of the profile defaults.
    if (const json::Value* f = v.find("throughput_mbps"); f != nullptr && f->is_number())
      spec.expected_throughput = DataRate::mbps(f->as_number());
    if (const json::Value* f = v.find("max_latency_ms"); f != nullptr && f->is_number())
      spec.max_latency = Duration::millis(f->as_number());
    if (const json::Value* f = v.find("price_per_hour"); f != nullptr && f->is_number())
      spec.price_per_hour = Money::units(f->as_number());
    if (const json::Value* f = v.find("penalty_per_violation"); f != nullptr && f->is_number())
      spec.penalty_per_violation = Money::units(f->as_number());
    if (const json::Value* f = v.find("tenant"); f != nullptr && f->is_string())
      spec.tenant_name = f->as_string();

    const RequestId request = submit(spec);
    const SliceRecord* record = find_by_request(request);
    assert(record != nullptr);
    json::Object body;
    body.emplace("request", static_cast<double>(request.value()));
    body.emplace("slice", static_cast<double>(record->id.value()));
    body.emplace("state", std::string(to_string(record->state)));
    const net::Status status = record->state == SliceState::rejected
                                   ? net::Status::conflict
                                   : net::Status::created;
    return net::Response::json(status, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/slices", [this, record_json](const net::RouteContext&) {
    json::Array out;
    for (const auto& [slice, record] : records_) out.push_back(record_json(record));
    json::Object body;
    body.emplace("slices", std::move(out));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/slices/{id}",
              [this, record_json](const net::RouteContext& ctx) {
                const Result<std::uint64_t> id = ctx.id_param("id");
                if (!id.ok()) return net::Response::from_error(id.error());
                const SliceRecord* record = find_slice(SliceId{id.value()});
                if (record == nullptr)
                  return net::Response::from_error(make_error(Errc::not_found, "unknown slice"));
                return net::Response::json(net::Status::ok, json::serialize(record_json(*record)));
              });

  router->add(net::Method::del, "/slices/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = terminate(SliceId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::patch, "/slices/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> rate = doc.value().get_number("throughput_mbps");
    if (!rate.ok()) return net::Response::from_error(rate.error());
    const Result<void> r = resize_slice(SliceId{id.value()}, DataRate::mbps(rate.value()));
    if (!r.ok()) return net::Response::from_error(r.error());
    return net::Response::json(net::Status::ok, "{}");
  });

  router->add(net::Method::get, "/templates", [this](const net::RouteContext&) {
    json::Array out;
    for (const std::string& name : catalog_.names()) {
      const SliceTemplate* entry = catalog_.find(name);
      json::Object row;
      row.emplace("name", name);
      row.emplace("vertical", std::string(traffic::to_string(entry->vertical)));
      row.emplace("duration_hours", entry->default_duration.as_hours());
      out.push_back(std::move(row));
    }
    json::Object body;
    body.emplace("templates", std::move(out));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/events", [this](const net::RouteContext& ctx) {
    std::vector<Event> events;
    const auto after = ctx.query.find("after");
    if (after != ctx.query.end()) {
      events = events_.since(std::strtoull(after->second.c_str(), nullptr, 10));
    } else {
      events = events_.recent(100);
    }
    json::Array out;
    for (const Event& event : events) out.push_back(event.to_json());
    json::Object body;
    body.emplace("events", std::move(out));
    body.emplace("total_recorded", static_cast<double>(events_.total_recorded()));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::get, "/report", [this](const net::RouteContext&) {
    const OrchestratorSummary s = summary();
    json::Object body;
    body.emplace("active_slices", static_cast<double>(s.active_slices));
    body.emplace("installing_slices", static_cast<double>(s.installing_slices));
    body.emplace("admitted_total", static_cast<double>(s.admitted_total));
    body.emplace("rejected_total", static_cast<double>(s.rejected_total));
    body.emplace("contracted_mbps", s.contracted_total.as_mbps());
    body.emplace("reserved_mbps", s.reserved_total.as_mbps());
    body.emplace("multiplexing_gain", s.multiplexing_gain);
    body.emplace("earned", s.earned.as_units());
    body.emplace("penalties", s.penalties.as_units());
    body.emplace("net_revenue", s.net.as_units());
    body.emplace("violation_epochs", static_cast<double>(s.violation_epochs));
    body.emplace("reconfigurations", static_cast<double>(s.reconfigurations));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  return router;
}

}  // namespace slices::core
