#pragma once
// Orchestrator event log — the scrolling activity feed of the demo
// dashboard ("all operations are displayed in a control dashboard").
// A bounded ring of structured events (admissions, rejections,
// activations, reconfigurations, violations, teardowns) queryable by
// the dashboard and exported over REST.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "json/value.hpp"

namespace slices::core {

enum class EventKind {
  request_submitted,
  slice_admitted,
  slice_rejected,
  slice_active,
  slice_reconfigured,
  sla_violation,
  slice_resized,
  slice_expired,
  slice_terminated,
  state_recovered,
  fault_injected,
  fault_cleared,
};

[[nodiscard]] constexpr std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::request_submitted: return "request_submitted";
    case EventKind::slice_admitted: return "slice_admitted";
    case EventKind::slice_rejected: return "slice_rejected";
    case EventKind::slice_active: return "slice_active";
    case EventKind::slice_reconfigured: return "slice_reconfigured";
    case EventKind::sla_violation: return "sla_violation";
    case EventKind::slice_resized: return "slice_resized";
    case EventKind::slice_expired: return "slice_expired";
    case EventKind::slice_terminated: return "slice_terminated";
    case EventKind::state_recovered: return "state_recovered";
    case EventKind::fault_injected: return "fault_injected";
    case EventKind::fault_cleared: return "fault_cleared";
  }
  return "?";
}

/// One logged event.
struct Event {
  std::uint64_t sequence = 0;  ///< monotonically increasing
  SimTime time;
  EventKind kind = EventKind::request_submitted;
  SliceId slice;
  std::string detail;     ///< human-oriented one-liner
  json::Object fields;    ///< structured attribution (audit trail); may be empty

  [[nodiscard]] json::Value to_json() const {
    json::Object out;
    out.emplace("seq", static_cast<double>(sequence));
    out.emplace("t", time.as_seconds());
    out.emplace("kind", std::string(to_string(kind)));
    out.emplace("slice", static_cast<double>(slice.value()));
    out.emplace("detail", detail);
    if (!fields.empty()) out.emplace("fields", json::Object(fields));
    return out;
  }
};

/// Bounded event ring.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024) : capacity_(capacity) {}

  void record(SimTime time, EventKind kind, SliceId slice, std::string detail,
              json::Object fields = {}) {
    events_.push_back(
        Event{next_sequence_++, time, kind, slice, std::move(detail), std::move(fields)});
    if (events_.size() > capacity_) events_.pop_front();
  }

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return next_sequence_; }

  /// Most recent `n` events, oldest first.
  [[nodiscard]] std::vector<Event> recent(std::size_t n) const {
    const std::size_t count = n < events_.size() ? n : events_.size();
    return std::vector<Event>(events_.end() - static_cast<std::ptrdiff_t>(count),
                              events_.end());
  }

  /// Events with sequence > `after` (for incremental polling).
  [[nodiscard]] std::vector<Event> since(std::uint64_t after) const {
    std::vector<Event> out;
    for (const Event& event : events_) {
      if (event.sequence > after) out.push_back(event);
    }
    return out;
  }

  /// All events of one slice, oldest first.
  [[nodiscard]] std::vector<Event> for_slice(SliceId slice) const {
    std::vector<Event> out;
    for (const Event& event : events_) {
      if (event.slice == slice) out.push_back(event);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::uint64_t next_sequence_ = 1;
  std::deque<Event> events_;
};

}  // namespace slices::core
