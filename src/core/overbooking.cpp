#include "core/overbooking.hpp"

#include <algorithm>

namespace slices::core {

std::string_view to_string(EstimatorKind k) noexcept {
  switch (k) {
    case EstimatorKind::adaptive: return "adaptive";
    case EstimatorKind::naive: return "naive";
    case EstimatorKind::ewma: return "ewma";
    case EstimatorKind::holt_winters: return "holt_winters";
  }
  return "?";
}

namespace {

forecast::DemandEstimator make_estimator(const OverbookingConfig& config) {
  switch (config.estimator) {
    case EstimatorKind::adaptive:
      return forecast::DemandEstimator::adaptive(config.season_length);
    case EstimatorKind::naive:
      return forecast::DemandEstimator(std::make_unique<forecast::NaiveForecaster>());
    case EstimatorKind::ewma:
      return forecast::DemandEstimator(std::make_unique<forecast::EwmaForecaster>(0.3));
    case EstimatorKind::holt_winters:
      return forecast::DemandEstimator(std::make_unique<forecast::HoltWintersForecaster>(
          0.4, 0.05, 0.3, config.season_length));
  }
  return forecast::DemandEstimator::adaptive(config.season_length);
}

}  // namespace

void OverbookingEngine::track(SliceId slice) {
  if (estimators_.contains(slice)) return;
  estimators_.emplace(slice, make_estimator(config_));
}

void OverbookingEngine::untrack(SliceId slice) { estimators_.erase(slice); }

void OverbookingEngine::observe(SliceId slice, double demand_mbps) {
  const auto it = estimators_.find(slice);
  if (it == estimators_.end()) return;
  it->second.observe(demand_mbps);
}

DataRate OverbookingEngine::target_reservation(SliceId slice, DataRate contracted) const {
  if (!config_.enabled) return contracted;
  const auto it = estimators_.find(slice);
  if (it == estimators_.end()) return contracted;
  const forecast::DemandEstimator& estimator = it->second;
  if (!estimator.ready() || estimator.observations() < config_.warmup_observations)
    return contracted;

  const double bound =
      config_.headroom * estimator.upper_bound(config_.risk_quantile, config_.horizon);
  const double floor = config_.floor_fraction * contracted.as_mbps();
  const double target = std::clamp(bound, floor, contracted.as_mbps());
  return DataRate::mbps(target);
}

const forecast::DemandEstimator* OverbookingEngine::find(SliceId slice) const noexcept {
  const auto it = estimators_.find(slice);
  return it == estimators_.end() ? nullptr : &it->second;
}

}  // namespace slices::core
