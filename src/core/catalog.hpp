#pragma once
// Slice-template catalog.
//
// The demo dashboard offers preset slice types to request from; real
// brokers keep such templates (GSMA GST-style) in a catalog, typically
// provisioned as JSON. A SliceCatalog holds named templates, each
// derived from a vertical profile with per-template overrides, and
// instantiates SliceSpecs from them.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "core/slice.hpp"

namespace slices::core {

/// One catalog entry: a vertical plus optional overrides.
struct SliceTemplate {
  std::string name;
  traffic::Vertical vertical = traffic::Vertical::embb_video;
  Duration default_duration = Duration::hours(24.0);
  // Overrides; negative/unset values fall back to the vertical profile.
  double throughput_mbps = -1.0;
  double max_latency_ms = -1.0;
  double price_per_hour = -1.0;
  double penalty_per_violation = -1.0;
  int needs_edge = -1;  ///< -1 profile default, else 0/1
};

/// A named set of slice templates.
class SliceCatalog {
 public:
  /// The built-in catalog: one template per vertical, profile defaults.
  [[nodiscard]] static SliceCatalog builtin();

  /// Parse a catalog document:
  ///   {"templates": [{"name": "...", "vertical": "...",
  ///     "duration_hours": 24, "throughput_mbps": 30, ...}, ...]}
  /// Unknown verticals and duplicate names are errors; every override
  /// field is optional. Errors: protocol_error / invalid_argument.
  [[nodiscard]] static Result<SliceCatalog> from_json(std::string_view text);

  /// Add (or replace) a template.
  void put(SliceTemplate entry);

  [[nodiscard]] std::size_t size() const noexcept { return templates_.size(); }
  [[nodiscard]] const SliceTemplate* find(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Build a SliceSpec from template `name`, with the template's
  /// default duration or an explicit one. Errors: not_found.
  [[nodiscard]] Result<SliceSpec> instantiate(std::string_view name) const;
  [[nodiscard]] Result<SliceSpec> instantiate(std::string_view name,
                                              Duration duration) const;

 private:
  std::map<std::string, SliceTemplate, std::less<>> templates_;
};

}  // namespace slices::core
