#pragma once
// Orchestrator configuration from JSON — deployments provision broker
// policy (admission strategy, risk budget, monitoring cadence) as
// config files, not code. Unknown keys are rejected so typos cannot
// silently fall back to defaults.

#include <string_view>

#include "common/result.hpp"
#include "core/orchestrator.hpp"

namespace slices::core {

/// Parse an OrchestratorConfig document. Every field is optional and
/// falls back to the library default; recognised keys:
///
///   monitoring_period_minutes, admission_policy, admission_window_hours,
///   sla_tolerance, reconfigure_threshold, edge_breakout_fraction,
///   overbooking: { enabled, risk_quantile, horizon, floor_fraction,
///                  headroom, warmup_observations, season_length,
///                  estimator }
///
/// Errors: protocol_error (bad JSON), invalid_argument (unknown key or
/// out-of-domain value).
[[nodiscard]] Result<OrchestratorConfig> config_from_json(std::string_view text);

}  // namespace slices::core
