#include "core/catalog.hpp"

#include "json/value.hpp"

namespace slices::core {
namespace {

Result<traffic::Vertical> vertical_by_name(std::string_view name) {
  for (const traffic::Vertical v : traffic::all_verticals()) {
    if (traffic::to_string(v) == name) return v;
  }
  return make_error(Errc::invalid_argument, "unknown vertical '" + std::string(name) + "'");
}

}  // namespace

SliceCatalog SliceCatalog::builtin() {
  SliceCatalog catalog;
  for (const traffic::Vertical v : traffic::all_verticals()) {
    SliceTemplate entry;
    entry.name = std::string(traffic::to_string(v));
    entry.vertical = v;
    catalog.put(std::move(entry));
  }
  return catalog;
}

Result<SliceCatalog> SliceCatalog::from_json(std::string_view text) {
  Result<json::Value> doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  const json::Value* templates = doc.value().find("templates");
  if (templates == nullptr || !templates->is_array())
    return make_error(Errc::protocol_error, "catalog needs a 'templates' array");

  SliceCatalog catalog;
  for (const json::Value& item : templates->as_array()) {
    Result<std::string> name = item.get_string("name");
    if (!name.ok()) return name.error();
    Result<std::string> vertical_name = item.get_string("vertical");
    if (!vertical_name.ok()) return vertical_name.error();
    Result<traffic::Vertical> vertical = vertical_by_name(vertical_name.value());
    if (!vertical.ok()) return vertical.error();
    if (catalog.find(name.value()) != nullptr)
      return make_error(Errc::invalid_argument,
                        "duplicate template '" + name.value() + "'");

    SliceTemplate entry;
    entry.name = name.value();
    entry.vertical = vertical.value();
    const auto number_or = [&item](const char* key, double fallback) {
      const json::Value* v = item.find(key);
      return v != nullptr && v->is_number() ? v->as_number() : fallback;
    };
    entry.default_duration = Duration::hours(number_or("duration_hours", 24.0));
    entry.throughput_mbps = number_or("throughput_mbps", -1.0);
    entry.max_latency_ms = number_or("max_latency_ms", -1.0);
    entry.price_per_hour = number_or("price_per_hour", -1.0);
    entry.penalty_per_violation = number_or("penalty_per_violation", -1.0);
    if (const json::Value* v = item.find("needs_edge"); v != nullptr && v->is_bool()) {
      entry.needs_edge = v->as_bool() ? 1 : 0;
    }
    if (entry.default_duration <= Duration::zero())
      return make_error(Errc::invalid_argument,
                        "template '" + entry.name + "' has non-positive duration");
    catalog.put(std::move(entry));
  }
  return catalog;
}

void SliceCatalog::put(SliceTemplate entry) {
  templates_.insert_or_assign(entry.name, std::move(entry));
}

const SliceTemplate* SliceCatalog::find(std::string_view name) const noexcept {
  const auto it = templates_.find(name);
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<std::string> SliceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, entry] : templates_) out.push_back(name);
  return out;
}

Result<SliceSpec> SliceCatalog::instantiate(std::string_view name) const {
  const SliceTemplate* entry = find(name);
  if (entry == nullptr)
    return make_error(Errc::not_found, "no template '" + std::string(name) + "'");
  return instantiate(name, entry->default_duration);
}

Result<SliceSpec> SliceCatalog::instantiate(std::string_view name, Duration duration) const {
  const SliceTemplate* entry = find(name);
  if (entry == nullptr)
    return make_error(Errc::not_found, "no template '" + std::string(name) + "'");

  SliceSpec spec =
      SliceSpec::from_profile(traffic::profile_for(entry->vertical), duration);
  spec.tenant_name = entry->name;
  if (entry->throughput_mbps >= 0.0)
    spec.expected_throughput = DataRate::mbps(entry->throughput_mbps);
  if (entry->max_latency_ms >= 0.0) spec.max_latency = Duration::millis(entry->max_latency_ms);
  if (entry->price_per_hour >= 0.0) spec.price_per_hour = Money::units(entry->price_per_hour);
  if (entry->penalty_per_violation >= 0.0)
    spec.penalty_per_violation = Money::units(entry->penalty_per_violation);
  if (entry->needs_edge >= 0) spec.needs_edge = entry->needs_edge == 1;
  return spec;
}

}  // namespace slices::core
