#include "core/slice.hpp"

namespace slices::core {

SliceSpec SliceSpec::from_profile(const traffic::VerticalProfile& profile, Duration duration) {
  SliceSpec spec;
  spec.tenant_name = profile.label;
  spec.vertical = profile.vertical;
  spec.duration = duration;
  spec.max_latency = profile.max_latency;
  spec.expected_throughput = DataRate::mbps(profile.expected_throughput_mbps);
  spec.edge_compute = profile.edge_compute;
  spec.price_per_hour = Money::units(profile.price_per_hour);
  spec.penalty_per_violation = Money::units(profile.penalty_per_violation);
  spec.needs_edge = profile.needs_edge;
  return spec;
}

std::string_view to_string(SliceState s) noexcept {
  switch (s) {
    case SliceState::pending: return "pending";
    case SliceState::rejected: return "rejected";
    case SliceState::installing: return "installing";
    case SliceState::active: return "active";
    case SliceState::expired: return "expired";
    case SliceState::terminated: return "terminated";
  }
  return "?";
}

bool can_transition(SliceState from, SliceState to) noexcept {
  switch (from) {
    case SliceState::pending:
      return to == SliceState::rejected || to == SliceState::installing;
    case SliceState::installing:
      return to == SliceState::active || to == SliceState::terminated;
    case SliceState::active:
      return to == SliceState::expired || to == SliceState::terminated;
    case SliceState::rejected:
    case SliceState::expired:
    case SliceState::terminated:
      return false;
  }
  return false;
}

}  // namespace slices::core
