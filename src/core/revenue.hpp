#pragma once
// Revenue accounting: the "gains vs. penalties" the demo dashboard shows.
//
// Slice income accrues per active hour at the contracted price; SLA
// violations charge the tenant-declared penalty per violation epoch.
// Everything is exact fixed-point Money.

#include <cstdint>
#include <map>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace slices::core {

/// Per-slice revenue breakdown.
struct SliceLedgerEntry {
  Money earned;
  Money penalties;
  std::uint64_t violation_epochs = 0;

  [[nodiscard]] Money net() const noexcept { return earned - penalties; }
};

/// The operator's books.
class RevenueLedger {
 public:
  /// Accrue income for `active_time` of slice runtime at `price_per_hour`.
  void accrue(SliceId slice, Money price_per_hour, Duration active_time) {
    entries_[slice].earned += price_per_hour * active_time.as_hours();
  }

  /// Charge one violation epoch at the slice's declared penalty.
  void charge_violation(SliceId slice, Money penalty) {
    SliceLedgerEntry& entry = entries_[slice];
    entry.penalties += penalty;
    ++entry.violation_epochs;
  }

  /// Crash-recovery replay: re-apply an exact earned amount journaled at
  /// the original accrual (avoids re-deriving price x hours, which could
  /// round differently).
  void add_earned(SliceId slice, Money amount) { entries_[slice].earned += amount; }

  /// Crash-recovery snapshot load: install a slice's books wholesale.
  void restore(SliceId slice, SliceLedgerEntry entry) {
    entries_.insert_or_assign(slice, entry);
  }

  [[nodiscard]] const SliceLedgerEntry* find(SliceId slice) const noexcept {
    const auto it = entries_.find(slice);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Money total_earned() const noexcept {
    Money sum;
    for (const auto& [slice, entry] : entries_) sum += entry.earned;
    return sum;
  }
  [[nodiscard]] Money total_penalties() const noexcept {
    Money sum;
    for (const auto& [slice, entry] : entries_) sum += entry.penalties;
    return sum;
  }
  [[nodiscard]] Money net_revenue() const noexcept {
    return total_earned() - total_penalties();
  }
  [[nodiscard]] std::uint64_t total_violation_epochs() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& [slice, entry] : entries_) sum += entry.violation_epochs;
    return sum;
  }

  [[nodiscard]] const std::map<SliceId, SliceLedgerEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<SliceId, SliceLedgerEntry> entries_;
};

}  // namespace slices::core
