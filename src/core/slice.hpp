#pragma once
// Network-slice request model and lifecycle.
//
// The demo dashboard "provides multiple options for requesting network
// slices: the slice time duration, the maximum latency allowed, the
// expected throughput, the price willing to be paid ... and finally the
// penalty expected in case of SLA violation". SliceSpec carries exactly
// those knobs (plus the compute footprint and edge requirement the E2E
// embedding needs); SliceRecord tracks the admitted slice through its
// lifecycle and holds its per-domain allocation handles.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "traffic/verticals.hpp"

namespace slices::core {

/// What a tenant asks for — the dashboard form of the demo.
struct SliceSpec {
  std::string tenant_name;
  traffic::Vertical vertical = traffic::Vertical::embb_video;
  Duration duration;                      ///< slice time duration
  Duration max_latency;                   ///< maximum end-to-end latency allowed
  DataRate expected_throughput;           ///< contracted throughput
  ComputeCapacity edge_compute;           ///< service footprint beyond the EPC
  Money price_per_hour;                   ///< price willing to be paid
  Money penalty_per_violation;            ///< per-violation-epoch charge
  bool needs_edge = false;                ///< latency forces edge placement

  /// Build a spec from a vertical profile (the dashboard's presets).
  [[nodiscard]] static SliceSpec from_profile(const traffic::VerticalProfile& profile,
                                              Duration duration);

  /// Revenue if the slice runs to completion with zero violations.
  [[nodiscard]] Money gross_revenue() const noexcept {
    return price_per_hour * duration.as_hours();
  }
};

/// Lifecycle of a request/slice.
enum class SliceState {
  pending,     ///< submitted, not yet decided
  rejected,    ///< admission declined
  installing,  ///< admitted; domains being configured (the "few seconds")
  active,      ///< serving traffic
  expired,     ///< ran to the end of its duration
  terminated,  ///< torn down early (operator action)
};

[[nodiscard]] std::string_view to_string(SliceState s) noexcept;

/// Legal state transitions (everything else is a programming error).
[[nodiscard]] bool can_transition(SliceState from, SliceState to) noexcept;

/// Handles into each domain for an embedded slice.
struct Embedding {
  PlmnId plmn;                         ///< RAN slice identity (MOCN mapping)
  std::vector<PathId> paths;           ///< transport reservations
  DatacenterId datacenter;             ///< where the EPC/stack landed
  std::optional<StackId> edge_stack;   ///< the vertical's own edge service
};

/// An admitted (or pending/rejected) slice as the orchestrator sees it.
struct SliceRecord {
  SliceId id;
  RequestId request;
  SliceSpec spec;
  SliceState state = SliceState::pending;
  SimTime submitted_at;
  SimTime activates_at;   ///< scheduled end of installation (installing state)
  SimTime active_at;      ///< when it started serving (if it did)
  SimTime ends_at;        ///< scheduled expiry (active_at + duration)
  Embedding embedding;    ///< valid in installing/active states
  DataRate reserved;      ///< current (possibly overbooked-down) reservation

  // SLA accounting.
  std::uint64_t violation_epochs = 0;
  std::uint64_t served_epochs = 0;

  [[nodiscard]] bool is_live() const noexcept {
    return state == SliceState::installing || state == SliceState::active;
  }
};

}  // namespace slices::core
