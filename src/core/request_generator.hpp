#pragma once
// Stochastic slice-request workload for admission experiments.
//
// The demo operator requests slices by hand through the dashboard; the
// admission experiments (D1, A1) need a reproducible stream of
// heterogeneous requests instead: Poisson arrivals, vertical mix,
// dispersed durations and prices. Each generated request comes with the
// matching demand workload so the slice actually offers traffic once
// admitted.
//
// Arrival rates may be time-varying: a piecewise-constant schedule
// (scenario phases) and/or a sinusoidal diurnal modulation. The
// constant-rate path consumes the RNG stream exactly as the original
// generator did, so old seeds reproduce bit-identical request streams.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/slice.hpp"
#include "traffic/model.hpp"
#include "traffic/verticals.hpp"

namespace slices::core {

/// One step of a piecewise-constant arrival-rate schedule: from `at`
/// (inclusive) onward the Poisson rate is `arrivals_per_hour`, until the
/// next later point takes over.
struct RatePoint {
  Duration at;
  double arrivals_per_hour = 0.0;
};

/// Tuning of the request stream.
struct RequestGeneratorConfig {
  /// Base Poisson arrival rate; also the rate before the first
  /// rate_schedule point.
  double arrivals_per_hour = 0.5;
  /// Optional piecewise-constant rate overrides, sorted by `at`
  /// (validated in the constructor). Empty = constant base rate.
  std::vector<RatePoint> rate_schedule;
  /// Optional sinusoidal modulation: the instantaneous rate is scaled by
  /// (1 + diurnal_depth * sin(2π t / diurnal_period)). 0 = off.
  double diurnal_depth = 0.0;
  Duration diurnal_period = Duration::hours(24.0);
  Duration min_duration = Duration::hours(2.0);
  Duration max_duration = Duration::hours(24.0);
  /// Prices/penalties are scaled by a uniform factor in
  /// [1 − dispersion, 1 + dispersion] to differentiate tenants.
  double price_dispersion = 0.4;
  /// Vertical mix; empty means all built-in verticals, equally likely.
  std::vector<traffic::Vertical> verticals;
};

/// One generated request: the spec plus the tenant's demand process
/// (and the seed it was built from, so record/replay can rebuild it).
struct GeneratedRequest {
  SliceSpec spec;
  std::unique_ptr<traffic::TrafficModel> workload;
  std::uint64_t workload_seed = 0;
};

/// Deterministic (seeded) request stream.
class RequestGenerator {
 public:
  RequestGenerator(RequestGeneratorConfig config, Rng rng);

  /// Exponential gap to the next arrival. Only valid for a constant-rate
  /// configuration (no schedule, no diurnal modulation) — time-varying
  /// streams need to know the current time; use the overload below.
  [[nodiscard]] Duration next_interarrival();

  /// Gap from `from` to the next arrival of the (possibly
  /// non-homogeneous) Poisson process. For a constant-rate configuration
  /// this draws exactly what next_interarrival() draws. A zero-rate
  /// stretch with no later positive-rate step yields a sentinel gap far
  /// past any practical scenario horizon (~10k years).
  [[nodiscard]] Duration next_interarrival(SimTime from);

  /// Draw the next request.
  [[nodiscard]] GeneratedRequest next_request();

  /// Instantaneous arrival rate at `t` (schedule x diurnal modulation).
  [[nodiscard]] double rate_at(SimTime t) const noexcept;

  [[nodiscard]] const RequestGeneratorConfig& config() const noexcept { return config_; }

 private:
  /// Piecewise-constant component of the rate at elapsed time `at`.
  [[nodiscard]] double step_rate_at(Duration at) const noexcept;
  /// Next schedule boundary strictly after `at`; nullopt when none.
  [[nodiscard]] std::optional<Duration> next_boundary(Duration at) const noexcept;

  RequestGeneratorConfig config_;
  Rng rng_;
};

}  // namespace slices::core
