#pragma once
// Stochastic slice-request workload for admission experiments.
//
// The demo operator requests slices by hand through the dashboard; the
// admission experiments (D1, A1) need a reproducible stream of
// heterogeneous requests instead: Poisson arrivals, vertical mix,
// dispersed durations and prices. Each generated request comes with the
// matching demand workload so the slice actually offers traffic once
// admitted.

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/slice.hpp"
#include "traffic/model.hpp"
#include "traffic/verticals.hpp"

namespace slices::core {

/// Tuning of the request stream.
struct RequestGeneratorConfig {
  double arrivals_per_hour = 0.5;       ///< Poisson arrival rate
  Duration min_duration = Duration::hours(2.0);
  Duration max_duration = Duration::hours(24.0);
  /// Prices/penalties are scaled by a uniform factor in
  /// [1 − dispersion, 1 + dispersion] to differentiate tenants.
  double price_dispersion = 0.4;
  /// Vertical mix; empty means all built-in verticals, equally likely.
  std::vector<traffic::Vertical> verticals;
};

/// One generated request: the spec plus the tenant's demand process.
struct GeneratedRequest {
  SliceSpec spec;
  std::unique_ptr<traffic::TrafficModel> workload;
};

/// Deterministic (seeded) request stream.
class RequestGenerator {
 public:
  RequestGenerator(RequestGeneratorConfig config, Rng rng);

  /// Exponential gap to the next arrival.
  [[nodiscard]] Duration next_interarrival();

  /// Draw the next request.
  [[nodiscard]] GeneratedRequest next_request();

  [[nodiscard]] const RequestGeneratorConfig& config() const noexcept { return config_; }

 private:
  RequestGeneratorConfig config_;
  Rng rng_;
};

}  // namespace slices::core
