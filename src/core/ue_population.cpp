#include "core/ue_population.hpp"

#include <cassert>

namespace slices::core {

UePopulation::UePopulation(sim::Simulator* simulator, ran::RanController* ran,
                           epc::EpcManager* epc, SliceId slice, PlmnId plmn,
                           UePopulationConfig config, Rng rng)
    : simulator_(simulator),
      ran_(ran),
      epc_(epc),
      slice_(slice),
      plmn_(plmn),
      config_(config),
      rng_(rng) {
  assert(simulator_ != nullptr && ran_ != nullptr && epc_ != nullptr);
  assert(config_.arrivals_per_hour > 0.0);
  assert(config_.mean_holding > Duration::zero());
  assert(config_.cqi_min >= 1 && config_.cqi_max <= 15 &&
         config_.cqi_min <= config_.cqi_max);
}

void UePopulation::start() {
  if (running_) return;
  running_ = true;
  // Little's law: steady-state population ~= arrival rate x mean holding
  // time. Pre-size the departure map so session churn does not rehash
  // and reallocate while the population ramps to its stationary size.
  const double expected =
      config_.arrivals_per_hour * config_.mean_holding.as_hours();
  active_.reserve(static_cast<std::size_t>(expected) + 16);
  schedule_next_arrival();
}

void UePopulation::stop() {
  if (!running_) return;
  running_ = false;
  simulator_->cancel(pending_arrival_);
  for (const auto& [ue, departure_event] : active_) {
    simulator_->cancel(departure_event);
    (void)ran_->detach_ue(ue);
    (void)epc_->detach_ue(slice_);
  }
  active_.clear();
}

void UePopulation::schedule_next_arrival() {
  const Duration gap = Duration::hours(rng_.exponential(config_.arrivals_per_hour));
  pending_arrival_ = simulator_->schedule_after(gap, [this] { on_arrival(); });
}

void UePopulation::on_arrival() {
  if (!running_) return;
  schedule_next_arrival();
  ++arrivals_;

  // EPC attach first: the demo gating — no service before the slice's
  // core is up.
  const Result<Duration> attach = epc_->attach_ue(slice_);
  if (!attach.ok()) {
    ++blocked_;
    return;
  }
  const ran::Cqi cqi{static_cast<int>(
      rng_.uniform_int(config_.cqi_min, config_.cqi_max))};
  const Result<UeId> ue = ran_->attach_ue(plmn_, cqi);
  if (!ue.ok()) {
    (void)epc_->detach_ue(slice_);
    ++blocked_;
    return;
  }

  const Duration holding =
      Duration::seconds(rng_.exponential(1.0 / config_.mean_holding.as_seconds()));
  const UeId ue_id = ue.value();
  const sim::EventId departure =
      simulator_->schedule_after(holding, [this, ue_id] { on_departure(ue_id); });
  active_.insert(ue_id, departure);
}

void UePopulation::on_departure(UeId ue) {
  if (!active_.erase(ue)) return;
  (void)ran_->detach_ue(ue);
  (void)epc_->detach_ue(slice_);
  ++departures_;
}

}  // namespace slices::core
