#pragma once
// Synthetic transport-topology generators.
//
// The demo testbed is Fig. 2 scale; the library also targets
// operator-scale evaluations (the S1 scalability experiment). These
// generators build classic aggregation topologies with RAN gateways at
// the leaves and datacenter gateways at the core, all parameterized and
// deterministic.

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// Handles into a generated topology.
struct GeneratedTopology {
  Topology topology;
  std::vector<NodeId> ran_gateways;   ///< leaf attachment points (eNB side)
  std::vector<NodeId> edge_gateways;  ///< edge-DC attachment points
  NodeId core_gateway;                ///< the central cloud attachment
};

/// Tuning of the generated fabrics.
struct GeneratorConfig {
  DataRate access_capacity = DataRate::mbps(1000.0);    ///< leaf uplinks
  DataRate aggregation_capacity = DataRate::mbps(10000.0);
  Duration access_delay = Duration::millis(1.0);
  Duration aggregation_delay = Duration::millis(2.0);
  /// Technology of the leaf uplinks (wireless makes them fade).
  LinkTechnology access_technology = LinkTechnology::mmwave;
};

/// A two-level aggregation tree: `leaves` RAN gateways, one aggregation
/// switch per `leaves_per_switch` group, all switches into a core
/// switch; one edge gateway per aggregation switch and one core
/// gateway. The standard metro-aggregation shape.
[[nodiscard]] GeneratedTopology make_aggregation_tree(std::size_t leaves,
                                                      std::size_t leaves_per_switch,
                                                      const GeneratorConfig& config = {});

/// A ring of `switch_count` switches (metro ring): each switch hosts one
/// RAN gateway; one switch hosts the edge gateway and the opposite one
/// the core gateway. Two disjoint directions exist between any pair —
/// the topology CSPF needs for repair.
[[nodiscard]] GeneratedTopology make_metro_ring(std::size_t switch_count,
                                                const GeneratorConfig& config = {});

}  // namespace slices::transport
