#pragma once
// Wireless-link capacity fluctuation.
//
// mmWave links deliver multi-Gb/s in clear conditions but degrade
// sharply under rain or obstruction; µwave degrades more mildly. Each
// wireless link gets an AR(1) "condition" process in [floor, 1] whose
// value scales the nominal capacity each monitoring epoch. Fiber links
// have no process (factor 1). This fluctuation is what stresses
// transport-path SLAs under overbooking and motivates path repair.

#include <algorithm>
#include <cassert>
#include <map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// Fading parameters of one technology.
struct FadingParams {
  double mean = 1.0;         ///< long-run mean condition factor
  double reversion = 0.2;    ///< AR(1) pull toward the mean per epoch
  double volatility = 0.0;   ///< per-epoch Gaussian shock std-dev
  double floor = 1.0;        ///< worst-case factor (deep fade)
  double outage_probability = 0.0;  ///< chance per epoch of a deep fade event
};

/// Library defaults per technology (tuned so mmWave occasionally dips
/// hard, µwave wobbles, fiber never moves).
[[nodiscard]] constexpr FadingParams default_fading(LinkTechnology t) noexcept {
  switch (t) {
    case LinkTechnology::fiber:
      return FadingParams{1.0, 0.0, 0.0, 1.0, 0.0};
    case LinkTechnology::mmwave:
      return FadingParams{0.95, 0.25, 0.05, 0.25, 0.01};
    case LinkTechnology::uwave:
      return FadingParams{0.97, 0.30, 0.02, 0.60, 0.002};
  }
  return FadingParams{};
}

/// Tracks the current condition factor of every link in a topology.
class FadingField {
 public:
  /// Initialize processes for all wireless links of `topology`.
  FadingField(const Topology& topology, Rng rng) : rng_(rng) {
    for (const Link& link : topology.links()) {
      const FadingParams params = default_fading(link.technology);
      if (params.volatility > 0.0 || params.outage_probability > 0.0) {
        states_.emplace(link.id, State{params, params.mean});
      }
    }
  }

  /// Advance every wireless link by one epoch.
  void step() {
    for (auto& [link, state] : states_) {
      const FadingParams& p = state.params;
      if (rng_.bernoulli(p.outage_probability)) {
        state.factor = p.floor;  // deep fade event (rain burst, blockage)
        continue;
      }
      const double shock = p.volatility * rng_.normal();
      state.factor += p.reversion * (p.mean - state.factor) + shock;
      state.factor = std::clamp(state.factor, p.floor, 1.0);
    }
  }

  /// Condition factor of `link` (1.0 for wired / unknown links).
  [[nodiscard]] double factor(LinkId link) const noexcept {
    const auto it = states_.find(link);
    return it == states_.end() ? 1.0 : it->second.factor;
  }

  /// Effective capacity of a link right now.
  [[nodiscard]] DataRate effective_capacity(const Link& link) const noexcept {
    return link.nominal_capacity * factor(link.id);
  }

  /// Number of links with an active fading process.
  [[nodiscard]] std::size_t tracked_links() const noexcept { return states_.size(); }

 private:
  struct State {
    FadingParams params;
    double factor = 1.0;
  };

  Rng rng_;
  std::map<LinkId, State> states_;
};

}  // namespace slices::transport
