#pragma once
// Wireless-link capacity fluctuation.
//
// mmWave links deliver multi-Gb/s in clear conditions but degrade
// sharply under rain or obstruction; µwave degrades more mildly. Each
// wireless link gets an AR(1) "condition" process in [floor, 1] whose
// value scales the nominal capacity each monitoring epoch. Fiber links
// have no process (factor 1). This fluctuation is what stresses
// transport-path SLAs under overbooking and motivates path repair.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// Fading parameters of one technology.
struct FadingParams {
  double mean = 1.0;         ///< long-run mean condition factor
  double reversion = 0.2;    ///< AR(1) pull toward the mean per epoch
  double volatility = 0.0;   ///< per-epoch Gaussian shock std-dev
  double floor = 1.0;        ///< worst-case factor (deep fade)
  double outage_probability = 0.0;  ///< chance per epoch of a deep fade event
};

/// Library defaults per technology (tuned so mmWave occasionally dips
/// hard, µwave wobbles, fiber never moves).
[[nodiscard]] constexpr FadingParams default_fading(LinkTechnology t) noexcept {
  switch (t) {
    case LinkTechnology::fiber:
      return FadingParams{1.0, 0.0, 0.0, 1.0, 0.0};
    case LinkTechnology::mmwave:
      return FadingParams{0.95, 0.25, 0.05, 0.25, 0.01};
    case LinkTechnology::uwave:
      return FadingParams{0.97, 0.30, 0.02, 0.60, 0.002};
  }
  return FadingParams{};
}

/// Tracks the current condition factor of every link in a topology.
///
/// State is structure-of-arrays by link *slot* (index into
/// Topology::links()): a dense factor column the epoch kernel reads by
/// slot, plus a compact list of the tracked (wireless) processes.
/// Tracked links are visited in ascending slot order — identical to the
/// insertion order, which is ascending LinkId order — so the RNG stream
/// is byte-identical to the original std::map<LinkId, State> walk.
class FadingField {
 public:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Initialize processes for all wireless links of `topology`. The
  /// field keeps its own id->slot table, so it never dangles a topology
  /// reference.
  FadingField(const Topology& topology, Rng rng) : rng_(rng) {
    const std::vector<Link>& links = topology.links();
    factor_by_slot_.assign(links.size(), 1.0);
    for (std::uint32_t slot = 0; slot < links.size(); ++slot) {
      const Link& link = links[slot];
      if (link.id.value() >= slot_by_id_.size()) {
        slot_by_id_.resize(link.id.value() + 1, kNoSlot);
      }
      slot_by_id_[link.id.value()] = slot;
      const FadingParams params = default_fading(link.technology);
      if (params.volatility > 0.0 || params.outage_probability > 0.0) {
        tracked_.push_back(Tracked{params, slot});
        factor_by_slot_[slot] = params.mean;
      }
    }
  }

  /// Advance every wireless link by one epoch.
  void step() {
    for (const Tracked& t : tracked_) {
      const FadingParams& p = t.params;
      if (rng_.bernoulli(p.outage_probability)) {
        factor_by_slot_[t.slot] = p.floor;  // deep fade event (rain burst, blockage)
        continue;
      }
      double factor = factor_by_slot_[t.slot];
      const double shock = p.volatility * rng_.normal();
      factor += p.reversion * (p.mean - factor) + shock;
      factor_by_slot_[t.slot] = std::clamp(factor, p.floor, 1.0);
    }
  }

  /// Condition factor of `link` (1.0 for wired / unknown links).
  [[nodiscard]] double factor(LinkId link) const noexcept {
    const std::uint32_t slot =
        link.value() < slot_by_id_.size() ? slot_by_id_[link.value()] : kNoSlot;
    return slot == kNoSlot ? 1.0 : factor_by_slot_[slot];
  }

  /// Condition factor by link slot (the epoch kernel's accessor).
  [[nodiscard]] double factor_at_slot(std::uint32_t slot) const noexcept {
    return factor_by_slot_[slot];
  }

  /// Effective capacity of a link right now.
  [[nodiscard]] DataRate effective_capacity(const Link& link) const noexcept {
    return link.nominal_capacity * factor(link.id);
  }

  /// Number of links with an active fading process.
  [[nodiscard]] std::size_t tracked_links() const noexcept { return tracked_.size(); }

 private:
  struct Tracked {
    FadingParams params;
    std::uint32_t slot = kNoSlot;
  };

  Rng rng_;
  std::vector<Tracked> tracked_;          ///< wireless processes, ascending slot
  std::vector<double> factor_by_slot_;    ///< dense factor column (1.0 = clear)
  std::vector<std::uint32_t> slot_by_id_; ///< link id value -> slot
};

}  // namespace slices::transport
