#include "transport/generators.hpp"

#include <cassert>
#include <string>

namespace slices::transport {

GeneratedTopology make_aggregation_tree(std::size_t leaves, std::size_t leaves_per_switch,
                                        const GeneratorConfig& config) {
  assert(leaves >= 1 && leaves_per_switch >= 1);
  GeneratedTopology out;
  Topology& topo = out.topology;

  const NodeId core_switch = topo.add_node("core-sw", NodeKind::openflow_switch);
  out.core_gateway = topo.add_node("core-gw", NodeKind::core_gateway);
  topo.add_bidirectional(core_switch, out.core_gateway, LinkTechnology::fiber,
                         config.aggregation_capacity, config.aggregation_delay);

  const std::size_t switch_count = (leaves + leaves_per_switch - 1) / leaves_per_switch;
  std::vector<NodeId> agg_switches;
  for (std::size_t s = 0; s < switch_count; ++s) {
    const NodeId agg =
        topo.add_node("agg-sw-" + std::to_string(s), NodeKind::openflow_switch);
    agg_switches.push_back(agg);
    topo.add_bidirectional(agg, core_switch, LinkTechnology::fiber,
                           config.aggregation_capacity, config.aggregation_delay);

    const NodeId edge = topo.add_node("edge-gw-" + std::to_string(s), NodeKind::edge_gateway);
    out.edge_gateways.push_back(edge);
    topo.add_bidirectional(agg, edge, LinkTechnology::fiber, config.aggregation_capacity,
                           Duration::millis(0.5));
  }

  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    const NodeId gw = topo.add_node("ran-gw-" + std::to_string(leaf), NodeKind::enb_gateway);
    out.ran_gateways.push_back(gw);
    topo.add_bidirectional(gw, agg_switches[leaf / leaves_per_switch],
                           config.access_technology, config.access_capacity,
                           config.access_delay);
  }
  return out;
}

GeneratedTopology make_metro_ring(std::size_t switch_count, const GeneratorConfig& config) {
  assert(switch_count >= 3);
  GeneratedTopology out;
  Topology& topo = out.topology;

  std::vector<NodeId> switches;
  for (std::size_t s = 0; s < switch_count; ++s) {
    switches.push_back(topo.add_node("ring-sw-" + std::to_string(s),
                                     NodeKind::openflow_switch));
  }
  for (std::size_t s = 0; s < switch_count; ++s) {
    topo.add_bidirectional(switches[s], switches[(s + 1) % switch_count],
                           LinkTechnology::fiber, config.aggregation_capacity,
                           config.aggregation_delay);
  }

  for (std::size_t s = 0; s < switch_count; ++s) {
    const NodeId gw = topo.add_node("ran-gw-" + std::to_string(s), NodeKind::enb_gateway);
    out.ran_gateways.push_back(gw);
    topo.add_bidirectional(gw, switches[s], config.access_technology,
                           config.access_capacity, config.access_delay);
  }

  const NodeId edge = topo.add_node("edge-gw-0", NodeKind::edge_gateway);
  out.edge_gateways.push_back(edge);
  topo.add_bidirectional(switches[0], edge, LinkTechnology::fiber,
                         config.aggregation_capacity, Duration::millis(0.5));

  out.core_gateway = topo.add_node("core-gw", NodeKind::core_gateway);
  topo.add_bidirectional(switches[switch_count / 2], out.core_gateway,
                         LinkTechnology::fiber, config.aggregation_capacity,
                         config.aggregation_delay);
  return out;
}

}  // namespace slices::transport
