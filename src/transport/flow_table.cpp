#include "transport/flow_table.hpp"

namespace slices::transport {

Result<FlowRuleId> FlowTable::install(NodeId node, SliceId slice, LinkId out_link,
                                      std::uint32_t priority) {
  if (lookup(node, slice) != nullptr)
    return make_error(Errc::conflict, "flow rule for this slice already on node");
  const FlowRuleId id = ids_.next();
  rules_.emplace(id.value(), FlowRule{id, node, slice, out_link, priority});
  return id;
}

Result<void> FlowTable::remove(FlowRuleId id) {
  if (rules_.erase(id.value()) == 0) return make_error(Errc::not_found, "unknown flow rule");
  return {};
}

std::size_t FlowTable::remove_slice(SliceId slice) {
  std::size_t removed = 0;
  for (auto it = rules_.begin(); it != rules_.end();) {
    if (it->second.slice == slice) {
      it = rules_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const FlowRule* FlowTable::lookup(NodeId node, SliceId slice) const noexcept {
  for (const auto& [id, rule] : rules_) {
    if (rule.node == node && rule.slice == slice) return &rule;
  }
  return nullptr;
}

std::vector<FlowRule> FlowTable::rules_for(SliceId slice) const {
  std::vector<FlowRule> out;
  for (const auto& [id, rule] : rules_) {
    if (rule.slice == slice) out.push_back(rule);
  }
  return out;
}

}  // namespace slices::transport
