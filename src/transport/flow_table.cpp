#include "transport/flow_table.hpp"

namespace slices::transport {

Result<FlowRuleId> FlowTable::install(NodeId node, SliceId slice, LinkId out_link,
                                      std::uint32_t priority) {
  const NodeSliceKey key{node, slice};
  if (by_endpoint_.contains(key))
    return make_error(Errc::conflict, "flow rule for this slice already on node");
  const FlowRuleId id = ids_.next();
  rules_.insert(id, FlowRule{id, node, slice, out_link, priority});
  by_endpoint_.insert(key, id);
  return id;
}

Result<void> FlowTable::remove(FlowRuleId id) {
  const FlowRule* rule = rules_.find(id);
  if (rule == nullptr) return make_error(Errc::not_found, "unknown flow rule");
  by_endpoint_.erase(NodeSliceKey{rule->node, rule->slice});
  rules_.erase(id);
  return {};
}

std::size_t FlowTable::remove_slice(SliceId slice) {
  std::vector<FlowRuleId> doomed;
  for (const auto& [id, rule] : rules_) {
    if (rule.slice == slice) doomed.push_back(id);
  }
  for (const FlowRuleId id : doomed) {
    const FlowRule* rule = rules_.find(id);
    by_endpoint_.erase(NodeSliceKey{rule->node, rule->slice});
    rules_.erase(id);
  }
  return doomed.size();
}

const FlowRule* FlowTable::lookup(NodeId node, SliceId slice) const noexcept {
  const FlowRuleId* id = by_endpoint_.find(NodeSliceKey{node, slice});
  return id == nullptr ? nullptr : rules_.find(*id);
}

std::vector<FlowRule> FlowTable::rules_for(SliceId slice) const {
  std::vector<FlowRule> out;
  for (const auto& [id, rule] : rules_) {
    if (rule.slice == slice) out.push_back(rule);
  }
  return out;
}

}  // namespace slices::transport
