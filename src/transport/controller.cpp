#include "transport/controller.hpp"

#include <cassert>
#include <string>

#include "json/value.hpp"

#include "telemetry/trace.hpp"

namespace slices::transport {

TransportController::TransportController(Topology topology, Rng rng,
                                         telemetry::MonitorRegistry* registry)
    : topology_(std::move(topology)), fading_(topology_, rng), registry_(registry) {}

DataRate TransportController::reserved_on(LinkId link) const noexcept {
  const auto it = reserved_.find(link);
  return it == reserved_.end() ? DataRate::zero() : it->second;
}

DataRate TransportController::residual(const Link& link) const noexcept {
  if (!link_up(link.id)) return DataRate::zero();
  return clamp_non_negative(link.nominal_capacity - reserved_on(link.id));
}

Result<void> TransportController::set_link_up(LinkId link, bool up) {
  if (topology_.find_link(link) == nullptr)
    return make_error(Errc::not_found, "unknown link");
  if (up) {
    down_links_.erase(link);
  } else {
    down_links_.insert(link);
  }
  return {};
}

DataRate TransportController::current_capacity(const Link& link) const noexcept {
  if (!link_up(link.id)) return DataRate::zero();
  return fading_.effective_capacity(link);
}

Result<PathId> TransportController::allocate_path(SliceId slice, NodeId src, NodeId dst,
                                                  DataRate rate, Duration max_delay,
                                                  PathObjective objective) {
  if (rate <= DataRate::zero()) return make_error(Errc::invalid_argument, "rate must be > 0");

  const ResidualFn residual_fn = [this](const Link& link) { return residual(link); };
  const std::optional<Route> route =
      find_route(topology_, src, dst, rate, residual_fn, objective);
  if (!route) {
    return make_error(Errc::insufficient_capacity,
                      "no route with " + std::to_string(rate.as_mbps()) + " Mb/s residual");
  }
  if (route->total_delay > max_delay) {
    return make_error(Errc::sla_unsatisfiable,
                      "best route delay " + std::to_string(route->total_delay.as_millis()) +
                          " ms exceeds bound " + std::to_string(max_delay.as_millis()) + " ms");
  }

  PathReservation reservation;
  reservation.id = path_ids_.next();
  reservation.slice = slice;
  reservation.src = src;
  reservation.dst = dst;
  reservation.reserved = rate;
  reservation.max_delay = max_delay;
  reservation.route = *route;

  reserve_bandwidth(reservation.route, rate);
  install_rules(reservation);
  const PathId id = reservation.id;
  paths_.emplace(id.value(), std::move(reservation));
  return id;
}

Result<void> TransportController::restore_path(PathId id, SliceId slice, NodeId src,
                                               NodeId dst, DataRate rate, Duration max_delay,
                                               PathObjective objective) {
  if (!id.valid()) return make_error(Errc::invalid_argument, "invalid path id");
  if (paths_.contains(id.value())) {
    return make_error(Errc::conflict,
                      "path " + std::to_string(id.value()) + " already installed");
  }
  if (rate <= DataRate::zero()) return make_error(Errc::invalid_argument, "rate must be > 0");

  const ResidualFn residual_fn = [this](const Link& link) { return residual(link); };
  const std::optional<Route> route =
      find_route(topology_, src, dst, rate, residual_fn, objective);
  if (!route) {
    return make_error(Errc::insufficient_capacity,
                      "no route with " + std::to_string(rate.as_mbps()) + " Mb/s residual");
  }
  if (route->total_delay > max_delay) {
    return make_error(Errc::sla_unsatisfiable,
                      "best route delay " + std::to_string(route->total_delay.as_millis()) +
                          " ms exceeds bound " + std::to_string(max_delay.as_millis()) + " ms");
  }

  PathReservation reservation;
  reservation.id = id;
  reservation.slice = slice;
  reservation.src = src;
  reservation.dst = dst;
  reservation.reserved = rate;
  reservation.max_delay = max_delay;
  reservation.route = *route;

  reserve_bandwidth(reservation.route, rate);
  install_rules(reservation);
  paths_.emplace(id.value(), std::move(reservation));
  path_ids_.advance_past(id);
  return {};
}

void TransportController::install_rules(PathReservation& reservation) {
  for (const LinkId link_id : reservation.route.links) {
    const Link* link = topology_.find_link(link_id);
    assert(link != nullptr);
    // One rule per traversed node. A slice can hold several paths (e.g.
    // RAN->edge and edge->core legs) whose node sets overlap; reuse the
    // existing rule in that case.
    if (flows_.lookup(link->from, reservation.slice) == nullptr) {
      const Result<FlowRuleId> r = flows_.install(link->from, reservation.slice, link_id);
      assert(r.ok());
      (void)r;
    }
  }
}

void TransportController::reserve_bandwidth(const Route& route, DataRate rate) {
  for (const LinkId link : route.links) {
    reserved_[link] = reserved_on(link) + rate;
  }
}

void TransportController::release_bandwidth(const Route& route, DataRate rate) {
  for (const LinkId link : route.links) {
    reserved_[link] = clamp_non_negative(reserved_on(link) - rate);
  }
}

Result<void> TransportController::resize_path(PathId path, DataRate new_rate) {
  const auto it = paths_.find(path.value());
  if (it == paths_.end()) return make_error(Errc::not_found, "unknown path");
  PathReservation& reservation = it->second;
  if (new_rate < DataRate::zero())
    return make_error(Errc::invalid_argument, "negative rate");

  const DataRate delta = new_rate - reservation.reserved;
  if (delta > DataRate::zero()) {
    for (const LinkId link_id : reservation.route.links) {
      const Link* link = topology_.find_link(link_id);
      if (residual(*link) < delta) {
        return make_error(Errc::insufficient_capacity,
                          "link " + std::to_string(link_id.value()) +
                              " cannot absorb the increase");
      }
    }
  }
  if (delta > DataRate::zero()) {
    reserve_bandwidth(reservation.route, delta);
  } else {
    release_bandwidth(reservation.route, clamp_non_negative(reservation.reserved - new_rate));
  }
  reservation.reserved = new_rate;
  return {};
}

Result<void> TransportController::release_path(PathId path) {
  const auto it = paths_.find(path.value());
  if (it == paths_.end()) return make_error(Errc::not_found, "unknown path");
  release_bandwidth(it->second.route, it->second.reserved);
  // Remove this path's flow rules unless another path of the same slice
  // still uses the node.
  const SliceId slice = it->second.slice;
  const PathReservation removed = it->second;
  paths_.erase(it);
  for (const LinkId link_id : removed.route.links) {
    const Link* link = topology_.find_link(link_id);
    bool still_used = false;
    for (const auto& [other_id, other] : paths_) {
      if (other.slice != slice) continue;
      for (const LinkId other_link : other.route.links) {
        const Link* ol = topology_.find_link(other_link);
        if (ol->from == link->from) {
          still_used = true;
          break;
        }
      }
      if (still_used) break;
    }
    if (!still_used) {
      if (const FlowRule* rule = flows_.lookup(link->from, slice)) {
        const Result<void> r = flows_.remove(rule->id);
        assert(r.ok());
        (void)r;
      }
    }
  }
  return {};
}

const PathReservation* TransportController::find_path(PathId path) const noexcept {
  const auto it = paths_.find(path.value());
  return it == paths_.end() ? nullptr : &it->second;
}

std::vector<PathId> TransportController::paths_of(SliceId slice) const {
  std::vector<PathId> out;
  for (const auto& [id, reservation] : paths_) {
    if (reservation.slice == slice) out.push_back(reservation.id);
  }
  return out;
}

void TransportController::try_reroute(PathReservation& reservation) {
  // Residual as seen when this path's own reservation is lifted:
  // effective (faded) capacity minus what *other* paths reserve. The
  // path's own reservation must not be added back on top of the faded
  // capacity — a link in deep fade cannot carry it, which is exactly
  // why we are rerouting.
  const ResidualFn residual_fn = [this, &reservation](const Link& link) {
    DataRate others = reserved_on(link.id);
    for (const LinkId own : reservation.route.links) {
      if (own == link.id) {
        others = clamp_non_negative(others - reservation.reserved);
        break;
      }
    }
    return clamp_non_negative(current_capacity(link) - others);
  };
  const std::optional<Route> fresh = find_route(topology_, reservation.src, reservation.dst,
                                                reservation.reserved, residual_fn,
                                                PathObjective::min_delay);
  if (!fresh || fresh->total_delay > reservation.max_delay) return;
  // Only move when the route actually changes.
  if (fresh->links == reservation.route.links) return;

  release_bandwidth(reservation.route, reservation.reserved);
  flows_.remove_slice(reservation.slice);
  reservation.route = *fresh;
  reserve_bandwidth(reservation.route, reservation.reserved);
  install_rules(reservation);
  // Reinstall rules of the slice's *other* paths dropped by remove_slice.
  for (auto& [id, other] : paths_) {
    if (other.slice == reservation.slice && other.id != reservation.id) {
      install_rules(other);
    }
  }
  ++reroutes_;
}

std::vector<PathServeReport> TransportController::serve_epoch(
    std::span<const std::pair<PathId, DataRate>> demands, SimTime now) {
  TRACE_SCOPE("transport.serve_epoch");
  fading_.step();

  // Effective per-link scale: when fading pushes capacity below the
  // total reservation, every traversing path is scaled by cap/reserved.
  std::map<LinkId, double> scale;
  for (const Link& link : topology_.links()) {
    const DataRate reserved = reserved_on(link.id);
    if (reserved <= DataRate::zero()) continue;
    const DataRate capacity = current_capacity(link);
    scale[link.id] = capacity >= reserved ? 1.0 : capacity / reserved;
  }

  // Phase 1 — per-path serving, shardable across the pool: each slot
  // only reads the installed paths, the topology and the scale map, so
  // execution order cannot affect the result.
  struct PathOutcome {
    bool valid = false;
    PathServeReport report;
  };
  std::vector<PathOutcome> outcomes(demands.size());

  const auto serve_path = [&](std::size_t i) {
    const auto& [path_id, demand] = demands[i];
    const auto it = paths_.find(path_id.value());
    if (it == paths_.end()) return;
    const PathReservation& reservation = it->second;

    double factor = 1.0;
    Duration delay = Duration::zero();
    for (const LinkId link_id : reservation.route.links) {
      const Link* link = topology_.find_link(link_id);
      delay += link->delay;
      const auto sc = scale.find(link_id);
      if (sc != scale.end() && sc->second < factor) factor = sc->second;
    }

    PathServeReport report;
    report.path = reservation.id;
    report.slice = reservation.slice;
    report.demand = demand;
    // The reservation caps the slice; fading scales what the links can
    // actually carry of that reservation.
    report.served = min(demand, reservation.reserved * factor);
    report.degraded = factor < 0.999;
    // Congestion adds queueing delay as the path saturates.
    const double utilization =
        reservation.reserved <= DataRate::zero()
            ? 0.0
            : report.served / (reservation.reserved * factor + DataRate::mbps(1e-9));
    const double queue_penalty = utilization > 0.9 ? (utilization - 0.9) * 10.0 : 0.0;
    report.experienced_delay = delay * (1.0 + queue_penalty);
    report.delay_violated = report.experienced_delay > reservation.max_delay;
    outcomes[i] = PathOutcome{true, report};
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(demands.size(), serve_path);
  } else {
    for (std::size_t i = 0; i < demands.size(); ++i) serve_path(i);
  }

  // Phase 2 — sequential reduction in demand order: collect reports,
  // publish telemetry, note degraded paths for repair.
  std::vector<PathServeReport> reports;
  reports.reserve(demands.size());
  std::vector<PathId> to_repair;
  for (const PathOutcome& outcome : outcomes) {
    if (!outcome.valid) continue;
    const PathServeReport& report = outcome.report;
    reports.push_back(report);
    if (report.degraded) to_repair.push_back(report.path);

    if (registry_ != nullptr) {
      auto handle_it = path_handles_.find(report.path.value());
      if (handle_it == path_handles_.end()) {
        const std::string prefix = "transport.path." + std::to_string(report.path.value());
        handle_it = path_handles_
                        .emplace(report.path.value(),
                                 PathHandles{registry_->handle(prefix + ".served_mbps"),
                                             registry_->handle(prefix + ".delay_ms")})
                        .first;
      }
      handle_it->second.served.observe(now, report.served.as_mbps());
      handle_it->second.delay.observe(now, report.experienced_delay.as_millis());
    }
  }

  for (const PathId id : to_repair) {
    const auto it = paths_.find(id.value());
    if (it != paths_.end()) try_reroute(it->second);
  }

  if (registry_ != nullptr) {
    double reserved_total = 0.0;
    double capacity_total = 0.0;
    for (const Link& link : topology_.links()) {
      reserved_total += reserved_on(link.id).as_mbps();
      capacity_total += current_capacity(link).as_mbps();
    }
    if (!reserved_total_.valid()) {
      reserved_total_ = registry_->handle("transport.reserved_mbps");
      capacity_total_ = registry_->handle("transport.capacity_mbps");
    }
    reserved_total_.observe(now, reserved_total);
    capacity_total_.observe(now, capacity_total);
  }
  return reports;
}

std::shared_ptr<net::Router> TransportController::make_router() {
  auto router = std::make_shared<net::Router>();

  router->add(net::Method::get, "/topology", [this](const net::RouteContext&) {
    json::Array nodes;
    for (const Node& n : topology_.nodes()) {
      json::Object entry;
      entry.emplace("id", static_cast<double>(n.id.value()));
      entry.emplace("name", n.name);
      entry.emplace("kind", std::string(to_string(n.kind)));
      nodes.push_back(std::move(entry));
    }
    json::Array links;
    for (const Link& l : topology_.links()) {
      json::Object entry;
      entry.emplace("id", static_cast<double>(l.id.value()));
      entry.emplace("from", static_cast<double>(l.from.value()));
      entry.emplace("to", static_cast<double>(l.to.value()));
      entry.emplace("technology", std::string(to_string(l.technology)));
      entry.emplace("capacity_mbps", l.nominal_capacity.as_mbps());
      entry.emplace("effective_mbps", current_capacity(l).as_mbps());
      entry.emplace("reserved_mbps", reserved_on(l.id).as_mbps());
      entry.emplace("delay_ms", l.delay.as_millis());
      links.push_back(std::move(entry));
    }
    json::Object body;
    body.emplace("nodes", std::move(nodes));
    body.emplace("links", std::move(links));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/paths", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const json::Value& v = doc.value();
    const Result<double> slice = v.get_number("slice");
    const Result<double> src = v.get_number("src");
    const Result<double> dst = v.get_number("dst");
    const Result<double> rate = v.get_number("rate_mbps");
    const Result<double> delay = v.get_number("max_delay_ms");
    for (const auto* field : {&slice, &src, &dst, &rate, &delay}) {
      if (!field->ok()) return net::Response::from_error(field->error());
    }
    const Result<PathId> path = allocate_path(
        SliceId{static_cast<std::uint64_t>(slice.value())},
        NodeId{static_cast<std::uint64_t>(src.value())},
        NodeId{static_cast<std::uint64_t>(dst.value())}, DataRate::mbps(rate.value()),
        Duration::millis(delay.value()));
    if (!path.ok()) return net::Response::from_error(path.error());
    const PathReservation* reservation = find_path(path.value());
    json::Object body;
    body.emplace("path", static_cast<double>(path.value().value()));
    body.emplace("hops", static_cast<double>(reservation->route.hops()));
    body.emplace("delay_ms", reservation->route.total_delay.as_millis());
    return net::Response::json(net::Status::created,
                               json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::put, "/paths/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> rate = doc.value().get_number("rate_mbps");
    if (!rate.ok()) return net::Response::from_error(rate.error());
    const Result<void> r = resize_path(PathId{id.value()}, DataRate::mbps(rate.value()));
    if (!r.ok()) return net::Response::from_error(r.error());
    return net::Response::json(net::Status::ok, "{}");
  });

  router->add(net::Method::del, "/paths/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = release_path(PathId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::get, "/metrics", [this](const net::RouteContext&) {
    if (registry_ == nullptr) return net::Response::json(net::Status::ok, "{}");
    registry_->metrics_body(metrics_buffer_, "transport.");
    return net::Response::json(net::Status::ok, metrics_buffer_);
  });

  return router;
}

}  // namespace slices::transport
