#include "transport/controller.hpp"

#include <cassert>
#include <map>
#include <string>

#include "json/value.hpp"

#include "telemetry/trace.hpp"

namespace slices::transport {

TransportController::TransportController(Topology topology, Rng rng,
                                         telemetry::MonitorRegistry* registry)
    : topology_(std::move(topology)), fading_(topology_, rng), registry_(registry) {
  // The topology is append-only and owned here, so the per-link columns
  // are sized once for its lifetime.
  reserved_by_slot_.assign(topology_.link_count(), DataRate::zero());
  link_down_.assign(topology_.link_count(), 0);
}

DataRate TransportController::reserved_on(LinkId link) const noexcept {
  const std::uint32_t slot = topology_.link_slot(link);
  return slot == Topology::kNoSlot ? DataRate::zero() : reserved_by_slot_[slot];
}

DataRate TransportController::residual(const Link& link) const noexcept {
  if (!link_up(link.id)) return DataRate::zero();
  return clamp_non_negative(link.nominal_capacity - reserved_on(link.id));
}

Result<void> TransportController::set_link_up(LinkId link, bool up) {
  const std::uint32_t slot = topology_.link_slot(link);
  if (slot == Topology::kNoSlot) return make_error(Errc::not_found, "unknown link");
  link_down_[slot] = up ? 0 : 1;
  return {};
}

DataRate TransportController::current_capacity(const Link& link) const noexcept {
  if (!link_up(link.id)) return DataRate::zero();
  return fading_.effective_capacity(link);
}

Result<PathId> TransportController::allocate_path(SliceId slice, NodeId src, NodeId dst,
                                                  DataRate rate, Duration max_delay,
                                                  PathObjective objective) {
  if (rate <= DataRate::zero()) return make_error(Errc::invalid_argument, "rate must be > 0");

  const ResidualFn residual_fn = [this](const Link& link) { return residual(link); };
  const std::optional<Route> route =
      find_route(topology_, src, dst, rate, residual_fn, objective);
  if (!route) {
    return make_error(Errc::insufficient_capacity,
                      "no route with " + std::to_string(rate.as_mbps()) + " Mb/s residual");
  }
  if (route->total_delay > max_delay) {
    return make_error(Errc::sla_unsatisfiable,
                      "best route delay " + std::to_string(route->total_delay.as_millis()) +
                          " ms exceeds bound " + std::to_string(max_delay.as_millis()) + " ms");
  }

  PathReservation reservation;
  reservation.id = path_ids_.next();
  reservation.slice = slice;
  reservation.src = src;
  reservation.dst = dst;
  reservation.reserved = rate;
  reservation.max_delay = max_delay;
  reservation.route = *route;

  reserve_bandwidth(reservation.route, rate);
  install_rules(reservation);
  const PathId id = reservation.id;
  const PathReservation* stored = paths_.insert(id, std::move(reservation));
  assert(stored != nullptr);
  const std::uint32_t slot = paths_.slot_of(id);
  install_route_columns(slot, stored->route);
  install_serve_columns(slot, *stored);
  return id;
}

Result<void> TransportController::restore_path(PathId id, SliceId slice, NodeId src,
                                               NodeId dst, DataRate rate, Duration max_delay,
                                               PathObjective objective) {
  if (!id.valid()) return make_error(Errc::invalid_argument, "invalid path id");
  if (paths_.contains(id)) {
    return make_error(Errc::conflict,
                      "path " + std::to_string(id.value()) + " already installed");
  }
  if (rate <= DataRate::zero()) return make_error(Errc::invalid_argument, "rate must be > 0");

  const ResidualFn residual_fn = [this](const Link& link) { return residual(link); };
  const std::optional<Route> route =
      find_route(topology_, src, dst, rate, residual_fn, objective);
  if (!route) {
    return make_error(Errc::insufficient_capacity,
                      "no route with " + std::to_string(rate.as_mbps()) + " Mb/s residual");
  }
  if (route->total_delay > max_delay) {
    return make_error(Errc::sla_unsatisfiable,
                      "best route delay " + std::to_string(route->total_delay.as_millis()) +
                          " ms exceeds bound " + std::to_string(max_delay.as_millis()) + " ms");
  }

  PathReservation reservation;
  reservation.id = id;
  reservation.slice = slice;
  reservation.src = src;
  reservation.dst = dst;
  reservation.reserved = rate;
  reservation.max_delay = max_delay;
  reservation.route = *route;

  reserve_bandwidth(reservation.route, rate);
  install_rules(reservation);
  const PathReservation* stored = paths_.insert(id, std::move(reservation));
  assert(stored != nullptr);
  const std::uint32_t slot = paths_.slot_of(id);
  install_route_columns(slot, stored->route);
  install_serve_columns(slot, *stored);
  path_ids_.advance_past(id);
  return {};
}

Result<void> TransportController::restore_path_exact(PathReservation reservation) {
  if (!reservation.id.valid()) return make_error(Errc::invalid_argument, "invalid path id");
  if (reservation.reserved <= DataRate::zero()) {
    return make_error(Errc::invalid_argument, "rate must be > 0");
  }
  if (paths_.contains(reservation.id)) {
    return make_error(Errc::conflict, "path " + std::to_string(reservation.id.value()) +
                                          " already installed");
  }
  const PathId id = reservation.id;
  reserve_bandwidth(reservation.route, reservation.reserved);
  install_rules(reservation);
  const PathReservation* stored = paths_.insert(id, std::move(reservation));
  assert(stored != nullptr);
  const std::uint32_t slot = paths_.slot_of(id);
  install_route_columns(slot, stored->route);
  install_serve_columns(slot, *stored);
  path_ids_.advance_past(id);
  return {};
}

void TransportController::install_rules(PathReservation& reservation) {
  for (const LinkId link_id : reservation.route.links) {
    const Link* link = topology_.find_link(link_id);
    // A verbatim-restored route may reference links unknown to the
    // current topology; they carry nothing and get no rule.
    if (link == nullptr) continue;
    // One rule per traversed node. A slice can hold several paths (e.g.
    // RAN->edge and edge->core legs) whose node sets overlap; reuse the
    // existing rule in that case.
    if (flows_.lookup(link->from, reservation.slice) == nullptr) {
      const Result<FlowRuleId> r = flows_.install(link->from, reservation.slice, link_id);
      assert(r.ok());
      (void)r;
    }
  }
}

void TransportController::reserve_bandwidth(const Route& route, DataRate rate) {
  for (const LinkId link : route.links) {
    const std::uint32_t slot = topology_.link_slot(link);
    if (slot == Topology::kNoSlot) continue;  // unknown link reserves nothing
    reserved_by_slot_[slot] += rate;
  }
}

void TransportController::release_bandwidth(const Route& route, DataRate rate) {
  for (const LinkId link : route.links) {
    const std::uint32_t slot = topology_.link_slot(link);
    if (slot == Topology::kNoSlot) continue;
    reserved_by_slot_[slot] = clamp_non_negative(reserved_by_slot_[slot] - rate);
  }
}

void TransportController::install_route_columns(std::uint32_t path_slot, const Route& route) {
  if (path_slot >= route_offset_.size()) {
    route_offset_.resize(path_slot + 1, 0);
    route_len_.resize(path_slot + 1, 0);
    route_delay_.resize(path_slot + 1, Duration::zero());
  }
  route_offset_[path_slot] = static_cast<std::uint32_t>(route_links_.size());
  route_len_[path_slot] = static_cast<std::uint32_t>(route.links.size());
  Duration delay = Duration::zero();
  for (const LinkId link_id : route.links) {
    const std::uint32_t slot = topology_.link_slot(link_id);
    route_links_.push_back(slot);
    // Unknown links (verbatim-restored routes) contribute no delay —
    // they zero the serve factor instead.
    if (slot != Topology::kNoSlot) delay += topology_.links()[slot].delay;
  }
  route_delay_[path_slot] = delay;
  route_live_words_ += route.links.size();
}

void TransportController::clear_route_columns(std::uint32_t path_slot) {
  route_live_words_ -= route_len_[path_slot];
  route_len_[path_slot] = 0;
  route_delay_[path_slot] = Duration::zero();
  // Repack once dead words outnumber live ones (amortized O(1); cold —
  // only releases and reroutes abandon spans).
  if (route_links_.size() >= 64 && route_links_.size() - route_live_words_ > route_live_words_) {
    compact_route_arena();
  }
}

void TransportController::install_serve_columns(std::uint32_t path_slot,
                                                const PathReservation& reservation) {
  if (path_slot >= path_reserved_.size()) {
    path_reserved_.resize(path_slot + 1, DataRate::zero());
    path_sla_.resize(path_slot + 1, Duration::zero());
    path_slice_.resize(path_slot + 1, SliceId{});
  }
  path_reserved_[path_slot] = reservation.reserved;
  path_sla_[path_slot] = reservation.max_delay;
  path_slice_[path_slot] = reservation.slice;
  const std::uint64_t v = reservation.id.value();
  if (v < kMaxFlatPathId) {
    if (v >= path_slot_by_id_.size()) {
      path_slot_by_id_.resize(v + 1, DenseIdMap<PathId, PathReservation>::kNoSlot);
    }
    path_slot_by_id_[v] = path_slot;
  }
}

void TransportController::forget_path_slot(PathId id) noexcept {
  const std::uint64_t v = id.value();
  if (v < path_slot_by_id_.size()) {
    path_slot_by_id_[v] = DenseIdMap<PathId, PathReservation>::kNoSlot;
  }
}

void TransportController::compact_route_arena() {
  std::vector<std::uint32_t> packed;
  packed.reserve(route_live_words_);
  for (std::uint32_t slot = 0; slot < paths_.slot_count(); ++slot) {
    if (!(paths_.slot_at(slot).key.valid())) continue;
    const std::uint32_t off = route_offset_[slot];
    const std::uint32_t len = route_len_[slot];
    route_offset_[slot] = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), route_links_.begin() + off, route_links_.begin() + off + len);
  }
  route_links_ = std::move(packed);
}

Result<void> TransportController::resize_path(PathId path, DataRate new_rate) {
  PathReservation* found = paths_.find(path);
  if (found == nullptr) return make_error(Errc::not_found, "unknown path");
  PathReservation& reservation = *found;
  if (new_rate < DataRate::zero())
    return make_error(Errc::invalid_argument, "negative rate");

  const DataRate delta = new_rate - reservation.reserved;
  if (delta > DataRate::zero()) {
    for (const LinkId link_id : reservation.route.links) {
      const Link* link = topology_.find_link(link_id);
      // An unknown (verbatim-restored) link carries nothing, so it can
      // never absorb a grow.
      if (link == nullptr || residual(*link) < delta) {
        return make_error(Errc::insufficient_capacity,
                          "link " + std::to_string(link_id.value()) +
                              " cannot absorb the increase");
      }
    }
  }
  if (delta > DataRate::zero()) {
    reserve_bandwidth(reservation.route, delta);
  } else {
    release_bandwidth(reservation.route, clamp_non_negative(reservation.reserved - new_rate));
  }
  reservation.reserved = new_rate;
  path_reserved_[paths_.slot_of(path)] = new_rate;
  return {};
}

Result<void> TransportController::release_path(PathId path) {
  const std::uint32_t path_slot = paths_.slot_of(path);
  if (path_slot == DenseIdMap<PathId, PathReservation>::kNoSlot) {
    return make_error(Errc::not_found, "unknown path");
  }
  PathReservation& stored = paths_.slot_at(path_slot).value;
  release_bandwidth(stored.route, stored.reserved);
  // Remove this path's flow rules unless another path of the same slice
  // still uses the node.
  const SliceId slice = stored.slice;
  const PathReservation removed = std::move(stored);
  clear_route_columns(path_slot);
  forget_path_slot(path);
  paths_.erase(path);
  for (const LinkId link_id : removed.route.links) {
    const Link* link = topology_.find_link(link_id);
    if (link == nullptr) continue;  // unknown link: no rule was installed
    bool still_used = false;
    for (const auto& [other_id, other] : paths_) {
      if (other.slice != slice) continue;
      for (const LinkId other_link : other.route.links) {
        const Link* ol = topology_.find_link(other_link);
        if (ol != nullptr && ol->from == link->from) {
          still_used = true;
          break;
        }
      }
      if (still_used) break;
    }
    if (!still_used) {
      if (const FlowRule* rule = flows_.lookup(link->from, slice)) {
        const Result<void> r = flows_.remove(rule->id);
        assert(r.ok());
        (void)r;
      }
    }
  }
  return {};
}

const PathReservation* TransportController::find_path(PathId path) const noexcept {
  return paths_.find(path);
}

std::vector<PathId> TransportController::paths_of(SliceId slice) const {
  std::vector<PathId> out;
  for (const auto& [id, reservation] : paths_) {
    if (reservation.slice == slice) out.push_back(reservation.id);
  }
  return out;
}

void TransportController::try_reroute(PathReservation& reservation) {
  // Residual as seen when this path's own reservation is lifted:
  // effective (faded) capacity minus what *other* paths reserve. The
  // path's own reservation must not be added back on top of the faded
  // capacity — a link in deep fade cannot carry it, which is exactly
  // why we are rerouting.
  const ResidualFn residual_fn = [this, &reservation](const Link& link) {
    DataRate others = reserved_on(link.id);
    for (const LinkId own : reservation.route.links) {
      if (own == link.id) {
        others = clamp_non_negative(others - reservation.reserved);
        break;
      }
    }
    return clamp_non_negative(current_capacity(link) - others);
  };
  const std::optional<Route> fresh = find_route(topology_, reservation.src, reservation.dst,
                                                reservation.reserved, residual_fn,
                                                PathObjective::min_delay);
  if (!fresh || fresh->total_delay > reservation.max_delay) return;
  // Only move when the route actually changes.
  if (fresh->links == reservation.route.links) return;

  release_bandwidth(reservation.route, reservation.reserved);
  flows_.remove_slice(reservation.slice);
  reservation.route = *fresh;
  const std::uint32_t path_slot = paths_.slot_of(reservation.id);
  assert((path_slot != DenseIdMap<PathId, PathReservation>::kNoSlot));
  clear_route_columns(path_slot);
  install_route_columns(path_slot, reservation.route);
  reserve_bandwidth(reservation.route, reservation.reserved);
  install_rules(reservation);
  // Reinstall rules of the slice's *other* paths dropped by remove_slice.
  for (auto& [id, other] : paths_) {
    if (other.slice == reservation.slice && other.id != reservation.id) {
      install_rules(other);
    }
  }
  ++reroutes_;
}

std::vector<PathServeReport> TransportController::serve_epoch(
    std::span<const std::pair<PathId, DataRate>> demands, SimTime now) {
  std::vector<PathServeReport> reports;
  serve_epoch_into(demands, now, reports);
  return reports;
}

void TransportController::publish_path_telemetry(const PathServeReport& report, SimTime now) {
  PathHandles* handles = path_handles_.find(report.path);
  if (handles == nullptr) {
    const std::string prefix = "transport.path." + std::to_string(report.path.value());
    handles = path_handles_.insert(
        report.path, PathHandles{registry_->handle(prefix + ".served_mbps"),
                                 registry_->handle(prefix + ".delay_ms")});
  }
  handles->served.observe(now, report.served.as_mbps());
  handles->delay.observe(now, report.experienced_delay.as_millis());
}

void TransportController::publish_totals_telemetry(SimTime now) {
  double reserved_total = 0.0;
  double capacity_total = 0.0;
  for (const Link& link : topology_.links()) {
    reserved_total += reserved_on(link.id).as_mbps();
    capacity_total += current_capacity(link).as_mbps();
  }
  if (!reserved_total_.valid()) {
    reserved_total_ = registry_->handle("transport.reserved_mbps");
    capacity_total_ = registry_->handle("transport.capacity_mbps");
  }
  reserved_total_.observe(now, reserved_total);
  capacity_total_.observe(now, capacity_total);
}

void TransportController::serve_epoch_into(
    std::span<const std::pair<PathId, DataRate>> demands, SimTime now,
    std::vector<PathServeReport>& out) {
  if (legacy_epoch_path_) {
    serve_epoch_legacy(demands, now, out);
    return;
  }
  TRACE_SCOPE("transport.serve_epoch");
  fading_.step();

  const std::size_t n_links = topology_.link_count();
  const std::vector<Link>& links = topology_.links();
  const std::size_t n = demands.size();

  // All scratch is carved from the epoch arena up front (reserve first:
  // arena growth mid-epoch would dangle earlier spans), so steady-state
  // epochs never allocate. Reports are written straight into `out`
  // (resized, caller-retained capacity) rather than staged and copied.
  epoch_arena_.reset();
  epoch_arena_.reserve(n_links * sizeof(double) +
                       n * (sizeof(PathId) + sizeof(std::uint8_t)) + 128);
  std::span<double> scale = epoch_arena_.alloc_array<double>(n_links);
  std::span<PathId> repair = epoch_arena_.alloc_array<PathId>(n);
  std::span<std::uint8_t> valid = epoch_arena_.alloc_array<std::uint8_t>(n);
  out.clear();
  out.resize(n);

  // Per-link scale column by slot: 1.0 unless fading pushed effective
  // capacity below the total reservation, in which case every
  // traversing path is scaled by cap/reserved.
  for (std::size_t slot = 0; slot < n_links; ++slot) {
    double s = 1.0;
    const DataRate reserved = reserved_by_slot_[slot];
    if (reserved > DataRate::zero()) {
      const DataRate capacity =
          link_down_[slot] != 0
              ? DataRate::zero()
              : links[slot].nominal_capacity * fading_.factor_at_slot(slot);
      if (!(capacity >= reserved)) s = capacity / reserved;
    }
    scale[slot] = s;
  }

  // Phase 1 — per-path serving, shardable across the pool: each task
  // reads the serve columns, the route CSR and the scale column and
  // writes only its own report slot, so execution order cannot affect
  // the result.
  struct ServeCtx {
    const TransportController* self;
    const std::pair<PathId, DataRate>* demands;
    const double* scale;
    PathServeReport* reports;
    std::uint8_t* valid;
  } ctx{this, demands.data(), scale.data(), out.data(), valid.data()};

  const auto serve_path = [&ctx](std::size_t i) {
    const auto& [path_id, demand] = ctx.demands[i];
    const TransportController& self = *ctx.self;
    const std::uint32_t path_slot = self.path_slot_fast(path_id);
    if (path_slot == DenseIdMap<PathId, PathReservation>::kNoSlot) return;

    double factor = 1.0;
    const std::uint32_t off = self.route_offset_[path_slot];
    const std::uint32_t len = self.route_len_[path_slot];
    for (std::uint32_t k = 0; k < len; ++k) {
      const std::uint32_t link_slot = self.route_links_[off + k];
      // A route link unknown to the current topology (verbatim-restored
      // pre-crash route) carries nothing: factor 0, served 0, degraded.
      const double s = link_slot == Topology::kNoSlot ? 0.0 : ctx.scale[link_slot];
      if (s < factor) factor = s;
    }
    const Duration delay = self.route_delay_[path_slot];
    const DataRate reserved = self.path_reserved_[path_slot];

    PathServeReport& report = ctx.reports[i];
    report.path = path_id;
    report.slice = self.path_slice_[path_slot];
    report.demand = demand;
    // The reservation caps the slice; fading scales what the links can
    // actually carry of that reservation.
    const DataRate cap = reserved * factor;
    report.served = min(demand, cap);
    report.degraded = factor < 0.999;
    // Congestion adds queueing delay as the path saturates. The guard
    // is deliberately conservative (0.89 of capacity, with margin for
    // the epsilon and rounding) so the division — the one expensive op
    // per path — only runs when the penalty could actually be nonzero;
    // when it does run, the arithmetic is exactly the reference's.
    double queue_penalty = 0.0;
    if (!(report.served <= cap * 0.89)) {
      const double utilization = reserved <= DataRate::zero()
                                     ? 0.0
                                     : report.served / (cap + DataRate::mbps(1e-9));
      if (utilization > 0.9) queue_penalty = (utilization - 0.9) * 10.0;
    }
    report.experienced_delay = delay * (1.0 + queue_penalty);
    report.delay_violated = report.experienced_delay > self.path_sla_[path_slot];
    ctx.valid[i] = 1;
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, serve_path);
  } else {
    for (std::size_t i = 0; i < n; ++i) serve_path(i);
  }

  // Phase 2 — sequential reduction in demand order: compact away
  // unknown-path slots (rare), publish telemetry, note degraded paths
  // for repair.
  std::size_t n_repair = 0;
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (valid[i] == 0) continue;
    if (w != i) out[w] = out[i];
    const PathServeReport& report = out[w];
    ++w;
    if (report.degraded) repair[n_repair++] = report.path;
    if (registry_ != nullptr) publish_path_telemetry(report, now);
  }
  out.resize(w);

  for (std::size_t i = 0; i < n_repair; ++i) {
    if (PathReservation* reservation = paths_.find(repair[i])) try_reroute(*reservation);
  }

  if (registry_ != nullptr) publish_totals_telemetry(now);
}

void TransportController::serve_epoch_legacy(
    std::span<const std::pair<PathId, DataRate>> demands, SimTime now,
    std::vector<PathServeReport>& out) {
  // Pre-SoA reference implementation, kept byte-compatible with the
  // kernel: std::map scale, per-epoch vectors, per-link find_link
  // walks. The parity suite in determinism_test compares the two paths;
  // the allocation-counter vacuity guard in epoch_alloc_test depends on
  // this path allocating every epoch.
  TRACE_SCOPE("transport.serve_epoch");
  fading_.step();

  // Effective per-link scale: when fading pushes capacity below the
  // total reservation, every traversing path is scaled by cap/reserved.
  std::map<LinkId, double> scale;
  for (const Link& link : topology_.links()) {
    const DataRate reserved = reserved_on(link.id);
    if (reserved <= DataRate::zero()) continue;
    const DataRate capacity = current_capacity(link);
    scale[link.id] = capacity >= reserved ? 1.0 : capacity / reserved;
  }

  struct PathOutcome {
    bool valid = false;
    PathServeReport report;
  };
  std::vector<PathOutcome> outcomes(demands.size());

  const auto serve_path = [&](std::size_t i) {
    const auto& [path_id, demand] = demands[i];
    const PathReservation* found = paths_.find(path_id);
    if (found == nullptr) return;
    const PathReservation& reservation = *found;

    double factor = 1.0;
    Duration delay = Duration::zero();
    for (const LinkId link_id : reservation.route.links) {
      const Link* link = topology_.find_link(link_id);
      if (link == nullptr) {
        // Stale route link (verbatim-restored route): carries nothing.
        factor = 0.0;
        continue;
      }
      delay += link->delay;
      const auto sc = scale.find(link_id);
      if (sc != scale.end() && sc->second < factor) factor = sc->second;
    }

    PathServeReport report;
    report.path = reservation.id;
    report.slice = reservation.slice;
    report.demand = demand;
    report.served = min(demand, reservation.reserved * factor);
    report.degraded = factor < 0.999;
    const double utilization =
        reservation.reserved <= DataRate::zero()
            ? 0.0
            : report.served / (reservation.reserved * factor + DataRate::mbps(1e-9));
    const double queue_penalty = utilization > 0.9 ? (utilization - 0.9) * 10.0 : 0.0;
    report.experienced_delay = delay * (1.0 + queue_penalty);
    report.delay_violated = report.experienced_delay > reservation.max_delay;
    outcomes[i] = PathOutcome{true, report};
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(demands.size(), serve_path);
  } else {
    for (std::size_t i = 0; i < demands.size(); ++i) serve_path(i);
  }

  out.clear();
  std::vector<PathId> to_repair;
  for (const PathOutcome& outcome : outcomes) {
    if (!outcome.valid) continue;
    const PathServeReport& report = outcome.report;
    out.push_back(report);
    if (report.degraded) to_repair.push_back(report.path);
    if (registry_ != nullptr) publish_path_telemetry(report, now);
  }

  for (const PathId id : to_repair) {
    if (PathReservation* reservation = paths_.find(id)) try_reroute(*reservation);
  }

  if (registry_ != nullptr) publish_totals_telemetry(now);
}

std::shared_ptr<net::Router> TransportController::make_router() {
  auto router = std::make_shared<net::Router>();

  router->add(net::Method::get, "/topology", [this](const net::RouteContext&) {
    json::Array nodes;
    for (const Node& n : topology_.nodes()) {
      json::Object entry;
      entry.emplace("id", static_cast<double>(n.id.value()));
      entry.emplace("name", n.name);
      entry.emplace("kind", std::string(to_string(n.kind)));
      nodes.push_back(std::move(entry));
    }
    json::Array links;
    for (const Link& l : topology_.links()) {
      json::Object entry;
      entry.emplace("id", static_cast<double>(l.id.value()));
      entry.emplace("from", static_cast<double>(l.from.value()));
      entry.emplace("to", static_cast<double>(l.to.value()));
      entry.emplace("technology", std::string(to_string(l.technology)));
      entry.emplace("capacity_mbps", l.nominal_capacity.as_mbps());
      entry.emplace("effective_mbps", current_capacity(l).as_mbps());
      entry.emplace("reserved_mbps", reserved_on(l.id).as_mbps());
      entry.emplace("delay_ms", l.delay.as_millis());
      links.push_back(std::move(entry));
    }
    json::Object body;
    body.emplace("nodes", std::move(nodes));
    body.emplace("links", std::move(links));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/paths", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const json::Value& v = doc.value();
    const Result<double> slice = v.get_number("slice");
    const Result<double> src = v.get_number("src");
    const Result<double> dst = v.get_number("dst");
    const Result<double> rate = v.get_number("rate_mbps");
    const Result<double> delay = v.get_number("max_delay_ms");
    for (const auto* field : {&slice, &src, &dst, &rate, &delay}) {
      if (!field->ok()) return net::Response::from_error(field->error());
    }
    const Result<PathId> path = allocate_path(
        SliceId{static_cast<std::uint64_t>(slice.value())},
        NodeId{static_cast<std::uint64_t>(src.value())},
        NodeId{static_cast<std::uint64_t>(dst.value())}, DataRate::mbps(rate.value()),
        Duration::millis(delay.value()));
    if (!path.ok()) return net::Response::from_error(path.error());
    const PathReservation* reservation = find_path(path.value());
    json::Object body;
    body.emplace("path", static_cast<double>(path.value().value()));
    body.emplace("hops", static_cast<double>(reservation->route.hops()));
    body.emplace("delay_ms", reservation->route.total_delay.as_millis());
    return net::Response::json(net::Status::created,
                               json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::put, "/paths/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> rate = doc.value().get_number("rate_mbps");
    if (!rate.ok()) return net::Response::from_error(rate.error());
    const Result<void> r = resize_path(PathId{id.value()}, DataRate::mbps(rate.value()));
    if (!r.ok()) return net::Response::from_error(r.error());
    return net::Response::json(net::Status::ok, "{}");
  });

  router->add(net::Method::del, "/paths/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = release_path(PathId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::get, "/metrics", [this](const net::RouteContext&) {
    if (registry_ == nullptr) return net::Response::json(net::Status::ok, "{}");
    registry_->metrics_body(metrics_buffer_, "transport.");
    return net::Response::json(net::Status::ok, metrics_buffer_);
  });

  return router;
}

}  // namespace slices::transport
