#pragma once
// Transport-network topology model.
//
// The testbed's transport is "composed of mmWave and µwave wireless
// links as well as of an OpenFlow programmable switch that enables
// different transport network topology configurations with predefined
// capacity and delay characteristics". We model a directed multigraph of
// typed links; wireless technologies get a fluctuating capacity process
// (see fading.hpp), which is what makes transport overbooking risky.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace slices::transport {

/// Role of a node in the end-to-end data path.
enum class NodeKind {
  openflow_switch,  ///< programmable switch (the PF5240 in the testbed)
  enb_gateway,      ///< aggregation point of an eNB's fronthaul
  edge_gateway,     ///< edge datacenter ingress
  core_gateway,     ///< core/cloud datacenter ingress
};

[[nodiscard]] std::string_view to_string(NodeKind k) noexcept;

/// Physical layer of a link; determines its fading behaviour.
enum class LinkTechnology {
  fiber,   ///< wired: stable capacity
  mmwave,  ///< high capacity, weather/obstruction-sensitive
  uwave,   ///< µwave: moderate capacity, mildly weather-sensitive
};

[[nodiscard]] std::string_view to_string(LinkTechnology t) noexcept;

/// A transport node.
struct Node {
  NodeId id;
  std::string name;
  NodeKind kind = NodeKind::openflow_switch;
};

/// A directed link with nominal capacity and propagation delay.
struct Link {
  LinkId id;
  NodeId from;
  NodeId to;
  LinkTechnology technology = LinkTechnology::fiber;
  DataRate nominal_capacity;
  Duration delay;
};

/// Directed multigraph. Nodes and links are append-only (infrastructure
/// does not disappear mid-run; degradation is modelled by fading), so
/// the position of a node/link in nodes()/links() — its *slot* — is
/// stable for the topology's lifetime. Id lookups resolve through dense
/// id->slot tables in O(1); the epoch kernels index per-link columns by
/// slot directly.
class Topology {
 public:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Add a node; name must be unique (used by builders/tests).
  NodeId add_node(std::string name, NodeKind kind);

  /// Add a directed link. Precondition: endpoints exist.
  LinkId add_link(NodeId from, NodeId to, LinkTechnology technology, DataRate capacity,
                  Duration delay);

  /// Add a pair of opposite links (most testbed links are symmetric).
  /// Returns {forward, reverse}.
  std::pair<LinkId, LinkId> add_bidirectional(NodeId a, NodeId b, LinkTechnology technology,
                                              DataRate capacity, Duration delay);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  [[nodiscard]] const Node* find_node(NodeId id) const noexcept;
  [[nodiscard]] const Node* find_node_by_name(std::string_view name) const noexcept;
  [[nodiscard]] const Link* find_link(LinkId id) const noexcept;

  /// Index of `id` into nodes()/links(), or kNoSlot when unknown.
  [[nodiscard]] std::uint32_t node_slot(NodeId id) const noexcept {
    return id.value() < node_slot_by_id_.size() ? node_slot_by_id_[id.value()] : kNoSlot;
  }
  [[nodiscard]] std::uint32_t link_slot(LinkId id) const noexcept {
    return id.value() < link_slot_by_id_.size() ? link_slot_by_id_[id.value()] : kNoSlot;
  }

  /// Links leaving `node` (ids into links()).
  [[nodiscard]] const std::vector<LinkId>& outgoing(NodeId node) const;

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  ///< by node slot
  // Dense id -> slot tables (ids are allocator-issued and near-dense,
  // so a flat vector beats hashing and keeps the topology copyable).
  std::vector<std::uint32_t> node_slot_by_id_;
  std::vector<std::uint32_t> link_slot_by_id_;
  IdAllocator<NodeTag> node_ids_;
  IdAllocator<LinkTag> link_ids_;
};

}  // namespace slices::transport
