#include "transport/topology.hpp"

#include <cassert>

namespace slices::transport {

std::string_view to_string(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::openflow_switch: return "openflow_switch";
    case NodeKind::enb_gateway: return "enb_gateway";
    case NodeKind::edge_gateway: return "edge_gateway";
    case NodeKind::core_gateway: return "core_gateway";
  }
  return "?";
}

std::string_view to_string(LinkTechnology t) noexcept {
  switch (t) {
    case LinkTechnology::fiber: return "fiber";
    case LinkTechnology::mmwave: return "mmwave";
    case LinkTechnology::uwave: return "uwave";
  }
  return "?";
}

NodeId Topology::add_node(std::string name, NodeKind kind) {
  assert(find_node_by_name(name) == nullptr && "duplicate node name");
  const NodeId id = node_ids_.next();
  nodes_.push_back(Node{id, std::move(name), kind});
  adjacency_.try_emplace(id);
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, LinkTechnology technology,
                          DataRate capacity, Duration delay) {
  assert(find_node(from) != nullptr && find_node(to) != nullptr);
  assert(capacity > DataRate::zero());
  assert(delay >= Duration::zero());
  const LinkId id = link_ids_.next();
  links_.push_back(Link{id, from, to, technology, capacity, delay});
  adjacency_[from].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::add_bidirectional(NodeId a, NodeId b,
                                                      LinkTechnology technology,
                                                      DataRate capacity, Duration delay) {
  return {add_link(a, b, technology, capacity, delay),
          add_link(b, a, technology, capacity, delay)};
}

const Node* Topology::find_node(NodeId id) const noexcept {
  for (const Node& n : nodes_) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const Node* Topology::find_node_by_name(std::string_view name) const noexcept {
  for (const Node& n : nodes_) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

const Link* Topology::find_link(LinkId id) const noexcept {
  for (const Link& l : links_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

const std::vector<LinkId>& Topology::outgoing(NodeId node) const {
  static const std::vector<LinkId> kEmpty;
  const auto it = adjacency_.find(node);
  return it == adjacency_.end() ? kEmpty : it->second;
}

}  // namespace slices::transport
