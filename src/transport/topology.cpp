#include "transport/topology.hpp"

#include <cassert>

namespace slices::transport {

std::string_view to_string(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::openflow_switch: return "openflow_switch";
    case NodeKind::enb_gateway: return "enb_gateway";
    case NodeKind::edge_gateway: return "edge_gateway";
    case NodeKind::core_gateway: return "core_gateway";
  }
  return "?";
}

std::string_view to_string(LinkTechnology t) noexcept {
  switch (t) {
    case LinkTechnology::fiber: return "fiber";
    case LinkTechnology::mmwave: return "mmwave";
    case LinkTechnology::uwave: return "uwave";
  }
  return "?";
}

NodeId Topology::add_node(std::string name, NodeKind kind) {
  assert(find_node_by_name(name) == nullptr && "duplicate node name");
  const NodeId id = node_ids_.next();
  const auto slot = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{id, std::move(name), kind});
  adjacency_.emplace_back();
  if (id.value() >= node_slot_by_id_.size()) {
    node_slot_by_id_.resize(id.value() + 1, kNoSlot);
  }
  node_slot_by_id_[id.value()] = slot;
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, LinkTechnology technology,
                          DataRate capacity, Duration delay) {
  assert(find_node(from) != nullptr && find_node(to) != nullptr);
  assert(capacity > DataRate::zero());
  assert(delay >= Duration::zero());
  const LinkId id = link_ids_.next();
  const auto slot = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{id, from, to, technology, capacity, delay});
  if (id.value() >= link_slot_by_id_.size()) {
    link_slot_by_id_.resize(id.value() + 1, kNoSlot);
  }
  link_slot_by_id_[id.value()] = slot;
  adjacency_[node_slot(from)].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::add_bidirectional(NodeId a, NodeId b,
                                                      LinkTechnology technology,
                                                      DataRate capacity, Duration delay) {
  return {add_link(a, b, technology, capacity, delay),
          add_link(b, a, technology, capacity, delay)};
}

const Node* Topology::find_node(NodeId id) const noexcept {
  const std::uint32_t slot = node_slot(id);
  return slot == kNoSlot ? nullptr : &nodes_[slot];
}

const Node* Topology::find_node_by_name(std::string_view name) const noexcept {
  for (const Node& n : nodes_) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

const Link* Topology::find_link(LinkId id) const noexcept {
  const std::uint32_t slot = link_slot(id);
  return slot == kNoSlot ? nullptr : &links_[slot];
}

const std::vector<LinkId>& Topology::outgoing(NodeId node) const {
  static const std::vector<LinkId> kEmpty;
  const std::uint32_t slot = node_slot(node);
  return slot == kNoSlot ? kEmpty : adjacency_[slot];
}

}  // namespace slices::transport
