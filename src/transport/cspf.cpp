#include "transport/cspf.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>

namespace slices::transport {
namespace {

struct QueueEntry {
  std::int64_t cost_us = 0;  // delay in µs, or hop count for min_hops
  std::uint64_t tiebreak = 0;
  NodeId node;

  friend bool operator>(const QueueEntry& a, const QueueEntry& b) noexcept {
    if (a.cost_us != b.cost_us) return a.cost_us > b.cost_us;
    return a.tiebreak > b.tiebreak;
  }
};

}  // namespace

std::optional<Route> find_route(const Topology& topology, NodeId src, NodeId dst,
                                DataRate demand, const ResidualFn& residual,
                                PathObjective objective) {
  if (topology.find_node(src) == nullptr || topology.find_node(dst) == nullptr)
    return std::nullopt;

  std::map<NodeId, std::int64_t> best;
  std::map<NodeId, LinkId> via;  // incoming link on the best path
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier;

  best[src] = 0;
  frontier.push(QueueEntry{0, 0, src});

  while (!frontier.empty()) {
    const QueueEntry entry = frontier.top();
    frontier.pop();
    if (entry.node == dst) break;
    const auto found = best.find(entry.node);
    if (found != best.end() && entry.cost_us > found->second) continue;  // stale

    for (const LinkId link_id : topology.outgoing(entry.node)) {
      const Link* link = topology.find_link(link_id);
      if (link == nullptr) continue;
      if (residual(*link) < demand) continue;  // capacity-infeasible

      const std::int64_t step =
          objective == PathObjective::min_delay ? link->delay.as_micros() : 1;
      const std::int64_t cost = entry.cost_us + step;
      const auto it = best.find(link->to);
      if (it == best.end() || cost < it->second ||
          (cost == it->second && link_id.value() < via[link->to].value())) {
        best[link->to] = cost;
        via[link->to] = link_id;
        frontier.push(QueueEntry{cost, link_id.value(), link->to});
      }
    }
  }

  if (!best.contains(dst)) return std::nullopt;

  // Walk predecessors back from dst.
  Route route;
  route.bottleneck = DataRate::gbps(1e9);  // effectively +inf until tightened
  NodeId cursor = dst;
  while (cursor != src) {
    const LinkId incoming = via.at(cursor);
    const Link* link = topology.find_link(incoming);
    route.links.push_back(incoming);
    route.total_delay += link->delay;
    route.bottleneck = min(route.bottleneck, residual(*link));
    cursor = link->from;
  }
  std::reverse(route.links.begin(), route.links.end());
  return route;
}

}  // namespace slices::transport
