#pragma once
// Constrained shortest-path computation (CSPF).
//
// Path selection for a slice must "guarantee the required delay and
// capacity in the transport network" (paper §3). CSPF prunes links whose
// residual capacity is below the demand, then runs Dijkstra minimizing
// total propagation delay; a min-hop variant exists for the A3 ablation.

#include <functional>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// A computed route: ordered link ids plus its aggregate properties.
struct Route {
  std::vector<LinkId> links;
  Duration total_delay;
  /// Bottleneck residual capacity along the route at computation time.
  DataRate bottleneck;

  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
};

/// Residual capacity oracle: residual(link) the path computation must
/// respect (controller supplies nominal − reserved, possibly scaled by
/// fading).
using ResidualFn = std::function<DataRate(const Link&)>;

/// Objective for path selection.
enum class PathObjective {
  min_delay,  ///< CSPF: minimize summed propagation delay (default)
  min_hops,   ///< baseline for the A3 ablation
};

/// Compute a route from `src` to `dst` with every link's residual
/// >= `demand`. Returns nullopt when no feasible route exists.
/// Deterministic tie-break: lower link ids win.
[[nodiscard]] std::optional<Route> find_route(const Topology& topology, NodeId src,
                                              NodeId dst, DataRate demand,
                                              const ResidualFn& residual,
                                              PathObjective objective = PathObjective::min_delay);

}  // namespace slices::transport
