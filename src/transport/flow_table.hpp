#pragma once
// OpenFlow-style flow state.
//
// Installing a transport path for a slice materializes as one flow rule
// per traversed node, matching on the slice id and forwarding out of the
// chosen link — the programmable-switch reconfiguration the testbed
// performs on its PF5240. The flow table is the ground truth a real
// switch would hold; the controller keeps it consistent with its path
// reservations, and tests assert that consistency.

#include <cstdint>
#include <vector>

#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"

namespace slices::transport {

/// One forwarding rule: on `node`, traffic of `slice` goes out `out_link`.
struct FlowRule {
  FlowRuleId id;
  NodeId node;
  SliceId slice;
  LinkId out_link;
  std::uint32_t priority = 100;
};

/// The network-wide flow state (per-node tables keyed together).
class FlowTable {
 public:
  /// Install a rule. Errors: conflict when (node, slice) already has one
  /// — a slice's traffic must have exactly one next hop per node.
  [[nodiscard]] Result<FlowRuleId> install(NodeId node, SliceId slice, LinkId out_link,
                                           std::uint32_t priority = 100);

  /// Remove one rule by id. Errors: not_found.
  [[nodiscard]] Result<void> remove(FlowRuleId id);

  /// Remove all rules of a slice (path teardown); returns removed count.
  std::size_t remove_slice(SliceId slice);

  /// Look up the forwarding decision for `slice` at `node`.
  [[nodiscard]] const FlowRule* lookup(NodeId node, SliceId slice) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] std::vector<FlowRule> rules_for(SliceId slice) const;

 private:
  /// Secondary index key: the (node, slice) pair the uniqueness rule is
  /// stated over. Hashed whole; never iterated, so only lookups matter.
  struct NodeSliceKey {
    NodeId node{NodeId::invalid()};
    SliceId slice{SliceId::invalid()};
    friend constexpr bool operator==(NodeSliceKey, NodeSliceKey) noexcept = default;
  };
  struct NodeSliceTraits {
    [[nodiscard]] static constexpr NodeSliceKey invalid() noexcept { return {}; }
    [[nodiscard]] static constexpr std::uint64_t hash(NodeSliceKey k) noexcept {
      return dense_mix64(k.node.value() ^ dense_mix64(k.slice.value()));
    }
  };

  DenseIdMap<FlowRuleId, FlowRule> rules_;
  /// (node, slice) -> rule id, making install-time conflict checks and
  /// forwarding lookups O(1) instead of full-table scans.
  DenseIdMap<NodeSliceKey, FlowRuleId, NodeSliceTraits> by_endpoint_;
  IdAllocator<FlowRuleTag> ids_;
};

}  // namespace slices::transport
