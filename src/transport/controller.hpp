#pragma once
// Transport domain controller.
//
// Owns the topology, link fading state, capacity reservations and the
// OpenFlow tables. The orchestrator asks it for "dedicated paths ...
// to guarantee the required delay and capacity" (paper §3); every
// monitoring epoch it advances fading, serves offered demand over the
// installed paths, repairs paths broken by deep fades, and publishes
// telemetry.

#include <map>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/router.hpp"
#include "telemetry/registry.hpp"
#include "transport/cspf.hpp"
#include "transport/fading.hpp"
#include "transport/flow_table.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// An installed path reservation.
struct PathReservation {
  PathId id;
  SliceId slice;
  NodeId src;
  NodeId dst;
  DataRate reserved;
  Duration max_delay;  ///< SLA bound the path must respect
  Route route;
};

/// Per-path serving outcome of one epoch.
struct PathServeReport {
  PathId path;
  SliceId slice;
  DataRate demand;
  DataRate served;
  Duration experienced_delay;
  bool delay_violated = false;   ///< experienced_delay > max_delay
  bool degraded = false;         ///< fading cut below the reservation
};

/// The transport-domain controller.
class TransportController {
 public:
  /// Takes ownership of the topology; `rng` seeds the fading field.
  TransportController(Topology topology, Rng rng,
                      telemetry::MonitorRegistry* registry = nullptr);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FlowTable& flow_table() const noexcept { return flows_; }
  [[nodiscard]] const FadingField& fading() const noexcept { return fading_; }

  // --- Path lifecycle ------------------------------------------------------

  /// Reserve a path for `slice` from `src` to `dst` carrying `rate`
  /// within `max_delay`. Runs CSPF over residual capacity, reserves
  /// bandwidth on each traversed link and installs flow rules. Errors:
  /// insufficient_capacity (no capacity-feasible route),
  /// sla_unsatisfiable (routes exist but none meets the delay bound).
  [[nodiscard]] Result<PathId> allocate_path(SliceId slice, NodeId src, NodeId dst,
                                             DataRate rate, Duration max_delay,
                                             PathObjective objective = PathObjective::min_delay);

  /// Crash-recovery variant of allocate_path: install the reservation
  /// under its original `id` (from the durable store) instead of a
  /// freshly allocated one, and keep the id allocator ahead of it. The
  /// route is recomputed over the *current* substrate — it may differ
  /// from the pre-crash route, but src/dst/rate/delay are preserved.
  /// Errors: conflict (id already installed) plus allocate_path's.
  [[nodiscard]] Result<void> restore_path(PathId id, SliceId slice, NodeId src, NodeId dst,
                                          DataRate rate, Duration max_delay,
                                          PathObjective objective = PathObjective::min_delay);

  /// Resize an existing path reservation (grow re-validates capacity on
  /// the current route; it does not reroute). Shrink always succeeds.
  [[nodiscard]] Result<void> resize_path(PathId path, DataRate new_rate);

  /// Tear down a path: release bandwidth + remove flow rules.
  [[nodiscard]] Result<void> release_path(PathId path);

  [[nodiscard]] const PathReservation* find_path(PathId path) const noexcept;
  [[nodiscard]] std::vector<PathId> paths_of(SliceId slice) const;

  /// Residual (nominal − reserved) capacity of a link; zero while the
  /// link is administratively down.
  [[nodiscard]] DataRate residual(const Link& link) const noexcept;

  /// Total reserved bandwidth of a link.
  [[nodiscard]] DataRate reserved_on(LinkId link) const noexcept;

  // --- Failure injection -----------------------------------------------------

  /// Administrative link state: a down link carries nothing until
  /// brought back up — serving drops to zero, new allocations avoid it
  /// and the repair loop routes existing paths around it. Errors:
  /// not_found.
  [[nodiscard]] Result<void> set_link_up(LinkId link, bool up);

  [[nodiscard]] bool link_up(LinkId link) const noexcept { return !down_links_.contains(link); }

  /// Capacity a link can carry right now: nominal x fading, zero when
  /// administratively down.
  [[nodiscard]] DataRate current_capacity(const Link& link) const noexcept;

  // --- Epoch processing ------------------------------------------------------

  /// Advance fading one epoch, then serve `demands` (offered Mb/s per
  /// path). Serving: a link whose effective capacity dropped below its
  /// total reservation scales all traversing paths proportionally.
  /// Afterwards, paths that were degraded are rerouted when a better
  /// feasible route exists (the "network reconfiguration" arc of
  /// Fig. 1). Publishes telemetry when a registry is set.
  std::vector<PathServeReport> serve_epoch(
      std::span<const std::pair<PathId, DataRate>> demands, SimTime now);

  /// Attach a worker pool (non-owning; may be nullptr to detach). The
  /// per-path serving computation shards across it; reduction, repair
  /// and telemetry stay sequential on the calling thread, keeping the
  /// output bit-for-bit identical at any pool size.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Number of reroutes performed since construction.
  [[nodiscard]] std::uint64_t reroutes() const noexcept { return reroutes_; }

  /// REST facade (topology, path CRUD, metrics).
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  void install_rules(PathReservation& reservation);
  void reserve_bandwidth(const Route& route, DataRate rate);
  void release_bandwidth(const Route& route, DataRate rate);
  void try_reroute(PathReservation& reservation);

  // Telemetry handles interned on first use so the epoch loop never
  // rebuilds "transport.path.N.*" key strings.
  struct PathHandles {
    telemetry::SeriesHandle served;
    telemetry::SeriesHandle delay;
  };

  Topology topology_;
  FadingField fading_;
  FlowTable flows_;
  std::map<std::uint64_t, PathReservation> paths_;  // by PathId value
  std::map<LinkId, DataRate> reserved_;
  std::set<LinkId> down_links_;
  IdAllocator<PathTag> path_ids_;
  telemetry::MonitorRegistry* registry_;
  std::uint64_t reroutes_ = 0;
  ThreadPool* pool_ = nullptr;
  std::map<std::uint64_t, PathHandles> path_handles_;  // by PathId value
  telemetry::SeriesHandle reserved_total_;
  telemetry::SeriesHandle capacity_total_;
  std::string metrics_buffer_;  ///< reused /metrics serialization buffer
};

}  // namespace slices::transport
