#pragma once
// Transport domain controller.
//
// Owns the topology, link fading state, capacity reservations and the
// OpenFlow tables. The orchestrator asks it for "dedicated paths ...
// to guarantee the required delay and capacity" (paper §3); every
// monitoring epoch it advances fading, serves offered demand over the
// installed paths, repairs paths broken by deep fades, and publishes
// telemetry.

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/router.hpp"
#include "telemetry/registry.hpp"
#include "transport/cspf.hpp"
#include "transport/fading.hpp"
#include "transport/flow_table.hpp"
#include "transport/topology.hpp"

namespace slices::transport {

/// An installed path reservation.
struct PathReservation {
  PathId id;
  SliceId slice;
  NodeId src;
  NodeId dst;
  DataRate reserved;
  Duration max_delay;  ///< SLA bound the path must respect
  Route route;
};

/// Per-path serving outcome of one epoch.
struct PathServeReport {
  PathId path;
  SliceId slice;
  DataRate demand;
  DataRate served;
  Duration experienced_delay;
  bool delay_violated = false;   ///< experienced_delay > max_delay
  bool degraded = false;         ///< fading cut below the reservation
};

/// The transport-domain controller.
class TransportController {
 public:
  /// Takes ownership of the topology; `rng` seeds the fading field.
  TransportController(Topology topology, Rng rng,
                      telemetry::MonitorRegistry* registry = nullptr);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FlowTable& flow_table() const noexcept { return flows_; }
  [[nodiscard]] const FadingField& fading() const noexcept { return fading_; }

  // --- Path lifecycle ------------------------------------------------------

  /// Reserve a path for `slice` from `src` to `dst` carrying `rate`
  /// within `max_delay`. Runs CSPF over residual capacity, reserves
  /// bandwidth on each traversed link and installs flow rules. Errors:
  /// insufficient_capacity (no capacity-feasible route),
  /// sla_unsatisfiable (routes exist but none meets the delay bound).
  [[nodiscard]] Result<PathId> allocate_path(SliceId slice, NodeId src, NodeId dst,
                                             DataRate rate, Duration max_delay,
                                             PathObjective objective = PathObjective::min_delay);

  /// Crash-recovery variant of allocate_path: install the reservation
  /// under its original `id` (from the durable store) instead of a
  /// freshly allocated one, and keep the id allocator ahead of it. The
  /// route is recomputed over the *current* substrate — it may differ
  /// from the pre-crash route, but src/dst/rate/delay are preserved.
  /// Errors: conflict (id already installed) plus allocate_path's.
  [[nodiscard]] Result<void> restore_path(PathId id, SliceId slice, NodeId src, NodeId dst,
                                          DataRate rate, Duration max_delay,
                                          PathObjective objective = PathObjective::min_delay);

  /// Verbatim crash-recovery: install `reservation` exactly as given —
  /// original id *and* original route, no CSPF. Tolerates route links
  /// unknown to the current topology (a pre-crash route restored onto a
  /// rebuilt substrate): unknown links reserve nothing, carry nothing
  /// (the path serves degraded at factor 0 until the repair loop finds
  /// a live route) and install no flow rules. Errors: invalid_argument
  /// (invalid id, non-positive rate), conflict (id already installed).
  [[nodiscard]] Result<void> restore_path_exact(PathReservation reservation);

  /// Resize an existing path reservation (grow re-validates capacity on
  /// the current route; it does not reroute). Shrink always succeeds.
  [[nodiscard]] Result<void> resize_path(PathId path, DataRate new_rate);

  /// Tear down a path: release bandwidth + remove flow rules.
  [[nodiscard]] Result<void> release_path(PathId path);

  [[nodiscard]] const PathReservation* find_path(PathId path) const noexcept;
  [[nodiscard]] std::vector<PathId> paths_of(SliceId slice) const;

  /// Residual (nominal − reserved) capacity of a link; zero while the
  /// link is administratively down.
  [[nodiscard]] DataRate residual(const Link& link) const noexcept;

  /// Total reserved bandwidth of a link.
  [[nodiscard]] DataRate reserved_on(LinkId link) const noexcept;

  // --- Failure injection -----------------------------------------------------

  /// Administrative link state: a down link carries nothing until
  /// brought back up — serving drops to zero, new allocations avoid it
  /// and the repair loop routes existing paths around it. Errors:
  /// not_found.
  [[nodiscard]] Result<void> set_link_up(LinkId link, bool up);

  [[nodiscard]] bool link_up(LinkId link) const noexcept {
    const std::uint32_t slot = topology_.link_slot(link);
    return slot == Topology::kNoSlot || link_down_[slot] == 0;
  }

  /// Capacity a link can carry right now: nominal x fading, zero when
  /// administratively down.
  [[nodiscard]] DataRate current_capacity(const Link& link) const noexcept;

  // --- Epoch processing ------------------------------------------------------

  /// Advance fading one epoch, then serve `demands` (offered Mb/s per
  /// path). Serving: a link whose effective capacity dropped below its
  /// total reservation scales all traversing paths proportionally.
  /// Afterwards, paths that were degraded are rerouted when a better
  /// feasible route exists (the "network reconfiguration" arc of
  /// Fig. 1). Publishes telemetry when a registry is set.
  std::vector<PathServeReport> serve_epoch(
      std::span<const std::pair<PathId, DataRate>> demands, SimTime now);

  /// Allocation-free variant: writes the reports into `out` (cleared
  /// first; capacity is reused). Per-epoch scratch — the per-link scale
  /// column, outcome slots and the repair list — is carved from a
  /// per-controller arena that is rewound, not freed, between epochs:
  /// after a warm-up epoch the steady-state serve loop performs no heap
  /// allocation (pinned by epoch_alloc_test). Same parallel-for +
  /// sequential-reduction shape as the RAN kernel; output is
  /// bit-identical at any pool size and to the legacy path.
  void serve_epoch_into(std::span<const std::pair<PathId, DataRate>> demands, SimTime now,
                        std::vector<PathServeReport>& out);

  /// Route epochs through the pre-SoA reference implementation
  /// (std::map scale, per-epoch vectors, per-link find_link walks).
  /// Same results, byte for byte — kept as the oracle for the
  /// SoA-vs-legacy parity suite in determinism_test.
  void set_legacy_epoch_path(bool legacy) noexcept { legacy_epoch_path_ = legacy; }

  /// Attach a worker pool (non-owning; may be nullptr to detach). The
  /// per-path serving computation shards across it; reduction, repair
  /// and telemetry stay sequential on the calling thread, keeping the
  /// output bit-for-bit identical at any pool size.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Number of reroutes performed since construction.
  [[nodiscard]] std::uint64_t reroutes() const noexcept { return reroutes_; }

  /// REST facade (topology, path CRUD, metrics).
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  void install_rules(PathReservation& reservation);
  void reserve_bandwidth(const Route& route, DataRate rate);
  void release_bandwidth(const Route& route, DataRate rate);
  void try_reroute(PathReservation& reservation);
  void install_route_columns(std::uint32_t path_slot, const Route& route);
  void clear_route_columns(std::uint32_t path_slot);
  void install_serve_columns(std::uint32_t path_slot, const PathReservation& reservation);
  void forget_path_slot(PathId id) noexcept;
  /// Path slot of `id` in O(1) through the flat id->slot column when the
  /// id is small enough to have one; hash-probe fallback otherwise.
  [[nodiscard]] std::uint32_t path_slot_fast(PathId id) const noexcept {
    const std::uint64_t v = id.value();
    if (v < path_slot_by_id_.size()) return path_slot_by_id_[v];
    return paths_.slot_of(id);
  }
  void compact_route_arena();
  void serve_epoch_legacy(std::span<const std::pair<PathId, DataRate>> demands, SimTime now,
                          std::vector<PathServeReport>& out);
  void publish_path_telemetry(const PathServeReport& report, SimTime now);
  void publish_totals_telemetry(SimTime now);

  // Telemetry handles interned on first use so the epoch loop never
  // rebuilds "transport.path.N.*" key strings.
  struct PathHandles {
    telemetry::SeriesHandle served;
    telemetry::SeriesHandle delay;
  };

  Topology topology_;
  FadingField fading_;
  FlowTable flows_;
  /// Reservations in a slot arena (stable value addresses, slot-order
  /// iteration); the hot per-path/per-link state lives in columns
  /// aligned with the path slots / link slots below.
  DenseIdMap<PathId, PathReservation> paths_;
  // Route CSR: path slot -> (offset, len) into route_links_, a flat
  // arena of *link slots* (Topology::kNoSlot marks a route link unknown
  // to the current topology — a verbatim-restored pre-crash route).
  // route_delay_ is the static propagation delay, summed in route order
  // at install time so serving never walks Link structs. Reroutes
  // append a fresh span and abandon the old one; compact_route_arena()
  // repacks once dead words outnumber live ones.
  std::vector<std::uint32_t> route_offset_;
  std::vector<std::uint32_t> route_len_;
  std::vector<Duration> route_delay_;
  std::vector<std::uint32_t> route_links_;
  std::size_t route_live_words_ = 0;
  // Serve columns by path slot: the fields the epoch kernel reads per
  // path, peeled off PathReservation so serving never pulls the full
  // slot (route vector and endpoints included) through the cache.
  // Stale entries behind freed slots are harmless — the slot is
  // unreachable until reuse overwrites them.
  std::vector<DataRate> path_reserved_;
  std::vector<Duration> path_sla_;
  std::vector<SliceId> path_slice_;
  // Flat id -> path slot for ids below kMaxFlatPathId (the IdAllocator
  // hands them out sequentially from 1, so this stays dense); larger
  // verbatim-restored ids fall back to the DenseIdMap probe.
  static constexpr std::uint64_t kMaxFlatPathId = std::uint64_t{1} << 22;
  std::vector<std::uint32_t> path_slot_by_id_;
  std::vector<DataRate> reserved_by_slot_;  ///< by link slot
  std::vector<std::uint8_t> link_down_;     ///< by link slot; 1 = admin down
  IdAllocator<PathTag> path_ids_;
  telemetry::MonitorRegistry* registry_;
  std::uint64_t reroutes_ = 0;
  ThreadPool* pool_ = nullptr;
  bool legacy_epoch_path_ = false;
  DenseIdMap<PathId, PathHandles> path_handles_;
  telemetry::SeriesHandle reserved_total_;
  telemetry::SeriesHandle capacity_total_;
  Arena epoch_arena_;           ///< per-epoch scratch, rewound not freed
  std::string metrics_buffer_;  ///< reused /metrics serialization buffer
};

}  // namespace slices::transport
