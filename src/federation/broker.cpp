#include "federation/broker.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/trace.hpp"
#include "transport/cspf.hpp"

namespace slices::federation {
namespace {

// Backbone leases outlive their slice by this margin so a route is
// never torn down under an expiring-but-still-billed slice.
constexpr std::int64_t kLeaseMarginUs = 3'600'000'000;

double number_or(const json::Value& body, std::string_view key, double fallback) {
  const json::Value* v = body.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool bool_or(const json::Value& body, std::string_view key, bool fallback) {
  const json::Value* v = body.find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string string_or(const json::Value& body, std::string_view key, std::string fallback) {
  const json::Value* v = body.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

/// Chrome "thread_name" metadata event, naming one lane of the merged
/// federated trace.
void append_thread_name(std::string& out, int tid, const std::string& name, bool& first) {
  if (!first) out.push_back(',');
  first = false;
  out += "{\"args\":{\"name\":";
  json::append_escaped(out, name);
  out += "},\"cat\":\"__metadata\",\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
  json::append_number(out, static_cast<double>(tid));
  out.push_back('}');
}

/// One complete ("X") Chrome event from a pulled span document
/// ({"name","sim_us","trace","span","parent","depth"} — ids as decimal
/// strings). Malformed spans are skipped.
void append_span_event(std::string& out, const json::Value& span, int tid, bool& first) {
  const json::Value* name = span.find("name");
  const json::Value* sim_us = span.find("sim_us");
  const json::Value* depth = span.find("depth");
  const json::Value* trace = span.find("trace");
  const json::Value* span_id = span.find("span");
  const json::Value* parent = span.find("parent");
  if (name == nullptr || !name->is_string() || sim_us == nullptr || !sim_us->is_number() ||
      depth == nullptr || !depth->is_number() || trace == nullptr || !trace->is_string() ||
      span_id == nullptr || !span_id->is_string() || parent == nullptr ||
      !parent->is_string()) {
    return;
  }
  if (!first) out.push_back(',');
  first = false;
  out += "{\"name\":";
  json::append_escaped(out, name->as_string());
  out += ",\"cat\":\"slices\",\"ph\":\"X\",\"pid\":0,\"tid\":";
  json::append_number(out, static_cast<double>(tid));
  out += ",\"ts\":";
  json::append_number(out, sim_us->as_number());
  out += ",\"dur\":0,\"args\":{\"depth\":";
  json::append_number(out, depth->as_number());
  out += ",\"parent\":";
  json::append_escaped(out, parent->as_string());
  out += ",\"span\":";
  json::append_escaped(out, span_id->as_string());
  out += ",\"trace\":";
  json::append_escaped(out, trace->as_string());
  out += "}}";
}

json::Value decision_to_json(const PlacementDecision& d) {
  json::Object out;
  out.emplace("seq", static_cast<double>(d.seq));
  out.emplace("t_us", static_cast<double>(d.t_us));
  out.emplace("tenant", d.tenant);
  out.emplace("throughput_mbps", d.throughput_mbps);
  out.emplace("home", d.home_region);
  out.emplace("placed", d.placed_region);
  out.emplace("outcome", d.outcome);
  out.emplace("score", d.score);
  out.emplace("cross_region", !d.placed_region.empty() && d.placed_region != d.home_region);
  return json::Value(std::move(out));
}

}  // namespace

Broker::Broker(net::RestBus* bus, const MetroFabric& fabric)
    : bus_(bus), backbone_(fabric.backbone) {
  for (const RegionPlan& plan : fabric.regions) {
    regions_.push_back(plan.name);
    region_price_.emplace(plan.name, plan.price_factor);
  }
  std::sort(regions_.begin(), regions_.end());
  // Region names are "r<i>" so sorted order == plan order for < 10
  // regions; the index map keeps larger cities honest.
  for (const RegionPlan& plan : fabric.regions) {
    auto it = std::find(regions_.begin(), regions_.end(), plan.name);
    region_index_.emplace(plan.name, static_cast<std::size_t>(it - regions_.begin()));
  }
  border_nodes_.resize(regions_.size());
  for (std::size_t i = 0; i < fabric.regions.size(); ++i) {
    border_nodes_[region_index_.at(fabric.regions[i].name)] = fabric.border_nodes[i];
  }
}

void Broker::advance_all(std::int64_t t_us) {
  // Release due backbone leases before the epoch work at t.
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->release_us <= t_us) {
      for (LinkId link : it->links) backbone_reserved_[link] -= it->rate;
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  json::Object body;
  body.emplace("t_us", static_cast<double>(t_us));
  const json::Value doc{std::move(body)};
  for (const std::string& region : regions_) {
    // In-process edges advance on the *shared* tracer clock and leave it
    // wherever their epoch loop last published; re-pin it to t before
    // each call so broker-side spans timestamp identically when edges
    // are remote processes with clocks of their own.
    telemetry::trace::set_sim_now(t_us);
    // A dead edge is the edge process's problem; the run loop treats
    // advance as best-effort and admission-level calls surface errors.
    (void)bus_->call_json(service_name(region), net::Method::post, "/federation/advance", doc);
  }
  telemetry::trace::set_sim_now(t_us);
}

std::vector<Broker::Candidate> Broker::collect_candidates(double throughput_mbps,
                                                          bool needs_edge,
                                                          bool* any_suspended) {
  std::vector<Candidate> out;
  *any_suspended = false;
  for (const std::string& region : regions_) {
    Result<json::Value> doc = bus_->get_json(service_name(region), "/federation/headroom");
    if (!doc.ok()) continue;  // unreachable edge == not a candidate
    const json::Value& h = doc.value();
    if (bool_or(h, "suspended", false)) {
      *any_suspended = true;
      continue;
    }
    const bool core_up = bool_or(h, "core_dc_up", true);
    const double edge_up = number_or(h, "edge_dcs_up", 0.0);
    const bool placeable = needs_edge ? edge_up > 0.0 : (core_up || edge_up > 0.0);
    if (!placeable) continue;
    const double headroom = number_or(h, "headroom_mbps", 0.0);
    if (headroom < throughput_mbps) continue;
    Candidate c;
    c.region = region;
    c.headroom_mbps = headroom;
    c.price = region_price_.at(region);
    c.score = headroom / c.price;
    out.push_back(std::move(c));
  }
  return out;
}

bool Broker::reserve_backbone(const std::string& home, const std::string& placed,
                              DataRate demand, std::int64_t release_us) {
  const NodeId src = border_nodes_[region_index_.at(home)];
  const NodeId dst = border_nodes_[region_index_.at(placed)];
  auto residual = [this](const transport::Link& link) {
    auto it = backbone_reserved_.find(link.id);
    const DataRate reserved = it == backbone_reserved_.end() ? DataRate::zero() : it->second;
    return clamp_non_negative(link.nominal_capacity - reserved);
  };
  std::optional<transport::Route> route =
      transport::find_route(backbone_, src, dst, demand, residual);
  if (!route.has_value()) return false;
  for (LinkId link : route->links) backbone_reserved_[link] += demand;
  leases_.push_back(BackboneLease{release_us, std::move(route->links), demand});
  ++counters_.backbone_reservations;
  double reserved_peak = 0.0;
  for (const auto& [link, rate] : backbone_reserved_)
    reserved_peak = std::max(reserved_peak, rate.as_mbps());
  counters_.backbone_reserved_mbps_peak =
      std::max(counters_.backbone_reserved_mbps_peak, reserved_peak);
  return true;
}

PlacementDecision Broker::submit(const json::Value& body, const std::string& home_region,
                                 std::int64_t now_us) {
  ++counters_.submitted;
  PlacementDecision decision;
  decision.seq = next_seq_++;
  decision.t_us = now_us;
  decision.tenant = string_or(body, "tenant", "");
  decision.throughput_mbps = number_or(body, "throughput_mbps", 0.0);
  decision.home_region = home_region;

  const bool needs_edge = bool_or(body, "needs_edge", false);
  const double duration_hours = number_or(body, "duration_hours", 0.0);

  // The edge speaks the fig2 request grammar; "region" is broker-level.
  json::Value edge_body = body;
  if (edge_body.is_object()) edge_body.as_object().erase("region");

  bool any_suspended = false;
  std::vector<Candidate> candidates =
      collect_candidates(decision.throughput_mbps, needs_edge, &any_suspended);

  // Best score wins; ties go to the lexicographically smaller region so
  // the choice is independent of poll order.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) { return a.score > b.score; });

  bool any_edge_rejected = false;
  for (const Candidate& c : candidates) {
    const bool cross_region = c.region != home_region;
    if (cross_region) {
      const std::int64_t release_us =
          now_us + static_cast<std::int64_t>(duration_hours * 3'600'000'000.0) + kLeaseMarginUs;
      if (!reserve_backbone(home_region, c.region, DataRate::mbps(decision.throughput_mbps),
                            release_us)) {
        continue;  // no backbone capacity towards this region
      }
    }
    Result<json::Value> placed =
        bus_->call_json(service_name(c.region), net::Method::post, "/federation/slices",
                        edge_body);
    const bool accepted =
        placed.ok() && string_or(placed.value(), "state", "rejected") != "rejected";
    if (accepted) {
      decision.placed_region = c.region;
      decision.outcome = cross_region ? "remote" : "local";
      decision.score = c.score;
      decision.request = static_cast<std::uint64_t>(number_or(placed.value(), "request", 0.0));
      if (cross_region)
        ++counters_.placed_remote;
      else
        ++counters_.placed_local;
      std::lock_guard<std::mutex> lock(mutex_);
      placements_.push_back(decision);
      return decision;
    }
    // The edge itself said no (its admission control saw risk — or a
    // hard cap like the broadcast-PLMN budget — that the headroom
    // forecast did not). Roll back the lease we just took and shop the
    // next-best region; the request is edge_rejected only when every
    // candidate refuses it.
    if (cross_region && !leases_.empty()) {
      BackboneLease lease = std::move(leases_.back());
      leases_.pop_back();
      for (LinkId link : lease.links) backbone_reserved_[link] -= lease.rate;
      --counters_.backbone_reservations;
    }
    if (!any_edge_rejected) decision.score = c.score;  // best refusing region
    any_edge_rejected = true;
  }

  if (any_edge_rejected) {
    decision.placed_region.clear();
    decision.outcome = "edge_rejected";
    ++counters_.edge_rejected;
    std::lock_guard<std::mutex> lock(mutex_);
    placements_.push_back(decision);
    return decision;
  }

  if (candidates.empty() && any_suspended) {
    // Nothing can take it now, but a region is mid-restart: hold the
    // request in the deferred lane and retry at the next epoch tick.
    decision.outcome = "deferred";
    ++counters_.deferred_total;
    deferred_.push_back(DeferredRequest{body, home_region, decision.seq});
  } else {
    decision.outcome = "no_region";
    ++counters_.rejected_no_region;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  placements_.push_back(decision);
  return decision;
}

std::size_t Broker::retry_deferred(std::int64_t now_us) {
  if (deferred_.empty()) return 0;
  std::vector<DeferredRequest> pending = std::move(deferred_);
  deferred_.clear();
  std::size_t placed = 0;
  for (DeferredRequest& req : pending) {
    PlacementDecision d = submit(req.body, req.home_region, now_us);
    // submit() counts the retry as a fresh submission; undo the double
    // count so `submitted` means distinct requests.
    --counters_.submitted;
    if (d.outcome == "local" || d.outcome == "remote") ++placed;
  }
  return placed;
}

std::size_t Broker::route_roamers(std::int64_t now_us) {
  std::size_t admitted_total = 0;
  const json::Value empty_body{json::Object{}};
  for (const std::string& region : regions_) {
    Result<json::Value> drained = bus_->call_json(
        service_name(region), net::Method::post, "/federation/mobility/drain", empty_body);
    if (!drained.ok()) continue;  // unreachable edge: exits stay queued there
    const json::Value* exits = drained.value().find("exits");
    if (exits == nullptr || !exits->is_array() || exits->as_array().empty()) continue;

    // One batch per border: region i's east border faces region i+1.
    json::Array east;
    json::Array west;
    for (const json::Value& exit : exits->as_array()) {
      const json::Value* side = exit.find("side");
      const bool goes_west = side != nullptr && side->is_number() && side->as_number() < 0.0;
      (goes_west ? west : east).push_back(exit);
    }

    const std::size_t src = region_index_.at(region);
    const auto deliver = [&](json::Array&& batch, std::size_t dst_index) {
      if (batch.empty()) return;
      const std::uint64_t count = batch.size();
      counters_.roam_attempts += count;
      if (dst_index >= regions_.size()) {  // walked off the end of the metro line
        counters_.roam_dropped += count;
        return;
      }
      const std::string& dst = regions_[dst_index];
      // Signalling lease on the border leg: 0.1 Mb/s per roamer for an
      // hour, best effort — a saturated backbone degrades the roamers'
      // traffic, it must not strand them between regions.
      (void)reserve_backbone(region, dst, DataRate::mbps(0.1 * static_cast<double>(count)),
                             now_us + 3'600'000'000);
      json::Object body;
      body.emplace("roamers", std::move(batch));
      Result<json::Value> outcome =
          bus_->call_json(service_name(dst), net::Method::post,
                          "/federation/mobility/ingress", json::Value(std::move(body)));
      if (!outcome.ok()) {
        counters_.roam_dropped += count;
        return;
      }
      const std::uint64_t admitted =
          static_cast<std::uint64_t>(number_or(outcome.value(), "admitted", 0.0));
      counters_.roam_admitted += admitted;
      counters_.roam_dropped +=
          static_cast<std::uint64_t>(number_or(outcome.value(), "dropped", 0.0));
      admitted_total += admitted;
    };
    deliver(std::move(east), src + 1);
    deliver(std::move(west), src - 1);  // wraps to SIZE_MAX at r0 -> dropped
  }
  return admitted_total;
}

json::Value Broker::regions_json() {
  json::Array list;
  for (const std::string& region : regions_) {
    Result<json::Value> doc = bus_->get_json(service_name(region), "/federation/headroom");
    json::Object entry;
    entry.emplace("region", region);
    entry.emplace("price_factor", region_price_.at(region));
    if (doc.ok() && doc.value().is_object()) {
      for (const auto& [key, value] : doc.value().as_object()) {
        if (key != "region") entry.insert_or_assign(key, value);
      }
      entry.emplace("reachable", true);
    } else {
      entry.emplace("reachable", false);
    }
    list.push_back(json::Value(std::move(entry)));
  }
  json::Object out;
  out.emplace("regions", json::Value(std::move(list)));
  out.emplace("deferred_pending", static_cast<double>(deferred_.size()));
  json::Object counters;
  counters.emplace("submitted", static_cast<double>(counters_.submitted));
  counters.emplace("placed_local", static_cast<double>(counters_.placed_local));
  counters.emplace("placed_remote", static_cast<double>(counters_.placed_remote));
  counters.emplace("edge_rejected", static_cast<double>(counters_.edge_rejected));
  counters.emplace("rejected_no_region", static_cast<double>(counters_.rejected_no_region));
  counters.emplace("deferred_total", static_cast<double>(counters_.deferred_total));
  counters.emplace("backbone_reservations",
                   static_cast<double>(counters_.backbone_reservations));
  counters.emplace("backbone_reserved_mbps_peak", counters_.backbone_reserved_mbps_peak);
  counters.emplace("roam_attempts", static_cast<double>(counters_.roam_attempts));
  counters.emplace("roam_admitted", static_cast<double>(counters_.roam_admitted));
  counters.emplace("roam_dropped", static_cast<double>(counters_.roam_dropped));
  out.emplace("counters", json::Value(std::move(counters)));
  return json::Value(std::move(out));
}

void Broker::refresh_snapshot(std::int64_t t_us) {
  json::Value snapshot = regions_json();
  snapshot.as_object().emplace("t_us", static_cast<double>(t_us));

  // Broker-side SLO instruments, sampled on sim time each tick. All
  // inputs are sim-derived (deferred lane, lease table, the freshly
  // polled headroom document), so the registry contents are identical
  // across in-process / socket / multi-process edges.
  const SimTime t = SimTime::from_micros(t_us);
  registry_.observe("federation.deferred_depth", t, static_cast<double>(deferred_.size()));
  double backbone_mbps = 0.0;
  for (const auto& [link, rate] : backbone_reserved_) backbone_mbps += rate.as_mbps();
  registry_.observe("federation.backbone_reserved_mbps", t, backbone_mbps);
  registry_.observe("federation.backbone_leases", t, static_cast<double>(leases_.size()));
  registry_.gauge("federation.submitted").set(static_cast<double>(counters_.submitted));
  registry_.gauge("federation.placed_local").set(static_cast<double>(counters_.placed_local));
  registry_.gauge("federation.placed_remote").set(static_cast<double>(counters_.placed_remote));
  registry_.gauge("federation.edge_rejected").set(static_cast<double>(counters_.edge_rejected));
  registry_.gauge("federation.rejected_no_region")
      .set(static_cast<double>(counters_.rejected_no_region));
  registry_.gauge("federation.deferred_total")
      .set(static_cast<double>(counters_.deferred_total));
  registry_.gauge("federation.roam_attempts")
      .set(static_cast<double>(counters_.roam_attempts));
  registry_.gauge("federation.roam_admitted")
      .set(static_cast<double>(counters_.roam_admitted));
  registry_.gauge("federation.roam_dropped")
      .set(static_cast<double>(counters_.roam_dropped));
  if (const json::Value* list = snapshot.find("regions"); list != nullptr && list->is_array()) {
    for (const json::Value& entry : list->as_array()) {
      const json::Value* region = entry.find("region");
      if (region == nullptr || !region->is_string()) continue;
      const std::string prefix = "federation." + region->as_string();
      for (const char* key : {"headroom_mbps", "reserved_mbps", "contracted_mbps", "active"}) {
        const json::Value* v = entry.find(key);
        if (v != nullptr && v->is_number()) {
          registry_.observe(prefix + "." + key, t, v->as_number());
        }
      }
    }
  }

  if (facade_enabled_) {
    // The facade bodies need bus pulls, which only the run loop may do;
    // rebuild them here so HttpServer threads serve plain strings.
    std::string metrics = json::serialize(federation_metrics_json(t_us));
    std::string trace;
    export_federated_trace(trace);
    std::lock_guard<std::mutex> lock(mutex_);
    regions_snapshot_ = std::move(snapshot);
    metrics_snapshot_ = std::move(metrics);
    trace_snapshot_ = std::move(trace);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  regions_snapshot_ = std::move(snapshot);
}

json::Value Broker::federation_metrics_json(std::int64_t t_us) {
  json::Object regions;
  telemetry::MonitorRegistry merged;
  for (const std::string& region : regions_) {
    Result<json::Value> doc = bus_->get_json(service_name(region), "/federation/metrics");
    const json::Value* metrics =
        doc.ok() ? doc.value().find("metrics") : nullptr;
    if (metrics == nullptr || !metrics->is_object()) {
      regions.emplace(region, json::Value(nullptr));  // unreachable edge
      continue;
    }
    merged.merge_from(*metrics);
    regions.emplace(region, *metrics);
  }
  json::Object out;
  out.emplace("broker", registry_.snapshot());
  out.emplace("merged", merged.snapshot());
  out.emplace("regions", json::Value(std::move(regions)));
  out.emplace("t_us", static_cast<double>(t_us));
  return json::Value(std::move(out));
}

void Broker::export_federated_trace(std::string& out) {
  // Pull every region's span list *before* reading the broker lane: the
  // pulls' own bus.call spans then appear in the broker lane on every
  // transport, keeping in-process and multi-process exports identical.
  std::vector<json::Value> region_spans(regions_.size(), json::Value(nullptr));
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Result<json::Value> doc = bus_->get_json(service_name(regions_[i]), "/federation/trace");
    if (!doc.ok()) continue;
    if (const json::Value* spans = doc.value().find("spans");
        spans != nullptr && spans->is_array()) {
      region_spans[i] = *spans;
    }
  }
  std::string own;
  telemetry::trace::Tracer::instance().export_component_spans_json(0, own);
  json::Value own_spans{nullptr};
  if (Result<json::Value> parsed = json::parse(own); parsed.ok()) {
    own_spans = std::move(parsed).value();
  }

  out.clear();
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  append_thread_name(out, 0, "broker", first);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    append_thread_name(out, static_cast<int>(1 + i), service_name(regions_[i]), first);
  }
  if (own_spans.is_array()) {
    for (const json::Value& span : own_spans.as_array()) {
      append_span_event(out, span, 0, first);
    }
  }
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (!region_spans[i].is_array()) continue;
    for (const json::Value& span : region_spans[i].as_array()) {
      append_span_event(out, span, static_cast<int>(1 + i), first);
    }
  }
  out += "]}";
}

json::Value Broker::placements_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Array list;
  for (const PlacementDecision& d : placements_) list.push_back(decision_to_json(d));
  json::Object out;
  out.emplace("placements", json::Value(std::move(list)));
  return json::Value(std::move(out));
}

std::shared_ptr<net::Router> Broker::make_router() {
  auto router = std::make_shared<net::Router>();
  auto ok_json = [](const json::Value& doc) {
    return net::Response::json(net::Status::ok, json::serialize(doc));
  };
  router->add(net::Method::get, "/federation/regions",
              [this, ok_json](const net::RouteContext&) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (regions_snapshot_.is_null()) {
                  return net::Response::json(net::Status::ok, "{\"regions\":[]}");
                }
                return net::Response::json(net::Status::ok,
                                           json::serialize(regions_snapshot_));
              });
  router->add(net::Method::get, "/federation/placements",
              [this, ok_json](const net::RouteContext&) {
                return ok_json(placements_json());
              });
  router->add(net::Method::get, "/federation/metrics",
              [this](const net::RouteContext&) {
                std::lock_guard<std::mutex> lock(mutex_);
                return net::Response::json(
                    net::Status::ok,
                    metrics_snapshot_.empty() ? "{\"regions\":{}}" : metrics_snapshot_);
              });
  router->add(net::Method::get, "/federation/trace",
              [this](const net::RouteContext&) {
                std::lock_guard<std::mutex> lock(mutex_);
                return net::Response::json(
                    net::Status::ok,
                    trace_snapshot_.empty()
                        ? "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
                        : trace_snapshot_);
              });
  router->add(net::Method::get, "/federation/healthz",
              [this, ok_json](const net::RouteContext&) {
                json::Object doc;
                doc.emplace("regions", static_cast<double>(regions_.size()));
                {
                  std::lock_guard<std::mutex> lock(mutex_);
                  doc.emplace("placements", static_cast<double>(placements_.size()));
                }
                doc.emplace("status", "ok");
                return ok_json(json::Value(std::move(doc)));
              });
  return router;
}

}  // namespace slices::federation
