#include "federation/fabric.hpp"

#include "common/rng.hpp"

namespace slices::federation {
namespace {

// Decouples the price stream from the per-region workload/fading seeds.
constexpr std::uint64_t kPriceSalt = 0x70726963655f73ull;  // "price_s"
constexpr std::uint64_t kRegionSeedStride = 0x9e3779b97f4a7c15ull;

}  // namespace

std::string region_name(std::size_t index) { return "r" + std::to_string(index); }

Result<MetroFabric> make_metro_fabric(const scenario::FederationSpec& spec,
                                      std::uint64_t seed) {
  if (spec.regions == 0)
    return make_error(Errc::invalid_argument, "metro fabric needs at least one region");
  if (spec.backbone != "ring" && spec.backbone != "mesh")
    return make_error(Errc::invalid_argument,
                      "unknown backbone kind '" + spec.backbone + "'");

  MetroFabric fabric;
  fabric.spec = spec;

  // Regions draw their price factors from one stream in index order, so
  // adding region N+1 never reshuffles prices of regions 0..N.
  Rng price_rng(seed ^ kPriceSalt);
  for (std::size_t i = 0; i < spec.regions; ++i) {
    RegionPlan plan;
    plan.name = region_name(i);
    plan.index = i;
    plan.cells = spec.cells_per_region;
    plan.edge_dcs = spec.edge_dcs_per_region;
    plan.hosts_per_dc = spec.hosts_per_dc;
    plan.price_factor = 0.85 + 0.05 * static_cast<double>(price_rng.uniform_int(0, 6));
    plan.seed = seed ^ (kRegionSeedStride * (static_cast<std::uint64_t>(i) + 1));
    fabric.regions.push_back(std::move(plan));
  }

  const DataRate leg_capacity = DataRate::mbps(spec.backbone_gbps * 1000.0);
  const Duration leg_delay = Duration::millis(2.0);
  for (std::size_t i = 0; i < spec.regions; ++i) {
    fabric.border_nodes.push_back(fabric.backbone.add_node(
        region_name(i) + "-border", transport::NodeKind::openflow_switch));
  }
  if (spec.regions >= 2) {
    if (spec.backbone == "mesh") {
      for (std::size_t i = 0; i < spec.regions; ++i) {
        for (std::size_t j = i + 1; j < spec.regions; ++j) {
          fabric.backbone.add_bidirectional(fabric.border_nodes[i], fabric.border_nodes[j],
                                            transport::LinkTechnology::fiber, leg_capacity,
                                            leg_delay);
        }
      }
    } else {
      // Ring; a 2-region "ring" degenerates to a single bidirectional
      // pair (both ring directions would duplicate the same leg).
      const std::size_t legs = spec.regions == 2 ? 1 : spec.regions;
      for (std::size_t i = 0; i < legs; ++i) {
        fabric.backbone.add_bidirectional(fabric.border_nodes[i],
                                          fabric.border_nodes[(i + 1) % spec.regions],
                                          transport::LinkTechnology::fiber, leg_capacity,
                                          leg_delay);
      }
    }
  }
  return fabric;
}

}  // namespace slices::federation
