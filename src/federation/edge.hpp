#pragma once
// Edge orchestrator node: one region of the federated city
// (docs/federation.md).
//
// Wraps an unmodified core::Orchestrator — with its own simulator,
// domain controllers and intra-region REST bus — behind a small
// northbound REST surface the global broker drives:
//
//   GET  /federation/info      static region facts (cells, DCs, price)
//   GET  /federation/headroom  forecast headroom + placement gates
//   GET  /federation/summary   full census for the federated scorecard
//   GET  /federation/healthz   the orchestrator's health document
//   GET  /federation/metrics   full-fidelity registry export (mergeable)
//   GET  /federation/trace     this region's spans (transport-invariant)
//   GET  /metrics              registry snapshot + tracer drop counters
//   POST /federation/advance   lock-step clock: run_until(t_us)
//   POST /federation/slices    delegated admission (503 while suspended)
//   POST /federation/fault     region-scoped fault injection
//
// Because every interaction crosses this router, an EdgeNode behaves
// identically whether the router is dispatched in-process, over a
// loopback socket in another thread, or in another OS process — the
// transport-parity half of the federation determinism bar. Handlers run
// under a trace ComponentScope named "edge.<region>", so spans they
// trigger carry region-keyed ids whether they record into the broker
// process's tracer (in-process edges) or a remote edge's.

#include <memory>
#include <string>
#include <vector>

#include "cloud/controller.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "core/orchestrator.hpp"
#include "epc/epc.hpp"
#include "federation/fabric.hpp"
#include "json/value.hpp"
#include "mobility/field.hpp"
#include "net/rest_bus.hpp"
#include "net/router.hpp"
#include "ran/controller.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "traffic/model.hpp"
#include "transport/controller.hpp"

namespace slices::federation {

/// One region's full stack. Construction mirrors core::make_testbed at
/// the plan's scale: cells behind an aggregation tree, one core DC and
/// `plan.edge_dcs` edge DCs, the orchestrator started on the region's
/// own simulator.
class EdgeNode {
 public:
  /// `scenario` supplies the orchestrator config and demand-surge
  /// phases; `epoch_threads` overrides the config's worker count.
  EdgeNode(const RegionPlan& plan, const scenario::Scenario& scenario,
           std::size_t epoch_threads);

  [[nodiscard]] const std::string& name() const noexcept { return plan_.name; }
  [[nodiscard]] const RegionPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] core::Orchestrator& orchestrator() noexcept { return *orchestrator_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] ran::RanController& ran() noexcept { return ran_; }

  /// Run the region's clock forward to absolute time `t_us` (µs since
  /// origin). Monotonic: earlier times are a no-op.
  void advance_to(std::int64_t t_us);

  /// Delegated admission. Body: the scenario request JSON shape
  /// (vertical, throughput_mbps, workload_seed, ...). Errors:
  /// unavailable (suspended — the deferred-admission path),
  /// invalid_argument (malformed body).
  [[nodiscard]] Result<json::Value> submit(const json::Value& body);

  /// Region-scoped fault. Body: {"kind": "cell_down"|"cell_up"|
  /// "dc_down"|"dc_up"|"controller_restart", "target": "c3"|"core"|
  /// "edge0", "duration_us": n}. Down events with duration_us > 0
  /// auto-restore on the region clock; restarts always resume after
  /// duration_us.
  [[nodiscard]] Result<void> apply_fault(const json::Value& body);

  [[nodiscard]] json::Value info_json() const;
  [[nodiscard]] json::Value headroom_json() const;
  [[nodiscard]] json::Value summary_json() const;

  /// Mobility engine; null unless the scenario has an enabled mobility
  /// block. Valid for the node's lifetime.
  [[nodiscard]] mobility::Field* field() noexcept { return field_.get(); }

  /// GET /federation/mobility: population + handover/roaming counters.
  [[nodiscard]] json::Value mobility_json() const;
  /// POST /federation/mobility/drain: this epoch's roaming exits, as
  /// {"region", "exits": [{"plmn","cqi","y_mm","side"}...]}; clears the
  /// queue. The broker calls this once per epoch tick.
  [[nodiscard]] json::Value drain_roamers_json();
  /// POST /federation/mobility/ingress: admit roamers arriving from a
  /// neighbour region. Body {"roamers": [exit...]}; returns
  /// {"region", "admitted", "dropped"}.
  [[nodiscard]] Result<json::Value> admit_roamers(const json::Value& body);

  /// GET /metrics body: the region registry snapshot plus the tracer's
  /// status (per-lane ring-overwrite drop counters included), so silent
  /// span loss is visible wherever metrics are scraped.
  [[nodiscard]] std::string metrics_body() const;
  /// GET /federation/metrics body: {"region", "metrics": export_json()}
  /// — the full-fidelity, mergeable form the broker aggregates.
  [[nodiscard]] std::string federation_metrics_body() const;
  /// GET /federation/trace body: {"region", "dropped", "spans": [...]}
  /// — this region's spans in span-id order, byte-identical whether the
  /// region ran in the broker's process or its own.
  [[nodiscard]] std::string federation_trace_body() const;

  /// The northbound REST surface (routes above). Handlers capture
  /// `this`; the node must outlive the router.
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  [[nodiscard]] Result<void> apply_dc_fault(const std::string& target, bool up);
  [[nodiscard]] Result<void> apply_cell_fault(const std::string& target, bool up);
  void apply_restart(Duration duration);
  void build_mobility(const scenario::Scenario& scenario);
  void step_mobility(SimTime now);

  RegionPlan plan_;
  telemetry::trace::ComponentRef component_;  ///< "edge.<region>" trace identity
  sim::Simulator simulator_;
  telemetry::MonitorRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
  net::RestBus bus_;  ///< intra-region: controllers <-> orchestrator
  ran::RanController ran_{&registry_};
  cloud::CloudController cloud_{&registry_};
  std::unique_ptr<transport::TransportController> transport_;
  std::unique_ptr<epc::EpcManager> epc_;
  std::unique_ptr<core::Orchestrator> orchestrator_;
  std::shared_ptr<const traffic::PiecewiseEnvelope> envelope_;
  /// Declared after ran_ so it is destroyed first (it holds &ran_).
  std::unique_ptr<mobility::Field> field_;
  scenario::MobilitySpec mobility_spec_;

  std::vector<CellId> cells_;
  DatacenterId core_dc_;
  std::vector<DatacenterId> edge_dcs_;
  bool core_dc_up_ = true;
  std::vector<bool> edge_dc_up_;
};

}  // namespace slices::federation
