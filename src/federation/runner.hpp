#pragma once
// Federated scenario runner (docs/federation.md).
//
// Drives one "metro" scenario across the whole hierarchy: generates
// the fabric, instantiates (or connects to) one EdgeNode per region,
// and runs the broker's lock-step timeline — at every timestamp the
// order is fixed (advance clocks, epoch-tick bookkeeping, failure
// events, explicit requests, generated arrivals), so the same scenario
// + seed yields a byte-identical FederatedScorecard at any
// epoch_threads setting and over any transport (in-process dispatch,
// loopback sockets in this process, or edges in other OS processes).
//
// Note the determinism contract is the runner's own total order, not
// the fig2 runner's event interleaving: a federated run advances every
// region to `t` before injecting the work of `t`, where the fig2
// runner interleaves on one simulator heap.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "federation/broker.hpp"
#include "federation/edge.hpp"
#include "federation/fabric.hpp"
#include "json/value.hpp"
#include "net/http_server.hpp"
#include "net/rest_bus.hpp"
#include "scenario/recorder.hpp"
#include "scenario/scenario.hpp"

namespace slices::federation {

/// Runner knobs that are NOT part of the scenario; every combination
/// must produce the same scorecard (the federation determinism bar).
struct FederatedRunOptions {
  /// Epoch-serving worker threads inside every edge orchestrator.
  std::size_t epoch_threads = 1;
  /// Serve every in-process edge over a real loopback socket (one
  /// HttpServer thread per region) instead of direct dispatch.
  bool socket_transport = false;
  /// Regions served by other OS processes (`scenario_runner edge`):
  /// region name -> loopback port. These regions get no in-process
  /// EdgeNode; missing regions are built locally.
  std::map<std::string, std::uint16_t> remote_edges;
  /// When non-zero, serve the broker's REST facade (for slicectl) on
  /// this loopback port for the duration of the run.
  std::uint16_t broker_port = 0;
  /// When non-empty, record the run's request/event stream (regions
  /// pinned post-draw) into this journal for later replay.
  std::string record_path;
};

/// Per-region slice of the federated scorecard (from the region's
/// /federation/summary at the end of the run).
struct RegionScore {
  std::string name;
  std::size_t cells = 0;
  double price_factor = 1.0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t active_at_end = 0;
  std::uint64_t expired = 0;
  std::uint64_t terminated = 0;
  std::uint64_t served_epochs = 0;
  std::uint64_t violation_epochs = 0;
  std::int64_t earned_cents = 0;
  std::int64_t penalty_cents = 0;
  std::int64_t net_cents = 0;
  std::uint64_t reconfigurations = 0;
  double contracted_mbps = 0.0;
  double reserved_mbps = 0.0;
  double multiplexing_gain = 1.0;

  [[nodiscard]] json::Value to_json() const;
};

/// The scored outcome of one federated run. Deterministic: derived
/// only from response bodies that crossed the bus, never from wall
/// clocks or transport byte counters.
struct FederatedScorecard {
  std::string scenario;
  std::uint64_t seed = 0;
  double duration_hours = 0.0;
  std::size_t total_cells = 0;

  // Global admission funnel (broker view + region verdicts).
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  ///< region rejections + broker no_region
  double admission_rate = 0.0;

  // Broker placement breakdown.
  std::uint64_t placed_local = 0;
  std::uint64_t placed_remote = 0;
  std::uint64_t edge_rejected = 0;
  std::uint64_t rejected_no_region = 0;
  std::uint64_t deferred_total = 0;
  std::uint64_t deferred_unplaced = 0;  ///< still queued at the horizon
  std::uint64_t backbone_reservations = 0;
  double backbone_reserved_mbps_peak = 0.0;

  // Global SLA ledger and revenue (sums over regions).
  std::uint64_t served_epochs = 0;
  std::uint64_t violation_epochs = 0;
  double violation_rate = 0.0;
  std::int64_t earned_cents = 0;
  std::int64_t penalty_cents = 0;
  std::int64_t net_cents = 0;

  // Overbooking, sampled across regions at every epoch tick.
  double multiplexing_gain_mean = 1.0;
  double multiplexing_gain_peak = 1.0;
  std::uint64_t reconfigurations = 0;

  // Operations.
  std::uint64_t epochs = 0;           ///< broker epoch ticks
  std::uint64_t events_injected = 0;  ///< region faults delivered

  // Mobility & handover (summed over regions + broker roam counters);
  // serialized only when the scenario enables the subsystem, so
  // static-UE scorecards keep their exact byte layout.
  bool mobility_enabled = false;
  std::uint64_t handover_attempts = 0;   ///< intra-region, RAN-side
  std::uint64_t handover_successes = 0;
  std::uint64_t handover_drops = 0;
  std::uint64_t roam_attempts = 0;       ///< inter-region, broker-routed
  std::uint64_t roam_admitted = 0;
  std::uint64_t roam_dropped = 0;
  std::uint64_t mobile_population = 0;   ///< live mobile UEs at the horizon

  std::vector<RegionScore> regions;

  // Target evaluation (scenario targets against the global numbers).
  bool targets_met = true;
  std::vector<std::string> target_failures;

  [[nodiscard]] json::Value to_json() const;
  /// Pretty JSON with a trailing newline (byte-comparable).
  [[nodiscard]] std::string serialize() const;
};

/// Runs one metro scenario. Single-use, like scenario::ScenarioRunner.
class FederatedRunner {
 public:
  explicit FederatedRunner(scenario::Scenario scenario, FederatedRunOptions options = {});
  ~FederatedRunner();

  FederatedRunner(const FederatedRunner&) = delete;
  FederatedRunner& operator=(const FederatedRunner&) = delete;

  /// Execute to the horizon and score. Errors: invalid_argument (not a
  /// metro scenario / bad fabric / unknown remote region), conflict
  /// (already ran), unavailable (socket bind failure).
  [[nodiscard]] Result<FederatedScorecard> run();

  [[nodiscard]] const scenario::Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const MetroFabric& fabric() const noexcept { return fabric_; }
  /// Valid after run(); nullptr before. Locally-built edges only.
  [[nodiscard]] EdgeNode* edge(const std::string& region) noexcept;
  [[nodiscard]] Broker* broker() noexcept { return broker_.get(); }

 private:
  [[nodiscard]] Result<void> build_edges();
  [[nodiscard]] std::vector<core::RatePoint> build_rate_schedule() const;
  void inject_event(const scenario::ScenarioEvent& event);
  void submit_scenario_request(const scenario::ScenarioRequest& request, std::int64_t t_us);
  void sample_gain();
  [[nodiscard]] FederatedScorecard finalize();
  void evaluate_targets(FederatedScorecard& card) const;

  scenario::Scenario scenario_;
  FederatedRunOptions options_;
  MetroFabric fabric_;
  net::RestBus bus_;  ///< broker <-> edges (direct, socket or remote)
  std::vector<std::unique_ptr<EdgeNode>> edges_;  ///< local regions only
  std::vector<std::unique_ptr<net::HttpServer>> servers_;
  std::vector<std::thread> server_threads_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<scenario::ScenarioRecorder> recorder_;
  bool ran_ = false;

  // Sampled at epoch ticks (from headroom bodies — deterministic).
  double gain_sum_ = 0.0;
  std::uint64_t gain_samples_ = 0;
  double gain_peak_ = 1.0;
  std::uint64_t epochs_ = 0;
  std::uint64_t events_injected_ = 0;
};

}  // namespace slices::federation
