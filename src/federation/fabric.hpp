#pragma once
// Metro fabric generator (docs/federation.md).
//
// Expands a scenario::FederationSpec into the concrete city-scale
// deployment a federated run instantiates: one RegionPlan per edge
// orchestrator (cells, DCs, a deterministic price signal and RNG seed)
// plus the inter-region backbone topology (ring or full mesh of border
// switches) the broker reserves cross-region transport on. Everything
// derives from the scenario seed, so the same document always produces
// the same city.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "scenario/scenario.hpp"
#include "transport/topology.hpp"

namespace slices::federation {

/// Everything one edge orchestrator needs to build its region.
struct RegionPlan {
  std::string name;                   ///< "r0".."rN-1" (sorted == index order)
  std::size_t index = 0;
  std::size_t cells = 0;
  std::size_t edge_dcs = 0;           ///< plus one core DC, always
  std::size_t hosts_per_dc = 0;
  /// Relative price of capacity in this region; the broker prefers
  /// cheap regions at equal headroom (score = headroom / price).
  double price_factor = 1.0;
  std::uint64_t seed = 0;             ///< region-local stochastic streams
};

/// The generated city: region plans + the backbone between them.
struct MetroFabric {
  scenario::FederationSpec spec;
  std::vector<RegionPlan> regions;
  /// Inter-region fabric; nodes are one border switch per region.
  transport::Topology backbone;
  /// Border node of regions[i] (index-aligned with `regions`).
  std::vector<NodeId> border_nodes;

  [[nodiscard]] std::size_t total_cells() const noexcept {
    std::size_t n = 0;
    for (const RegionPlan& r : regions) n += r.cells;
    return n;
  }
};

/// Canonical region name of index `i`: "r<i>".
[[nodiscard]] std::string region_name(std::size_t index);

/// Generate the fabric. Deterministic in (spec, seed). Errors:
/// invalid_argument (zero regions / unknown backbone kind — normally
/// impossible for a parsed scenario).
[[nodiscard]] Result<MetroFabric> make_metro_fabric(const scenario::FederationSpec& spec,
                                                    std::uint64_t seed);

}  // namespace slices::federation
