#include "federation/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "core/request_generator.hpp"

namespace slices::federation {
namespace {

// Same workload salt as the fig2 runner: a metro scenario draws the
// same request stream a fig2 scenario with this seed would.
constexpr std::uint64_t kWorkloadSalt = 0x9e3779b97f4a7c15ull;
// Home-region assignment for requests that do not pin one.
constexpr std::uint64_t kHomeSalt = 0x94d049bb133111ebull;

std::string format_rate(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", v);
  return buffer;
}

std::uint64_t u64_field(const json::Value& doc, std::string_view key) {
  const json::Value* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? static_cast<std::uint64_t>(v->as_number()) : 0;
}

std::int64_t i64_field(const json::Value& doc, std::string_view key) {
  const json::Value* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? static_cast<std::int64_t>(v->as_number()) : 0;
}

double double_field(const json::Value& doc, std::string_view key, double fallback = 0.0) {
  const json::Value* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

}  // namespace

json::Value RegionScore::to_json() const {
  json::Object out;
  out.emplace("name", name);
  out.emplace("cells", static_cast<double>(cells));
  out.emplace("price_factor", price_factor);
  out.emplace("admitted", static_cast<double>(admitted));
  out.emplace("rejected", static_cast<double>(rejected));
  out.emplace("active_at_end", static_cast<double>(active_at_end));
  out.emplace("expired", static_cast<double>(expired));
  out.emplace("terminated", static_cast<double>(terminated));
  out.emplace("served_epochs", static_cast<double>(served_epochs));
  out.emplace("violation_epochs", static_cast<double>(violation_epochs));
  out.emplace("earned_cents", static_cast<double>(earned_cents));
  out.emplace("penalty_cents", static_cast<double>(penalty_cents));
  out.emplace("net_cents", static_cast<double>(net_cents));
  out.emplace("reconfigurations", static_cast<double>(reconfigurations));
  out.emplace("contracted_mbps", contracted_mbps);
  out.emplace("reserved_mbps", reserved_mbps);
  out.emplace("multiplexing_gain", multiplexing_gain);
  return json::Value(std::move(out));
}

json::Value FederatedScorecard::to_json() const {
  json::Object admission;
  admission.emplace("submitted", static_cast<double>(submitted));
  admission.emplace("admitted", static_cast<double>(admitted));
  admission.emplace("rejected", static_cast<double>(rejected));
  admission.emplace("rate", admission_rate);

  json::Object placement;
  placement.emplace("local", static_cast<double>(placed_local));
  placement.emplace("remote", static_cast<double>(placed_remote));
  placement.emplace("edge_rejected", static_cast<double>(edge_rejected));
  placement.emplace("no_region", static_cast<double>(rejected_no_region));
  placement.emplace("deferred_total", static_cast<double>(deferred_total));
  placement.emplace("deferred_unplaced", static_cast<double>(deferred_unplaced));
  placement.emplace("backbone_reservations", static_cast<double>(backbone_reservations));
  placement.emplace("backbone_reserved_mbps_peak", backbone_reserved_mbps_peak);

  json::Object sla;
  sla.emplace("served_epochs", static_cast<double>(served_epochs));
  sla.emplace("violation_epochs", static_cast<double>(violation_epochs));
  sla.emplace("violation_rate", violation_rate);

  json::Object revenue;
  revenue.emplace("earned_cents", static_cast<double>(earned_cents));
  revenue.emplace("penalty_cents", static_cast<double>(penalty_cents));
  revenue.emplace("net_cents", static_cast<double>(net_cents));

  json::Object overbooking;
  overbooking.emplace("multiplexing_gain_mean", multiplexing_gain_mean);
  overbooking.emplace("multiplexing_gain_peak", multiplexing_gain_peak);
  overbooking.emplace("reconfigurations", static_cast<double>(reconfigurations));

  json::Object ops;
  ops.emplace("epochs", static_cast<double>(epochs));
  ops.emplace("events_injected", static_cast<double>(events_injected));

  json::Object mobility;
  if (mobility_enabled) {
    mobility.emplace("handover_attempts", static_cast<double>(handover_attempts));
    mobility.emplace("handover_successes", static_cast<double>(handover_successes));
    mobility.emplace("handover_drops", static_cast<double>(handover_drops));
    mobility.emplace("roam_attempts", static_cast<double>(roam_attempts));
    mobility.emplace("roam_admitted", static_cast<double>(roam_admitted));
    mobility.emplace("roam_dropped", static_cast<double>(roam_dropped));
    mobility.emplace("population_at_end", static_cast<double>(mobile_population));
  }

  json::Array region_list;
  for (const RegionScore& r : regions) region_list.push_back(r.to_json());

  json::Object targets;
  targets.emplace("met", targets_met);
  json::Array failures;
  for (const std::string& f : target_failures) failures.push_back(json::Value(f));
  targets.emplace("failures", std::move(failures));

  json::Object out;
  out.emplace("scenario", scenario);
  out.emplace("seed", static_cast<double>(seed));
  out.emplace("duration_hours", duration_hours);
  out.emplace("total_cells", static_cast<double>(total_cells));
  out.emplace("admission", std::move(admission));
  out.emplace("placement", std::move(placement));
  out.emplace("sla", std::move(sla));
  out.emplace("revenue", std::move(revenue));
  out.emplace("overbooking", std::move(overbooking));
  out.emplace("ops", std::move(ops));
  if (mobility_enabled) out.emplace("mobility", std::move(mobility));
  out.emplace("regions", std::move(region_list));
  out.emplace("targets", std::move(targets));
  return json::Value(std::move(out));
}

std::string FederatedScorecard::serialize() const {
  return json::serialize_pretty(to_json()) + "\n";
}

FederatedRunner::FederatedRunner(scenario::Scenario scenario, FederatedRunOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {}

FederatedRunner::~FederatedRunner() {
  for (auto& server : servers_) server->stop();
  for (std::thread& t : server_threads_) {
    if (t.joinable()) t.join();
  }
}

EdgeNode* FederatedRunner::edge(const std::string& region) noexcept {
  for (auto& e : edges_) {
    if (e->name() == region) return e.get();
  }
  return nullptr;
}

Result<void> FederatedRunner::build_edges() {
  for (const RegionPlan& plan : fabric_.regions) {
    if (auto it = options_.remote_edges.find(plan.name); it != options_.remote_edges.end()) {
      bus_.register_remote(Broker::service_name(plan.name), it->second);
      continue;
    }
    auto node = std::make_unique<EdgeNode>(plan, scenario_, options_.epoch_threads);
    if (options_.socket_transport) {
      Result<std::unique_ptr<net::HttpServer>> server = net::HttpServer::bind(node->make_router());
      if (!server.ok()) return server.error();
      bus_.register_remote(Broker::service_name(plan.name), server.value()->port());
      net::HttpServer* raw = server.value().get();
      servers_.push_back(std::move(server.value()));
      server_threads_.emplace_back([raw] { raw->run(); });
    } else {
      bus_.register_service(Broker::service_name(plan.name), node->make_router());
    }
    edges_.push_back(std::move(node));
  }
  for (const auto& [region, port] : options_.remote_edges) {
    if (edge(region) == nullptr && !bus_.has_service(Broker::service_name(region))) {
      return make_error(Errc::invalid_argument,
                        "remote edge '" + region + "' is not a region of this scenario");
    }
  }
  return {};
}

std::vector<core::RatePoint> FederatedRunner::build_rate_schedule() const {
  // Identical compilation to ScenarioRunner::build_rate_schedule so a
  // metro workload with phases draws the same arrival process.
  const double base = scenario_.workload.arrivals_per_hour;
  std::vector<const scenario::Phase*> rated;
  for (const scenario::Phase& phase : scenario_.phases) {
    if (phase.arrivals_per_hour >= 0.0) rated.push_back(&phase);
  }
  std::vector<core::RatePoint> schedule;
  for (std::size_t i = 0; i < rated.size(); ++i) {
    schedule.push_back({rated[i]->start, rated[i]->arrivals_per_hour});
    if (i + 1 == rated.size() || rated[i + 1]->start > rated[i]->end) {
      schedule.push_back({rated[i]->end, base});
    }
  }
  return schedule;
}

void FederatedRunner::inject_event(const scenario::ScenarioEvent& event) {
  if (recorder_) (void)recorder_->record_event(event);
  json::Object body;
  body.emplace("kind", std::string(scenario::to_string(event.kind)));
  body.emplace("target", event.target);
  body.emplace("duration_us", static_cast<double>(event.duration.as_micros()));
  Result<json::Value> applied =
      bus_.call_json(Broker::service_name(event.region), net::Method::post,
                     "/federation/fault", json::Value(std::move(body)));
  if (applied.ok()) ++events_injected_;
}

void FederatedRunner::submit_scenario_request(const scenario::ScenarioRequest& request,
                                              std::int64_t t_us) {
  // Recorded post-draw: replays carry the concrete home region, so the
  // broker's home RNG never has to re-draw (and cannot diverge).
  if (recorder_) {
    (void)recorder_->record_request(SimTime::from_micros(t_us), request.spec,
                                    request.workload_seed, request.region);
  }
  (void)broker_->submit(scenario::request_to_json(request), request.region, t_us);
}

void FederatedRunner::sample_gain() {
  double contracted = 0.0;
  double reserved = 0.0;
  for (const std::string& region : broker_->regions()) {
    Result<json::Value> doc =
        bus_.get_json(Broker::service_name(region), "/federation/headroom");
    if (!doc.ok()) continue;
    const json::Value* suspended = doc.value().find("suspended");
    if (suspended != nullptr && suspended->is_bool() && suspended->as_bool()) continue;
    contracted += double_field(doc.value(), "contracted_mbps");
    reserved += double_field(doc.value(), "reserved_mbps");
  }
  const double gain = reserved > 0.0 ? contracted / reserved : 1.0;
  gain_sum_ += gain;
  ++gain_samples_;
  gain_peak_ = std::max(gain_peak_, gain);
}

Result<FederatedScorecard> FederatedRunner::run() {
  if (ran_) return make_error(Errc::conflict, "federated runner is single-use");
  if (scenario_.topology != "metro") {
    return make_error(Errc::invalid_argument,
                      "topology '" + scenario_.topology +
                          "' is single-region — drive it with scenario::ScenarioRunner");
  }
  ran_ = true;

  Result<MetroFabric> fabric = make_metro_fabric(scenario_.federation, scenario_.seed);
  if (!fabric.ok()) return fabric.error();
  fabric_ = std::move(fabric.value());

  if (Result<void> built = build_edges(); !built.ok()) return built.error();
  broker_ = std::make_unique<Broker>(&bus_, fabric_);
  if (!options_.record_path.empty()) {
    Result<std::unique_ptr<scenario::ScenarioRecorder>> recorder =
        scenario::ScenarioRecorder::create(options_.record_path, scenario_);
    if (!recorder.ok()) return recorder.error();
    recorder_ = std::move(recorder.value());
  }
  // The facade's /federation/metrics|trace bodies require bus pulls the
  // run loop must perform; only pay for them when the facade is up.
  broker_->set_facade_enabled(options_.broker_port != 0);

  std::unique_ptr<net::HttpServer> facade;
  std::thread facade_thread;
  std::shared_ptr<net::Router> facade_router;
  if (options_.broker_port != 0) {
    facade_router = broker_->make_router();
    Result<std::unique_ptr<net::HttpServer>> server =
        net::HttpServer::bind(facade_router, options_.broker_port);
    if (!server.ok()) return server.error();
    facade = std::move(server.value());
    net::HttpServer* raw = facade.get();
    facade_thread = std::thread([raw] { raw->run(); });
  }

  // --- The lock-step timeline -------------------------------------
  // At every timestamp t, in this order: advance every region to t,
  // epoch-tick bookkeeping (deferred retries, gain sample, snapshot),
  // failure events, explicit requests, generated arrivals. Regions in
  // sorted-name order throughout. This total order — not wall clocks,
  // not transport latency — is what makes the scorecard byte-identical
  // across thread counts and transports.
  const std::int64_t end_us = (SimTime::origin() + scenario_.duration).as_micros();
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

  std::vector<scenario::ScenarioEvent> events = scenario_.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });
  std::vector<scenario::ScenarioRequest> requests = scenario_.requests;
  std::stable_sort(requests.begin(), requests.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });
  std::size_t next_event = 0;
  std::size_t next_request = 0;

  const std::int64_t period_us = scenario_.orchestrator.monitoring_period.as_micros();
  std::int64_t next_tick_us = period_us > 0 ? period_us : kNever;

  std::unique_ptr<core::RequestGenerator> generator;
  std::int64_t next_arrival_us = kNever;
  if (scenario_.generate_arrivals) {
    core::RequestGeneratorConfig workload = scenario_.workload;
    workload.rate_schedule = build_rate_schedule();
    if (workload.arrivals_per_hour > 0.0 || !workload.rate_schedule.empty()) {
      generator = std::make_unique<core::RequestGenerator>(std::move(workload),
                                                           Rng(scenario_.seed ^ kWorkloadSalt));
      const SimTime first = SimTime::origin() + generator->next_interarrival(SimTime::origin());
      next_arrival_us = first.as_micros();
    }
  }
  Rng home_rng(scenario_.seed ^ kHomeSalt);
  const auto draw_home = [&]() -> std::string {
    const std::size_t n = broker_->regions().size();
    return broker_->regions()[home_rng.uniform_int(0, static_cast<int>(n) - 1)];
  };

  const auto event_at = [&]() -> std::int64_t {
    return next_event < events.size()
               ? (SimTime::origin() + events[next_event].at).as_micros()
               : kNever;
  };
  const auto request_at = [&]() -> std::int64_t {
    return next_request < requests.size()
               ? (SimTime::origin() + requests[next_request].at).as_micros()
               : kNever;
  };

  while (true) {
    std::int64_t t = kNever;
    if (next_tick_us <= end_us) t = std::min(t, next_tick_us);
    if (event_at() <= end_us) t = std::min(t, event_at());
    if (request_at() <= end_us) t = std::min(t, request_at());
    if (next_arrival_us <= end_us) t = std::min(t, next_arrival_us);
    if (t == kNever) break;

    broker_->advance_all(t);

    if (t == next_tick_us) {
      (void)broker_->retry_deferred(t);
      // advance_all(t) already ran every region's mobility periodic for
      // this window, so the exit queues are complete when we route them.
      if (scenario_.mobility.enabled) (void)broker_->route_roamers(t);
      sample_gain();
      broker_->refresh_snapshot(t);
      ++epochs_;
      next_tick_us += period_us;
    }
    while (event_at() == t) inject_event(events[next_event++]);
    while (request_at() == t) {
      scenario::ScenarioRequest& request = requests[next_request++];
      if (request.region.empty()) request.region = draw_home();
      submit_scenario_request(request, t);
    }
    while (next_arrival_us == t) {
      core::GeneratedRequest generated = generator->next_request();
      scenario::ScenarioRequest request;
      request.at = SimTime::from_micros(t) - SimTime::origin();
      request.spec = generated.spec;
      request.workload_seed = generated.workload_seed;
      request.region = draw_home();
      submit_scenario_request(request, t);
      const SimTime now = SimTime::from_micros(t);
      const SimTime next = now + generator->next_interarrival(now);
      next_arrival_us = next.as_micros();
    }
  }
  broker_->advance_all(end_us);

  FederatedScorecard card = finalize();
  evaluate_targets(card);

  if (recorder_) {
    if (Result<void> r = recorder_->finish(SimTime::from_micros(end_us)); !r.ok()) {
      return r.error();
    }
  }

  if (facade != nullptr) {
    facade->stop();
    facade_thread.join();
  }
  return card;
}

FederatedScorecard FederatedRunner::finalize() {
  FederatedScorecard card;
  card.scenario = scenario_.name;
  card.seed = scenario_.seed;
  card.duration_hours = scenario_.duration.as_micros() / 3.6e9;
  card.total_cells = fabric_.total_cells();

  std::map<std::string, double> price;
  std::map<std::string, std::size_t> cells;
  for (const RegionPlan& plan : fabric_.regions) {
    price.emplace(plan.name, plan.price_factor);
    cells.emplace(plan.name, plan.cells);
  }

  for (const std::string& region : broker_->regions()) {
    RegionScore score;
    score.name = region;
    score.cells = cells.at(region);
    score.price_factor = price.at(region);
    Result<json::Value> doc = bus_.get_json(Broker::service_name(region), "/federation/summary");
    if (doc.ok()) {
      const json::Value& s = doc.value();
      score.admitted = u64_field(s, "admitted");
      score.rejected = u64_field(s, "rejected");
      score.active_at_end = u64_field(s, "active_at_end");
      score.expired = u64_field(s, "expired");
      score.terminated = u64_field(s, "terminated");
      score.served_epochs = u64_field(s, "served_epochs");
      score.violation_epochs = u64_field(s, "violation_epochs");
      score.earned_cents = i64_field(s, "earned_cents");
      score.penalty_cents = i64_field(s, "penalty_cents");
      score.net_cents = i64_field(s, "net_cents");
      score.reconfigurations = u64_field(s, "reconfigurations");
      score.contracted_mbps = double_field(s, "contracted_mbps");
      score.reserved_mbps = double_field(s, "reserved_mbps");
      score.multiplexing_gain = double_field(s, "multiplexing_gain", 1.0);
    }
    card.admitted += score.admitted;
    card.served_epochs += score.served_epochs;
    card.violation_epochs += score.violation_epochs;
    card.earned_cents += score.earned_cents;
    card.penalty_cents += score.penalty_cents;
    card.net_cents += score.net_cents;
    card.reconfigurations += score.reconfigurations;
    card.regions.push_back(std::move(score));
  }

  if (scenario_.mobility.enabled) {
    card.mobility_enabled = true;
    for (const std::string& region : broker_->regions()) {
      Result<json::Value> doc =
          bus_.get_json(Broker::service_name(region), "/federation/mobility");
      if (!doc.ok()) continue;
      const json::Value& m = doc.value();
      card.handover_attempts += u64_field(m, "handover_attempts");
      card.handover_successes += u64_field(m, "handover_successes");
      card.handover_drops += u64_field(m, "handover_drops");
      card.mobile_population += u64_field(m, "population");
    }
  }

  const BrokerCounters& counters = broker_->counters();
  card.submitted = counters.submitted;
  card.placed_local = counters.placed_local;
  card.placed_remote = counters.placed_remote;
  card.edge_rejected = counters.edge_rejected;
  card.rejected_no_region = counters.rejected_no_region;
  card.deferred_total = counters.deferred_total;
  card.deferred_unplaced = broker_->deferred_pending();
  card.backbone_reservations = counters.backbone_reservations;
  card.backbone_reserved_mbps_peak = counters.backbone_reserved_mbps_peak;
  card.roam_attempts = counters.roam_attempts;
  card.roam_admitted = counters.roam_admitted;
  card.roam_dropped = counters.roam_dropped;

  // City-level rejections are the broker's, not the sum of per-region
  // orchestrator refusals: shopping a request to a second region after
  // the first says no must not count it twice.
  card.rejected = counters.edge_rejected + counters.rejected_no_region;
  const std::uint64_t decided = card.admitted + card.rejected;
  card.admission_rate =
      decided == 0 ? 0.0 : static_cast<double>(card.admitted) / static_cast<double>(decided);
  card.violation_rate = card.served_epochs == 0
                            ? 0.0
                            : static_cast<double>(card.violation_epochs) /
                                  static_cast<double>(card.served_epochs);
  card.multiplexing_gain_mean =
      gain_samples_ == 0 ? 1.0 : gain_sum_ / static_cast<double>(gain_samples_);
  card.multiplexing_gain_peak = gain_peak_;
  card.epochs = epochs_;
  card.events_injected = events_injected_;
  return card;
}

void FederatedRunner::evaluate_targets(FederatedScorecard& card) const {
  const scenario::ScenarioTargets& targets = scenario_.targets;
  const auto fail = [&card](std::string why) {
    card.targets_met = false;
    card.target_failures.push_back(std::move(why));
  };
  if (targets.min_admission_rate && card.admission_rate < *targets.min_admission_rate) {
    fail("admission rate " + format_rate(card.admission_rate) + " < target " +
         format_rate(*targets.min_admission_rate));
  }
  if (targets.max_violation_rate && card.violation_rate > *targets.max_violation_rate) {
    fail("violation rate " + format_rate(card.violation_rate) + " > target " +
         format_rate(*targets.max_violation_rate));
  }
  if (targets.min_net_revenue &&
      static_cast<double>(card.net_cents) / 100.0 < *targets.min_net_revenue) {
    fail("net revenue " + format_rate(static_cast<double>(card.net_cents) / 100.0) +
         " < target " + format_rate(*targets.min_net_revenue));
  }
  if (targets.min_multiplexing_gain &&
      card.multiplexing_gain_mean < *targets.min_multiplexing_gain) {
    fail("multiplexing gain " + format_rate(card.multiplexing_gain_mean) + " < target " +
         format_rate(*targets.min_multiplexing_gain));
  }
}

}  // namespace slices::federation
