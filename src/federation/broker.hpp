#pragma once
// Global federation broker (docs/federation.md).
//
// The top tier of the hierarchy: receives every slice request, polls
// each region's forecast headroom over the RestBus, and places the
// slice in the region with the best headroom/price score. A slice
// placed away from its tenant's home region additionally reserves
// transport on the inter-region backbone (CSPF over the metro ring or
// mesh, with broker-held residual accounting); requests no region can
// take while an edge is restarting queue in the deferred-admission
// lane and are retried at the next epoch tick.
//
// Every edge interaction goes through the bus, so the broker computes
// identically whether the edges are routers in this process, HTTP
// servers in other threads, or other OS processes.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "federation/fabric.hpp"
#include "json/value.hpp"
#include "net/rest_bus.hpp"
#include "net/router.hpp"
#include "telemetry/registry.hpp"

namespace slices::federation {

/// One placement decision, kept for the audit surface
/// (`slicectl <port> federation placements`).
struct PlacementDecision {
  std::uint64_t seq = 0;
  std::int64_t t_us = 0;
  std::string tenant;
  double throughput_mbps = 0.0;
  std::string home_region;
  std::string placed_region;  ///< empty when nothing was placed
  /// "local" | "remote" | "deferred" | "no_region" | "edge_rejected"
  std::string outcome;
  double score = 0.0;         ///< headroom/price of the chosen region
  std::uint64_t request = 0;  ///< edge-side request id (placed outcomes)
};

/// Aggregate broker counters (also summed into the scorecard).
struct BrokerCounters {
  std::uint64_t submitted = 0;
  std::uint64_t placed_local = 0;
  std::uint64_t placed_remote = 0;
  std::uint64_t edge_rejected = 0;
  std::uint64_t rejected_no_region = 0;
  std::uint64_t deferred_total = 0;   ///< entries into the deferred lane
  std::uint64_t backbone_reservations = 0;
  double backbone_reserved_mbps_peak = 0.0;
  // Inter-region mobility (route_roamers); zero unless a mobility
  // scenario is running.
  std::uint64_t roam_attempts = 0;    ///< exits drained from the regions
  std::uint64_t roam_admitted = 0;    ///< re-attached in the neighbour
  std::uint64_t roam_dropped = 0;     ///< neighbour refused the attach
};

class Broker {
 public:
  /// `bus` must outlive the broker and have one service per region
  /// registered under service_name(region). The fabric supplies region
  /// order (sorted), prices and the backbone.
  Broker(net::RestBus* bus, const MetroFabric& fabric);

  /// Bus service name of a region's edge node: "edge.<region>".
  [[nodiscard]] static std::string service_name(const std::string& region) {
    return "edge." + region;
  }

  /// Drive every region's clock to `t_us` (sorted region order) and
  /// release backbone reservations whose slices have expired.
  void advance_all(std::int64_t t_us);

  /// Place one request. `body` is the scenario request JSON (the
  /// "region" key, if present, is stripped before the edge sees it).
  /// Returns the recorded decision.
  PlacementDecision submit(const json::Value& body, const std::string& home_region,
                           std::int64_t now_us);

  /// Retry the deferred lane (epoch ticks); returns how many placed.
  std::size_t retry_deferred(std::int64_t now_us);

  /// Inter-region handover: drain every region's roaming-exit queue
  /// (sorted region order) and re-attach each batch in the neighbour
  /// region the UE walked into (+1 = east, -1 = west on the metro
  /// line). Each non-empty batch takes a best-effort signalling lease
  /// on the backbone leg. Returns how many roamers were re-admitted.
  /// Call once per epoch tick, after advance_all().
  std::size_t route_roamers(std::int64_t now_us);

  /// Live per-region roll-up (headroom poll over the bus). Single-
  /// threaded with the run loop; the REST facade serves the snapshot
  /// taken by the latest refresh_snapshot() instead.
  [[nodiscard]] json::Value regions_json();
  void refresh_snapshot(std::int64_t t_us);

  [[nodiscard]] json::Value placements_json() const;
  [[nodiscard]] const BrokerCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::size_t deferred_pending() const noexcept { return deferred_.size(); }
  [[nodiscard]] const std::vector<std::string>& regions() const noexcept { return regions_; }

  /// Broker-side SLO instruments (docs/federation.md): deferred-lane
  /// depth, backbone lease occupancy, per-region headroom at refresh,
  /// placement counters. Sampled by refresh_snapshot() on sim time, so
  /// the contents are transport-invariant.
  [[nodiscard]] const telemetry::MonitorRegistry& registry() const noexcept {
    return registry_;
  }

  /// Federation-wide metrics roll-up: pulls every region's full-fidelity
  /// /federation/metrics export over the bus and merges them (counters
  /// add, histograms bucket-merge). Returns
  ///   {"t_us", "regions": {<r>: <export>}, "merged": <snapshot>,
  ///    "broker": <broker-registry snapshot>}
  /// Byte-identical across in-process / socket / multi-process edges.
  /// Single-threaded with the run loop (drives the bus).
  [[nodiscard]] json::Value federation_metrics_json(std::int64_t t_us);

  /// One merged Chrome trace for the whole metro: per-region span lists
  /// pulled over the bus plus the broker's own spans, stitched into
  /// region-named lanes (tid 0 = broker, tid 1+i = regions in sorted
  /// order). Region pulls happen before the broker lane is read, so the
  /// pulls' own bus.call spans land in the export on every transport.
  /// Single-threaded with the run loop (drives the bus).
  void export_federated_trace(std::string& out);

  /// When enabled, refresh_snapshot() also rebuilds the federation
  /// metrics/trace bodies the REST facade serves (they require bus
  /// pulls, which only the run loop may do). Off by default to keep
  /// non-facade runs free of the export cost.
  void set_facade_enabled(bool on) noexcept { facade_enabled_ = on; }

  /// REST facade for slicectl: GET /federation/regions (latest
  /// snapshot), GET /federation/placements, GET /federation/metrics,
  /// GET /federation/trace, GET /federation/healthz. Handlers only read
  /// mutex-guarded snapshots — safe to serve from an HttpServer thread
  /// while the run loop mutates the broker.
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  struct Candidate {
    std::string region;
    double headroom_mbps = 0.0;
    double price = 1.0;
    double score = 0.0;
  };

  /// Poll headroom of every region and keep those that can take the
  /// request (not suspended, DC gate, enough headroom). Sorted by
  /// region name; `any_suspended` reports whether a region was skipped
  /// for being suspended (the deferral trigger).
  [[nodiscard]] std::vector<Candidate> collect_candidates(double throughput_mbps,
                                                          bool needs_edge,
                                                          bool* any_suspended);

  /// Reserve backbone transport home -> placed. False when no feasible
  /// route exists at the demand.
  bool reserve_backbone(const std::string& home, const std::string& placed,
                        DataRate demand, std::int64_t release_us);

  net::RestBus* bus_;
  std::vector<std::string> regions_;             ///< sorted names
  std::map<std::string, std::size_t> region_index_;
  std::map<std::string, double> region_price_;
  transport::Topology backbone_;
  std::vector<NodeId> border_nodes_;             ///< index-aligned with regions_

  std::map<LinkId, DataRate> backbone_reserved_;
  struct BackboneLease {
    std::int64_t release_us = 0;
    std::vector<LinkId> links;
    DataRate rate;
  };
  std::vector<BackboneLease> leases_;

  struct DeferredRequest {
    json::Value body;
    std::string home_region;
    std::uint64_t seq = 0;
  };
  std::vector<DeferredRequest> deferred_;

  BrokerCounters counters_;
  std::uint64_t next_seq_ = 1;
  telemetry::MonitorRegistry registry_;
  bool facade_enabled_ = false;

  // REST-facade state: the run loop writes under the mutex, HttpServer
  // handler threads read under it.
  mutable std::mutex mutex_;
  std::vector<PlacementDecision> placements_;
  json::Value regions_snapshot_{nullptr};
  std::string metrics_snapshot_;  ///< facade /federation/metrics body
  std::string trace_snapshot_;    ///< facade /federation/trace body
};

}  // namespace slices::federation
