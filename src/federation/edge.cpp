#include "federation/edge.hpp"

#include <cstdlib>
#include <optional>

#include "common/rng.hpp"
#include "traffic/verticals.hpp"
#include "transport/generators.hpp"

namespace slices::federation {
namespace {

using json::Object;
using json::Value;

Error bad(std::string why) { return make_error(Errc::invalid_argument, std::move(why)); }

/// "edge<k>" -> k; nullopt when the name is not of that shape.
std::optional<std::size_t> edge_dc_index(const std::string& target, std::size_t limit) {
  if (target.size() <= 4 || target.substr(0, 4) != "edge") return std::nullopt;
  const std::string digits = target.substr(4);
  if (digits.find_first_not_of("0123456789") != std::string::npos) return std::nullopt;
  const std::size_t k = static_cast<std::size_t>(std::strtoull(digits.c_str(), nullptr, 10));
  if (k >= limit) return std::nullopt;
  return k;
}

}  // namespace

EdgeNode::EdgeNode(const RegionPlan& plan, const scenario::Scenario& scenario,
                   std::size_t epoch_threads)
    : plan_(plan),
      component_(telemetry::trace::Tracer::instance().intern_component("edge." + plan.name)) {
  // Construction-time spans (none today, but guard against future ones)
  // must carry the region's component like handler-triggered spans do.
  telemetry::trace::ComponentScope trace_component(component_);
  core::OrchestratorConfig config = scenario.orchestrator;
  config.epoch_threads = epoch_threads == 0 ? 1 : epoch_threads;
  if (config.epoch_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config.epoch_threads);
    ran_.set_thread_pool(pool_.get());
  }

  for (std::size_t c = 0; c < plan_.cells; ++c) {
    const CellId id{c + 1};
    cells_.push_back(id);
    ran_.add_cell(ran::Cell(id, plan_.name + "-c" + std::to_string(c), ran::Bandwidth::mhz20,
                            ran::SharingPolicy::pooled));
  }

  transport::GeneratedTopology tree = transport::make_aggregation_tree(
      /*leaves=*/std::max<std::size_t>(plan_.cells / 4, 1), /*leaves_per_switch=*/4);
  const NodeId ran_gateway = tree.ran_gateways.front();
  const NodeId core_gateway = tree.core_gateway;
  const std::vector<NodeId> edge_gateways = tree.edge_gateways;
  // Same fading-stream salt as core::make_testbed, keyed by the
  // region's own seed so regions fade independently.
  transport_ = std::make_unique<transport::TransportController>(
      std::move(tree.topology), Rng(plan_.seed ^ 0x7261696eULL), &registry_);
  if (pool_ != nullptr) transport_->set_thread_pool(pool_.get());

  std::map<DatacenterId, NodeId> dc_gateways;
  core_dc_ = cloud_.add_datacenter("core", cloud::DatacenterKind::core,
                                   /*cpu_allocation_ratio=*/2.0);
  for (std::size_t h = 0; h < plan_.hosts_per_dc; ++h) {
    cloud_.add_host(core_dc_, "core-host-" + std::to_string(h),
                    ComputeCapacity{64.0, 262144.0, 4000.0});
  }
  dc_gateways.emplace(core_dc_, core_gateway);
  for (std::size_t k = 0; k < plan_.edge_dcs; ++k) {
    const DatacenterId dc = cloud_.add_datacenter("edge" + std::to_string(k),
                                                  cloud::DatacenterKind::edge,
                                                  /*cpu_allocation_ratio=*/1.0);
    for (std::size_t h = 0; h < plan_.hosts_per_dc; ++h) {
      cloud_.add_host(dc, "edge" + std::to_string(k) + "-host-" + std::to_string(h),
                      ComputeCapacity{32.0, 131072.0, 1000.0});
    }
    dc_gateways.emplace(dc, edge_gateways[k % edge_gateways.size()]);
    edge_dcs_.push_back(dc);
    edge_dc_up_.push_back(true);
  }
  cloud_.finalize(cloud::PlacementPolicy::first_fit);
  epc_ = std::make_unique<epc::EpcManager>(&cloud_);

  bus_.register_service("ran", ran_.make_router());
  bus_.register_service("transport", transport_->make_router());
  bus_.register_service("cloud", cloud_.make_router());

  orchestrator_ = std::make_unique<core::Orchestrator>(&simulator_, &ran_, transport_.get(),
                                                       &cloud_, epc_.get(), &bus_, &registry_,
                                                       config);
  orchestrator_->set_attachment_points(ran_gateway, std::move(dc_gateways));
  bus_.register_service("orchestrator", orchestrator_->make_router());
  orchestrator_->start();

  std::vector<traffic::PiecewiseEnvelope::Segment> segments;
  for (const scenario::Phase& phase : scenario.phases) {
    if (phase.demand_scale != 1.0) {
      segments.push_back({SimTime::origin() + phase.start, SimTime::origin() + phase.end,
                          phase.demand_scale});
    }
  }
  if (!segments.empty()) {
    envelope_ = std::make_shared<const traffic::PiecewiseEnvelope>(std::move(segments));
  }

  if (scenario.mobility.enabled) build_mobility(scenario);
}

void EdgeNode::build_mobility(const scenario::Scenario& scenario) {
  mobility_spec_ = scenario.mobility;
  mobility::FieldConfig config;
  config.cell_spacing_m = mobility_spec_.cell_spacing_m;
  config.default_speed_mps = mobility_spec_.default_speed_mps;
  config.ues_per_slice = mobility_spec_.ues_per_slice;
  config.cqi_min = mobility_spec_.cqi_min;
  config.cqi_max = mobility_spec_.cqi_max;
  config.seed = plan_.seed;
  config.region_index = plan_.index;
  config.region_count = scenario.federation.regions;
  config.region = plan_.name;
  field_ = std::make_unique<mobility::Field>(config, &ran_, pool_.get());

  for (const scenario::MobilityStorm& storm : mobility_spec_.storms) {
    if (!storm.region.empty() && storm.region != plan_.name) continue;
    // "c<k>" names grid cell k; empty focuses the region's first cell.
    std::size_t cell = 0;
    if (storm.cell.size() > 1 && storm.cell[0] == 'c') {
      cell = static_cast<std::size_t>(std::strtoull(storm.cell.c_str() + 1, nullptr, 10));
    }
    field_->add_storm(storm.kind, SimTime::origin() + storm.at,
                      SimTime::origin() + storm.at + storm.duration, storm.fraction, cell);
  }

  // Registered after orchestrator start: at shared timestamps the epoch
  // periodic runs first (FIFO), so UEs move over the epoch's result —
  // the same order the fig2 runner uses.
  const Duration period = scenario.orchestrator.monitoring_period;
  simulator_.add_periodic(period, [this](SimTime now) { step_mobility(now); }, period);
}

void EdgeNode::step_mobility(SimTime now) {
  telemetry::trace::ComponentScope trace_component(component_);
  std::vector<PlmnId> live;
  std::vector<traffic::Vertical> verticals;
  for (const core::SliceRecord* record : orchestrator_->all_slices()) {
    if (record->state != core::SliceState::active) continue;
    live.push_back(record->embedding.plmn);
    verticals.push_back(record->spec.vertical);
  }
  const auto speed_of = [&](PlmnId plmn) -> double {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i] != plmn) continue;
      for (const auto& [vertical, speed] : mobility_spec_.speed_classes) {
        if (vertical == verticals[i]) return speed;
      }
      break;
    }
    return 0.0;  // take the configured default
  };
  field_->sync_population(live, speed_of);
  field_->step(now);
  (void)field_->apply(now);
}

json::Value EdgeNode::mobility_json() const {
  Object out;
  out.emplace("region", plan_.name);
  if (field_ == nullptr) {
    out.emplace("enabled", false);
    return Value(std::move(out));
  }
  const ran::HandoverStats& handovers = ran_.handover_totals();
  out.emplace("enabled", true);
  out.emplace("population", static_cast<double>(field_->population()));
  out.emplace("handover_attempts", static_cast<double>(handovers.attempts));
  out.emplace("handover_successes", static_cast<double>(handovers.successes));
  out.emplace("handover_drops", static_cast<double>(handovers.drops));
  out.emplace("exits", static_cast<double>(field_->exits_total()));
  out.emplace("roamers_admitted", static_cast<double>(field_->roamers_admitted()));
  out.emplace("roamers_dropped", static_cast<double>(field_->roamers_dropped()));
  return Value(std::move(out));
}

json::Value EdgeNode::drain_roamers_json() {
  json::Array exits;
  if (field_ != nullptr) {
    std::vector<mobility::RoamingExit> drained;
    field_->drain_exits(drained);
    for (const mobility::RoamingExit& exit : drained) {
      Object entry;
      entry.emplace("plmn", static_cast<double>(exit.plmn));
      entry.emplace("cqi", static_cast<double>(exit.cqi));
      entry.emplace("y_mm", static_cast<double>(exit.y_mm));
      entry.emplace("side", static_cast<double>(exit.side));
      exits.push_back(Value(std::move(entry)));
    }
  }
  Object out;
  out.emplace("region", plan_.name);
  out.emplace("exits", std::move(exits));
  return Value(std::move(out));
}

Result<json::Value> EdgeNode::admit_roamers(const json::Value& body) {
  if (field_ == nullptr) {
    return make_error(Errc::unavailable, "region " + plan_.name + " has no mobility field");
  }
  const json::Value* roamers = body.find("roamers");
  if (roamers == nullptr || !roamers->is_array()) {
    return bad("ingress body needs a roamers array");
  }
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  for (const json::Value& entry : roamers->as_array()) {
    mobility::RoamingExit exit;
    if (const json::Value* v = entry.find("plmn"); v != nullptr && v->is_number()) {
      exit.plmn = static_cast<std::uint64_t>(v->as_number());
    }
    if (const json::Value* v = entry.find("cqi"); v != nullptr && v->is_number()) {
      exit.cqi = static_cast<int>(v->as_number());
    }
    if (const json::Value* v = entry.find("y_mm"); v != nullptr && v->is_number()) {
      exit.y_mm = static_cast<std::int64_t>(v->as_number());
    }
    if (const json::Value* v = entry.find("side"); v != nullptr && v->is_number()) {
      exit.side = v->as_number() < 0.0 ? -1 : 1;
    }
    if (field_->admit_roamer(exit)) {
      ++admitted;
    } else {
      ++dropped;
    }
  }
  Object out;
  out.emplace("region", plan_.name);
  out.emplace("admitted", static_cast<double>(admitted));
  out.emplace("dropped", static_cast<double>(dropped));
  return Value(std::move(out));
}

void EdgeNode::advance_to(std::int64_t t_us) {
  if (t_us > simulator_.now().as_micros()) {
    (void)simulator_.run_until(SimTime::from_micros(t_us));
  }
}

Result<json::Value> EdgeNode::submit(const json::Value& body) {
  if (orchestrator_->suspended()) {
    return make_error(Errc::unavailable,
                      "region " + plan_.name + " is restarting; defer admission");
  }
  Result<scenario::ScenarioRequest> request = scenario::request_from_json(body);
  if (!request.ok()) return request.error();

  std::unique_ptr<traffic::TrafficModel> workload =
      traffic::make_traffic(request.value().spec.vertical, Rng(request.value().workload_seed));
  if (envelope_) {
    workload = std::make_unique<traffic::ModulatedTraffic>(std::move(workload), envelope_);
  }
  const RequestId id = orchestrator_->submit(request.value().spec, std::move(workload));
  const core::SliceRecord* record = orchestrator_->find_by_request(id);

  Object out;
  out.emplace("region", plan_.name);
  out.emplace("request", static_cast<double>(id.value()));
  out.emplace("slice", record == nullptr ? 0.0 : static_cast<double>(record->id.value()));
  out.emplace("state",
              record == nullptr ? "pending" : std::string(core::to_string(record->state)));
  return Value(std::move(out));
}

Result<void> EdgeNode::apply_dc_fault(const std::string& target, bool up) {
  DatacenterId dc;
  if (target == "core") {
    dc = core_dc_;
    core_dc_up_ = up;
  } else if (const std::optional<std::size_t> k = edge_dc_index(target, edge_dcs_.size()); k) {
    dc = edge_dcs_[*k];
    edge_dc_up_[*k] = up;
  } else {
    return bad("unknown dc '" + target + "' in region " + plan_.name);
  }
  (void)cloud_.set_datacenter_available(dc, up);
  if (!up) {
    // A failed site loses its VNFs: live slices embedded there are torn
    // down (same semantics as the fig2 runner's dc_down).
    for (const core::SliceRecord* record : orchestrator_->all_slices()) {
      if (record->is_live() && record->embedding.datacenter == dc) {
        (void)orchestrator_->terminate(record->id);
      }
    }
  }
  orchestrator_->note_fault("dc." + target, !up,
                            up ? "datacenter recovered" : "datacenter failed",
                            {{"dc", Value(target)}, {"region", Value(plan_.name)}});
  return {};
}

Result<void> EdgeNode::apply_cell_fault(const std::string& target, bool up) {
  if (target.size() <= 1 || target[0] != 'c' ||
      target.find_first_not_of("0123456789", 1) != std::string::npos) {
    return bad("unknown cell '" + target + "' in region " + plan_.name);
  }
  const std::size_t index =
      static_cast<std::size_t>(std::strtoull(target.c_str() + 1, nullptr, 10));
  if (index >= cells_.size())
    return bad("unknown cell '" + target + "' in region " + plan_.name);
  (void)ran_.set_cell_active(cells_[index], up);
  orchestrator_->note_fault("cell." + target, !up, up ? "cell reactivated" : "cell outage",
                            {{"cell", Value(target)}, {"region", Value(plan_.name)}});
  return {};
}

void EdgeNode::apply_restart(Duration duration) {
  orchestrator_->set_suspended(true);
  orchestrator_->note_fault("controller", true, "control plane restarting");
  simulator_.schedule_after(duration, [this] {
    orchestrator_->set_suspended(false);
    orchestrator_->note_fault("controller", false, "control plane back");
  });
}

Result<void> EdgeNode::apply_fault(const json::Value& body) {
  if (!body.is_object()) return bad("fault body must be an object");
  const Object& obj = body.as_object();
  const auto field = [&](std::string_view key) -> std::string {
    const auto it = obj.find(key);
    return it != obj.end() && it->second.is_string() ? it->second.as_string() : std::string();
  };
  const std::string kind = field("kind");
  const std::string target = field("target");
  Duration duration;
  if (const auto it = obj.find("duration_us"); it != obj.end() && it->second.is_number()) {
    duration = Duration::micros(static_cast<std::int64_t>(it->second.as_number()));
  }

  if (kind == "dc_down" || kind == "dc_up") {
    const bool up = kind == "dc_up";
    if (Result<void> r = apply_dc_fault(target, up); !r.ok()) return r;
    if (!up && duration > Duration::zero()) {
      simulator_.schedule_after(duration, [this, target] { (void)apply_dc_fault(target, true); });
    }
    return {};
  }
  if (kind == "cell_down" || kind == "cell_up") {
    const bool up = kind == "cell_up";
    if (Result<void> r = apply_cell_fault(target, up); !r.ok()) return r;
    if (!up && duration > Duration::zero()) {
      simulator_.schedule_after(duration,
                                [this, target] { (void)apply_cell_fault(target, true); });
    }
    return {};
  }
  if (kind == "controller_restart") {
    if (duration <= Duration::zero()) return bad("controller_restart needs duration_us > 0");
    apply_restart(duration);
    return {};
  }
  return bad("unknown fault kind '" + kind + "'");
}

json::Value EdgeNode::info_json() const {
  Object out;
  out.emplace("region", plan_.name);
  out.emplace("cells", static_cast<double>(plan_.cells));
  out.emplace("edge_dcs", static_cast<double>(plan_.edge_dcs));
  out.emplace("hosts_per_dc", static_cast<double>(plan_.hosts_per_dc));
  out.emplace("price_factor", plan_.price_factor);
  return Value(std::move(out));
}

json::Value EdgeNode::headroom_json() const {
  const core::OrchestratorSummary summary = orchestrator_->summary();
  std::size_t edge_dcs_up = 0;
  for (const bool up : edge_dc_up_) edge_dcs_up += up ? 1 : 0;

  Object out;
  out.emplace("region", plan_.name);
  out.emplace("t_us", static_cast<double>(simulator_.now().as_micros()));
  out.emplace("headroom_mbps", orchestrator_->sellable_capacity().as_mbps());
  out.emplace("price_factor", plan_.price_factor);
  out.emplace("suspended", orchestrator_->suspended());
  out.emplace("core_dc_up", core_dc_up_);
  out.emplace("edge_dcs_up", static_cast<double>(edge_dcs_up));
  out.emplace("active", static_cast<double>(summary.active_slices));
  out.emplace("installing", static_cast<double>(summary.installing_slices));
  out.emplace("contracted_mbps", summary.contracted_total.as_mbps());
  out.emplace("reserved_mbps", summary.reserved_total.as_mbps());
  return Value(std::move(out));
}

json::Value EdgeNode::summary_json() const {
  const core::OrchestratorSummary summary = orchestrator_->summary();
  std::uint64_t served = 0;
  std::uint64_t violations = 0;
  std::uint64_t active_at_end = 0;
  std::uint64_t expired = 0;
  std::uint64_t terminated = 0;
  for (const core::SliceRecord* record : orchestrator_->all_slices()) {
    served += record->served_epochs;
    violations += record->violation_epochs;
    switch (record->state) {
      case core::SliceState::installing:
      case core::SliceState::active: ++active_at_end; break;
      case core::SliceState::expired: ++expired; break;
      case core::SliceState::terminated: ++terminated; break;
      case core::SliceState::pending:
      case core::SliceState::rejected: break;
    }
  }

  Object out;
  out.emplace("region", plan_.name);
  out.emplace("t_us", static_cast<double>(simulator_.now().as_micros()));
  out.emplace("cells", static_cast<double>(plan_.cells));
  out.emplace("suspended", orchestrator_->suspended());
  out.emplace("admitted", static_cast<double>(summary.admitted_total));
  out.emplace("rejected", static_cast<double>(summary.rejected_total));
  out.emplace("active_at_end", static_cast<double>(active_at_end));
  out.emplace("expired", static_cast<double>(expired));
  out.emplace("terminated", static_cast<double>(terminated));
  out.emplace("served_epochs", static_cast<double>(served));
  out.emplace("violation_epochs", static_cast<double>(violations));
  out.emplace("earned_cents", static_cast<double>(summary.earned.as_cents()));
  out.emplace("penalty_cents", static_cast<double>(summary.penalties.as_cents()));
  out.emplace("net_cents", static_cast<double>(summary.net.as_cents()));
  out.emplace("reconfigurations", static_cast<double>(summary.reconfigurations));
  out.emplace("contracted_mbps", summary.contracted_total.as_mbps());
  out.emplace("reserved_mbps", summary.reserved_total.as_mbps());
  out.emplace("multiplexing_gain", summary.multiplexing_gain);
  return Value(std::move(out));
}

std::string EdgeNode::metrics_body() const {
  std::string body = "{\"metrics\":";
  std::string registry_body;
  registry_.metrics_body(registry_body);
  body += registry_body;
  body += ",\"trace\":";
  body += json::serialize(telemetry::trace::Tracer::instance().status_json());
  body.push_back('}');
  return body;
}

std::string EdgeNode::federation_metrics_body() const {
  Object out;
  out.emplace("region", plan_.name);
  out.emplace("metrics", registry_.export_json());
  return json::serialize(Value(std::move(out)));
}

std::string EdgeNode::federation_trace_body() const {
  const telemetry::trace::Tracer& tracer = telemetry::trace::Tracer::instance();
  std::string spans;
  tracer.export_component_spans_json(component_.index, spans);
  std::string body = "{\"dropped\":";
  json::append_number(body, static_cast<double>(tracer.dropped()));
  body += ",\"region\":";
  json::append_escaped(body, plan_.name);
  body += ",\"spans\":";
  body += spans;
  body.push_back('}');
  return body;
}

std::shared_ptr<net::Router> EdgeNode::make_router() {
  auto router = std::make_shared<net::Router>();
  const auto ok_json = [](const json::Value& doc) {
    return net::Response::json(net::Status::ok, json::serialize(doc));
  };
  // Every northbound handler runs under the region's trace component, so
  // spans it triggers — orchestrator admission, epoch phases, domain
  // installs — are id-keyed by region regardless of the hosting process.
  const auto traced = [this](net::Handler handler) -> net::Handler {
    return [this, handler = std::move(handler)](const net::RouteContext& ctx) {
      telemetry::trace::ComponentScope trace_component(component_);
      return handler(ctx);
    };
  };

  router->add(net::Method::get, "/federation/info",
              traced([this, ok_json](const net::RouteContext&) { return ok_json(info_json()); }));
  router->add(net::Method::get, "/federation/headroom",
              traced([this, ok_json](const net::RouteContext&) {
                return ok_json(headroom_json());
              }));
  router->add(net::Method::get, "/federation/summary",
              traced([this, ok_json](const net::RouteContext&) {
                return ok_json(summary_json());
              }));
  router->add(net::Method::get, "/federation/healthz",
              traced([this, ok_json](const net::RouteContext&) {
                return ok_json(orchestrator_->health_json());
              }));
  router->add(net::Method::get, "/metrics", traced([this](const net::RouteContext&) {
                return net::Response::json(net::Status::ok, metrics_body());
              }));
  router->add(net::Method::get, "/federation/metrics",
              traced([this](const net::RouteContext&) {
                return net::Response::json(net::Status::ok, federation_metrics_body());
              }));
  router->add(net::Method::get, "/federation/trace",
              traced([this](const net::RouteContext&) {
                return net::Response::json(net::Status::ok, federation_trace_body());
              }));

  router->add(net::Method::post, "/federation/advance",
              traced([this, ok_json](const net::RouteContext& ctx) {
                Result<json::Value> body = json::parse(ctx.request->body);
                if (!body.ok()) return net::Response::from_error(body.error());
                if (!body.value().is_object() ||
                    !body.value().as_object().contains("t_us") ||
                    !body.value().as_object().at("t_us").is_number()) {
                  return net::Response::from_error(bad("advance body needs numeric t_us"));
                }
                advance_to(
                    static_cast<std::int64_t>(body.value().as_object().at("t_us").as_number()));
                Object out;
                out.emplace("region", plan_.name);
                out.emplace("t_us", static_cast<double>(simulator_.now().as_micros()));
                return ok_json(Value(std::move(out)));
              }));

  router->add(net::Method::post, "/federation/slices",
              traced([this, ok_json](const net::RouteContext& ctx) {
                Result<json::Value> body = json::parse(ctx.request->body);
                if (!body.ok()) return net::Response::from_error(body.error());
                Result<json::Value> outcome = submit(body.value());
                if (!outcome.ok()) return net::Response::from_error(outcome.error());
                return ok_json(outcome.value());
              }));

  router->add(net::Method::get, "/federation/mobility",
              traced([this, ok_json](const net::RouteContext&) {
                return ok_json(mobility_json());
              }));
  router->add(net::Method::post, "/federation/mobility/drain",
              traced([this, ok_json](const net::RouteContext&) {
                return ok_json(drain_roamers_json());
              }));
  router->add(net::Method::post, "/federation/mobility/ingress",
              traced([this, ok_json](const net::RouteContext& ctx) {
                Result<json::Value> body = json::parse(ctx.request->body);
                if (!body.ok()) return net::Response::from_error(body.error());
                Result<json::Value> outcome = admit_roamers(body.value());
                if (!outcome.ok()) return net::Response::from_error(outcome.error());
                return ok_json(outcome.value());
              }));

  router->add(net::Method::post, "/federation/fault",
              traced([this, ok_json](const net::RouteContext& ctx) {
                Result<json::Value> body = json::parse(ctx.request->body);
                if (!body.ok()) return net::Response::from_error(body.error());
                if (Result<void> r = apply_fault(body.value()); !r.ok()) {
                  return net::Response::from_error(r.error());
                }
                Object out;
                out.emplace("region", plan_.name);
                out.emplace("applied", true);
                return ok_json(Value(std::move(out)));
              }));
  return router;
}

}  // namespace slices::federation
