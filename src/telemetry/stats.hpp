#pragma once
// Small statistics toolkit: Welford online accumulator and quantile
// estimation over sample vectors. Used by SLA accounting (violation
// rates, latency percentiles) and by the forecast residual model.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace slices::telemetry {

/// Numerically stable online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : (x < min_ ? x : min_);
    max_ = n_ == 1 ? x : (x > max_ ? x : max_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double minimum() const noexcept { return min_; }
  [[nodiscard]] double maximum() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile (q in [0,1]) by linear interpolation between order
/// statistics. Copies + sorts; intended for report-time use.
[[nodiscard]] inline double quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < values.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Mean absolute error between two equal-length vectors.
[[nodiscard]] inline double mean_absolute_error(const std::vector<double>& a,
                                                const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

/// Root-mean-square error between two equal-length vectors.
[[nodiscard]] inline double root_mean_square_error(const std::vector<double>& a,
                                                   const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace slices::telemetry
