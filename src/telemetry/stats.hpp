#pragma once
// Small statistics toolkit: Welford online accumulator and quantile
// estimation over sample vectors. Used by SLA accounting (violation
// rates, latency percentiles) and by the forecast residual model.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace slices::telemetry {

/// Numerically stable online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : (x < min_ ? x : min_);
    max_ = n_ == 1 ? x : (x > max_ ? x : max_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double minimum() const noexcept { return min_; }
  [[nodiscard]] double maximum() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Single-quantile (q in [0,1]) selection with linear interpolation
/// between order statistics; partially reorders `values` in place.
/// O(n) via nth_element instead of a full sort — the fast path when one
/// quantile is needed from a scratch buffer.
[[nodiscard]] inline double quantile_inplace(std::vector<double>& values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  const double lo_v = *lo_it;
  if (frac == 0.0 || lo + 1 >= values.size()) return lo_v;
  // The (lo+1)-th order statistic is the minimum of the upper partition.
  const double hi_v = *std::min_element(lo_it + 1, values.end());
  return lo_v * (1.0 - frac) + hi_v * frac;
}

/// Quantile (q in [0,1]) by linear interpolation between order
/// statistics. Copies its input; intended for report-time use. Callers
/// that own a scratch vector should use quantile_inplace directly.
[[nodiscard]] inline double quantile(std::vector<double> values, double q) {
  return quantile_inplace(values, q);
}

/// Mean absolute error between two equal-length vectors.
[[nodiscard]] inline double mean_absolute_error(const std::vector<double>& a,
                                                const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

/// Root-mean-square error between two equal-length vectors.
[[nodiscard]] inline double root_mean_square_error(const std::vector<double>& a,
                                                   const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace slices::telemetry
