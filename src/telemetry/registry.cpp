#include "telemetry/registry.hpp"

namespace slices::telemetry {

json::Value MonitorRegistry::snapshot() const {
  json::Object counters;
  for (const auto& [name, c] : counters_) counters.emplace(name, static_cast<double>(c.value()));

  json::Object gauges;
  for (const auto& [name, g] : gauges_) gauges.emplace(name, g.value());

  json::Object series;
  for (const auto& [name, s] : series_) {
    json::Object entry;
    entry.emplace("n", static_cast<double>(s->size()));
    if (!s->empty()) {
      entry.emplace("latest", s->back().value);
      entry.emplace("latest_t", s->back().time.as_seconds());
      if (const auto m = s->mean_last(16)) entry.emplace("mean_16", *m);
      if (const auto m = s->max_last(16)) entry.emplace("max_16", *m);
    }
    series.emplace(name, std::move(entry));
  }

  json::Object root;
  root.emplace("counters", std::move(counters));
  root.emplace("gauges", std::move(gauges));
  root.emplace("series", std::move(series));
  return root;
}

json::Value MonitorRegistry::series_window(std::string_view name, std::size_t n) const {
  json::Array out;
  const TimeSeries* s = find_series(name);
  if (s == nullptr) return out;
  const std::size_t count = n < s->size() ? n : s->size();
  for (std::size_t i = s->size() - count; i < s->size(); ++i) {
    json::Object point;
    point.emplace("t", s->at(i).time.as_seconds());
    point.emplace("v", s->at(i).value);
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace slices::telemetry
