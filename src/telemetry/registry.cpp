#include "telemetry/registry.hpp"

namespace slices::telemetry {

namespace {

/// First element of a sorted string-keyed map whose key starts with
/// `prefix`; iteration stays inside the prefix range.
template <typename Map>
typename Map::const_iterator prefix_begin(const Map& map, std::string_view prefix) {
  return prefix.empty() ? map.begin() : map.lower_bound(std::string(prefix));
}

bool in_prefix(std::string_view name, std::string_view prefix) {
  return prefix.empty() || name.starts_with(prefix);
}

}  // namespace

json::Value MonitorRegistry::snapshot(std::string_view prefix) const {
  json::Object counters;
  for (auto it = prefix_begin(counters_, prefix);
       it != counters_.end() && in_prefix(it->first, prefix); ++it) {
    counters.emplace(it->first, static_cast<double>(it->second.value()));
  }

  json::Object gauges;
  for (auto it = prefix_begin(gauges_, prefix);
       it != gauges_.end() && in_prefix(it->first, prefix); ++it) {
    gauges.emplace(it->first, it->second.value());
  }

  json::Object histograms;
  for (auto it = prefix_begin(histograms_, prefix);
       it != histograms_.end() && in_prefix(it->first, prefix); ++it) {
    const Histogram& h = it->second;
    json::Object entry;
    entry.emplace("count", static_cast<double>(h.count()));
    if (!h.empty()) {
      entry.emplace("max", static_cast<double>(h.maximum()));
      entry.emplace("min", static_cast<double>(h.minimum()));
      entry.emplace("p50", h.value_at_quantile(0.50));
      entry.emplace("p90", h.value_at_quantile(0.90));
      entry.emplace("p99", h.value_at_quantile(0.99));
      entry.emplace("p999", h.value_at_quantile(0.999));
      entry.emplace("sum", static_cast<double>(h.sum()));
    }
    histograms.emplace(it->first, std::move(entry));
  }

  json::Object series;
  for (auto it = prefix_begin(series_, prefix);
       it != series_.end() && in_prefix(it->first, prefix); ++it) {
    const TimeSeries& s = *it->second;
    json::Object entry;
    entry.emplace("n", static_cast<double>(s.size()));
    if (!s.empty()) {
      entry.emplace("latest", s.back().value);
      entry.emplace("latest_t", s.back().time.as_seconds());
      if (const auto m = s.mean_last(16)) entry.emplace("mean_16", *m);
      if (const auto m = s.max_last(16)) entry.emplace("max_16", *m);
    }
    series.emplace(it->first, std::move(entry));
  }

  json::Object root;
  root.emplace("counters", std::move(counters));
  root.emplace("gauges", std::move(gauges));
  root.emplace("histograms", std::move(histograms));
  root.emplace("series", std::move(series));
  return root;
}

void MonitorRegistry::metrics_body(std::string& out, std::string_view prefix) const {
  // Emits exactly the bytes json::serialize(snapshot(prefix)) would:
  // maps iterate in sorted key order, and json::Object sorts its keys
  // the same way. Within a series entry the keys emit in their sorted
  // order: latest, latest_t, max_16, mean_16, n.
  out.clear();
  out += "{\"counters\":{";
  bool first = true;
  for (auto it = prefix_begin(counters_, prefix);
       it != counters_.end() && in_prefix(it->first, prefix); ++it) {
    if (!first) out.push_back(',');
    first = false;
    json::append_escaped(out, it->first);
    out.push_back(':');
    json::append_number(out, static_cast<double>(it->second.value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (auto it = prefix_begin(gauges_, prefix);
       it != gauges_.end() && in_prefix(it->first, prefix); ++it) {
    if (!first) out.push_back(',');
    first = false;
    json::append_escaped(out, it->first);
    out.push_back(':');
    json::append_number(out, it->second.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (auto it = prefix_begin(histograms_, prefix);
       it != histograms_.end() && in_prefix(it->first, prefix); ++it) {
    const Histogram& h = it->second;
    if (!first) out.push_back(',');
    first = false;
    json::append_escaped(out, it->first);
    out.push_back(':');
    out += "{\"count\":";
    json::append_number(out, static_cast<double>(h.count()));
    if (!h.empty()) {
      out += ",\"max\":";
      json::append_number(out, static_cast<double>(h.maximum()));
      out += ",\"min\":";
      json::append_number(out, static_cast<double>(h.minimum()));
      out += ",\"p50\":";
      json::append_number(out, h.value_at_quantile(0.50));
      out += ",\"p90\":";
      json::append_number(out, h.value_at_quantile(0.90));
      out += ",\"p99\":";
      json::append_number(out, h.value_at_quantile(0.99));
      out += ",\"p999\":";
      json::append_number(out, h.value_at_quantile(0.999));
      out += ",\"sum\":";
      json::append_number(out, static_cast<double>(h.sum()));
    }
    out.push_back('}');
  }
  out += "},\"series\":{";
  first = true;
  for (auto it = prefix_begin(series_, prefix);
       it != series_.end() && in_prefix(it->first, prefix); ++it) {
    const TimeSeries& s = *it->second;
    if (!first) out.push_back(',');
    first = false;
    json::append_escaped(out, it->first);
    out.push_back(':');
    if (s.empty()) {
      out += "{\"n\":";
      json::append_number(out, static_cast<double>(s.size()));
      out.push_back('}');
      continue;
    }
    out += "{\"latest\":";
    json::append_number(out, s.back().value);
    out += ",\"latest_t\":";
    json::append_number(out, s.back().time.as_seconds());
    if (const auto m = s.max_last(16)) {
      out += ",\"max_16\":";
      json::append_number(out, *m);
    }
    if (const auto m = s.mean_last(16)) {
      out += ",\"mean_16\":";
      json::append_number(out, *m);
    }
    out += ",\"n\":";
    json::append_number(out, static_cast<double>(s.size()));
    out.push_back('}');
  }
  out += "}}";
}

json::Value MonitorRegistry::export_json(std::string_view prefix) const {
  json::Object counters;
  for (auto it = prefix_begin(counters_, prefix);
       it != counters_.end() && in_prefix(it->first, prefix); ++it) {
    counters.emplace(it->first, static_cast<double>(it->second.value()));
  }

  json::Object gauges;
  for (auto it = prefix_begin(gauges_, prefix);
       it != gauges_.end() && in_prefix(it->first, prefix); ++it) {
    gauges.emplace(it->first, it->second.value());
  }

  json::Object histograms;
  for (auto it = prefix_begin(histograms_, prefix);
       it != histograms_.end() && in_prefix(it->first, prefix); ++it) {
    histograms.emplace(it->first, it->second.to_json());
  }

  json::Object root;
  root.emplace("counters", std::move(counters));
  root.emplace("gauges", std::move(gauges));
  root.emplace("histograms", std::move(histograms));
  return root;
}

void MonitorRegistry::merge_from(const json::Value& doc) {
  if (const json::Value* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      if (!value.is_number()) continue;
      counter(name).increment(static_cast<std::uint64_t>(value.as_number()));
    }
  }
  if (const json::Value* gauges = doc.find("gauges"); gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->as_object()) {
      if (!value.is_number()) continue;
      gauge(name).add(value.as_number());
    }
  }
  if (const json::Value* histograms = doc.find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, value] : histograms->as_object()) {
      histogram(name).merge_json(value);
    }
  }
}

json::Value MonitorRegistry::series_window(std::string_view name, std::size_t n) const {
  json::Array out;
  const TimeSeries* s = find_series(name);
  if (s == nullptr) return out;
  const std::size_t count = n < s->size() ? n : s->size();
  for (std::size_t i = s->size() - count; i < s->size(); ++i) {
    json::Object point;
    point.emplace("t", s->at(i).time.as_seconds());
    point.emplace("v", s->at(i).value);
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace slices::telemetry
