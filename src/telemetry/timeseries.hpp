#pragma once
// Bounded time series of (time, value) samples — the storage behind all
// monitoring in the system. Controllers append utilization samples; the
// forecasting engine reads windows of history out of these buffers.

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace slices::telemetry {

/// A single monitoring sample.
struct Sample {
  SimTime time;
  double value = 0.0;

  friend constexpr bool operator==(const Sample&, const Sample&) noexcept = default;
};

/// Fixed-capacity ring buffer of samples ordered by append time.
/// Appends must be non-decreasing in time (monitoring is causal).
class TimeSeries {
 public:
  /// Capacity must be positive; old samples are evicted FIFO.
  explicit TimeSeries(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    buffer_.reserve(capacity);
  }

  /// Append a sample. Precondition: time >= time of last sample.
  void append(SimTime time, double value) {
    assert(empty() || time >= back().time);
    if (buffer_.size() < capacity_) {
      buffer_.push_back(Sample{time, value});
    } else {
      buffer_[head_] = Sample{time, value};
      head_ = (head_ + 1) % capacity_;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// i-th sample in chronological order, 0 = oldest retained.
  [[nodiscard]] const Sample& at(std::size_t i) const {
    assert(i < size());
    return buffer_[(head_ + i) % buffer_.size()];
  }

  /// Most recent sample. Precondition: !empty().
  [[nodiscard]] const Sample& back() const {
    assert(!empty());
    return at(size() - 1);
  }

  /// Most recent value, or `fallback` when no samples exist yet.
  [[nodiscard]] double latest_or(double fallback) const noexcept {
    return empty() ? fallback : back().value;
  }

  /// Copy out the most recent `n` values (oldest first). Fewer when the
  /// series is shorter.
  [[nodiscard]] std::vector<double> last_values(std::size_t n) const {
    const std::size_t count = n < size() ? n : size();
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = size() - count; i < size(); ++i) out.push_back(at(i).value);
    return out;
  }

  /// Copy out all samples with time >= since (oldest first).
  [[nodiscard]] std::vector<Sample> since(SimTime since_time) const {
    std::vector<Sample> out;
    for (std::size_t i = 0; i < size(); ++i) {
      if (at(i).time >= since_time) out.push_back(at(i));
    }
    return out;
  }

  /// Mean of the most recent `n` values; nullopt when empty.
  [[nodiscard]] std::optional<double> mean_last(std::size_t n) const {
    if (empty()) return std::nullopt;
    const std::vector<double> v = last_values(n);
    double sum = 0.0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  }

  /// Maximum of the most recent `n` values; nullopt when empty.
  [[nodiscard]] std::optional<double> max_last(std::size_t n) const {
    if (empty()) return std::nullopt;
    const std::vector<double> v = last_values(n);
    double m = v.front();
    for (const double x : v) m = x > m ? x : m;
    return m;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<Sample> buffer_;
};

}  // namespace slices::telemetry
