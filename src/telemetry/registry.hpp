#pragma once
// Monitor registry: named counters, gauges and time series owned by one
// component (a controller or the orchestrator). The registry snapshots
// to JSON, which is what each controller's /metrics REST endpoint
// returns to the orchestrator — the "real time monitoring" feed of the
// paper's closed loop (Fig. 1).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "json/value.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/timeseries.hpp"

namespace slices::telemetry {

/// Monotonic event counter.
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value (utilization, queue depth, residual capacity...).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Stable handle to a (series, gauge) pair resolved once by name.
/// Hot paths intern the dotted key at setup and observe through the
/// handle each epoch instead of rebuilding the string. The pointers
/// stay valid for the registry's lifetime: series are unique_ptr-held
/// and gauges live in std::map nodes, neither of which relocates.
class SeriesHandle {
 public:
  SeriesHandle() = default;

  /// Append to the series and mirror into the gauge, exactly like
  /// MonitorRegistry::observe(name, ...).
  void observe(SimTime time, double value) {
    series_->append(time, value);
    gauge_->set(value);
  }

  [[nodiscard]] bool valid() const noexcept { return series_ != nullptr; }

 private:
  friend class MonitorRegistry;
  SeriesHandle(TimeSeries* series, Gauge* gauge) noexcept : series_(series), gauge_(gauge) {}

  TimeSeries* series_ = nullptr;
  Gauge* gauge_ = nullptr;
};

/// Registry of named instruments. Names are dotted paths, e.g.
/// "cell.1.prb_used" or "slice.7.throughput_mbps".
class MonitorRegistry {
 public:
  explicit MonitorRegistry(std::size_t series_capacity = 4096)
      : series_capacity_(series_capacity) {}

  /// Get or create a counter.
  Counter& counter(const std::string& name) { return counters_[name]; }
  /// Get or create a gauge.
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Get or create a time series (capacity fixed at registry default).
  TimeSeries& series(const std::string& name) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      it = series_.emplace(name, std::make_unique<TimeSeries>(series_capacity_)).first;
    }
    return *it->second;
  }

  /// Get or create a latency histogram. Histograms serialize as
  /// {"count","max","min","p50","p90","p99","p999","sum"} under the
  /// top-level "histograms" key of snapshot()/metrics_body().
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const {
    const auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const TimeSeries* find_series(std::string_view name) const {
    const auto it = series_.find(std::string(name));
    return it == series_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const {
    const auto it = gauges_.find(std::string(name));
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Counter* find_counter(std::string_view name) const {
    const auto it = counters_.find(std::string(name));
    return it == counters_.end() ? nullptr : &it->second;
  }

  /// Record a sample into `name`'s series and mirror it into a gauge of
  /// the same name (latest value is often all a caller needs).
  void observe(const std::string& name, SimTime time, double value) {
    series(name).append(time, value);
    gauge(name).set(value);
  }

  /// Resolve (and create if needed) the series+gauge pair for `name`
  /// once; the returned handle observes without any map lookup.
  [[nodiscard]] SeriesHandle handle(const std::string& name) {
    return SeriesHandle{&series(name), &gauge(name)};
  }

  /// Snapshot every instrument whose name starts with `prefix` (all of
  /// them when empty) into a JSON object:
  /// { "counters": {...}, "gauges": {...}, "histograms": {...},
  ///   "series": { name: {"n": ..., "latest": ..., "mean_16": ...} } }
  [[nodiscard]] json::Value snapshot(std::string_view prefix = {}) const;

  /// Serialize snapshot(prefix) straight into `out` (cleared first,
  /// capacity reused) without building the JSON DOM — the per-epoch
  /// /metrics hot path. Byte-identical to json::serialize(snapshot(prefix)).
  void metrics_body(std::string& out, std::string_view prefix = {}) const;

  /// Snapshot one series' recent window as a JSON array of
  /// {"t": seconds, "v": value} pairs (most recent `n`).
  [[nodiscard]] json::Value series_window(std::string_view name, std::size_t n) const;

  /// Full-fidelity export for broker-side aggregation: counters and
  /// gauges by value, histograms via Histogram::to_json (raw buckets,
  /// not the lossy quantile summary of snapshot()). Series are
  /// deliberately excluded — they are per-process sample windows, not
  /// mergeable instruments.
  [[nodiscard]] json::Value export_json(std::string_view prefix = {}) const;

  /// Merge an export_json() document into this registry: counters add,
  /// gauges add (a merged gauge therefore reads as the *sum* across
  /// sources), histograms bucket-merge. Malformed entries are skipped.
  void merge_from(const json::Value& doc);

 private:
  std::size_t series_capacity_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace slices::telemetry
