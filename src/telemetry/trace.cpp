#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdlib>

namespace slices::telemetry::trace {

namespace {

constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << Tracer::kComponentShift) - 1;

/// Stable 24-bit key for a component name (FNV-1a folded). Empty names
/// (the root/control-plane component) key to 0 so broker span ids are
/// plain sequence numbers.
std::uint64_t component_key(std::string_view name) {
  if (name.empty()) return 0;
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  const std::uint64_t folded = (h ^ (h >> 24) ^ (h >> 48)) & 0xFFFFFFull;
  return folded == 0 ? 1 : folded;
}

void append_id_string(std::string& out, std::uint64_t id) {
  out.push_back('"');
  out += std::to_string(id);
  out.push_back('"');
}

}  // namespace

Tracer::Tracer() {
  auto root = std::make_unique<Component>();
  root->name = "";
  root->key = 0;
  components_.push_back(std::move(root));
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Lane& Tracer::local_lane() {
  thread_local Lane* lane = nullptr;
  // The cached pointer can outlive a clear() only logically, never
  // physically: lanes are unique_ptr-held and never erased, so a lane
  // pointer stays valid for the process lifetime.
  if (lane == nullptr) {
    auto owned = std::make_unique<Lane>();
    owned->ring.resize(lane_capacity_.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    owned->tid = static_cast<int>(lanes_.size());
    owned->comp = components_.front().get();
    lanes_.push_back(std::move(owned));
    lane = lanes_.back().get();
  }
  return *lane;
}

ComponentRef Tracer::intern_component(std::string_view name) {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i]->name == name) {
      return ComponentRef{static_cast<std::uint32_t>(i), components_[i].get()};
    }
  }
  auto owned = std::make_unique<Component>();
  owned->name = std::string(name);
  owned->key = component_key(name);
  components_.push_back(std::move(owned));
  return ComponentRef{static_cast<std::uint32_t>(components_.size() - 1),
                      components_.back().get()};
}

EntryToken Tracer::enter() noexcept {
  Lane& lane = local_lane();
  EntryToken token;
  token.depth = lane.depth++;
  token.component = lane.component;
  token.parent = lane.cur_parent;
  if (lane.cur_trace == 0) {
    lane.cur_trace = 1 + next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    token.new_trace = true;
  }
  token.trace = lane.cur_trace;
  const std::uint64_t seq =
      1 + lane.comp->next_seq.fetch_add(1, std::memory_order_relaxed);
  token.span = (lane.comp->key << kComponentShift) | (seq & kSeqMask);
  lane.cur_parent = token.span;
  return token;
}

void Tracer::exit(const EntryToken& token) noexcept {
  Lane& lane = local_lane();
  if (lane.depth > 0) --lane.depth;
  lane.cur_parent = token.parent;
  if (token.new_trace) lane.cur_trace = 0;
}

void Tracer::record(const char* name, const EntryToken& token, std::int64_t sim_us,
                    std::int64_t wall_start_ns, std::int64_t wall_dur_ns) noexcept {
  Lane& lane = local_lane();
  Span& slot = lane.ring[lane.next];
  if (lane.size == lane.ring.size()) {
    ++lane.dropped;  // overwriting the oldest span
  } else {
    ++lane.size;
  }
  slot.name = name;
  slot.sim_us = sim_us;
  slot.wall_start_ns = wall_start_ns;
  slot.wall_dur_ns = wall_dur_ns;
  slot.trace = token.trace;
  slot.span = token.span;
  slot.parent = token.parent;
  slot.seq = lane.seq++;
  slot.depth = token.depth;
  slot.component = token.component;
  lane.next = lane.next + 1 == lane.ring.size() ? 0 : lane.next + 1;
}

Context Tracer::current_context() noexcept {
  Lane& lane = local_lane();
  Context ctx;
  ctx.trace = lane.cur_trace;
  ctx.parent = lane.cur_parent;
  ctx.depth = lane.depth;
  ctx.sim_us = sim_now();
  return ctx;
}

Context Tracer::adopt_context(const Context& ctx) noexcept {
  Lane& lane = local_lane();
  Context saved;
  saved.trace = lane.cur_trace;
  saved.parent = lane.cur_parent;
  saved.depth = lane.depth;
  saved.sim_us = sim_now();
  lane.cur_trace = ctx.trace;
  lane.cur_parent = ctx.parent;
  lane.depth = ctx.depth;
  // Slave this process's sim clock to the caller's at the hop boundary;
  // in-process (shared tracer) this is a no-op store of the same value.
  set_sim_now(ctx.sim_us);
  return saved;
}

void Tracer::restore_context(const Context& saved) noexcept {
  Lane& lane = local_lane();
  lane.cur_trace = saved.trace;
  lane.cur_parent = saved.parent;
  lane.depth = saved.depth;
}

ComponentRef Tracer::swap_component(const ComponentRef& ref) noexcept {
  Lane& lane = local_lane();
  ComponentRef previous{lane.component, lane.comp};
  lane.component = ref.index;
  lane.comp = ref.ptr;
  return previous;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->size;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->dropped;
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  const std::size_t capacity = lane_capacity_.load(std::memory_order_relaxed);
  for (auto& lane : lanes_) {
    // A pending set_lane_capacity takes effect here: clear() is a
    // quiescent point and the retained spans are being dropped anyway.
    if (lane->ring.size() != capacity) {
      lane->ring.assign(capacity, Span{});
      lane->ring.shrink_to_fit();
    }
    lane->next = 0;
    lane->size = 0;
    lane->seq = 0;
    lane->dropped = 0;
    lane->cur_trace = 0;
    lane->cur_parent = 0;
  }
  // Clearing the trace restarts identity as well as the timeline: trace
  // ids and per-component span sequences restart so two cleared runs
  // produce byte-identical exports.
  for (auto& comp : components_) comp->next_seq.store(0, std::memory_order_relaxed);
  next_trace_id_.store(0, std::memory_order_relaxed);
  sim_now_us_.store(0, std::memory_order_relaxed);
}

json::Value Tracer::status_json() const {
  json::Object out;
  out.emplace("enabled", enabled());
  out.emplace("wall_clock", wall_clock());
  out.emplace("spans", static_cast<double>(span_count()));
  out.emplace("dropped", static_cast<double>(dropped()));
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    out.emplace("lanes", static_cast<double>(lanes_.size()));
    json::Array detail;
    for (const auto& lane : lanes_) {
      json::Object entry;
      entry.emplace("tid", static_cast<double>(lane->tid));
      entry.emplace("spans", static_cast<double>(lane->size));
      entry.emplace("dropped", static_cast<double>(lane->dropped));
      entry.emplace("capacity", static_cast<double>(lane->ring.size()));
      detail.push_back(std::move(entry));
    }
    out.emplace("lane_detail", std::move(detail));
  }
  return out;
}

void Tracer::export_chrome_json(std::string& out) const {
  // Chrome trace-event format: complete ("X") events with µs timestamps.
  // With wall clock off, ts is the span's sim clock and dur is 0 — the
  // bytes are then a pure function of the recorded spans.
  out.clear();
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::int64_t wall_base_ns = -1;
  for (const auto& lane : lanes_) {
    const std::size_t start = lane->size == lane->ring.size() ? lane->next : 0;
    for (std::size_t i = 0; i < lane->size; ++i) {
      const Span& span = lane->ring[(start + i) % lane->ring.size()];
      if (span.wall_start_ns >= 0 && (wall_base_ns < 0 || span.wall_start_ns < wall_base_ns)) {
        wall_base_ns = span.wall_start_ns;
      }
    }
  }
  bool first = true;
  for (const auto& lane : lanes_) {
    const std::size_t start = lane->size == lane->ring.size() ? lane->next : 0;
    for (std::size_t i = 0; i < lane->size; ++i) {
      const Span& span = lane->ring[(start + i) % lane->ring.size()];
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      json::append_escaped(out, span.name);
      out += ",\"cat\":\"slices\",\"ph\":\"X\",\"pid\":0,\"tid\":";
      json::append_number(out, static_cast<double>(lane->tid));
      out += ",\"ts\":";
      if (span.wall_start_ns >= 0) {
        json::append_number(out,
                            static_cast<double>(span.wall_start_ns - wall_base_ns) / 1000.0);
      } else {
        json::append_number(out, static_cast<double>(span.sim_us));
      }
      out += ",\"dur\":";
      json::append_number(out,
                          span.wall_dur_ns >= 0
                              ? static_cast<double>(span.wall_dur_ns) / 1000.0
                              : 0.0);
      out += ",\"args\":{\"depth\":";
      json::append_number(out, static_cast<double>(span.depth));
      out += ",\"parent\":";
      append_id_string(out, span.parent);
      out += ",\"seq\":";
      json::append_number(out, static_cast<double>(span.seq));
      out += ",\"sim_us\":";
      json::append_number(out, static_cast<double>(span.sim_us));
      out += ",\"span\":";
      append_id_string(out, span.span);
      out += ",\"trace\":";
      append_id_string(out, span.trace);
      out += "}}";
    }
  }
  out += "]}";
}

void Tracer::export_component_spans_json(std::uint32_t component, std::string& out) const {
  // Ids-as-strings span list for one component, ordered by span-id
  // sequence (the order enter() assigned them). The bytes are invariant
  // to which thread or process recorded each span, which is what lets
  // the broker diff a remote region export against an in-process run.
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    for (const auto& lane : lanes_) {
      const std::size_t start = lane->size == lane->ring.size() ? lane->next : 0;
      for (std::size_t i = 0; i < lane->size; ++i) {
        const Span& span = lane->ring[(start + i) % lane->ring.size()];
        if (span.component == component) spans.push_back(span);
      }
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return (a.span & kSeqMask) < (b.span & kSeqMask);
  });
  out.clear();
  out.push_back('[');
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    json::append_escaped(out, span.name);
    out += ",\"sim_us\":";
    json::append_number(out, static_cast<double>(span.sim_us));
    out += ",\"trace\":";
    append_id_string(out, span.trace);
    out += ",\"span\":";
    append_id_string(out, span.span);
    out += ",\"parent\":";
    append_id_string(out, span.parent);
    out += ",\"depth\":";
    json::append_number(out, static_cast<double>(span.depth));
    out.push_back('}');
  }
  out.push_back(']');
}

void encode_context(const Context& ctx, std::string& out) {
  out.clear();
  out += std::to_string(ctx.trace);
  out.push_back('-');
  out += std::to_string(ctx.parent);
  out.push_back('-');
  out += std::to_string(ctx.depth);
  out.push_back('-');
  out += std::to_string(ctx.sim_us);
}

Context parse_context(std::string_view value) {
  Context ctx;
  std::uint64_t fields[4] = {0, 0, 0, 0};
  std::size_t field = 0;
  std::size_t pos = 0;
  bool consumed = false;  // the last field must run to the end of the value
  while (field < 4) {
    const std::size_t end = value.find('-', pos);
    const std::string_view part =
        value.substr(pos, end == std::string_view::npos ? std::string_view::npos : end - pos);
    if (part.empty()) return Context{};
    std::uint64_t parsed = 0;
    for (const char c : part) {
      if (c < '0' || c > '9') return Context{};
      parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    fields[field++] = parsed;
    if (end == std::string_view::npos) {
      consumed = true;
      break;
    }
    pos = end + 1;
  }
  if (field != 4 || !consumed) return Context{};
  ctx.trace = fields[0];
  ctx.parent = fields[1];
  ctx.depth = static_cast<std::uint32_t>(fields[2]);
  ctx.sim_us = static_cast<std::int64_t>(fields[3]);
  return ctx;
}

}  // namespace slices::telemetry::trace
