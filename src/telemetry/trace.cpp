#include "telemetry/trace.hpp"

namespace slices::telemetry::trace {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Lane& Tracer::local_lane() {
  thread_local Lane* lane = nullptr;
  // The cached pointer can outlive a clear() only logically, never
  // physically: lanes are unique_ptr-held and never erased, so a lane
  // pointer stays valid for the process lifetime.
  if (lane == nullptr) {
    auto owned = std::make_unique<Lane>();
    owned->ring.resize(lane_capacity_.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    owned->tid = static_cast<int>(lanes_.size());
    lanes_.push_back(std::move(owned));
    lane = lanes_.back().get();
  }
  return *lane;
}

void Tracer::record(const char* name, std::int64_t sim_us, std::int64_t wall_start_ns,
                    std::int64_t wall_dur_ns, std::uint32_t depth) noexcept {
  Lane& lane = local_lane();
  Span& slot = lane.ring[lane.next];
  if (lane.size == lane.ring.size()) {
    ++lane.dropped;  // overwriting the oldest span
  } else {
    ++lane.size;
  }
  slot.name = name;
  slot.sim_us = sim_us;
  slot.wall_start_ns = wall_start_ns;
  slot.wall_dur_ns = wall_dur_ns;
  slot.seq = lane.seq++;
  slot.depth = depth;
  lane.next = lane.next + 1 == lane.ring.size() ? 0 : lane.next + 1;
}

std::uint32_t Tracer::enter_depth() noexcept {
  Lane& lane = local_lane();
  return lane.depth++;
}

void Tracer::exit_depth() noexcept {
  Lane& lane = local_lane();
  if (lane.depth > 0) --lane.depth;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->size;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->dropped;
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (auto& lane : lanes_) {
    lane->next = 0;
    lane->size = 0;
    lane->seq = 0;
    lane->dropped = 0;
  }
  // Clearing the trace restarts its timeline; otherwise spans recorded
  // before the next epoch would carry the previous run's sim clock.
  sim_now_us_.store(0, std::memory_order_relaxed);
}

json::Value Tracer::status_json() const {
  json::Object out;
  out.emplace("enabled", enabled());
  out.emplace("wall_clock", wall_clock());
  out.emplace("spans", static_cast<double>(span_count()));
  out.emplace("dropped", static_cast<double>(dropped()));
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    out.emplace("lanes", static_cast<double>(lanes_.size()));
  }
  return out;
}

void Tracer::export_chrome_json(std::string& out) const {
  // Chrome trace-event format: complete ("X") events with µs timestamps.
  // With wall clock off, ts is the span's sim clock and dur is 0 — the
  // bytes are then a pure function of the recorded spans.
  out.clear();
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::int64_t wall_base_ns = -1;
  for (const auto& lane : lanes_) {
    const std::size_t start = lane->size == lane->ring.size() ? lane->next : 0;
    for (std::size_t i = 0; i < lane->size; ++i) {
      const Span& span = lane->ring[(start + i) % lane->ring.size()];
      if (span.wall_start_ns >= 0 && (wall_base_ns < 0 || span.wall_start_ns < wall_base_ns)) {
        wall_base_ns = span.wall_start_ns;
      }
    }
  }
  bool first = true;
  for (const auto& lane : lanes_) {
    const std::size_t start = lane->size == lane->ring.size() ? lane->next : 0;
    for (std::size_t i = 0; i < lane->size; ++i) {
      const Span& span = lane->ring[(start + i) % lane->ring.size()];
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      json::append_escaped(out, span.name);
      out += ",\"cat\":\"slices\",\"ph\":\"X\",\"pid\":0,\"tid\":";
      json::append_number(out, static_cast<double>(lane->tid));
      out += ",\"ts\":";
      if (span.wall_start_ns >= 0) {
        json::append_number(out,
                            static_cast<double>(span.wall_start_ns - wall_base_ns) / 1000.0);
      } else {
        json::append_number(out, static_cast<double>(span.sim_us));
      }
      out += ",\"dur\":";
      json::append_number(out,
                          span.wall_dur_ns >= 0
                              ? static_cast<double>(span.wall_dur_ns) / 1000.0
                              : 0.0);
      out += ",\"args\":{\"depth\":";
      json::append_number(out, static_cast<double>(span.depth));
      out += ",\"seq\":";
      json::append_number(out, static_cast<double>(span.seq));
      out += ",\"sim_us\":";
      json::append_number(out, static_cast<double>(span.sim_us));
      out += "}}";
    }
  }
  out += "]}";
}

}  // namespace slices::telemetry::trace
