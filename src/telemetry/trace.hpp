#pragma once
// Fixed-capacity per-thread span tracer. `TRACE_SCOPE("orch.serve_epoch")`
// records an RAII span into the calling thread's ring buffer; full rings
// overwrite the oldest span and count the drop, so tracing never
// allocates or blocks on the hot path. Disabled cost is one relaxed
// atomic load and a branch.
//
// Timestamps are *sim-clock* microseconds (fed via set_sim_now from the
// epoch loop), so a trace dump is bit-identical across runs and across
// `epoch_threads` settings — determinism_test runs with tracing enabled.
// Wall-clock durations are opt-in (set_wall_clock) and reserved for
// benches and live deployments; they must never feed instruments that
// determinism_test compares. See docs/observability.md.
//
// Trace context. Every span carries a trace id, its own span id, and a
// parent span id, so a federation-wide request (broker placement → edge
// admission → domain install) reads as one tree even when the hops cross
// process boundaries. Identity is built to be *transport-invariant*:
//
//  - A span id is (component-key << 40) | per-component sequence, where
//    the component key is a stable 24-bit hash of the component *name*
//    ("" for the broker/control plane, "edge.r0"... for regions) and the
//    sequence restarts from 1 at clear(). Whether a region's spans are
//    recorded in the broker's process (in-process edges) or in a remote
//    edge process, the ids come out identical.
//  - Trace ids are allocated only when a *root* span (no live enclosing
//    span, no adopted context) opens. Handlers always run nested — under
//    the caller's scope in-process, under a ContextScope adopted from the
//    X-Slices-Trace header across sockets — so only the driving process
//    allocates, and the sequence matches the in-process run.
//  - Span ids exceed 2^53, so JSON exports serialize trace/span/parent
//    ids as decimal strings, never as numbers.
//
// Threading: each lane is written only by its owning thread.
// snapshot/export/clear walk every lane and must run at a quiescent
// point (no concurrent TRACE_SCOPEs), which holds everywhere we call
// them: REST handlers and benches run on the control thread while the
// pool is idle between epochs.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/value.hpp"

namespace slices::telemetry::trace {

/// One completed scope, recorded at exit.
struct Span {
  const char* name = nullptr;     // static string from TRACE_SCOPE
  std::int64_t sim_us = 0;        // sim clock at scope entry
  std::int64_t wall_start_ns = -1;  // wall-clock entry, -1 when wall off
  std::int64_t wall_dur_ns = -1;    // wall-clock duration, -1 when wall off
  std::uint64_t trace = 0;        // trace id (0 = recorded while untraced)
  std::uint64_t span = 0;         // this span's id
  std::uint64_t parent = 0;       // enclosing span id (0 = trace root)
  std::uint64_t seq = 0;          // per-lane sequence number
  std::uint32_t depth = 0;        // nesting depth at entry (0 = top level)
  std::uint32_t component = 0;    // intern index (0 = broker/control plane)
};

/// Cross-hop trace context: what X-Slices-Trace carries. `sim_us` slaves
/// the callee process's sim clock to the caller at the request boundary,
/// so remote spans timestamp exactly like their in-process twins.
struct Context {
  std::uint64_t trace = 0;
  std::uint64_t parent = 0;
  std::uint32_t depth = 0;
  std::int64_t sim_us = 0;

  [[nodiscard]] bool valid() const noexcept { return trace != 0; }
};

/// Name of the HTTP header carrying an encoded Context.
inline constexpr const char* kContextHeader = "X-Slices-Trace";

/// Stable resolved component (name interned once, sequence per clear()).
/// Held by pointer in thread lanes; never relocated or freed.
struct Component {
  std::string name;
  std::uint64_t key = 0;  // 24-bit stable hash of name; 0 for ""
  std::atomic<std::uint64_t> next_seq{0};
};

/// Pre-resolved component handle for ComponentScope (no lock per scope).
struct ComponentRef {
  std::uint32_t index = 0;
  Component* ptr = nullptr;
};

/// Bookkeeping captured when a scope opens; consumed at exit.
struct EntryToken {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint32_t depth = 0;
  std::uint32_t component = 0;
  bool new_trace = false;  // this entry allocated the trace id
};

/// Process-wide tracer: one ring-buffer lane per participating thread.
class Tracer {
 public:
  static constexpr std::size_t kDefaultLaneCapacity = 8192;
  /// Low bits of a span id hold the per-component sequence; high bits
  /// the component key.
  static constexpr std::uint32_t kComponentShift = 40;

  static Tracer& instance();

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opt into wall-clock span durations. Off by default: wall values are
  /// nondeterministic and must stay out of anything determinism_test
  /// compares.
  void set_wall_clock(bool on) noexcept { wall_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool wall_clock() const noexcept {
    return wall_.load(std::memory_order_relaxed);
  }

  /// Publish the sim clock (µs); called by the epoch loop before tracing.
  void set_sim_now(std::int64_t us) noexcept { sim_now_us_.store(us, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t sim_now() const noexcept {
    return sim_now_us_.load(std::memory_order_relaxed);
  }

  /// Ring capacity per lane. Applies immediately to lanes created after
  /// the call and to *existing* lanes at the next clear() — a live ring
  /// is only resized at a quiescent point, where its spans are being
  /// dropped anyway. status_json() reports each lane's actual capacity
  /// so a pending resize is visible.
  void set_lane_capacity(std::size_t spans) noexcept {
    lane_capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t lane_capacity() const noexcept {
    return lane_capacity_.load(std::memory_order_relaxed);
  }

  /// Intern `name` (idempotent) and return a handle for ComponentScope.
  /// Index 0 is the default "" component (broker / control plane).
  ComponentRef intern_component(std::string_view name);

  /// Open a scope on the calling thread: assigns the span id, pushes the
  /// parent chain, allocates a trace id at roots.
  EntryToken enter() noexcept;
  /// Close the scope opened by `token` (restores parent chain / depth).
  void exit(const EntryToken& token) noexcept;

  /// Record a completed span into the calling thread's lane.
  void record(const char* name, const EntryToken& token, std::int64_t sim_us,
              std::int64_t wall_start_ns, std::int64_t wall_dur_ns) noexcept;

  /// The calling thread's live context (for stamping outbound requests).
  /// trace == 0 when no span is open.
  [[nodiscard]] Context current_context() noexcept;

  /// Adopt a carried context on the calling thread; returns the state to
  /// restore. Used by ContextScope.
  [[nodiscard]] Context adopt_context(const Context& ctx) noexcept;
  void restore_context(const Context& saved) noexcept;

  /// Swap the calling thread's component; returns the previous ref.
  [[nodiscard]] ComponentRef swap_component(const ComponentRef& ref) noexcept;

  // -- quiescent-point operations ------------------------------------
  /// Total retained spans across lanes.
  [[nodiscard]] std::size_t span_count() const;
  /// Spans overwritten because a lane ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Drop all retained spans and restart identity: per-lane rings (and
  /// drop counters), trace-id allocation, and per-component sequences
  /// all reset, and a pending set_lane_capacity takes effect.
  void clear();
  /// {"enabled","wall_clock","spans","dropped","lanes","lane_detail":
  ///  [{"tid","spans","dropped","capacity"}]}.
  [[nodiscard]] json::Value status_json() const;
  /// Chrome trace-event JSON ("traceEvents" array of "X" phases),
  /// loadable in Perfetto / chrome://tracing. Lanes emit in registration
  /// order, spans oldest-first; with wall clock off, ts is the sim clock
  /// and the output is deterministic. Trace/span/parent ids appear in
  /// args as decimal strings.
  void export_chrome_json(std::string& out) const;
  /// JSON array of one component's spans across all lanes, sorted by the
  /// span-id sequence (assignment order). Bytes are transport-invariant:
  /// a region exported from its own process matches the same region
  /// exported from the broker process of an in-process run. Ids are
  /// decimal strings.
  void export_component_spans_json(std::uint32_t component, std::string& out) const;

 private:
  struct Lane {
    std::vector<Span> ring;
    std::size_t next = 0;       // write cursor
    std::size_t size = 0;       // retained spans (<= ring.size())
    std::uint64_t seq = 0;      // per-lane span sequence
    std::uint64_t dropped = 0;  // overwritten spans
    std::uint32_t depth = 0;    // live nesting depth
    std::uint64_t cur_trace = 0;   // live trace id (0 = none)
    std::uint64_t cur_parent = 0;  // innermost open span id
    std::uint32_t component = 0;   // active component index
    Component* comp = nullptr;     // resolved active component
    int tid = 0;                // stable lane id for the exporter
  };

  Tracer();
  Lane& local_lane();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> wall_{false};
  std::atomic<std::int64_t> sim_now_us_{0};
  std::atomic<std::size_t> lane_capacity_{kDefaultLaneCapacity};
  std::atomic<std::uint64_t> next_trace_id_{0};

  mutable std::mutex lanes_mutex_;  // guards lanes_ / components_ growth only
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Component>> components_;
};

/// Encode `ctx` as the X-Slices-Trace wire value:
/// "<trace>-<parent>-<depth>-<sim_us>" (decimal).
void encode_context(const Context& ctx, std::string& out);
/// Parse an X-Slices-Trace value; returns an invalid Context on garbage.
[[nodiscard]] Context parse_context(std::string_view value);

/// RAII scope: snapshots the sim clock (and wall clock when enabled) at
/// entry, records the span at exit. No-op while tracing is disabled.
class Scope {
 public:
  explicit Scope(const char* name) noexcept {
    Tracer& t = Tracer::instance();
    if (!t.enabled()) return;
    name_ = name;
    sim_us_ = t.sim_now();
    token_ = t.enter();
    if (t.wall_clock()) {
      wall_start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
    }
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (name_ == nullptr) return;
    Tracer& t = Tracer::instance();
    std::int64_t wall_dur_ns = -1;
    if (wall_start_ns_ >= 0) {
      const std::int64_t end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now().time_since_epoch())
                                      .count();
      wall_dur_ns = end_ns - wall_start_ns_;
    }
    t.record(name_, token_, sim_us_, wall_start_ns_, wall_dur_ns);
    t.exit(token_);
  }

 private:
  const char* name_ = nullptr;
  std::int64_t sim_us_ = 0;
  std::int64_t wall_start_ns_ = -1;
  EntryToken token_;
};

/// RAII adoption of a carried Context (HTTP server side). Spans opened
/// inside parent the caller's span exactly as if the call were a direct
/// in-process dispatch. No-op for invalid contexts or disabled tracing.
class ContextScope {
 public:
  explicit ContextScope(const Context& ctx) noexcept {
    Tracer& t = Tracer::instance();
    if (!t.enabled() || !ctx.valid()) return;
    saved_ = t.adopt_context(ctx);
    active_ = true;
  }

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

  ~ContextScope() {
    if (active_) Tracer::instance().restore_context(saved_);
  }

 private:
  Context saved_;
  bool active_ = false;
};

/// RAII component attribution: spans opened inside are tagged with (and
/// id-keyed by) `ref`'s component instead of the thread's current one.
class ComponentScope {
 public:
  explicit ComponentScope(const ComponentRef& ref) noexcept {
    Tracer& t = Tracer::instance();
    if (!t.enabled() || ref.ptr == nullptr) return;
    saved_ = t.swap_component(ref);
    active_ = true;
  }

  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

  ~ComponentScope() {
    if (active_) (void)Tracer::instance().swap_component(saved_);
  }

 private:
  ComponentRef saved_;
  bool active_ = false;
};

// Convenience forwarders onto the singleton.
inline void set_enabled(bool on) noexcept { Tracer::instance().set_enabled(on); }
[[nodiscard]] inline bool enabled() noexcept { return Tracer::instance().enabled(); }
inline void set_wall_clock(bool on) noexcept { Tracer::instance().set_wall_clock(on); }
[[nodiscard]] inline bool wall_clock() noexcept { return Tracer::instance().wall_clock(); }
inline void set_sim_now(std::int64_t us) noexcept { Tracer::instance().set_sim_now(us); }
inline void clear() { Tracer::instance().clear(); }

}  // namespace slices::telemetry::trace

#define SLICES_TRACE_CONCAT_INNER(a, b) a##b
#define SLICES_TRACE_CONCAT(a, b) SLICES_TRACE_CONCAT_INNER(a, b)
/// Record the enclosing scope as a span named `name` (a string literal).
#define TRACE_SCOPE(name) \
  ::slices::telemetry::trace::Scope SLICES_TRACE_CONCAT(slices_trace_scope_, __COUNTER__) { name }
