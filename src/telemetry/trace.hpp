#pragma once
// Fixed-capacity per-thread span tracer. `TRACE_SCOPE("orch.serve_epoch")`
// records an RAII span into the calling thread's ring buffer; full rings
// overwrite the oldest span and count the drop, so tracing never
// allocates or blocks on the hot path. Disabled cost is one relaxed
// atomic load and a branch.
//
// Timestamps are *sim-clock* microseconds (fed via set_sim_now from the
// epoch loop), so a trace dump is bit-identical across runs and across
// `epoch_threads` settings — determinism_test runs with tracing enabled.
// Wall-clock durations are opt-in (set_wall_clock) and reserved for
// benches and live deployments; they must never feed instruments that
// determinism_test compares. See docs/observability.md.
//
// Threading: each lane is written only by its owning thread.
// snapshot/export/clear walk every lane and must run at a quiescent
// point (no concurrent TRACE_SCOPEs), which holds everywhere we call
// them: REST handlers and benches run on the control thread while the
// pool is idle between epochs.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json/value.hpp"

namespace slices::telemetry::trace {

/// One completed scope, recorded at exit.
struct Span {
  const char* name = nullptr;     // static string from TRACE_SCOPE
  std::int64_t sim_us = 0;        // sim clock at scope entry
  std::int64_t wall_start_ns = -1;  // wall-clock entry, -1 when wall off
  std::int64_t wall_dur_ns = -1;    // wall-clock duration, -1 when wall off
  std::uint64_t seq = 0;          // per-lane sequence number
  std::uint32_t depth = 0;        // nesting depth at entry (0 = top level)
};

/// Process-wide tracer: one ring-buffer lane per participating thread.
class Tracer {
 public:
  static constexpr std::size_t kDefaultLaneCapacity = 8192;

  static Tracer& instance();

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opt into wall-clock span durations. Off by default: wall values are
  /// nondeterministic and must stay out of anything determinism_test
  /// compares.
  void set_wall_clock(bool on) noexcept { wall_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool wall_clock() const noexcept {
    return wall_.load(std::memory_order_relaxed);
  }

  /// Publish the sim clock (µs); called by the epoch loop before tracing.
  void set_sim_now(std::int64_t us) noexcept { sim_now_us_.store(us, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t sim_now() const noexcept {
    return sim_now_us_.load(std::memory_order_relaxed);
  }

  /// Ring capacity for lanes created *after* this call (existing lanes
  /// keep theirs); configure once at startup.
  void set_lane_capacity(std::size_t spans) noexcept {
    lane_capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
  }

  /// Record a completed span into the calling thread's lane.
  void record(const char* name, std::int64_t sim_us, std::int64_t wall_start_ns,
              std::int64_t wall_dur_ns, std::uint32_t depth) noexcept;

  /// Nesting depth bookkeeping for the calling thread.
  std::uint32_t enter_depth() noexcept;
  void exit_depth() noexcept;

  // -- quiescent-point operations ------------------------------------
  /// Total retained spans across lanes.
  [[nodiscard]] std::size_t span_count() const;
  /// Spans overwritten because a lane ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Drop all retained spans (rings keep their capacity).
  void clear();
  /// {"enabled","wall_clock","spans","dropped","lanes"}.
  [[nodiscard]] json::Value status_json() const;
  /// Chrome trace-event JSON ("traceEvents" array of "X" phases),
  /// loadable in Perfetto / chrome://tracing. Lanes emit in registration
  /// order, spans oldest-first; with wall clock off, ts is the sim clock
  /// and the output is deterministic.
  void export_chrome_json(std::string& out) const;

 private:
  struct Lane {
    std::vector<Span> ring;
    std::size_t next = 0;       // write cursor
    std::size_t size = 0;       // retained spans (<= ring.size())
    std::uint64_t seq = 0;      // per-lane span sequence
    std::uint64_t dropped = 0;  // overwritten spans
    std::uint32_t depth = 0;    // live nesting depth
    int tid = 0;                // stable lane id for the exporter
  };

  Lane& local_lane();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> wall_{false};
  std::atomic<std::int64_t> sim_now_us_{0};
  std::atomic<std::size_t> lane_capacity_{kDefaultLaneCapacity};

  mutable std::mutex lanes_mutex_;  // guards lanes_ growth only
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// RAII scope: snapshots the sim clock (and wall clock when enabled) at
/// entry, records the span at exit. No-op while tracing is disabled.
class Scope {
 public:
  explicit Scope(const char* name) noexcept {
    Tracer& t = Tracer::instance();
    if (!t.enabled()) return;
    name_ = name;
    sim_us_ = t.sim_now();
    depth_ = t.enter_depth();
    if (t.wall_clock()) {
      wall_start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
    }
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (name_ == nullptr) return;
    Tracer& t = Tracer::instance();
    std::int64_t wall_dur_ns = -1;
    if (wall_start_ns_ >= 0) {
      const std::int64_t end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now().time_since_epoch())
                                      .count();
      wall_dur_ns = end_ns - wall_start_ns_;
    }
    t.record(name_, sim_us_, wall_start_ns_, wall_dur_ns, depth_);
    t.exit_depth();
  }

 private:
  const char* name_ = nullptr;
  std::int64_t sim_us_ = 0;
  std::int64_t wall_start_ns_ = -1;
  std::uint32_t depth_ = 0;
};

// Convenience forwarders onto the singleton.
inline void set_enabled(bool on) noexcept { Tracer::instance().set_enabled(on); }
[[nodiscard]] inline bool enabled() noexcept { return Tracer::instance().enabled(); }
inline void set_wall_clock(bool on) noexcept { Tracer::instance().set_wall_clock(on); }
[[nodiscard]] inline bool wall_clock() noexcept { return Tracer::instance().wall_clock(); }
inline void set_sim_now(std::int64_t us) noexcept { Tracer::instance().set_sim_now(us); }
inline void clear() { Tracer::instance().clear(); }

}  // namespace slices::telemetry::trace

#define SLICES_TRACE_CONCAT_INNER(a, b) a##b
#define SLICES_TRACE_CONCAT(a, b) SLICES_TRACE_CONCAT_INNER(a, b)
/// Record the enclosing scope as a span named `name` (a string literal).
#define TRACE_SCOPE(name) \
  ::slices::telemetry::trace::Scope SLICES_TRACE_CONCAT(slices_trace_scope_, __COUNTER__) { name }
