#pragma once
// CSV export of telemetry — the dashboard's "download the series"
// button. Series are exported wide (one time column, one column per
// series, rows aligned by exact timestamp) or long (name,t,v records).

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/registry.hpp"

namespace slices::telemetry {

/// Escape a CSV field (quotes + separators per RFC 4180).
[[nodiscard]] inline std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

/// Long format: `series,t_seconds,value` — one row per retained sample
/// of every series whose name matches `prefix` (empty = all).
[[nodiscard]] inline std::string export_long_csv(const MonitorRegistry& registry,
                                                 const std::vector<std::string>& names) {
  std::ostringstream out;
  out << "series,t_seconds,value\n";
  for (const std::string& name : names) {
    const TimeSeries* series = registry.find_series(name);
    if (series == nullptr) continue;
    for (std::size_t i = 0; i < series->size(); ++i) {
      out << csv_escape(name) << ',' << series->at(i).time.as_seconds() << ','
          << series->at(i).value << '\n';
    }
  }
  return out.str();
}

/// Wide format: `t_seconds,<name1>,<name2>,...` with one row per
/// distinct timestamp; series without a sample at a timestamp leave the
/// cell empty. Suited to series sampled on the same epoch grid.
[[nodiscard]] inline std::string export_wide_csv(const MonitorRegistry& registry,
                                                 const std::vector<std::string>& names) {
  // Collect the union of timestamps.
  std::set<std::int64_t> timestamps;
  std::map<std::string, std::map<std::int64_t, double>> table;
  for (const std::string& name : names) {
    const TimeSeries* series = registry.find_series(name);
    if (series == nullptr) continue;
    auto& column = table[name];
    for (std::size_t i = 0; i < series->size(); ++i) {
      const std::int64_t t = series->at(i).time.as_micros();
      timestamps.insert(t);
      column[t] = series->at(i).value;
    }
  }

  std::ostringstream out;
  out << "t_seconds";
  for (const std::string& name : names) out << ',' << csv_escape(name);
  out << '\n';
  for (const std::int64_t t : timestamps) {
    out << (static_cast<double>(t) / 1e6);
    for (const std::string& name : names) {
      out << ',';
      const auto column = table.find(name);
      if (column == table.end()) continue;
      const auto cell = column->second.find(t);
      if (cell != column->second.end()) out << cell->second;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace slices::telemetry
