#pragma once
// Mergeable log-linear latency histogram (HdrHistogram-style bucketing).
// Values are non-negative integers (microseconds in practice). Each
// power-of-two octave is split into SubBuckets linear sub-buckets, so
// the relative quantile error is bounded by 1/SubBuckets (6.25% at the
// default 16) while the bucket count stays logarithmic in the range.
//
// Buckets are plain additive counts, so merging histograms — across
// epochs, threads, or components — is an elementwise sum and is
// associative; quantiles computed from a merge equal quantiles over the
// concatenated samples up to bucket resolution.
//
// Determinism rule: histograms registered in a MonitorRegistry are
// serialized into /metrics and compared bit-for-bit by determinism_test,
// so only sim-derived or otherwise reproducible values may be recorded
// there by default. Wall-clock observations must stay behind
// trace::wall_clock() (see docs/observability.md).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slices::telemetry {

/// Log-linear histogram over uint64 values with p50/p90/p99/p999 export.
class Histogram {
 public:
  /// Sub-buckets per octave; power of two. Relative error <= 1/SubBuckets.
  static constexpr std::uint64_t kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;

  void record(std::uint64_t value) noexcept {
    const std::size_t i = bucket_index(value);
    if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
    ++buckets_[i];
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : (value < min_ ? value : min_);
    max_ = count_ == 1 ? value : (value > max_ ? value : max_);
  }

  /// Elementwise-add `other` into this histogram.
  void merge(const Histogram& other) {
    if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    if (other.count_ > 0) {
      min_ = count_ == 0 ? other.min_ : (other.min_ < min_ ? other.min_ : min_);
      max_ = count_ == 0 ? other.max_ : (other.max_ > max_ ? other.max_ : max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() noexcept {
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t minimum() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t maximum() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Quantile (q in [0,1]) with linear interpolation inside the bucket.
  /// Clamped to the observed [min, max] so tails never report values
  /// outside what was actually recorded.
  [[nodiscard]] double value_at_quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    const double rank = q * static_cast<double>(count_ - 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += buckets_[i];
      if (static_cast<double>(cumulative) <= rank) continue;
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i));
      const double frac = (rank - before) / static_cast<double>(buckets_[i]);
      const double v = lo + frac * (hi - lo);
      const double lo_clamp = static_cast<double>(min_);
      const double hi_clamp = static_cast<double>(max_);
      return v < lo_clamp ? lo_clamp : (v > hi_clamp ? hi_clamp : v);
    }
    return static_cast<double>(max_);
  }

  /// Bucket index for `value`: identity below kSubBuckets, then
  /// (octave, sub-bucket) with kSubBuckets linear steps per octave.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const auto exponent = static_cast<std::uint64_t>(std::bit_width(value) - 1);
    const std::uint64_t shift = exponent - kSubBucketBits;
    return static_cast<std::size_t>((shift + 1) * kSubBuckets + ((value >> shift) - kSubBuckets));
  }

  /// Smallest value mapping to bucket `i` (inverse of bucket_index).
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::uint64_t octave = i / kSubBuckets;  // >= 1
    const std::uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub) << (octave - 1);
  }

  /// Largest value mapping to bucket `i`.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return bucket_lower(i + 1) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace slices::telemetry
