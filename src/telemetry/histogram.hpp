#pragma once
// Mergeable log-linear latency histogram (HdrHistogram-style bucketing).
// Values are non-negative integers (microseconds in practice). Each
// power-of-two octave is split into SubBuckets linear sub-buckets, so
// the relative quantile error is bounded by 1/SubBuckets (6.25% at the
// default 16) while the bucket count stays logarithmic in the range.
//
// Buckets are plain additive counts, so merging histograms — across
// epochs, threads, or components — is an elementwise sum and is
// associative; quantiles computed from a merge equal quantiles over the
// concatenated samples up to bucket resolution.
//
// Determinism rule: histograms registered in a MonitorRegistry are
// serialized into /metrics and compared bit-for-bit by determinism_test,
// so only sim-derived or otherwise reproducible values may be recorded
// there by default. Wall-clock observations must stay behind
// trace::wall_clock() (see docs/observability.md).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "json/value.hpp"

namespace slices::telemetry {

/// Log-linear histogram over uint64 values with p50/p90/p99/p999 export.
class Histogram {
 public:
  /// Sub-buckets per octave; power of two. Relative error <= 1/SubBuckets.
  static constexpr std::uint64_t kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;

  void record(std::uint64_t value) noexcept {
    const std::size_t i = bucket_index(value);
    if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
    ++buckets_[i];
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : (value < min_ ? value : min_);
    max_ = count_ == 1 ? value : (value > max_ ? value : max_);
  }

  /// Elementwise-add `other` into this histogram.
  void merge(const Histogram& other) {
    if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    if (other.count_ > 0) {
      min_ = count_ == 0 ? other.min_ : (other.min_ < min_ ? other.min_ : min_);
      max_ = count_ == 0 ? other.max_ : (other.max_ > max_ ? other.max_ : max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  /// Full-fidelity export for cross-process merging: the scalar state
  /// plus the non-zero buckets as [index, count] pairs. Unlike the
  /// quantile summary in MonitorRegistry snapshots, this loses nothing:
  /// merge_json(to_json()) into an empty histogram reproduces the
  /// original bit for bit.
  [[nodiscard]] json::Value to_json() const {
    json::Object out;
    json::Array buckets;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      json::Array pair;
      pair.emplace_back(static_cast<double>(i));
      pair.emplace_back(static_cast<double>(buckets_[i]));
      buckets.push_back(std::move(pair));
    }
    out.emplace("buckets", std::move(buckets));
    out.emplace("count", static_cast<double>(count_));
    out.emplace("max", static_cast<double>(max_));
    out.emplace("min", static_cast<double>(min_));
    out.emplace("sum", static_cast<double>(sum_));
    return out;
  }

  /// Elementwise-add a to_json() document into this histogram, exactly
  /// like merge(). Malformed documents are ignored.
  void merge_json(const json::Value& doc) {
    if (!doc.is_object()) return;
    const json::Value* count = doc.find("count");
    const json::Value* sum = doc.find("sum");
    const json::Value* min = doc.find("min");
    const json::Value* max = doc.find("max");
    const json::Value* buckets = doc.find("buckets");
    if (count == nullptr || !count->is_number() || sum == nullptr || !sum->is_number() ||
        min == nullptr || !min->is_number() || max == nullptr || !max->is_number() ||
        buckets == nullptr || !buckets->is_array()) {
      return;
    }
    const auto other_count = static_cast<std::uint64_t>(count->as_number());
    if (other_count == 0) return;
    const auto other_min = static_cast<std::uint64_t>(min->as_number());
    const auto other_max = static_cast<std::uint64_t>(max->as_number());
    for (const json::Value& pair : buckets->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2) continue;
      const json::Value& index = pair.as_array()[0];
      const json::Value& bucket_count = pair.as_array()[1];
      if (!index.is_number() || !bucket_count.is_number()) continue;
      const auto i = static_cast<std::size_t>(index.as_number());
      if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
      buckets_[i] += static_cast<std::uint64_t>(bucket_count.as_number());
    }
    min_ = count_ == 0 ? other_min : (other_min < min_ ? other_min : min_);
    max_ = count_ == 0 ? other_max : (other_max > max_ ? other_max : max_);
    count_ += other_count;
    sum_ += static_cast<std::uint64_t>(sum->as_number());
  }

  void reset() noexcept {
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t minimum() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t maximum() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Quantile (q in [0,1]) with linear interpolation inside the bucket.
  /// Clamped to the observed [min, max] so tails never report values
  /// outside what was actually recorded.
  [[nodiscard]] double value_at_quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    const double rank = q * static_cast<double>(count_ - 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += buckets_[i];
      if (static_cast<double>(cumulative) <= rank) continue;
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i));
      const double frac = (rank - before) / static_cast<double>(buckets_[i]);
      const double v = lo + frac * (hi - lo);
      const double lo_clamp = static_cast<double>(min_);
      const double hi_clamp = static_cast<double>(max_);
      return v < lo_clamp ? lo_clamp : (v > hi_clamp ? hi_clamp : v);
    }
    return static_cast<double>(max_);
  }

  /// Bucket index for `value`: identity below kSubBuckets, then
  /// (octave, sub-bucket) with kSubBuckets linear steps per octave.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const auto exponent = static_cast<std::uint64_t>(std::bit_width(value) - 1);
    const std::uint64_t shift = exponent - kSubBucketBits;
    return static_cast<std::size_t>((shift + 1) * kSubBuckets + ((value >> shift) - kSubBuckets));
  }

  /// Smallest value mapping to bucket `i` (inverse of bucket_index).
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::uint64_t octave = i / kSubBuckets;  // >= 1
    const std::uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub) << (octave - 1);
  }

  /// Largest value mapping to bucket `i`.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return bucket_lower(i + 1) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace slices::telemetry
