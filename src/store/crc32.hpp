#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// journal records and snapshot payloads. Table-driven, no external
// dependency; the table is built once on first use.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace slices::store {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of a byte range.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view s) noexcept {
  return crc32(s.data(), s.size());
}

}  // namespace slices::store
