#include "store/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "store/crc32.hpp"

namespace slices::store {

namespace {

void put_u32le(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v & 0xFFu);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFFu);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFFu);
}

std::uint32_t get_u32le(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

Result<void> write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(Errc::internal, std::string("journal write: ") + std::strerror(errno));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

Result<JournalScan> scan_journal(const std::string& path) {
  JournalScan scan;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return scan;  // fresh deployment: empty journal
    return make_error(Errc::internal, "cannot open journal '" + path + "': " + std::strerror(errno));
  }

  struct stat st {};
  if (::fstat(fd, &st) == 0) scan.file_bytes = static_cast<std::uint64_t>(st.st_size);

  std::string payload;
  unsigned char header[8];
  for (;;) {
    const ssize_t got = ::read(fd, header, sizeof header);
    if (got == 0) break;  // clean end
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return make_error(Errc::internal, "journal read: " + std::string(std::strerror(errno)));
    }
    if (got < static_cast<ssize_t>(sizeof header)) {
      scan.corruption = "truncated record header";
      break;
    }
    const std::uint32_t len = get_u32le(header);
    const std::uint32_t crc = get_u32le(header + 4);
    if (len == 0 || len > kMaxRecordBytes) {
      scan.corruption = "implausible record length " + std::to_string(len);
      break;
    }
    payload.resize(len);
    std::size_t filled = 0;
    bool short_read = false;
    while (filled < len) {
      const ssize_t n = ::read(fd, payload.data() + filled, len - filled);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        short_read = true;
        break;
      }
      filled += static_cast<std::size_t>(n);
    }
    if (short_read) {
      scan.corruption = "truncated record payload";
      break;
    }
    if (crc32(payload) != crc) {
      scan.corruption = "CRC mismatch";
      break;
    }
    Result<json::Value> doc = json::parse(payload);
    if (!doc.ok()) {
      scan.corruption = "payload is not valid JSON: " + doc.error().message;
      break;
    }
    scan.records.push_back(std::move(doc).value());
    scan.valid_bytes += sizeof header + len;
  }
  ::close(fd);
  scan.truncated_tail = scan.valid_bytes < scan.file_bytes;
  return scan;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<void> Journal::open(const std::string& path, std::uint64_t valid_bytes) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    return make_error(Errc::internal, "cannot open journal '" + path + "': " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    return make_error(Errc::internal, "cannot truncate journal torn tail: " + why);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const std::string why = std::strerror(errno);
    close();
    return make_error(Errc::internal, "cannot seek journal: " + why);
  }
  path_ = path;
  bytes_ = valid_bytes;
  return {};
}

Result<std::uint64_t> Journal::append(const std::string& payload, bool fsync) {
  if (fd_ < 0) return make_error(Errc::unavailable, "journal is not open");
  if (payload.empty() || payload.size() > kMaxRecordBytes) {
    return make_error(Errc::invalid_argument, "journal payload size out of range");
  }
  // One buffer, one write(): a torn write can only leave a partial tail
  // record, which the scanner drops — never an interleaved mess.
  std::string frame;
  frame.resize(8 + payload.size());
  put_u32le(reinterpret_cast<unsigned char*>(frame.data()),
            static_cast<std::uint32_t>(payload.size()));
  put_u32le(reinterpret_cast<unsigned char*>(frame.data()) + 4, crc32(payload));
  std::memcpy(frame.data() + 8, payload.data(), payload.size());
  if (Result<void> w = write_all(fd_, frame.data(), frame.size()); !w.ok()) return w.error();
  bytes_ += frame.size();
  if (fsync) {
    const auto start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
      return make_error(Errc::internal, "journal fsync: " + std::string(std::strerror(errno)));
    }
    last_fsync_us_ = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    ++fsyncs_;
  }
  return static_cast<std::uint64_t>(frame.size());
}

Result<void> Journal::reset() {
  if (fd_ < 0) return make_error(Errc::unavailable, "journal is not open");
  if (::ftruncate(fd_, 0) != 0) {
    return make_error(Errc::internal, "journal reset: " + std::string(std::strerror(errno)));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return make_error(Errc::internal, "journal seek: " + std::string(std::strerror(errno)));
  }
  bytes_ = 0;
  return {};
}

}  // namespace slices::store
