#pragma once
// Full-state snapshots.
//
// A snapshot is one CRC-framed JSON document ({"seq": N, "state": ...})
// written atomically: temp file + fsync + rename, so a crash mid-write
// never damages an existing snapshot. Files are named
// "snapshot-<seq>.snap"; recovery picks the highest-seq file whose
// checksum verifies and falls back to older ones when the newest is
// damaged. The "seq" is the journal sequence number of the last event
// folded into the state — replay skips journal records at or below it,
// which also makes a snapshot newer than the whole journal harmless.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"

namespace slices::store {

/// A successfully loaded snapshot.
struct LoadedSnapshot {
  std::uint64_t seq = 0;      ///< last journal seq folded into `state`
  json::Value state;          ///< opaque application state document
  std::uint64_t bytes = 0;    ///< file size
  std::string path;
};

/// Write `state` as snapshot `seq` into `directory`. Returns the final
/// file path.
[[nodiscard]] Result<std::string> write_snapshot(const std::string& directory,
                                                 std::uint64_t seq, const json::Value& state,
                                                 bool fsync);

/// Load the newest valid snapshot in `directory` (nullopt when none
/// exists or every candidate is damaged — recovery then replays the
/// journal from scratch). `rejected` (optional) collects the paths of
/// damaged candidates that were skipped.
[[nodiscard]] Result<std::optional<LoadedSnapshot>> load_latest_snapshot(
    const std::string& directory, std::vector<std::string>* rejected = nullptr);

/// Delete every snapshot file except the newest valid one. Returns the
/// number of bytes reclaimed.
[[nodiscard]] Result<std::uint64_t> prune_snapshots(const std::string& directory);

}  // namespace slices::store
