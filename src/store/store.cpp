#include "store/store.hpp"

#include <chrono>
#include <filesystem>
#include <optional>

#include "telemetry/trace.hpp"

namespace slices::store {

namespace fs = std::filesystem;

StateStore::StateStore(StoreConfig config, telemetry::MonitorRegistry* registry)
    : config_(std::move(config)), registry_(registry) {
  // Interned eagerly so the instrument set (and /metrics bytes) never
  // depends on whether an append happened; only filled when wall-clock
  // profiling is on (docs/observability.md).
  if (registry_ != nullptr) append_hist_ = &registry_->histogram("store.append_us");
}

Result<void> StateStore::open() {
  if (config_.directory.empty()) {
    return make_error(Errc::invalid_argument, "store directory not configured");
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec) {
    return make_error(Errc::internal,
                      "cannot create store directory '" + config_.directory +
                          "': " + ec.message());
  }

  recovered_ = RecoveredInput{};
  Result<std::optional<LoadedSnapshot>> snapshot =
      load_latest_snapshot(config_.directory, &recovered_.rejected_snapshots);
  if (!snapshot.ok()) return snapshot.error();
  if (snapshot.value().has_value()) {
    recovered_.has_snapshot = true;
    recovered_.snapshot_seq = snapshot.value()->seq;
    recovered_.snapshot_state = std::move(snapshot.value()->state);
    last_snapshot_seq_ = snapshot.value()->seq;
    last_snapshot_bytes_ = snapshot.value()->bytes;
  }

  const std::string journal_path = (fs::path(config_.directory) / "journal.wal").string();
  Result<JournalScan> scan = scan_journal(journal_path);
  if (!scan.ok()) return scan.error();
  recovered_.journal_truncated = scan.value().truncated_tail;
  recovered_.journal_corruption = scan.value().corruption;

  // Keep only events strictly after the snapshot (a snapshot newer than
  // the whole journal simply skips everything). Events without a valid
  // "seq" cannot be ordered against the snapshot — treat them as
  // corruption-adjacent and drop them too.
  std::uint64_t max_seq = recovered_.snapshot_seq;
  journal_records_ = scan.value().records.size();
  for (json::Value& event : scan.value().records) {
    const json::Value* seq_field = event.find("seq");
    if (seq_field == nullptr || !seq_field->is_number()) {
      ++recovered_.skipped_events;
      continue;
    }
    const auto seq = static_cast<std::uint64_t>(seq_field->as_number());
    if (seq > max_seq) max_seq = seq;
    if (seq <= recovered_.snapshot_seq) {
      ++recovered_.skipped_events;
      continue;
    }
    recovered_.events.push_back(std::move(event));
  }
  next_seq_ = max_seq + 1;
  records_since_snapshot_ = recovered_.events.size();

  if (Result<void> opened = journal_.open(journal_path, scan.value().valid_bytes);
      !opened.ok()) {
    return opened;
  }
  publish_metrics();
  return {};
}

Result<std::uint64_t> StateStore::append(json::Object event) {
  TRACE_SCOPE("store.append");
  if (!journal_.is_open()) return make_error(Errc::unavailable, "store is not open");
  const auto wall_start = append_hist_ != nullptr && telemetry::trace::wall_clock()
                              ? std::optional{std::chrono::steady_clock::now()}
                              : std::nullopt;
  const std::uint64_t seq = next_seq_;
  event.insert_or_assign("seq", json::Value(static_cast<double>(seq)));
  const std::string payload = json::serialize(json::Value(std::move(event)));
  Result<std::uint64_t> written = journal_.append(payload, config_.fsync_on_append);
  if (!written.ok()) return written.error();
  ++next_seq_;
  ++journal_records_;
  ++records_since_snapshot_;
  ++total_appended_;
  total_bytes_appended_ += written.value();
  if (wall_start.has_value()) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - *wall_start)
                        .count();
    append_hist_->record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
  }
  publish_metrics();
  return seq;
}

Result<std::uint64_t> StateStore::write_snapshot(const json::Value& state) {
  TRACE_SCOPE("store.snapshot");
  if (!journal_.is_open()) return make_error(Errc::unavailable, "store is not open");
  const std::uint64_t seq = last_seq();
  Result<std::string> path =
      slices::store::write_snapshot(config_.directory, seq, state, config_.fsync_snapshots);
  if (!path.ok()) return path.error();

  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path.value(), ec);
  last_snapshot_bytes_ = ec ? 0 : static_cast<std::uint64_t>(size);
  last_snapshot_seq_ = seq;
  ++snapshots_written_;
  records_since_snapshot_ = 0;
  journal_records_ = 0;

  // The snapshot covers every journaled event; the journal restarts
  // empty. Crash between rename and reset is safe: replay skips
  // events with seq <= snapshot seq.
  if (Result<void> reset = journal_.reset(); !reset.ok()) return reset.error();
  publish_metrics();
  return seq;
}

Result<std::uint64_t> StateStore::compact() {
  if (!journal_.is_open()) return make_error(Errc::unavailable, "store is not open");
  Result<std::uint64_t> reclaimed = prune_snapshots(config_.directory);
  if (reclaimed.ok()) publish_metrics();
  return reclaimed;
}

void StateStore::publish_metrics() {
  if (registry_ == nullptr) return;
  registry_->gauge("store.journal_bytes").set(static_cast<double>(journal_.bytes()));
  registry_->gauge("store.journal_records").set(static_cast<double>(journal_records_));
  registry_->gauge("store.last_fsync_us").set(journal_.last_fsync_micros());
  registry_->gauge("store.last_snapshot_seq").set(static_cast<double>(last_snapshot_seq_));
  registry_->gauge("store.last_snapshot_bytes").set(static_cast<double>(last_snapshot_bytes_));

  // Counters are monotonic; re-sync them to the running totals.
  auto sync = [this](const char* name, std::uint64_t total) {
    telemetry::Counter& c = registry_->counter(name);
    if (total > c.value()) c.increment(total - c.value());
  };
  sync("store.records_appended", total_appended_);
  sync("store.bytes_appended", total_bytes_appended_);
  sync("store.fsyncs", journal_.fsync_count());
  sync("store.snapshots_written", snapshots_written_);
}

json::Value StateStore::status_json() const {
  json::Object journal;
  journal.emplace("path", journal_.path());
  journal.emplace("bytes", static_cast<double>(journal_.bytes()));
  journal.emplace("records", static_cast<double>(journal_records_));
  journal.emplace("fsync_on_append", config_.fsync_on_append);
  journal.emplace("fsyncs", static_cast<double>(journal_.fsync_count()));
  journal.emplace("last_fsync_us", journal_.last_fsync_micros());

  json::Object snapshot;
  snapshot.emplace("last_seq", static_cast<double>(last_snapshot_seq_));
  snapshot.emplace("last_bytes", static_cast<double>(last_snapshot_bytes_));
  snapshot.emplace("written", static_cast<double>(snapshots_written_));
  snapshot.emplace("every_records", static_cast<double>(config_.snapshot_every_records));

  json::Object out;
  out.emplace("open", is_open());
  out.emplace("directory", config_.directory);
  out.emplace("next_seq", static_cast<double>(next_seq_));
  out.emplace("records_since_snapshot", static_cast<double>(records_since_snapshot_));
  out.emplace("journal", std::move(journal));
  out.emplace("snapshot", std::move(snapshot));
  return json::Value(std::move(out));
}

}  // namespace slices::store
