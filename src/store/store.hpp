#pragma once
// Durable state store: the event-sourced persistence subsystem behind
// the orchestrator (docs/persistence.md).
//
// The store is deliberately application-agnostic: it journals opaque
// JSON events stamped with a monotonically increasing sequence number,
// writes full-state snapshots (truncating the journal they make
// redundant) and, on open(), reconstructs the recovery input — latest
// valid snapshot + the journal tail strictly after it. What the events
// and the state document *mean* is owned by the layer above (the
// orchestrator's replay in src/core), keeping src/store below src/core
// in the dependency graph.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"
#include "store/journal.hpp"
#include "store/snapshot.hpp"
#include "telemetry/registry.hpp"

namespace slices::store {

/// Tuning of a store instance.
struct StoreConfig {
  /// Directory holding "journal.wal" and "snapshot-<seq>.snap" files.
  /// Created on open() when missing.
  std::string directory;
  /// fsync the journal after every append (durability over throughput).
  bool fsync_on_append = false;
  /// fsync snapshot files before the atomic rename.
  bool fsync_snapshots = true;
  /// When > 0, wants_snapshot() turns true every this-many appended
  /// records — the owner is expected to write a snapshot then.
  std::size_t snapshot_every_records = 0;
};

/// What open() reconstructed from disk.
struct RecoveredInput {
  bool has_snapshot = false;
  std::uint64_t snapshot_seq = 0;       ///< last seq folded into the snapshot
  json::Value snapshot_state;           ///< application state document
  std::vector<json::Value> events;      ///< journal tail, seq > snapshot_seq
  std::uint64_t skipped_events = 0;     ///< journal records at/below snapshot_seq
  bool journal_truncated = false;       ///< a torn tail was dropped
  std::string journal_corruption;       ///< scanner's reason (empty = clean)
  std::vector<std::string> rejected_snapshots;  ///< damaged snapshot files skipped
};

/// The write-ahead journal + snapshot facade.
class StateStore {
 public:
  explicit StateStore(StoreConfig config, telemetry::MonitorRegistry* registry = nullptr);

  /// Create the directory if needed, scan snapshots + journal, truncate
  /// any torn journal tail and position the journal for appending.
  /// Recovery input is available via recovered() afterwards. Never
  /// fails on corrupt *data* (that degrades to a shorter valid prefix);
  /// fails only on real I/O errors.
  [[nodiscard]] Result<void> open();

  [[nodiscard]] bool is_open() const noexcept { return journal_.is_open(); }

  /// What open() found on disk; replayed by the owner exactly once.
  [[nodiscard]] const RecoveredInput& recovered() const noexcept { return recovered_; }

  /// Release the (potentially large) recovery buffers after replay.
  void discard_recovered() { recovered_ = RecoveredInput{}; }

  /// Stamp `event` with the next sequence number and append it to the
  /// journal. Returns the assigned sequence.
  [[nodiscard]] Result<std::uint64_t> append(json::Object event);

  /// Write `state` as a snapshot covering everything appended so far,
  /// then truncate the journal. Returns the snapshot's seq.
  [[nodiscard]] Result<std::uint64_t> write_snapshot(const json::Value& state);

  /// Delete all but the newest valid snapshot (and stale temp files).
  /// Returns bytes reclaimed.
  [[nodiscard]] Result<std::uint64_t> compact();

  /// True when snapshot_every_records is configured and at least that
  /// many records were appended since the last snapshot.
  [[nodiscard]] bool wants_snapshot() const noexcept {
    return config_.snapshot_every_records > 0 &&
           records_since_snapshot_ >= config_.snapshot_every_records;
  }

  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t last_seq() const noexcept { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t journal_bytes() const noexcept { return journal_.bytes(); }
  [[nodiscard]] std::uint64_t journal_records() const noexcept { return journal_records_; }
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept { return snapshots_written_; }

  /// Operational status for GET /store/status.
  [[nodiscard]] json::Value status_json() const;

 private:
  void publish_metrics();

  StoreConfig config_;
  telemetry::MonitorRegistry* registry_;
  telemetry::Histogram* append_hist_ = nullptr;  ///< wall-gated append latency
  Journal journal_;
  RecoveredInput recovered_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t journal_records_ = 0;        ///< records currently in the journal
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t total_appended_ = 0;
  std::uint64_t total_bytes_appended_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t last_snapshot_seq_ = 0;
  std::uint64_t last_snapshot_bytes_ = 0;
};

}  // namespace slices::store
