#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "store/crc32.hpp"
#include "store/journal.hpp"

namespace slices::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kPrefix = "snapshot-";
constexpr std::string_view kSuffix = ".snap";

/// Parse "snapshot-<seq>.snap" -> seq; nullopt for anything else.
std::optional<std::uint64_t> seq_of(const std::string& filename) {
  if (filename.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (filename.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      filename.substr(kPrefix.size(), filename.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

void put_u32le(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v & 0xFFu);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFFu);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFFu);
}

std::uint32_t get_u32le(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

/// Read + verify one snapshot file; nullopt when damaged.
std::optional<LoadedSnapshot> try_load(const fs::path& path) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size < 8 || size > kMaxRecordBytes + 8) return std::nullopt;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string raw(static_cast<std::size_t>(size), '\0');
  std::size_t filled = 0;
  while (filled < raw.size()) {
    const ssize_t n = ::read(fd, raw.data() + filled, raw.size() - filled);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    filled += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (filled != raw.size()) return std::nullopt;

  const auto* bytes = reinterpret_cast<const unsigned char*>(raw.data());
  const std::uint32_t len = get_u32le(bytes);
  const std::uint32_t crc = get_u32le(bytes + 4);
  if (len != raw.size() - 8) return std::nullopt;
  const std::string_view payload(raw.data() + 8, len);
  if (crc32(payload) != crc) return std::nullopt;

  Result<json::Value> doc = json::parse(payload);
  if (!doc.ok()) return std::nullopt;
  const json::Value* seq = doc.value().find("seq");
  const json::Value* state = doc.value().find("state");
  if (seq == nullptr || !seq->is_number() || state == nullptr) return std::nullopt;

  LoadedSnapshot out;
  out.seq = static_cast<std::uint64_t>(seq->as_number());
  out.state = *state;
  out.bytes = static_cast<std::uint64_t>(size);
  out.path = path.string();
  return out;
}

}  // namespace

Result<std::string> write_snapshot(const std::string& directory, std::uint64_t seq,
                                   const json::Value& state, bool fsync) {
  json::Object doc;
  doc.emplace("seq", static_cast<double>(seq));
  doc.emplace("state", state);
  const std::string payload = json::serialize(json::Value(std::move(doc)));
  if (payload.size() > kMaxRecordBytes) {
    return make_error(Errc::invalid_argument, "snapshot state too large");
  }

  const fs::path dir(directory);
  const fs::path final_path = dir / (std::string(kPrefix) + std::to_string(seq) +
                                     std::string(kSuffix));
  const fs::path tmp_path = dir / (std::string(kPrefix) + std::to_string(seq) + ".tmp");

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return make_error(Errc::internal,
                      "cannot create snapshot temp file: " + std::string(std::strerror(errno)));
  }
  std::string frame;
  frame.resize(8 + payload.size());
  put_u32le(reinterpret_cast<unsigned char*>(frame.data()),
            static_cast<std::uint32_t>(payload.size()));
  put_u32le(reinterpret_cast<unsigned char*>(frame.data()) + 4, crc32(payload));
  std::memcpy(frame.data() + 8, payload.data(), payload.size());

  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      return make_error(Errc::internal, "snapshot write: " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync && ::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return make_error(Errc::internal, "snapshot fsync: " + why);
  }
  ::close(fd);

  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return make_error(Errc::internal, "snapshot rename: " + ec.message());
  }
  return final_path.string();
}

Result<std::optional<LoadedSnapshot>> load_latest_snapshot(const std::string& directory,
                                                           std::vector<std::string>* rejected) {
  std::error_code ec;
  if (!fs::exists(directory, ec) || ec) return std::optional<LoadedSnapshot>{};

  // Collect candidates newest-first, try each until one verifies.
  std::vector<std::pair<std::uint64_t, fs::path>> candidates;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    if (const auto seq = seq_of(entry.path().filename().string())) {
      candidates.emplace_back(*seq, entry.path());
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [seq, path] : candidates) {
    if (std::optional<LoadedSnapshot> loaded = try_load(path)) {
      return std::optional<LoadedSnapshot>(std::move(loaded));
    }
    if (rejected != nullptr) rejected->push_back(path.string());
  }
  return std::optional<LoadedSnapshot>{};
}

Result<std::uint64_t> prune_snapshots(const std::string& directory) {
  Result<std::optional<LoadedSnapshot>> latest = load_latest_snapshot(directory);
  if (!latest.ok()) return latest.error();

  std::uint64_t reclaimed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool is_snapshot = seq_of(name).has_value();
    const bool is_stale_tmp = name.size() > 4 && name.starts_with(kPrefix) &&
                              name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!is_snapshot && !is_stale_tmp) continue;
    if (latest.value().has_value() && entry.path().string() == latest.value()->path) continue;
    std::error_code del_ec;
    const std::uintmax_t size = fs::file_size(entry.path(), del_ec);
    if (fs::remove(entry.path(), del_ec) && !del_ec) {
      reclaimed += static_cast<std::uint64_t>(size);
    }
  }
  return reclaimed;
}

}  // namespace slices::store
