#pragma once
// Append-only binary write-ahead journal.
//
// Record framing: [u32 payload_len][u32 crc32(payload)][payload], both
// integers little-endian. The payload is one compact-serialized JSON
// document (via src/json) carrying at least a monotonically increasing
// "seq" field stamped by the StateStore. The reader accepts any valid
// prefix: a truncated header, a truncated payload or a CRC/JSON mismatch
// ends the scan at the last good record — torn tail writes from a crash
// are expected, never fatal. Reopening for append truncates the file
// back to the valid prefix so new records never follow garbage.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"

namespace slices::store {

/// Hard cap on one record's payload; anything larger is corruption.
inline constexpr std::uint32_t kMaxRecordBytes = 64u * 1024u * 1024u;

/// Outcome of scanning a journal file.
struct JournalScan {
  std::vector<json::Value> records;   ///< valid prefix, in append order
  std::uint64_t valid_bytes = 0;      ///< file offset after the last good record
  std::uint64_t file_bytes = 0;       ///< total size on disk
  bool truncated_tail = false;        ///< bytes past valid_bytes were dropped
  std::string corruption;             ///< why the scan stopped early (empty = clean)
};

/// Read every valid record of the journal at `path`. A missing file is
/// an empty, clean scan (fresh deployment). Only I/O errors (e.g. the
/// path is a directory) are reported as errors; corruption is data.
[[nodiscard]] Result<JournalScan> scan_journal(const std::string& path);

/// Appending side of the journal. Not thread-safe (the orchestrator is
/// single-threaded by design).
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open `path` for appending, truncating it to `valid_bytes` first
  /// (drop any torn tail found by scan_journal). Creates the file when
  /// absent.
  [[nodiscard]] Result<void> open(const std::string& path, std::uint64_t valid_bytes);

  /// Frame `payload`, append it and (optionally) fsync. Returns the
  /// number of bytes written to disk.
  [[nodiscard]] Result<std::uint64_t> append(const std::string& payload, bool fsync);

  /// Truncate the journal to zero length (after a snapshot made the
  /// contents redundant).
  [[nodiscard]] Result<void> reset();

  void close();

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Wall-clock duration of the most recent fsync, in microseconds.
  [[nodiscard]] double last_fsync_micros() const noexcept { return last_fsync_us_; }
  [[nodiscard]] std::uint64_t fsync_count() const noexcept { return fsyncs_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  double last_fsync_us_ = 0.0;
};

}  // namespace slices::store
