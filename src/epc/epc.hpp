#pragma once
// Virtualized Evolved Packet Core, one instance per slice.
//
// The demo "realize[s] the EPC with OpenEPC 7 ... placed as virtualized
// instance" and deploys one per accepted slice; end-user devices can
// attach only once their slice's EPC is up. We model the control-plane
// VNF chain (MME, HSS, SPGW-C, SPGW-U) as a Heat stack template plus a
// deployment state machine with attach/bearer procedures, which is the
// behaviour the installation-latency experiment (D4) measures.

#include <cstdint>
#include <string>

#include "cloud/controller.hpp"
#include "cloud/heat.hpp"
#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace slices::epc {

/// Network functions in the (R14-style, pre-CUPS-split simplified) core.
enum class VnfKind { mme, hss, spgw_c, spgw_u };

[[nodiscard]] std::string_view to_string(VnfKind k) noexcept;

/// Default flavor of each VNF (vCPU / MB / GB). SPGW-U is the data-plane
/// workhorse and scales with the slice's contracted throughput.
[[nodiscard]] cloud::Flavor default_flavor(VnfKind k, DataRate slice_rate);

/// Build the Heat template of a slice's EPC instance.
[[nodiscard]] cloud::StackTemplate epc_stack_template(SliceId slice, DataRate slice_rate);

/// Lifecycle of one slice's EPC.
enum class EpcState {
  deploying,  ///< stack created, VNFs still booting
  active,     ///< attach/bearer procedures available
  removed,    ///< torn down
};

[[nodiscard]] std::string_view to_string(EpcState s) noexcept;

/// A deployed per-slice EPC instance.
struct EpcInstance {
  SliceId slice;
  StackId stack;
  DatacenterId datacenter;
  EpcState state = EpcState::deploying;
  std::uint64_t attached_ues = 0;
  std::uint64_t active_bearers = 0;
};

/// Control-plane latency constants (NAS attach + default bearer setup),
/// used by the install-latency experiment.
struct ProcedureTimings {
  Duration attach = Duration::millis(150.0);
  Duration bearer_setup = Duration::millis(50.0);
};

/// Manages every slice's EPC instance on top of the cloud controller.
class EpcManager {
 public:
  /// `cloud` must outlive the manager.
  explicit EpcManager(cloud::CloudController* cloud) : cloud_(cloud) {}

  /// Deploy a fresh EPC for `slice` in `dc`; returns the estimated time
  /// until the instance becomes active (Heat deploy estimate). The
  /// instance starts in `deploying`; call activate() when that time has
  /// elapsed (the orchestrator schedules it on the simulator). Errors:
  /// conflict (slice already has an EPC), insufficient_capacity.
  [[nodiscard]] Result<Duration> deploy(SliceId slice, DatacenterId dc, DataRate slice_rate);

  /// Mark the instance active (VNFs booted). Errors: not_found,
  /// conflict (not in deploying state).
  [[nodiscard]] Result<void> activate(SliceId slice);

  /// Tear the instance down, deleting its stack. Errors: not_found.
  [[nodiscard]] Result<void> remove(SliceId slice);

  /// UE attach: NAS attach + default bearer. Errors: not_found (no EPC),
  /// unavailable (EPC still deploying — the demo's "after few seconds"
  /// gating). Returns the control-plane latency incurred.
  [[nodiscard]] Result<Duration> attach_ue(SliceId slice);

  /// UE detach. Errors: not_found, invalid_argument (no UEs attached).
  [[nodiscard]] Result<void> detach_ue(SliceId slice);

  [[nodiscard]] const EpcInstance* find(SliceId slice) const noexcept;
  [[nodiscard]] std::size_t instance_count() const noexcept { return instances_.size(); }
  [[nodiscard]] const ProcedureTimings& timings() const noexcept { return timings_; }

 private:
  cloud::CloudController* cloud_;
  DenseIdMap<SliceId, EpcInstance> instances_;
  ProcedureTimings timings_;
};

}  // namespace slices::epc
