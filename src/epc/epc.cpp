#include "epc/epc.hpp"

#include <cassert>
#include <cmath>

#include "telemetry/trace.hpp"

namespace slices::epc {

std::string_view to_string(VnfKind k) noexcept {
  switch (k) {
    case VnfKind::mme: return "mme";
    case VnfKind::hss: return "hss";
    case VnfKind::spgw_c: return "spgw_c";
    case VnfKind::spgw_u: return "spgw_u";
  }
  return "?";
}

std::string_view to_string(EpcState s) noexcept {
  switch (s) {
    case EpcState::deploying: return "deploying";
    case EpcState::active: return "active";
    case EpcState::removed: return "removed";
  }
  return "?";
}

cloud::Flavor default_flavor(VnfKind k, DataRate slice_rate) {
  switch (k) {
    case VnfKind::mme:
      return {"epc.mme", ComputeCapacity{2.0, 4096.0, 20.0}};
    case VnfKind::hss:
      return {"epc.hss", ComputeCapacity{1.0, 2048.0, 20.0}};
    case VnfKind::spgw_c:
      return {"epc.spgw_c", ComputeCapacity{1.0, 2048.0, 10.0}};
    case VnfKind::spgw_u: {
      // Data plane: 1 vCPU per 25 Mb/s of contracted rate, min 1.
      const double vcpus = std::max(1.0, std::ceil(slice_rate.as_mbps() / 25.0));
      return {"epc.spgw_u", ComputeCapacity{vcpus, 2048.0 + 64.0 * vcpus, 10.0}};
    }
  }
  return {"epc.unknown", ComputeCapacity{}};
}

cloud::StackTemplate epc_stack_template(SliceId slice, DataRate slice_rate) {
  cloud::StackTemplate tmpl;
  tmpl.name = "epc-slice-" + std::to_string(slice.value());
  for (const VnfKind kind : {VnfKind::mme, VnfKind::hss, VnfKind::spgw_c, VnfKind::spgw_u}) {
    tmpl.resources.push_back(
        cloud::ResourceSpec{std::string(to_string(kind)), default_flavor(kind, slice_rate)});
  }
  return tmpl;
}

Result<Duration> EpcManager::deploy(SliceId slice, DatacenterId dc, DataRate slice_rate) {
  TRACE_SCOPE("epc.deploy");
  assert(cloud_ != nullptr && cloud_->finalized());
  if (const EpcInstance* existing = instances_.find(slice);
      existing != nullptr && existing->state != EpcState::removed) {
    return make_error(Errc::conflict, "slice already has an EPC instance");
  }
  const cloud::StackTemplate tmpl = epc_stack_template(slice, slice_rate);
  const Result<StackId> stack = cloud_->create_stack(dc, tmpl);
  if (!stack.ok()) return stack.error();

  EpcInstance instance;
  instance.slice = slice;
  instance.stack = stack.value();
  instance.datacenter = dc;
  instance.state = EpcState::deploying;
  instances_.insert_or_assign(slice, instance);
  return cloud_->estimated_deploy_time(tmpl);
}

Result<void> EpcManager::activate(SliceId slice) {
  EpcInstance* instance = instances_.find(slice);
  if (instance == nullptr) return make_error(Errc::not_found, "no EPC for slice");
  if (instance->state != EpcState::deploying)
    return make_error(Errc::conflict, "EPC not in deploying state");
  instance->state = EpcState::active;
  return {};
}

Result<void> EpcManager::remove(SliceId slice) {
  const EpcInstance* instance = instances_.find(slice);
  if (instance == nullptr || instance->state == EpcState::removed)
    return make_error(Errc::not_found, "no EPC for slice");
  const Result<void> r = cloud_->delete_stack(instance->stack);
  assert(r.ok());
  (void)r;
  instances_.erase(slice);
  return {};
}

Result<Duration> EpcManager::attach_ue(SliceId slice) {
  EpcInstance* instance = instances_.find(slice);
  if (instance == nullptr) return make_error(Errc::not_found, "no EPC for slice");
  if (instance->state != EpcState::active)
    return make_error(Errc::unavailable, "EPC still deploying; UE cannot attach yet");
  ++instance->attached_ues;
  ++instance->active_bearers;  // default bearer comes with attach
  return timings_.attach + timings_.bearer_setup;
}

Result<void> EpcManager::detach_ue(SliceId slice) {
  EpcInstance* instance = instances_.find(slice);
  if (instance == nullptr) return make_error(Errc::not_found, "no EPC for slice");
  if (instance->attached_ues == 0)
    return make_error(Errc::invalid_argument, "no UEs attached");
  --instance->attached_ues;
  --instance->active_bearers;
  return {};
}

const EpcInstance* EpcManager::find(SliceId slice) const noexcept {
  return instances_.find(slice);
}

}  // namespace slices::epc
