#pragma once
// The mobility Field: one region's moving UE population.
//
// A Field owns the positions of the UEs it animates over the region's
// cell grid and drives them through the RAN controller: it spawns a
// per-slice population when a PLMN comes on the air (attach_ue_at at
// the hashed home position), walks every UE each epoch (random
// waypoints, or a storm flow-field while one is active), and turns
// cell-boundary crossings into a HandoverRequest batch the controller
// applies in one allocation-free pass. UEs that cross the *region*
// boundary during a commuter wave are detached and queued as
// RoamingExit records for the federation broker to route to the
// neighbour region.
//
// Determinism: positions live in SoA columns, every random draw is a
// counter-based hash of the UE's own key (see model.hpp), and the move
// phase writes only row-local state — so it shards across the thread
// pool bit-identically at any pool size, while the transition scan and
// the handover batch stay in sequential row order.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "mobility/model.hpp"
#include "ran/controller.hpp"

namespace slices::mobility {

/// A UE that left its region across a metro border (detached locally;
/// the broker re-attaches it in the neighbour region). Integer wire
/// format so the record survives JSON transport byte-exactly.
struct RoamingExit {
  std::uint64_t plmn = 0;   ///< home PLMN id value (informational)
  int cqi = 10;             ///< last reported CQI
  std::int64_t y_mm = 0;    ///< position along the border, millimetres
  int side = 1;             ///< +1 exited east, -1 exited west
};

/// One region's mobility engine.
class Field {
 public:
  /// Resolves a PLMN's movement speed (m/s) from its slice's vertical
  /// speed class; return <= 0 to take the configured default.
  using SpeedFn = std::function<double(PlmnId)>;

  /// `ran` must outlive the Field; the grid covers its current cells
  /// (add cells before constructing). `pool` may be null (serial move).
  Field(FieldConfig config, ran::RanController* ran, ThreadPool* pool = nullptr);

  [[nodiscard]] const CellGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const FieldConfig& config() const noexcept { return config_; }

  /// Register a storm window (scenario `mobility.storms[]` entry whose
  /// region filter matched this field). `cell_index` is the stadium
  /// cell (clamped into the grid; ignored by commuter waves).
  void add_storm(StormKind kind, SimTime start, SimTime end, double fraction,
                 std::size_t cell_index);

  /// Reconcile the population with the installed PLMN set: spawn
  /// `ues_per_slice` UEs for each PLMN in `live` that has none yet, and
  /// drain (detach + free) the population of PLMNs no longer live —
  /// completing the deferred remove_plmn that slice teardown could not
  /// finish while our UEs were attached. Call once per epoch, before
  /// step(). `live` must be in deterministic order.
  void sync_population(std::span<const PlmnId> live, const SpeedFn& speed_of);

  /// Advance every UE to `now` (move phase, pool-sharded) and scan for
  /// cell transitions (sequential): fills the pending handover batch
  /// and, in a metro, the roaming-exit queue (exiting UEs are detached
  /// here).
  void step(SimTime now);

  [[nodiscard]] std::span<const ran::HandoverRequest> pending_handovers() const noexcept {
    return pending_requests_;
  }

  /// Apply the pending handover batch through the controller and update
  /// serving-cell rows for the successes. Clears the batch.
  ran::HandoverStats apply(SimTime now);

  /// Move this epoch's roaming exits into `out` (appended; queue cleared).
  void drain_exits(std::vector<RoamingExit>& out);

  /// Admit a UE roaming in from a neighbour region: place it just
  /// inside the border it entered through and attach it under the
  /// lowest installed PLMN (national-roaming fallback — its home slice
  /// lives in the source region). Returns false when no PLMN is on the
  /// air or the border cell refuses the attach.
  bool admit_roamer(const RoamingExit& exit);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t population() const noexcept { return live_rows_; }
  [[nodiscard]] std::uint64_t exits_total() const noexcept { return exits_total_; }
  [[nodiscard]] std::uint64_t roamers_admitted() const noexcept { return roamers_admitted_; }
  [[nodiscard]] std::uint64_t roamers_dropped() const noexcept { return roamers_dropped_; }
  [[nodiscard]] std::size_t storm_count() const noexcept { return storms_.size(); }

 private:
  struct Storm {
    StormKind kind;
    std::int64_t start_us;
    std::int64_t end_us;
    double fraction;
    std::size_t cell;        // stadium focus, grid index
    std::uint64_t salt;      // participation hash salt
  };

  /// One per-UE hash draw (advances the row's draw counter).
  std::uint64_t draw(std::size_t row) noexcept {
    return mix64(key_[row] + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(++draw_[row]));
  }

  void move_row(std::size_t row, double dt_s, std::int64_t now_us);
  std::size_t allocate_row();
  void free_row(std::size_t row);
  void spawn_population(PlmnId plmn, double speed);

  FieldConfig config_;
  ran::RanController* ran_;
  ThreadPool* pool_;
  CellGrid grid_;

  // SoA columns; rows are reused via a LIFO free list so indices stay
  // dense and iteration order deterministic.
  std::vector<UeId> ue_;
  std::vector<PlmnId> plmn_;
  std::vector<std::uint64_t> key_;
  std::vector<std::uint32_t> draw_;
  std::vector<double> x_, y_;        // position, metres
  std::vector<double> tx_, ty_;      // current waypoint
  std::vector<double> speed_;        // m/s
  std::vector<std::uint32_t> cell_;  // serving cell, grid index
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_;
  std::size_t live_rows_ = 0;

  std::vector<Storm> storms_;
  std::vector<PlmnId> populated_;    // PLMNs with a spawned population (sorted)

  std::int64_t last_step_us_ = -1;

  // Per-epoch transition batch (capacity reused).
  std::vector<ran::HandoverRequest> pending_requests_;
  std::vector<std::uint32_t> pending_rows_;
  std::vector<std::uint32_t> pending_cells_;
  std::vector<std::uint8_t> outcome_scratch_;
  std::vector<RoamingExit> exits_;

  std::uint64_t exits_total_ = 0;
  std::uint64_t roamers_admitted_ = 0;
  std::uint64_t roamers_dropped_ = 0;
  std::uint64_t spawn_failures_ = 0;
};

}  // namespace slices::mobility
