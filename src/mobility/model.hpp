#pragma once
// Mobility model primitives shared by the Field engine and the scenario
// DSL: the cell-grid geometry a region's UEs move over, the storm kinds
// the `mobility` scenario block can schedule, and the model parameters.
//
// Everything here is deterministic and hash-driven. A UE never owns an
// RNG object — every random choice is a counter-based SplitMix64 hash
// of (field seed, UE key, draw counter), so a draw's value depends only
// on *which* draw it is, never on which thread computed it or how many
// other UEs drew before it. That is what makes the move phase safely
// shardable across a ThreadPool with bit-identical results at any pool
// size.

#include <cmath>
#include <cstdint>
#include <string>

namespace slices::mobility {

/// A scheduled mobility storm (the DSL's `mobility.storms[]` kinds).
enum class StormKind {
  stadium_ingress,  ///< participating UEs converge on one cell
  stadium_egress,   ///< participating UEs disperse away from one cell
  commuter_wave,    ///< participating UEs stream toward the neighbour region
};

[[nodiscard]] constexpr std::string_view to_string(StormKind k) noexcept {
  switch (k) {
    case StormKind::stadium_ingress: return "stadium_ingress";
    case StormKind::stadium_egress: return "stadium_egress";
    case StormKind::commuter_wave: return "commuter_wave";
  }
  return "?";
}

/// SplitMix64 finalizer: the one-way mix behind every mobility draw.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from a hash word (53-bit mantissa).
[[nodiscard]] constexpr double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Square-grid placement of a region's cells: cell i sits at the centre
/// of grid square (i % side, i / side), `spacing_m` metres apart. The
/// region rectangle is [0, width) x [0, height); a UE's serving cell is
/// simply the nearest grid centre (clamped, so positions slightly
/// outside the rectangle still resolve to a border cell).
class CellGrid {
 public:
  CellGrid(std::size_t cells, double spacing_m)
      : cells_(cells == 0 ? 1 : cells),
        side_(static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(cells == 0 ? 1 : cells))))),
        spacing_(spacing_m) {}

  [[nodiscard]] std::size_t cells() const noexcept { return cells_; }
  [[nodiscard]] std::size_t side() const noexcept { return side_; }
  [[nodiscard]] double spacing() const noexcept { return spacing_; }
  [[nodiscard]] double width() const noexcept {
    return static_cast<double>(side_) * spacing_;
  }
  [[nodiscard]] double height() const noexcept { return width(); }

  [[nodiscard]] double cell_x(std::size_t i) const noexcept {
    return (static_cast<double>(i % side_) + 0.5) * spacing_;
  }
  [[nodiscard]] double cell_y(std::size_t i) const noexcept {
    return (static_cast<double>(i / side_) + 0.5) * spacing_;
  }

  /// Nearest cell index for a position (clamped into the grid).
  [[nodiscard]] std::size_t nearest_cell(double x, double y) const noexcept {
    const auto clamp_axis = [this](double v) -> std::size_t {
      if (!(v > 0.0)) return 0;
      const std::size_t g = static_cast<std::size_t>(v / spacing_);
      return g >= side_ ? side_ - 1 : g;
    };
    const std::size_t index = clamp_axis(y) * side_ + clamp_axis(x);
    return index >= cells_ ? cells_ - 1 : index;
  }

 private:
  std::size_t cells_;
  std::size_t side_;
  double spacing_;
};

/// Model parameters of one region's Field (resolved from the scenario's
/// `mobility` block plus the region's place in the metro).
struct FieldConfig {
  double cell_spacing_m = 500.0;
  double default_speed_mps = 1.4;     ///< walking pace unless a speed class applies
  std::size_t ues_per_slice = 50;     ///< population attached per installed PLMN
  int cqi_min = 5;                    ///< attach-time CQI draw range
  int cqi_max = 15;
  std::uint64_t seed = 1;
  std::uint32_t region_index = 0;     ///< position on the metro's west-east axis
  std::uint32_t region_count = 1;     ///< 1 on fig2 (no region boundaries to cross)
  std::string region;                 ///< name, for storm region filters ("" = fig2)
};

}  // namespace slices::mobility
