#include "mobility/field.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/trace.hpp"

namespace slices::mobility {

namespace {

// Hash salts separating the independent draw families.
constexpr std::uint64_t kSpawnSalt = 0x8f14e45fceea167aull;
constexpr std::uint64_t kStormSalt = 0xd1b54a32d192ed03ull;
constexpr std::uint64_t kRoamerSalt = 0x2545f4914f6cdd1dull;

/// Commuter waves are vehicular: participants sprint relative to their
/// pedestrian speed so a wave actually reaches the region border within
/// a scenario's monitoring epochs.
constexpr double kCommuterSprint = 5.0;
/// Stadium ingress participants stop once this close to the venue cell.
constexpr double kArrivalRadiusM = 5.0;

[[nodiscard]] double clamped(double v, double lo, double hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

Field::Field(FieldConfig config, ran::RanController* ran, ThreadPool* pool)
    : config_(std::move(config)),
      ran_(ran),
      pool_(pool),
      grid_(ran->cell_count(), config_.cell_spacing_m) {
  assert(ran_ != nullptr);
}

void Field::add_storm(StormKind kind, SimTime start, SimTime end, double fraction,
                      std::size_t cell_index) {
  Storm storm;
  storm.kind = kind;
  storm.start_us = start.as_micros();
  storm.end_us = end.as_micros();
  storm.fraction = clamped(fraction, 0.0, 1.0);
  storm.cell = cell_index >= grid_.cells() ? grid_.cells() - 1 : cell_index;
  storm.salt = mix64(config_.seed ^ kStormSalt ^
                     (0x9e3779b97f4a7c15ull * (storms_.size() + 1)));
  storms_.push_back(storm);
}

std::size_t Field::allocate_row() {
  std::size_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
  } else {
    row = ue_.size();
    ue_.emplace_back();
    plmn_.emplace_back();
    key_.emplace_back();
    draw_.emplace_back();
    x_.emplace_back();
    y_.emplace_back();
    tx_.emplace_back();
    ty_.emplace_back();
    speed_.emplace_back();
    cell_.emplace_back();
    live_.emplace_back();
  }
  live_[row] = 1;
  draw_[row] = 0;
  ++live_rows_;
  return row;
}

void Field::free_row(std::size_t row) {
  assert(live_[row] == 1);
  live_[row] = 0;
  ue_[row] = UeId::invalid();
  --live_rows_;
  free_.push_back(static_cast<std::uint32_t>(row));
}

void Field::spawn_population(PlmnId plmn, double speed) {
  const int span = config_.cqi_max >= config_.cqi_min
                       ? config_.cqi_max - config_.cqi_min + 1
                       : 1;
  const std::uint64_t base = mix64(config_.seed ^ kSpawnSalt ^
                                   (0x9e3779b97f4a7c15ull * plmn.value()));
  for (std::size_t j = 0; j < config_.ues_per_slice; ++j) {
    const std::size_t row = allocate_row();
    key_[row] = mix64(base + j);
    const double px = unit_interval(draw(row)) * grid_.width();
    const double py = unit_interval(draw(row)) * grid_.height();
    int cqi = config_.cqi_min + static_cast<int>(draw(row) % static_cast<std::uint64_t>(span));
    cqi = cqi < 1 ? 1 : (cqi > 15 ? 15 : cqi);
    const std::size_t cell = grid_.nearest_cell(px, py);
    const Result<UeId> ue = ran_->attach_ue_at(ran_->cell_at(cell).id(), plmn, ran::Cqi{cqi});
    if (!ue.ok()) {
      free_row(row);
      ++spawn_failures_;
      continue;
    }
    ue_[row] = ue.value();
    plmn_[row] = plmn;
    x_[row] = px;
    y_[row] = py;
    tx_[row] = px;
    ty_[row] = py;
    speed_[row] = speed > 0.0 ? speed : config_.default_speed_mps;
    cell_[row] = static_cast<std::uint32_t>(cell);
  }
}

void Field::sync_population(std::span<const PlmnId> live, const SpeedFn& speed_of) {
  // Drain populations whose slice is gone, then complete the PLMN
  // removal that slice teardown deferred while our UEs were attached.
  for (std::size_t p = 0; p < populated_.size();) {
    const PlmnId plmn = populated_[p];
    const bool still_live =
        std::find(live.begin(), live.end(), plmn) != live.end();
    if (still_live) {
      ++p;
      continue;
    }
    for (std::size_t i = 0; i < ue_.size(); ++i) {
      if (live_[i] == 0 || !(plmn_[i] == plmn)) continue;
      if (ran_->ue_attached(ue_[i])) (void)ran_->detach_ue(ue_[i]);
      free_row(i);
    }
    if (ran_->plmn_installed(plmn)) (void)ran_->remove_plmn(plmn);
    populated_.erase(populated_.begin() + static_cast<std::ptrdiff_t>(p));
  }

  for (const PlmnId plmn : live) {
    if (!plmn.valid() || !ran_->plmn_installed(plmn)) continue;
    if (std::find(populated_.begin(), populated_.end(), plmn) != populated_.end())
      continue;
    const double speed = speed_of ? speed_of(plmn) : 0.0;
    spawn_population(plmn, speed);
    populated_.push_back(plmn);
  }
}

void Field::move_row(std::size_t row, double dt_s, std::int64_t now_us) {
  double px = x_[row];
  double py = y_[row];
  const double step = speed_[row] * dt_s;
  const double x_max = grid_.width() - 1e-9;
  const double y_max = grid_.height() - 1e-9;
  const bool east_ok = config_.region_index + 1 < config_.region_count;
  const bool west_ok = config_.region_index > 0;

  // First active storm this UE participates in wins; participation is a
  // pure hash of (UE key, storm salt), so it is stable for the storm's
  // whole window and costs no draw-counter state.
  const Storm* storm = nullptr;
  for (const Storm& s : storms_) {
    if (now_us < s.start_us || now_us >= s.end_us) continue;
    if (unit_interval(mix64(key_[row] ^ s.salt)) >= s.fraction) continue;
    storm = &s;
    break;
  }

  if (storm != nullptr) {
    switch (storm->kind) {
      case StormKind::stadium_ingress: {
        const double cx = grid_.cell_x(storm->cell);
        const double cy = grid_.cell_y(storm->cell);
        const double dx = cx - px;
        const double dy = cy - py;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist > kArrivalRadiusM && dist > 0.0) {
          const double hop = step < dist ? step : dist;
          px += dx / dist * hop;
          py += dy / dist * hop;
        }
        break;
      }
      case StormKind::stadium_egress: {
        const double cx = grid_.cell_x(storm->cell);
        const double cy = grid_.cell_y(storm->cell);
        double dx = px - cx;
        double dy = py - cy;
        double dist = std::sqrt(dx * dx + dy * dy);
        if (dist < 1e-6) {
          // Sitting on the venue: flee along a hashed bearing.
          const double angle =
              unit_interval(mix64(key_[row] ^ storm->salt ^ 0x77ull)) * 6.283185307179586;
          dx = std::cos(angle);
          dy = std::sin(angle);
          dist = 1.0;
        }
        px += dx / dist * step;
        py += dy / dist * step;
        break;
      }
      case StormKind::commuter_wave: {
        const double dir = east_ok ? 1.0 : (west_ok ? -1.0 : 1.0);
        px += dir * step * kCommuterSprint;
        break;
      }
    }
    // Only commuter participants may carry x past a border that has a
    // neighbour; everyone stays inside the rectangle otherwise.
    const bool exiting = storm->kind == StormKind::commuter_wave;
    if (!(exiting && west_ok) && px < 0.0) px = 0.0;
    if (!(exiting && east_ok) && px > x_max) px = x_max;
    py = clamped(py, 0.0, y_max);
  } else {
    // Random-waypoint walk: head to the waypoint, redraw on arrival.
    const double dx = tx_[row] - px;
    const double dy = ty_[row] - py;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= step) {
      px = tx_[row];
      py = ty_[row];
      tx_[row] = unit_interval(draw(row)) * grid_.width();
      ty_[row] = unit_interval(draw(row)) * grid_.height();
    } else {
      px += dx / dist * step;
      py += dy / dist * step;
    }
  }

  x_[row] = px;
  y_[row] = py;
}

void Field::step(SimTime now) {
  TRACE_SCOPE("mobility.step");
  const std::int64_t now_us = now.as_micros();
  const double dt_s =
      last_step_us_ < 0 ? 0.0 : static_cast<double>(now_us - last_step_us_) / 1e6;
  last_step_us_ = now_us;

  // Move phase: row-local state only, so it shards bit-identically.
  struct MoveCtx {
    Field* self;
    double dt;
    std::int64_t now;
  } ctx{this, dt_s, now_us};
  const auto move_one = [&ctx](std::size_t i) {
    if (ctx.self->live_[i] != 0) ctx.self->move_row(i, ctx.dt, ctx.now);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(ue_.size(), move_one);
  } else {
    for (std::size_t i = 0; i < ue_.size(); ++i) move_one(i);
  }

  // Transition scan: sequential, in row order — region exits first,
  // then cell-boundary crossings into the pending handover batch.
  const bool east_ok = config_.region_index + 1 < config_.region_count;
  const bool west_ok = config_.region_index > 0;
  for (std::size_t i = 0; i < ue_.size(); ++i) {
    if (live_[i] == 0) continue;
    const int side = x_[i] >= grid_.width() && east_ok ? 1
                     : x_[i] < 0.0 && west_ok         ? -1
                                                      : 0;
    if (side != 0) {
      RoamingExit exit;
      exit.plmn = plmn_[i].value();
      const std::optional<ran::Cqi> cqi = ran_->ue_cqi(ue_[i]);
      exit.cqi = cqi.has_value() ? cqi->index() : 10;
      exit.y_mm = static_cast<std::int64_t>(std::llround(y_[i] * 1000.0));
      exit.side = side;
      (void)ran_->detach_ue(ue_[i]);
      exits_.push_back(exit);
      ++exits_total_;
      free_row(i);
      continue;
    }
    const std::size_t cell = grid_.nearest_cell(x_[i], y_[i]);
    if (cell != cell_[i]) {
      pending_requests_.push_back({ue_[i], ran_->cell_at(cell).id()});
      pending_rows_.push_back(static_cast<std::uint32_t>(i));
      pending_cells_.push_back(static_cast<std::uint32_t>(cell));
    }
  }
}

ran::HandoverStats Field::apply(SimTime now) {
  if (pending_requests_.empty()) return {};
  if (outcome_scratch_.size() < pending_requests_.size()) {
    outcome_scratch_.resize(pending_requests_.size());
  }
  const std::span<std::uint8_t> outcomes(outcome_scratch_.data(), pending_requests_.size());
  const ran::HandoverStats stats = ran_->apply_handovers(pending_requests_, now, outcomes);
  for (std::size_t k = 0; k < pending_requests_.size(); ++k) {
    if (outcomes[k] != 0) cell_[pending_rows_[k]] = pending_cells_[k];
  }
  pending_requests_.clear();
  pending_rows_.clear();
  pending_cells_.clear();
  return stats;
}

void Field::drain_exits(std::vector<RoamingExit>& out) {
  out.insert(out.end(), exits_.begin(), exits_.end());
  exits_.clear();
}

bool Field::admit_roamer(const RoamingExit& exit) {
  // National-roaming fallback: the home slice lives in the source
  // region, so attach under the lowest PLMN on the air here.
  const std::vector<PlmnId> installed = ran_->installed_plmns();
  PlmnId plmn = PlmnId::invalid();
  for (const PlmnId candidate : installed) {
    if (!plmn.valid() || candidate.value() < plmn.value()) plmn = candidate;
  }
  if (!plmn.valid()) {
    ++roamers_dropped_;
    return false;
  }
  // Exited east (+1) => enters through our west border, and vice versa.
  const double px = exit.side > 0 ? 0.25 * grid_.spacing()
                                  : grid_.width() - 0.25 * grid_.spacing();
  const double py =
      clamped(static_cast<double>(exit.y_mm) / 1000.0, 0.0, grid_.height() - 1e-9);
  const int cqi = exit.cqi < 1 ? 1 : (exit.cqi > 15 ? 15 : exit.cqi);
  const std::size_t cell = grid_.nearest_cell(px, py);
  const Result<UeId> ue = ran_->attach_ue_at(ran_->cell_at(cell).id(), plmn, ran::Cqi{cqi});
  if (!ue.ok()) {
    ++roamers_dropped_;
    return false;
  }
  const std::size_t row = allocate_row();
  key_[row] = mix64(config_.seed ^ kRoamerSalt ^
                    (0x9e3779b97f4a7c15ull * (roamers_admitted_ + roamers_dropped_ + 1)));
  ue_[row] = ue.value();
  plmn_[row] = plmn;
  x_[row] = px;
  y_[row] = py;
  tx_[row] = px;
  ty_[row] = py;
  speed_[row] = config_.default_speed_mps;
  cell_[row] = static_cast<std::uint32_t>(cell);
  ++roamers_admitted_;
  return true;
}

}  // namespace slices::mobility
