#include "scenario/recorder.hpp"

#include <utility>

namespace slices::scenario {
namespace {

// Journal record kinds. "scenario" must come first; "request"/"event"
// entries follow in simulation order; "end" closes a complete run (its
// absence means the recording process died mid-run — still loadable,
// the valid prefix replays as far as it got).
constexpr const char* kScenarioRecord = "scenario";
constexpr const char* kRequestRecord = "request";
constexpr const char* kEventRecord = "event";
constexpr const char* kEndRecord = "end";

}  // namespace

Result<std::unique_ptr<ScenarioRecorder>> ScenarioRecorder::create(const std::string& path,
                                                                   const Scenario& scenario) {
  auto recorder = std::unique_ptr<ScenarioRecorder>(new ScenarioRecorder());
  if (Result<void> r = recorder->journal_.open(path, 0); !r.ok()) return r.error();

  Scenario header = scenario;
  header.generate_arrivals = false;
  header.requests.clear();
  header.events.clear();
  json::Object record;
  record.emplace("kind", kScenarioRecord);
  record.emplace("doc", scenario_to_json(header));
  if (Result<void> r = recorder->append(std::move(record)); !r.ok()) return r.error();
  return recorder;
}

Result<void> ScenarioRecorder::append(json::Object record) {
  const std::string payload = json::serialize(json::Value(std::move(record)));
  // No fsync: a recording is an experiment artifact, not durable state.
  Result<std::uint64_t> written = journal_.append(payload, /*fsync=*/false);
  if (!written.ok()) return written.error();
  return {};
}

Result<void> ScenarioRecorder::record_request(SimTime at, const core::SliceSpec& spec,
                                              std::uint64_t workload_seed,
                                              const std::string& region) {
  ScenarioRequest request;
  request.at = at - SimTime::origin();
  request.spec = spec;
  request.workload_seed = workload_seed;
  request.region = region;
  json::Object record;
  record.emplace("kind", kRequestRecord);
  record.emplace("doc", request_to_json(request));
  return append(std::move(record));
}

Result<void> ScenarioRecorder::record_event(const ScenarioEvent& event) {
  json::Object record;
  record.emplace("kind", kEventRecord);
  record.emplace("doc", event_to_json(event));
  return append(std::move(record));
}

Result<void> ScenarioRecorder::finish(SimTime end) {
  json::Object record;
  record.emplace("kind", kEndRecord);
  record.emplace("t_us", static_cast<double>(end.as_micros()));
  Result<void> r = append(std::move(record));
  close();
  return r;
}

void ScenarioRecorder::attach(core::Orchestrator* orchestrator) {
  orchestrator->set_submit_observer([this](const core::SliceRecord& record) {
    // Best effort: a full disk must not take down the control plane.
    (void)record_request(record.submitted_at, record.spec, 0);
  });
}

Result<Scenario> load_recording(const std::string& path) {
  Result<store::JournalScan> scan = store::scan_journal(path);
  if (!scan.ok()) return scan.error();
  if (scan.value().records.empty())
    return make_error(Errc::protocol_error, path + ": not a scenario recording (empty)");

  Scenario scenario;
  bool have_header = false;
  std::size_t index = 0;
  for (const json::Value& record : scan.value().records) {
    const std::string prefix = path + ": record " + std::to_string(index++);
    const Result<std::string> kind = record.get_string("kind");
    if (!kind.ok()) return make_error(Errc::protocol_error, prefix + ": missing kind");
    if (kind.value() == kScenarioRecord) {
      if (have_header)
        return make_error(Errc::protocol_error, prefix + ": duplicate scenario header");
      const json::Value* doc = record.find("doc");
      if (doc == nullptr)
        return make_error(Errc::protocol_error, prefix + ": missing doc");
      Result<Scenario> parsed = scenario_from_json(*doc);
      if (!parsed.ok())
        return make_error(parsed.error().code, prefix + ": " + parsed.error().message);
      scenario = std::move(parsed.value());
      scenario.generate_arrivals = false;
      have_header = true;
      continue;
    }
    if (!have_header)
      return make_error(Errc::protocol_error,
                        path + ": not a scenario recording (no header record)");
    // Metro journals carry region-scoped entries; parse them with the
    // header's federation grammar.
    const FederationSpec* fed =
        scenario.topology == "metro" ? &scenario.federation : nullptr;
    if (kind.value() == kRequestRecord) {
      const json::Value* doc = record.find("doc");
      if (doc == nullptr)
        return make_error(Errc::protocol_error, prefix + ": missing doc");
      Result<ScenarioRequest> request = request_from_json(*doc, fed);
      if (!request.ok())
        return make_error(request.error().code, prefix + ": " + request.error().message);
      scenario.requests.push_back(std::move(request.value()));
    } else if (kind.value() == kEventRecord) {
      const json::Value* doc = record.find("doc");
      if (doc == nullptr)
        return make_error(Errc::protocol_error, prefix + ": missing doc");
      Result<ScenarioEvent> event = event_from_json(*doc, fed);
      if (!event.ok())
        return make_error(event.error().code, prefix + ": " + event.error().message);
      scenario.events.push_back(std::move(event.value()));
    } else if (kind.value() == kEndRecord) {
      // Informational; the scenario's own duration bounds the replay.
    } else {
      return make_error(Errc::protocol_error,
                        prefix + ": unknown record kind '" + kind.value() + "'");
    }
  }
  return scenario;
}

}  // namespace slices::scenario
