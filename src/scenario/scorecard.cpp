#include "scenario/scorecard.hpp"

namespace slices::scenario {

Percentiles Percentiles::of(const telemetry::Histogram& hist, double scale) {
  Percentiles out;
  out.count = hist.count();
  if (hist.empty()) return out;
  out.mean = static_cast<double>(hist.sum()) / static_cast<double>(hist.count()) * scale;
  out.p50 = hist.value_at_quantile(0.50) * scale;
  out.p90 = hist.value_at_quantile(0.90) * scale;
  out.p99 = hist.value_at_quantile(0.99) * scale;
  out.min = static_cast<double>(hist.minimum()) * scale;
  out.max = static_cast<double>(hist.maximum()) * scale;
  return out;
}

json::Value Percentiles::to_json() const {
  json::Object out;
  out.emplace("count", static_cast<double>(count));
  out.emplace("mean", mean);
  out.emplace("p50", p50);
  out.emplace("p90", p90);
  out.emplace("p99", p99);
  out.emplace("min", min);
  out.emplace("max", max);
  return json::Value(std::move(out));
}

json::Value Scorecard::to_json() const {
  json::Object admission;
  admission.emplace("submitted", static_cast<double>(submitted));
  admission.emplace("admitted", static_cast<double>(admitted));
  admission.emplace("rejected", static_cast<double>(rejected));
  admission.emplace("rate", admission_rate);

  json::Object lifecycle;
  lifecycle.emplace("active_at_end", static_cast<double>(active_at_end));
  lifecycle.emplace("expired", static_cast<double>(expired));
  lifecycle.emplace("terminated", static_cast<double>(terminated));

  json::Object sla;
  sla.emplace("served_epochs", static_cast<double>(served_epochs));
  sla.emplace("violation_epochs", static_cast<double>(violation_epochs));
  sla.emplace("violation_rate", violation_rate);

  json::Object revenue;
  revenue.emplace("earned_cents", static_cast<double>(earned_cents));
  revenue.emplace("penalty_cents", static_cast<double>(penalty_cents));
  revenue.emplace("net_cents", static_cast<double>(net_cents));

  json::Object overbooking;
  overbooking.emplace("multiplexing_gain_mean", multiplexing_gain_mean);
  overbooking.emplace("multiplexing_gain_peak", multiplexing_gain_peak);
  overbooking.emplace("reconfigurations", static_cast<double>(reconfigurations));

  json::Object ops;
  ops.emplace("epochs", static_cast<double>(epochs));
  ops.emplace("events_injected", static_cast<double>(events_injected));
  ops.emplace("ue_arrivals", static_cast<double>(ue_arrivals));
  ops.emplace("ue_blocked", static_cast<double>(ue_blocked));

  json::Object latency;
  latency.emplace("install_ms", install_ms.to_json());
  latency.emplace("active_slices", active_slices.to_json());
  latency.emplace("reserved_mbps", reserved_mbps.to_json());

  json::Object targets;
  targets.emplace("met", targets_met);
  json::Array failures;
  for (const std::string& f : target_failures) failures.push_back(json::Value(f));
  targets.emplace("failures", std::move(failures));

  json::Object out;
  out.emplace("scenario", scenario);
  out.emplace("seed", static_cast<double>(seed));
  out.emplace("duration_hours", duration_hours);
  out.emplace("admission", std::move(admission));
  out.emplace("lifecycle", std::move(lifecycle));
  out.emplace("sla", std::move(sla));
  out.emplace("revenue", std::move(revenue));
  out.emplace("overbooking", std::move(overbooking));
  out.emplace("ops", std::move(ops));
  out.emplace("distributions", std::move(latency));
  if (mobility_enabled) {
    json::Object mobility;
    mobility.emplace("handover_attempts", static_cast<double>(handover_attempts));
    mobility.emplace("handover_successes", static_cast<double>(handover_successes));
    mobility.emplace("handover_drops", static_cast<double>(handover_drops));
    mobility.emplace("exits", static_cast<double>(mobility_exits));
    mobility.emplace("roamers_admitted", static_cast<double>(roamers_admitted));
    mobility.emplace("roamers_dropped", static_cast<double>(roamers_dropped));
    mobility.emplace("population_at_end", static_cast<double>(mobile_ues_at_end));
    out.emplace("mobility", std::move(mobility));
  }
  out.emplace("targets", std::move(targets));
  if (epoch_wall_us) out.emplace("wall_profile", json::Object{{"epoch_us", epoch_wall_us->to_json()}});
  return json::Value(std::move(out));
}

std::string Scorecard::serialize() const {
  return json::serialize_pretty(to_json()) + "\n";
}

}  // namespace slices::scenario
