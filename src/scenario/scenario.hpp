#pragma once
// Declarative end-to-end scenario DSL (docs/scenarios.md).
//
// A scenario is one JSON document describing everything a reproducible
// experiment needs: the topology preset, orchestrator tuning, a
// stochastic workload (possibly phase- and diurnally-modulated), a
// timeline of injected failures (link/cell/datacenter outages,
// controller restarts, UE churn storms), optional explicit requests
// (used by record/replay) and pass/fail targets for the scorecard.
//
// Parsing is strict: unknown keys, duplicate keys, out-of-range rates
// and overlapping phases are rejected with line- or field-precise
// messages ("events[3].period_minutes must be > 0"), never silently
// defaulted. serialize_scenario() is canonical — parsing its output
// reproduces the same Scenario, which the round-trip tests rely on.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "core/orchestrator.hpp"
#include "core/request_generator.hpp"
#include "core/slice.hpp"
#include "json/value.hpp"
#include "mobility/model.hpp"
#include "traffic/verticals.hpp"

namespace slices::scenario {

/// Failure/chaos event kinds injectable on the simulation clock.
enum class EventKind {
  link_down,           ///< take a transport link down (optionally auto-restore)
  link_up,             ///< bring a link back
  link_flap,           ///< `count` down/up cycles of period `flap_period`
  cell_down,           ///< deactivate an eNB cell (optionally auto-restore)
  cell_up,             ///< reactivate a cell
  dc_down,             ///< fail a datacenter site; live slices there are torn down
  dc_up,               ///< recover a datacenter
  controller_restart,  ///< suspend the orchestration loop for `duration`
  churn_storm,         ///< burst of UE arrivals on every active slice
};

[[nodiscard]] std::string_view to_string(EventKind k) noexcept;

/// One timeline entry. Which fields are meaningful depends on `kind`
/// (see docs/scenarios.md); parse-time validation enforces it.
struct ScenarioEvent {
  Duration at;                       ///< injection time from scenario start
  EventKind kind = EventKind::link_down;
  std::string target;                ///< link ("mmwave"/"uwave"), cell ("a"/"b") or dc ("edge"/"core")
  Duration duration;                 ///< auto-restore delay / restart & storm length; zero = none
  int flap_count = 0;                ///< link_flap: number of down/up cycles
  Duration flap_period;              ///< link_flap: cycle period
  Duration flap_down;                ///< link_flap: down time per cycle (< period)
  double storm_ues_per_hour = 0.0;   ///< churn_storm: per-slice arrival rate
  Duration storm_mean_holding;       ///< churn_storm: mean UE holding time
  /// Metro topologies only: the region ("r0".."rN-1") the fault hits.
  /// Empty on "fig2" scenarios — single-region semantics are unchanged
  /// and fig2 documents serialize byte-identically to before.
  std::string region;
};

/// A workload phase: a time window that overrides the Poisson arrival
/// rate and/or scales every active slice's offered demand (a surge).
struct Phase {
  std::string name;
  Duration start;
  Duration end;
  /// Arrival rate inside the window; < 0 inherits the workload base rate.
  double arrivals_per_hour = -1.0;
  /// Multiplier on every slice's offered demand inside the window.
  double demand_scale = 1.0;
};

/// One explicit request (replay path — recorded streams replay these
/// instead of re-drawing from the generator).
struct ScenarioRequest {
  Duration at;                        ///< submission time from scenario start
  core::SliceSpec spec;
  std::uint64_t workload_seed = 0;    ///< seeds the demand model (traffic::make_traffic)
  /// Metro topologies only: home region of the tenant ("r0".."rN-1");
  /// empty lets the federation broker draw one deterministically.
  std::string region;
};

/// Federated (metro) deployment shape; meaningful only when
/// Scenario::topology == "metro". Defaults describe a small 4-region
/// city; bench_s1 scales the same generator to 1024+ cells.
struct FederationSpec {
  std::size_t regions = 4;
  std::size_t cells_per_region = 16;
  std::size_t edge_dcs_per_region = 1;  ///< plus one core DC per region
  std::size_t hosts_per_dc = 2;
  std::string backbone = "ring";        ///< inter-region fabric: "ring" | "mesh"
  double backbone_gbps = 40.0;          ///< capacity of each backbone leg
};

/// One scheduled mobility storm (the `mobility.storms[]` array).
struct MobilityStorm {
  mobility::StormKind kind = mobility::StormKind::stadium_ingress;
  Duration at;              ///< window start, from scenario start
  Duration duration;        ///< window length
  double fraction = 0.25;   ///< participating share of each region's UEs
  /// Stadium focus cell — "a"/"b" on fig2, "c<k>" on metro; empty =
  /// first cell. Not accepted on commuter waves (they target a border).
  std::string cell;
  /// Metro only: region the storm hits; empty = every region.
  std::string region;
};

/// The `mobility` block: moving-UE populations and their storms.
/// Meaningful only when `enabled` (a document without the block keeps
/// the static-UE behaviour and its exact byte layout).
struct MobilitySpec {
  bool enabled = false;
  double cell_spacing_m = 500.0;     ///< cell-grid pitch of each region
  double default_speed_mps = 1.4;    ///< pedestrian default
  std::size_t ues_per_slice = 50;    ///< mobile population per admitted slice
  int cqi_min = 5;                   ///< spawn-time CQI draw range
  int cqi_max = 15;
  /// Per-vertical speed overrides (m/s), canonical order of
  /// traffic::all_verticals().
  std::vector<std::pair<traffic::Vertical, double>> speed_classes;
  std::vector<MobilityStorm> storms;
};

/// Pass/fail thresholds evaluated against the final scorecard. Any
/// unset target is not checked.
struct ScenarioTargets {
  std::optional<double> min_admission_rate;     ///< admitted / decided, in [0,1]
  std::optional<double> max_violation_rate;     ///< violation epochs / served epochs
  std::optional<double> min_net_revenue;        ///< monetary units
  std::optional<double> min_multiplexing_gain;  ///< mean contracted/reserved

  [[nodiscard]] bool any() const noexcept {
    return min_admission_rate || max_violation_rate || min_net_revenue ||
           min_multiplexing_gain;
  }
};

/// The parsed scenario document.
struct Scenario {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;
  Duration duration = Duration::hours(24.0);
  std::string topology = "fig2";        ///< "fig2" (testbed) or "metro" (federated)
  /// Metro shape; defaults apply when topology == "metro" and the
  /// document has no "federation" object. Ignored on "fig2".
  FederationSpec federation;
  core::OrchestratorConfig orchestrator;
  /// Stochastic workload; `rate_schedule` stays empty here — phases are
  /// compiled into a schedule by the runner.
  core::RequestGeneratorConfig workload;
  /// Moving-UE population; disabled unless the document has a
  /// "mobility" block.
  MobilitySpec mobility;
  /// False for recorded scenarios: only `requests` are submitted.
  bool generate_arrivals = true;
  std::vector<Phase> phases;
  std::vector<ScenarioEvent> events;
  std::vector<ScenarioRequest> requests;
  ScenarioTargets targets;
};

/// Parse a scenario document. JSON syntax errors are protocol_error
/// with "line L, column C"; semantic errors are invalid_argument with
/// the offending field path. Duplicate object keys are rejected.
[[nodiscard]] Result<Scenario> parse_scenario(std::string_view text);

/// Same, from an already-parsed document (record/replay path).
[[nodiscard]] Result<Scenario> scenario_from_json(const json::Value& doc);

/// Canonical JSON form: every field explicit, sorted keys. Parsing the
/// output reproduces the same Scenario.
[[nodiscard]] json::Value scenario_to_json(const Scenario& scenario);

/// Pretty-printed scenario_to_json() with a trailing newline.
[[nodiscard]] std::string serialize_scenario(const Scenario& scenario);

/// Read + parse a scenario file. Errors: unavailable (I/O), plus parse
/// errors prefixed with the path.
[[nodiscard]] Result<Scenario> load_scenario_file(const std::string& path);

// Per-entry converters, shared with the recorder (journal records carry
// the same JSON shapes as the DSL arrays).
[[nodiscard]] json::Value event_to_json(const ScenarioEvent& event);
[[nodiscard]] json::Value request_to_json(const ScenarioRequest& request);
[[nodiscard]] Result<ScenarioEvent> event_from_json(const json::Value& doc);
[[nodiscard]] Result<ScenarioRequest> request_from_json(const json::Value& doc);

// Grammar-selecting variants: `fed` != nullptr parses with metro
// semantics (region-scoped targets, optional request homes). The
// recorder uses these to replay metro journals; nullptr behaves exactly
// like the overloads above.
[[nodiscard]] Result<ScenarioEvent> event_from_json(const json::Value& doc,
                                                    const FederationSpec* fed);
[[nodiscard]] Result<ScenarioRequest> request_from_json(const json::Value& doc,
                                                        const FederationSpec* fed);

}  // namespace slices::scenario
