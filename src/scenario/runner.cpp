#include "scenario/runner.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/rng.hpp"
#include "telemetry/trace.hpp"
#include "traffic/verticals.hpp"

namespace slices::scenario {
namespace {

// Decouples the request-generator stream from the testbed's fading
// stream (both derive from the scenario seed).
constexpr std::uint64_t kWorkloadSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kStormSalt = 0xbf58476d1ce4e5b9ull;

std::string format_rate(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", v);
  return buffer;
}

}  // namespace

ScenarioRunner::ScenarioRunner(Scenario scenario, RunOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {}

std::vector<core::RatePoint> ScenarioRunner::build_rate_schedule() const {
  const double base = scenario_.workload.arrivals_per_hour;
  std::vector<const Phase*> rated;
  for (const Phase& phase : scenario_.phases) {
    if (phase.arrivals_per_hour >= 0.0) rated.push_back(&phase);
  }
  std::vector<core::RatePoint> schedule;
  for (std::size_t i = 0; i < rated.size(); ++i) {
    schedule.push_back({rated[i]->start, rated[i]->arrivals_per_hour});
    // Reset to the base rate at the phase end unless the next rated
    // phase begins exactly there (phases are sorted and disjoint).
    if (i + 1 == rated.size() || rated[i + 1]->start > rated[i]->end) {
      schedule.push_back({rated[i]->end, base});
    }
  }
  return schedule;
}

Result<Scorecard> ScenarioRunner::run() {
  if (ran_) return make_error(Errc::conflict, "scenario runner is single-use");
  if (scenario_.topology != "fig2") {
    return make_error(Errc::invalid_argument,
                      "topology '" + scenario_.topology +
                          "' is federated — drive it with federation::FederatedRunner");
  }
  ran_ = true;

  core::OrchestratorConfig config = scenario_.orchestrator;
  config.epoch_threads = options_.epoch_threads == 0 ? 1 : options_.epoch_threads;
  const bool previous_wall = telemetry::trace::wall_clock();
  if (options_.wall_profile) telemetry::trace::set_wall_clock(true);

  testbed_ = core::make_testbed(scenario_.seed, config);
  end_ = SimTime::origin() + scenario_.duration;
  if (scenario_.mobility.enabled) build_mobility();

  std::vector<traffic::PiecewiseEnvelope::Segment> segments;
  for (const Phase& phase : scenario_.phases) {
    if (phase.demand_scale != 1.0) {
      segments.push_back({SimTime::origin() + phase.start, SimTime::origin() + phase.end,
                          phase.demand_scale});
    }
  }
  if (!segments.empty()) {
    envelope_ = std::make_shared<const traffic::PiecewiseEnvelope>(std::move(segments));
  }

  if (!options_.record_path.empty()) {
    Result<std::unique_ptr<ScenarioRecorder>> recorder =
        ScenarioRecorder::create(options_.record_path, scenario_);
    if (!recorder.ok()) return recorder.error();
    recorder_ = std::move(recorder.value());
  }

  if (scenario_.generate_arrivals) {
    core::RequestGeneratorConfig workload = scenario_.workload;
    workload.rate_schedule = build_rate_schedule();
    const bool has_rate = workload.arrivals_per_hour > 0.0 || !workload.rate_schedule.empty();
    if (has_rate) {
      generator_ = std::make_unique<core::RequestGenerator>(std::move(workload),
                                                            Rng(scenario_.seed ^ kWorkloadSalt));
      schedule_arrival();
    }
  }

  // Events before requests: in a live run every arrival is scheduled
  // dynamically (after the pre-scheduled injections), so a replayed
  // request that shares a timestamp with an injection must also fire
  // after it to reproduce the original execution order.
  for (const ScenarioEvent& event : scenario_.events) schedule_event(event);

  for (const ScenarioRequest& request : scenario_.requests) {
    testbed_->simulator.schedule_at(SimTime::origin() + request.at, [this, &request] {
      submit_request(request.spec, request.workload_seed);
    });
  }

  // Registered after make_testbed() started the orchestrator's epoch
  // periodic with the same period and offset, so at every shared
  // timestamp the epoch runs first and this sampler observes its
  // result (FIFO tiebreak among same-time events).
  testbed_->simulator.add_periodic(
      config.monitoring_period, [this](SimTime now) { sample(now); },
      config.monitoring_period);

  testbed_->simulator.run_until(end_);

  stop_storms();
  Scorecard card = finalize();
  evaluate_targets(card);

  if (options_.wall_profile) {
    if (const telemetry::Histogram* wall =
            testbed_->registry.find_histogram("orchestrator.epoch_us");
        wall != nullptr && !wall->empty()) {
      card.epoch_wall_us = Percentiles::of(*wall);
    }
  }
  telemetry::trace::set_wall_clock(previous_wall);

  if (recorder_) {
    if (Result<void> r = recorder_->finish(end_); !r.ok()) return r.error();
  }
  return card;
}

void ScenarioRunner::schedule_arrival() {
  const SimTime now = testbed_->simulator.now();
  const Duration gap = generator_->next_interarrival(now);
  const SimTime at = now + gap;
  if (at > end_) return;
  testbed_->simulator.schedule_at(at, [this] {
    core::GeneratedRequest request = generator_->next_request();
    submit_request(request.spec, request.workload_seed);
    schedule_arrival();
  });
}

void ScenarioRunner::submit_request(const core::SliceSpec& spec, std::uint64_t workload_seed) {
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  if (orchestrator->suspended()) {
    // Control plane down: the request queues at the northbound API and
    // lands the moment the loop resumes.
    deferred_.push_back({spec, workload_seed});
    return;
  }
  if (recorder_) {
    (void)recorder_->record_request(testbed_->simulator.now(), spec, workload_seed);
  }
  std::unique_ptr<traffic::TrafficModel> workload =
      traffic::make_traffic(spec.vertical, Rng(workload_seed));
  if (envelope_) {
    workload = std::make_unique<traffic::ModulatedTraffic>(std::move(workload), envelope_);
  }
  ++submitted_;
  orchestrator->submit(spec, std::move(workload));
}

void ScenarioRunner::flush_deferred() {
  std::vector<Deferred> pending;
  pending.swap(deferred_);
  for (const Deferred& d : pending) submit_request(d.spec, d.workload_seed);
}

void ScenarioRunner::record_action(const ScenarioEvent& event) {
  ++events_injected_;
  if (recorder_) (void)recorder_->record_event(event);
}

void ScenarioRunner::schedule_event(const ScenarioEvent& event) {
  sim::Simulator& sim = testbed_->simulator;
  const SimTime base = SimTime::origin() + event.at;
  switch (event.kind) {
    case EventKind::link_down:
      sim.schedule_at(base, [this, target = event.target] { apply_link(target, false); });
      if (event.duration > Duration::zero()) {
        sim.schedule_at(base + event.duration,
                        [this, target = event.target] { apply_link(target, true); });
      }
      break;
    case EventKind::link_up:
      sim.schedule_at(base, [this, target = event.target] { apply_link(target, true); });
      break;
    case EventKind::link_flap:
      for (int k = 0; k < event.flap_count; ++k) {
        const SimTime down_at = base + event.flap_period * static_cast<double>(k);
        sim.schedule_at(down_at, [this, target = event.target] { apply_link(target, false); });
        sim.schedule_at(down_at + event.flap_down,
                        [this, target = event.target] { apply_link(target, true); });
      }
      break;
    case EventKind::cell_down:
      sim.schedule_at(base, [this, target = event.target] { apply_cell(target, false); });
      if (event.duration > Duration::zero()) {
        sim.schedule_at(base + event.duration,
                        [this, target = event.target] { apply_cell(target, true); });
      }
      break;
    case EventKind::cell_up:
      sim.schedule_at(base, [this, target = event.target] { apply_cell(target, true); });
      break;
    case EventKind::dc_down:
      sim.schedule_at(base, [this, target = event.target] { apply_dc(target, false); });
      if (event.duration > Duration::zero()) {
        sim.schedule_at(base + event.duration,
                        [this, target = event.target] { apply_dc(target, true); });
      }
      break;
    case EventKind::dc_up:
      sim.schedule_at(base, [this, target = event.target] { apply_dc(target, true); });
      break;
    case EventKind::controller_restart:
      sim.schedule_at(base, [this, duration = event.duration] { apply_restart(duration); });
      break;
    case EventKind::churn_storm:
      sim.schedule_at(base, [this, event] { start_storm(event); });
      sim.schedule_at(base + event.duration, [this] { stop_storms(); });
      break;
  }
}

void ScenarioRunner::apply_link(const std::string& name, bool up) {
  const LinkId link = name == "mmwave" ? testbed_->mmwave_uplink : testbed_->uwave_uplink;
  (void)testbed_->transport->set_link_up(link, up);
  testbed_->orchestrator->note_fault("link." + name, !up,
                                     up ? "link restored" : "link down",
                                     {{"link", json::Value(name)}});
  ScenarioEvent action;
  action.at = testbed_->simulator.now() - SimTime::origin();
  action.kind = up ? EventKind::link_up : EventKind::link_down;
  action.target = name;
  record_action(action);
}

void ScenarioRunner::apply_cell(const std::string& name, bool up) {
  const CellId cell = name == "a" ? testbed_->cell_a : testbed_->cell_b;
  (void)testbed_->ran.set_cell_active(cell, up);
  testbed_->orchestrator->note_fault("cell." + name, !up,
                                     up ? "cell reactivated" : "cell outage",
                                     {{"cell", json::Value(name)}});
  ScenarioEvent action;
  action.at = testbed_->simulator.now() - SimTime::origin();
  action.kind = up ? EventKind::cell_up : EventKind::cell_down;
  action.target = name;
  record_action(action);
}

void ScenarioRunner::apply_dc(const std::string& name, bool up) {
  const DatacenterId dc = name == "edge" ? testbed_->edge_dc : testbed_->core_dc;
  (void)testbed_->cloud.set_datacenter_available(dc, up);
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  if (!up) {
    // A failed site loses its VNFs: every live slice embedded there is
    // torn down (tenants must re-request; the broker keeps the revenue
    // already accrued).
    for (const core::SliceRecord* record : orchestrator->all_slices()) {
      if (record->is_live() && record->embedding.datacenter == dc) {
        (void)orchestrator->terminate(record->id);
      }
    }
  }
  orchestrator->note_fault("dc." + name, !up, up ? "datacenter recovered" : "datacenter failed",
                           {{"dc", json::Value(name)}});
  ScenarioEvent action;
  action.at = testbed_->simulator.now() - SimTime::origin();
  action.kind = up ? EventKind::dc_up : EventKind::dc_down;
  action.target = name;
  record_action(action);
}

void ScenarioRunner::apply_restart(Duration duration) {
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  orchestrator->set_suspended(true);
  orchestrator->note_fault("controller", true, "control plane restarting");
  ScenarioEvent action;
  action.at = testbed_->simulator.now() - SimTime::origin();
  action.kind = EventKind::controller_restart;
  action.duration = duration;
  record_action(action);
  testbed_->simulator.schedule_after(duration, [this] {
    testbed_->orchestrator->set_suspended(false);
    testbed_->orchestrator->note_fault("controller", false, "control plane back");
    flush_deferred();
  });
}

void ScenarioRunner::start_storm(const ScenarioEvent& event) {
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  core::UePopulationConfig config;
  config.arrivals_per_hour = event.storm_ues_per_hour;
  config.mean_holding = event.storm_mean_holding;
  ++storm_seq_;
  for (const core::SliceRecord* record : orchestrator->all_slices()) {
    if (record->state != core::SliceState::active) continue;
    const std::uint64_t seed =
        scenario_.seed ^ (kWorkloadSalt * storm_seq_) ^ (kStormSalt * record->id.value());
    auto population = std::make_unique<core::UePopulation>(
        &testbed_->simulator, &testbed_->ran, testbed_->epc.get(), record->id,
        record->embedding.plmn, config, Rng(seed));
    population->start();
    storm_populations_.push_back(std::move(population));
  }
  orchestrator->note_fault("churn", true,
                           "UE churn storm (" + format_rate(event.storm_ues_per_hour) +
                               " UEs/h per slice)");
  ScenarioEvent action = event;
  action.at = testbed_->simulator.now() - SimTime::origin();
  record_action(action);
}

void ScenarioRunner::stop_storms() {
  if (storm_populations_.empty()) return;
  for (const std::unique_ptr<core::UePopulation>& population : storm_populations_) {
    population->stop();
    ue_arrivals_ += population->total_arrivals();
    ue_blocked_ += population->total_blocked();
  }
  storm_populations_.clear();
  testbed_->orchestrator->note_fault("churn", false, "storm over");
}

void ScenarioRunner::build_mobility() {
  const MobilitySpec& mob = scenario_.mobility;
  mobility::FieldConfig config;
  config.cell_spacing_m = mob.cell_spacing_m;
  config.default_speed_mps = mob.default_speed_mps;
  config.ues_per_slice = mob.ues_per_slice;
  config.cqi_min = mob.cqi_min;
  config.cqi_max = mob.cqi_max;
  config.seed = scenario_.seed;
  field_ = std::make_unique<mobility::Field>(config, &testbed_->ran, testbed_->pool.get());
  for (const MobilityStorm& storm : scenario_.mobility.storms) {
    // Fig. 2 has exactly the two MOCN cells: "a" is grid cell 0, "b" is 1.
    const std::size_t cell = storm.cell == "b" ? 1 : 0;
    field_->add_storm(storm.kind, SimTime::origin() + storm.at,
                      SimTime::origin() + storm.at + storm.duration, storm.fraction, cell);
  }
}

void ScenarioRunner::step_mobility(SimTime now) {
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  std::vector<PlmnId> live;
  std::vector<traffic::Vertical> verticals;
  for (const core::SliceRecord* record : orchestrator->all_slices()) {
    if (record->state != core::SliceState::active) continue;
    live.push_back(record->embedding.plmn);
    verticals.push_back(record->spec.vertical);
  }
  const MobilitySpec& mob = scenario_.mobility;
  const auto speed_of = [&](PlmnId plmn) -> double {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i] != plmn) continue;
      for (const auto& [vertical, speed] : mob.speed_classes) {
        if (vertical == verticals[i]) return speed;
      }
      break;
    }
    return 0.0;  // take the configured default
  };
  field_->sync_population(live, speed_of);
  field_->step(now);
  (void)field_->apply(now);
}

void ScenarioRunner::sample(SimTime now) {
  // UEs keep moving (and handing over, RAN-side) even while the
  // orchestration loop is restarting — mobility precedes the early-out.
  if (field_) step_mobility(now);
  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  for (const core::Event& event : orchestrator->events().since(last_event_seq_)) {
    last_event_seq_ = event.sequence;
    if (event.kind == core::EventKind::slice_admitted) {
      const auto it = event.fields.find("install_s");
      if (it != event.fields.end() && it->second.is_number()) {
        install_hist_.record(
            static_cast<std::uint64_t>(std::llround(it->second.as_number() * 1e6)));
      }
    }
  }
  if (orchestrator->suspended()) return;  // no epoch ran at this tick
  ++epochs_;
  const core::OrchestratorSummary summary = orchestrator->summary();
  active_hist_.record(summary.active_slices);
  const double reserved = summary.reserved_total.as_mbps();
  reserved_hist_.record(
      static_cast<std::uint64_t>(std::llround(reserved < 0.0 ? 0.0 : reserved)));
  gain_sum_ += summary.multiplexing_gain;
  ++gain_samples_;
  if (summary.multiplexing_gain > gain_peak_) gain_peak_ = summary.multiplexing_gain;
}

Scorecard ScenarioRunner::finalize() {
  Scorecard card;
  card.scenario = scenario_.name;
  card.seed = scenario_.seed;
  card.duration_hours = scenario_.duration.as_hours();

  core::Orchestrator* orchestrator = testbed_->orchestrator.get();
  const core::OrchestratorSummary summary = orchestrator->summary();
  card.submitted = submitted_;
  card.admitted = summary.admitted_total;
  card.rejected = summary.rejected_total;
  const std::uint64_t decided = card.admitted + card.rejected;
  card.admission_rate =
      decided == 0 ? 0.0 : static_cast<double>(card.admitted) / static_cast<double>(decided);

  for (const core::SliceRecord* record : orchestrator->all_slices()) {
    card.served_epochs += record->served_epochs;
    card.violation_epochs += record->violation_epochs;
    switch (record->state) {
      case core::SliceState::installing:
      case core::SliceState::active: ++card.active_at_end; break;
      case core::SliceState::expired: ++card.expired; break;
      case core::SliceState::terminated: ++card.terminated; break;
      case core::SliceState::pending:
      case core::SliceState::rejected: break;
    }
  }
  card.violation_rate = card.served_epochs == 0
                            ? 0.0
                            : static_cast<double>(card.violation_epochs) /
                                  static_cast<double>(card.served_epochs);

  card.earned_cents = summary.earned.as_cents();
  card.penalty_cents = summary.penalties.as_cents();
  card.net_cents = summary.net.as_cents();

  card.multiplexing_gain_mean =
      gain_samples_ == 0 ? 1.0 : gain_sum_ / static_cast<double>(gain_samples_);
  card.multiplexing_gain_peak = gain_peak_;
  card.reconfigurations = summary.reconfigurations;

  card.epochs = epochs_;
  card.events_injected = events_injected_;
  card.ue_arrivals = ue_arrivals_;
  card.ue_blocked = ue_blocked_;

  card.install_ms = Percentiles::of(install_hist_, 1e-3);
  card.active_slices = Percentiles::of(active_hist_);
  card.reserved_mbps = Percentiles::of(reserved_hist_);

  if (field_) {
    card.mobility_enabled = true;
    const ran::HandoverStats& handovers = testbed_->ran.handover_totals();
    card.handover_attempts = handovers.attempts;
    card.handover_successes = handovers.successes;
    card.handover_drops = handovers.drops;
    card.mobility_exits = field_->exits_total();
    card.roamers_admitted = field_->roamers_admitted();
    card.roamers_dropped = field_->roamers_dropped();
    card.mobile_ues_at_end = field_->population();
  }
  return card;
}

void ScenarioRunner::evaluate_targets(Scorecard& card) const {
  const ScenarioTargets& targets = scenario_.targets;
  const auto fail = [&card](std::string why) {
    card.targets_met = false;
    card.target_failures.push_back(std::move(why));
  };
  if (targets.min_admission_rate && card.admission_rate < *targets.min_admission_rate) {
    fail("admission rate " + format_rate(card.admission_rate) + " < target " +
         format_rate(*targets.min_admission_rate));
  }
  if (targets.max_violation_rate && card.violation_rate > *targets.max_violation_rate) {
    fail("violation rate " + format_rate(card.violation_rate) + " > target " +
         format_rate(*targets.max_violation_rate));
  }
  if (targets.min_net_revenue &&
      static_cast<double>(card.net_cents) / 100.0 < *targets.min_net_revenue) {
    fail("net revenue " + format_rate(static_cast<double>(card.net_cents) / 100.0) +
         " < target " + format_rate(*targets.min_net_revenue));
  }
  if (targets.min_multiplexing_gain &&
      card.multiplexing_gain_mean < *targets.min_multiplexing_gain) {
    fail("multiplexing gain " + format_rate(card.multiplexing_gain_mean) + " < target " +
         format_rate(*targets.min_multiplexing_gain));
  }
}

}  // namespace slices::scenario
