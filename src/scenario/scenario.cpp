#include "scenario/scenario.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "core/config_io.hpp"
#include "traffic/verticals.hpp"

namespace slices::scenario {
namespace {

using json::Object;
using json::Value;

// Sanity bounds: generous enough for any plausible experiment, tight
// enough that a mistyped exponent fails loudly instead of hanging the
// simulator in a billion-arrival loop.
constexpr double kMaxArrivalRate = 1.0e5;     // per hour
constexpr double kMaxDurationHours = 8784.0;  // one leap year
constexpr double kMaxDemandScale = 1.0e3;

Error bad(std::string why) { return make_error(Errc::invalid_argument, std::move(why)); }

std::string path_key(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

Result<void> check_keys(const Object& obj, const std::string& path,
                        std::set<std::string_view> allowed) {
  for (const auto& [key, value] : obj) {
    if (!allowed.contains(key)) return bad(path_key(path, key) + ": unknown key");
  }
  return {};
}

// Duration fields are authored as human-friendly doubles. llround (not
// truncation) makes serialize -> parse recover the exact microsecond
// count, which the canonical round-trip contract needs.
Duration hours_dur(double v) { return Duration::micros(std::llround(v * 3.6e9)); }
Duration minutes_dur(double v) { return Duration::micros(std::llround(v * 6.0e7)); }
Duration millis_dur(double v) { return Duration::micros(std::llround(v * 1.0e3)); }

/// Optional finite number in [lo, hi]; `fallback` when the key is absent.
Result<double> number_in(const Object& obj, const std::string& path, std::string_view key,
                         double fallback, double lo, double hi, const char* domain) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  if (!it->second.is_number()) return bad(path_key(path, key) + ": must be a number");
  const double v = it->second.as_number();
  if (!std::isfinite(v) || v < lo || v > hi)
    return bad(path_key(path, key) + ": must be " + domain);
  return v;
}

Result<double> require_number(const Object& obj, const std::string& path, std::string_view key,
                              double lo, double hi, const char* domain) {
  if (!obj.contains(key)) return bad(path_key(path, key) + ": required");
  return number_in(obj, path, key, 0.0, lo, hi, domain);
}

Result<std::string> string_in(const Object& obj, const std::string& path, std::string_view key,
                              std::string fallback) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  if (!it->second.is_string()) return bad(path_key(path, key) + ": must be a string");
  return it->second.as_string();
}

Result<bool> bool_in(const Object& obj, const std::string& path, std::string_view key,
                     bool fallback) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  if (!it->second.is_bool()) return bad(path_key(path, key) + ": must be a boolean");
  return it->second.as_bool();
}

/// u64 field accepting a non-negative integer number (exact up to 2^53)
/// or a decimal string (full 64-bit range — workload seeds are raw RNG
/// words that do not fit a JSON double).
Result<std::uint64_t> u64_in(const Object& obj, const std::string& path, std::string_view key,
                             std::uint64_t fallback) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  const Value& v = it->second;
  if (v.is_number()) {
    const double d = v.as_number();
    if (!std::isfinite(d) || d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
      return bad(path_key(path, key) + ": must be a non-negative integer (use a string above 2^53)");
    return static_cast<std::uint64_t>(d);
  }
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
      return bad(path_key(path, key) + ": must be a decimal integer string");
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
      return bad(path_key(path, key) + ": out of 64-bit range");
    return static_cast<std::uint64_t>(parsed);
  }
  return bad(path_key(path, key) + ": must be an integer or decimal string");
}

/// Seeds below 2^53 serialize as plain numbers (readable); larger ones
/// as decimal strings (exact).
Value u64_to_json(std::uint64_t v) {
  if (v <= (1ull << 53)) return Value(static_cast<double>(v));
  return Value(std::to_string(v));
}

Result<traffic::Vertical> vertical_in(const Object& obj, const std::string& path,
                                      std::string_view key) {
  const Result<std::string> name = string_in(obj, path, key, "");
  if (!name.ok()) return name.error();
  if (name.value().empty()) return bad(path_key(path, key) + ": required");
  for (const traffic::Vertical v : traffic::all_verticals()) {
    if (traffic::to_string(v) == name.value()) return v;
  }
  return bad(path_key(path, key) + ": unknown vertical '" + name.value() + "'");
}

EventKind kAllKinds[] = {EventKind::link_down, EventKind::link_up,     EventKind::link_flap,
                         EventKind::cell_down, EventKind::cell_up,     EventKind::dc_down,
                         EventKind::dc_up,     EventKind::controller_restart,
                         EventKind::churn_storm};

Result<std::string> target_in(const Object& obj, const std::string& path, std::string_view key,
                              std::set<std::string_view> allowed) {
  const Result<std::string> name = string_in(obj, path, key, "");
  if (!name.ok()) return name.error();
  if (name.value().empty()) return bad(path_key(path, key) + ": required");
  if (!allowed.contains(name.value())) {
    std::string options;
    for (const std::string_view a : allowed) {
      if (!options.empty()) options += ", ";
      options += a;
    }
    return bad(path_key(path, key) + ": unknown name '" + name.value() + "' (expected one of " +
               options + ")");
  }
  return name.value();
}

/// Parses "<prefix><index>" with index < limit; returns the index.
Result<std::size_t> indexed_name(const std::string& path, std::string_view key,
                                 const std::string& name, std::string_view prefix,
                                 std::size_t limit) {
  const std::string where = path_key(path, key);
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix)
    return bad(where + ": expected \"" + std::string(prefix) + "<index>\", got '" + name + "'");
  const std::string digits = name.substr(prefix.size());
  if (digits.find_first_not_of("0123456789") != std::string::npos)
    return bad(where + ": expected \"" + std::string(prefix) + "<index>\", got '" + name + "'");
  const std::size_t index = static_cast<std::size_t>(std::strtoull(digits.c_str(), nullptr, 10));
  if (index >= limit)
    return bad(where + ": '" + name + "' out of range (" + std::string(prefix) + "0.." +
               std::string(prefix) + std::to_string(limit - 1) + ")");
  return index;
}

/// Required "region" key of a metro event/request: "r<i>", i < regions.
Result<std::string> region_in(const Object& obj, const std::string& path,
                              const FederationSpec& fed, bool required) {
  const Result<std::string> name = string_in(obj, path, "region", "");
  if (!name.ok()) return name.error();
  if (name.value().empty()) {
    if (required)
      return bad(path_key(path, "region") + ": required on a metro topology");
    return std::string();
  }
  if (Result<std::size_t> index =
          indexed_name(path, "region", name.value(), "r", fed.regions);
      !index.ok()) {
    return index.error();
  }
  return name.value();
}

/// Metro variant of an event: region-scoped cell/dc faults and
/// controller restarts. Link and churn events have no metro mapping
/// (the fabric generator names no individual backbone links) and are
/// rejected at parse time.
Result<ScenarioEvent> metro_event_from_json_at(const Object& obj, const std::string& path,
                                               ScenarioEvent event, const FederationSpec& fed) {
  std::set<std::string_view> allowed = {"kind", "at_hours", "region"};
  const Result<std::string> region = region_in(obj, path, fed, /*required=*/true);
  if (!region.ok()) return region.error();
  event.region = region.value();

  switch (event.kind) {
    case EventKind::cell_down:
    case EventKind::cell_up: {
      allowed.insert("cell");
      const Result<std::string> cell = string_in(obj, path, "cell", "");
      if (!cell.ok()) return cell.error();
      if (Result<std::size_t> index =
              indexed_name(path, "cell", cell.value(), "c", fed.cells_per_region);
          !index.ok()) {
        return index.error();
      }
      event.target = cell.value();
      break;
    }
    case EventKind::dc_down:
    case EventKind::dc_up: {
      allowed.insert("dc");
      const Result<std::string> dc = string_in(obj, path, "dc", "");
      if (!dc.ok()) return dc.error();
      if (dc.value() != "core") {
        if (Result<std::size_t> index =
                indexed_name(path, "dc", dc.value(), "edge", fed.edge_dcs_per_region);
            !index.ok()) {
          return bad(path_key(path, "dc") + ": expected \"core\" or \"edge<k>\", got '" +
                     dc.value() + "'");
        }
      }
      event.target = dc.value();
      break;
    }
    case EventKind::controller_restart:
      break;
    default:
      return bad(path_key(path, "kind") + ": '" + std::string(to_string(event.kind)) +
                 "' is not supported on the metro topology (cell_*, dc_* and "
                 "controller_restart only)");
  }

  switch (event.kind) {
    case EventKind::cell_down:
    case EventKind::dc_down: {
      allowed.insert("duration_hours");
      const Result<double> d = number_in(obj, path, "duration_hours", 0.0, 0.0,
                                         kMaxDurationHours, "in [0, 8784] hours");
      if (!d.ok()) return d.error();
      event.duration = hours_dur(d.value());
      break;
    }
    case EventKind::controller_restart: {
      allowed.insert("duration_minutes");
      const Result<double> d = require_number(obj, path, "duration_minutes", 1.0e-3, 1.0e6,
                                              "> 0 minutes");
      if (!d.ok()) return d.error();
      event.duration = minutes_dur(d.value());
      break;
    }
    default:
      break;
  }

  if (Result<void> r = check_keys(obj, path, allowed); !r.ok()) return r.error();
  return event;
}

Result<void> parse_federation(const Object& obj, FederationSpec& fed) {
  const std::string path = "federation";
  if (Result<void> r = check_keys(obj, path,
                                  {"regions", "cells_per_region", "edge_dcs_per_region",
                                   "hosts_per_dc", "backbone", "backbone_gbps"});
      !r.ok()) {
    return r.error();
  }
  const auto integer_in = [&](std::string_view key, std::size_t fallback, double lo, double hi,
                              const char* domain, std::size_t& out) -> Result<void> {
    const Result<double> v = number_in(obj, path, key, static_cast<double>(fallback), lo, hi,
                                       domain);
    if (!v.ok()) return v.error();
    if (v.value() != std::floor(v.value()))
      return bad(path_key(path, key) + ": must be an integer");
    out = static_cast<std::size_t>(v.value());
    return {};
  };
  if (Result<void> r = integer_in("regions", fed.regions, 1.0, 64.0, "an integer in [1, 64]",
                                  fed.regions);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = integer_in("cells_per_region", fed.cells_per_region, 1.0, 4096.0,
                                  "an integer in [1, 4096]", fed.cells_per_region);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = integer_in("edge_dcs_per_region", fed.edge_dcs_per_region, 0.0, 16.0,
                                  "an integer in [0, 16]", fed.edge_dcs_per_region);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = integer_in("hosts_per_dc", fed.hosts_per_dc, 1.0, 64.0,
                                  "an integer in [1, 64]", fed.hosts_per_dc);
      !r.ok()) {
    return r;
  }
  const Result<std::string> backbone = string_in(obj, path, "backbone", fed.backbone);
  if (!backbone.ok()) return backbone.error();
  if (backbone.value() != "ring" && backbone.value() != "mesh")
    return bad("federation.backbone: must be \"ring\" or \"mesh\"");
  fed.backbone = backbone.value();
  const Result<double> gbps = number_in(obj, path, "backbone_gbps", fed.backbone_gbps, 1.0e-3,
                                        1.0e4, "in (0, 1e4] Gb/s");
  if (!gbps.ok()) return gbps.error();
  fed.backbone_gbps = gbps.value();
  return {};
}

/// `fed` != nullptr parses with metro semantics (region-scoped faults);
/// nullptr keeps the fig2 single-region grammar untouched.
Result<ScenarioEvent> event_from_json_at(const Value& doc, const std::string& path,
                                         const FederationSpec* fed) {
  if (!doc.is_object()) return bad(path + ": must be an object");
  const Object& obj = doc.as_object();

  ScenarioEvent event;
  const Result<std::string> kind_name = string_in(obj, path, "kind", "");
  if (!kind_name.ok()) return kind_name.error();
  bool matched = false;
  for (const EventKind k : kAllKinds) {
    if (to_string(k) == kind_name.value()) {
      event.kind = k;
      matched = true;
    }
  }
  if (!matched) return bad(path_key(path, "kind") + ": unknown event kind '" + kind_name.value() + "'");

  const Result<double> at = require_number(obj, path, "at_hours", 0.0, kMaxDurationHours,
                                           "in [0, 8784] hours");
  if (!at.ok()) return at.error();
  event.at = hours_dur(at.value());

  if (fed != nullptr) return metro_event_from_json_at(obj, path, event, *fed);

  std::set<std::string_view> allowed = {"kind", "at_hours"};
  switch (event.kind) {
    case EventKind::link_down:
    case EventKind::link_up:
    case EventKind::link_flap: {
      allowed.insert("link");
      const Result<std::string> link = target_in(obj, path, "link", {"mmwave", "uwave"});
      if (!link.ok()) return link.error();
      event.target = link.value();
      break;
    }
    case EventKind::cell_down:
    case EventKind::cell_up: {
      allowed.insert("cell");
      const Result<std::string> cell = target_in(obj, path, "cell", {"a", "b"});
      if (!cell.ok()) return cell.error();
      event.target = cell.value();
      break;
    }
    case EventKind::dc_down:
    case EventKind::dc_up: {
      allowed.insert("dc");
      const Result<std::string> dc = target_in(obj, path, "dc", {"edge", "core"});
      if (!dc.ok()) return dc.error();
      event.target = dc.value();
      break;
    }
    case EventKind::controller_restart:
    case EventKind::churn_storm:
      break;
  }

  switch (event.kind) {
    case EventKind::link_down:
    case EventKind::cell_down:
    case EventKind::dc_down: {
      allowed.insert("duration_hours");
      const Result<double> d = number_in(obj, path, "duration_hours", 0.0, 0.0,
                                         kMaxDurationHours, "in [0, 8784] hours");
      if (!d.ok()) return d.error();
      event.duration = hours_dur(d.value());
      break;
    }
    case EventKind::link_flap: {
      allowed.insert("count");
      allowed.insert("period_minutes");
      allowed.insert("down_minutes");
      const Result<double> count = require_number(obj, path, "count", 1.0, 1.0e4,
                                                  "an integer in [1, 10000]");
      if (!count.ok()) return count.error();
      if (count.value() != std::floor(count.value()))
        return bad(path_key(path, "count") + ": must be an integer");
      event.flap_count = static_cast<int>(count.value());
      const Result<double> period = require_number(obj, path, "period_minutes", 1.0e-3, 1.0e6,
                                                   "> 0 minutes");
      if (!period.ok()) return period.error();
      event.flap_period = minutes_dur(period.value());
      const Result<double> down = require_number(obj, path, "down_minutes", 1.0e-3, 1.0e6,
                                                 "> 0 minutes");
      if (!down.ok()) return down.error();
      event.flap_down = minutes_dur(down.value());
      if (event.flap_down >= event.flap_period)
        return bad(path_key(path, "down_minutes") + ": must be smaller than period_minutes");
      break;
    }
    case EventKind::controller_restart: {
      allowed.insert("duration_minutes");
      const Result<double> d = require_number(obj, path, "duration_minutes", 1.0e-3, 1.0e6,
                                              "> 0 minutes");
      if (!d.ok()) return d.error();
      event.duration = minutes_dur(d.value());
      break;
    }
    case EventKind::churn_storm: {
      allowed.insert("duration_minutes");
      allowed.insert("ues_per_hour");
      allowed.insert("mean_holding_minutes");
      const Result<double> d = require_number(obj, path, "duration_minutes", 1.0e-3, 1.0e6,
                                              "> 0 minutes");
      if (!d.ok()) return d.error();
      event.duration = minutes_dur(d.value());
      const Result<double> rate = require_number(obj, path, "ues_per_hour", 1.0e-3, 1.0e6,
                                                 "in (0, 1e6] per hour");
      if (!rate.ok()) return rate.error();
      event.storm_ues_per_hour = rate.value();
      const Result<double> hold = require_number(obj, path, "mean_holding_minutes", 1.0e-3,
                                                 1.0e6, "> 0 minutes");
      if (!hold.ok()) return hold.error();
      event.storm_mean_holding = minutes_dur(hold.value());
      break;
    }
    case EventKind::link_up:
    case EventKind::cell_up:
    case EventKind::dc_up:
      break;
  }

  if (Result<void> r = check_keys(obj, path, allowed); !r.ok()) return r.error();
  return event;
}

/// `fed` != nullptr additionally accepts an optional "region" home
/// assignment (metro); on fig2 the key stays unknown and is rejected.
Result<ScenarioRequest> request_from_json_at(const Value& doc, const std::string& path,
                                             const FederationSpec* fed) {
  if (!doc.is_object()) return bad(path + ": must be an object");
  const Object& obj = doc.as_object();
  std::set<std::string_view> allowed = {
      "at_hours", "vertical", "tenant", "duration_hours", "max_latency_ms",
      "throughput_mbps", "vcpus", "memory_mb", "disk_gb", "price_per_hour",
      "penalty_per_violation", "needs_edge", "workload_seed"};
  if (fed != nullptr) allowed.insert("region");
  if (Result<void> r = check_keys(obj, path, allowed); !r.ok()) {
    return r.error();
  }

  const Result<double> at = require_number(obj, path, "at_hours", 0.0, kMaxDurationHours,
                                           "in [0, 8784] hours");
  if (!at.ok()) return at.error();
  const Result<traffic::Vertical> vertical = vertical_in(obj, path, "vertical");
  if (!vertical.ok()) return vertical.error();
  const Result<double> duration = require_number(obj, path, "duration_hours", 1.0e-6,
                                                 kMaxDurationHours, "in (0, 8784] hours");
  if (!duration.ok()) return duration.error();

  ScenarioRequest request;
  request.at = hours_dur(at.value());
  const traffic::VerticalProfile profile = traffic::profile_for(vertical.value());
  request.spec = core::SliceSpec::from_profile(profile, hours_dur(duration.value()));

  const Result<std::string> tenant = string_in(obj, path, "tenant", request.spec.tenant_name);
  if (!tenant.ok()) return tenant.error();
  request.spec.tenant_name = tenant.value();

  const Result<double> latency = number_in(obj, path, "max_latency_ms",
                                           request.spec.max_latency.as_millis(), 1.0e-3, 1.0e6,
                                           "> 0 ms");
  if (!latency.ok()) return latency.error();
  request.spec.max_latency = millis_dur(latency.value());

  const Result<double> throughput = number_in(obj, path, "throughput_mbps",
                                              request.spec.expected_throughput.as_mbps(), 0.0,
                                              1.0e5, "in [0, 1e5] Mb/s");
  if (!throughput.ok()) return throughput.error();
  request.spec.expected_throughput = DataRate::mbps(throughput.value());

  const Result<double> vcpus = number_in(obj, path, "vcpus", request.spec.edge_compute.vcpus,
                                         0.0, 1.0e4, "in [0, 1e4]");
  if (!vcpus.ok()) return vcpus.error();
  request.spec.edge_compute.vcpus = vcpus.value();
  const Result<double> memory = number_in(obj, path, "memory_mb",
                                          request.spec.edge_compute.memory_mb, 0.0, 1.0e8,
                                          "in [0, 1e8] MB");
  if (!memory.ok()) return memory.error();
  request.spec.edge_compute.memory_mb = memory.value();
  const Result<double> disk = number_in(obj, path, "disk_gb", request.spec.edge_compute.disk_gb,
                                        0.0, 1.0e6, "in [0, 1e6] GB");
  if (!disk.ok()) return disk.error();
  request.spec.edge_compute.disk_gb = disk.value();

  const Result<double> price = number_in(obj, path, "price_per_hour",
                                         request.spec.price_per_hour.as_units(), 0.0, 1.0e9,
                                         "in [0, 1e9]");
  if (!price.ok()) return price.error();
  request.spec.price_per_hour = Money::units(price.value());
  const Result<double> penalty = number_in(obj, path, "penalty_per_violation",
                                           request.spec.penalty_per_violation.as_units(), 0.0,
                                           1.0e9, "in [0, 1e9]");
  if (!penalty.ok()) return penalty.error();
  request.spec.penalty_per_violation = Money::units(penalty.value());

  const Result<bool> needs_edge = bool_in(obj, path, "needs_edge", request.spec.needs_edge);
  if (!needs_edge.ok()) return needs_edge.error();
  request.spec.needs_edge = needs_edge.value();

  const Result<std::uint64_t> seed = u64_in(obj, path, "workload_seed", 0);
  if (!seed.ok()) return seed.error();
  request.workload_seed = seed.value();

  if (fed != nullptr) {
    const Result<std::string> region = region_in(obj, path, *fed, /*required=*/false);
    if (!region.ok()) return region.error();
    request.region = region.value();
  }
  return request;
}

mobility::StormKind kAllStormKinds[] = {mobility::StormKind::stadium_ingress,
                                        mobility::StormKind::stadium_egress,
                                        mobility::StormKind::commuter_wave};

/// The "mobility" block. `metro` selects the storm-cell grammar
/// ("c<k>" vs fig2's "a"/"b") and whether region filters are accepted.
Result<void> parse_mobility(const Object& obj, const Scenario& scenario, bool metro,
                            MobilitySpec& mobility) {
  const std::string path = "mobility";
  if (Result<void> r = check_keys(obj, path,
                                  {"enabled", "cell_spacing_m", "default_speed_mps",
                                   "ues_per_slice", "cqi_min", "cqi_max", "speed_classes",
                                   "storms"});
      !r.ok()) {
    return r.error();
  }

  // The block's presence opts in; "enabled": false keeps a block
  // authored for later without activating it.
  const Result<bool> enabled = bool_in(obj, path, "enabled", true);
  if (!enabled.ok()) return enabled.error();
  mobility.enabled = enabled.value();

  const Result<double> spacing = number_in(obj, path, "cell_spacing_m",
                                           mobility.cell_spacing_m, 10.0, 1.0e4,
                                           "in [10, 1e4] metres");
  if (!spacing.ok()) return spacing.error();
  mobility.cell_spacing_m = spacing.value();

  const Result<double> speed = number_in(obj, path, "default_speed_mps",
                                         mobility.default_speed_mps, 1.0e-3, 1.0e3,
                                         "in (0, 1e3] m/s");
  if (!speed.ok()) return speed.error();
  mobility.default_speed_mps = speed.value();

  const Result<double> ues = number_in(obj, path, "ues_per_slice",
                                       static_cast<double>(mobility.ues_per_slice), 0.0, 1.0e5,
                                       "an integer in [0, 1e5]");
  if (!ues.ok()) return ues.error();
  if (ues.value() != std::floor(ues.value()))
    return bad("mobility.ues_per_slice: must be an integer");
  mobility.ues_per_slice = static_cast<std::size_t>(ues.value());

  const auto cqi_in = [&](std::string_view key, int fallback, int& out) -> Result<void> {
    const Result<double> v = number_in(obj, path, key, static_cast<double>(fallback), 1.0, 15.0,
                                       "an integer in [1, 15]");
    if (!v.ok()) return v.error();
    if (v.value() != std::floor(v.value()))
      return bad(path_key(path, key) + ": must be an integer");
    out = static_cast<int>(v.value());
    return {};
  };
  if (Result<void> r = cqi_in("cqi_min", mobility.cqi_min, mobility.cqi_min); !r.ok()) return r;
  if (Result<void> r = cqi_in("cqi_max", mobility.cqi_max, mobility.cqi_max); !r.ok()) return r;
  if (mobility.cqi_max < mobility.cqi_min)
    return bad("mobility.cqi_max: must be >= cqi_min");

  if (const auto it = obj.find("speed_classes"); it != obj.end()) {
    if (!it->second.is_object()) return bad("mobility.speed_classes: must be an object");
    const Object& classes = it->second.as_object();
    // Canonical order: all_verticals(), so serialize -> parse is stable
    // regardless of authoring order.
    std::size_t matched = 0;
    for (const traffic::Vertical v : traffic::all_verticals()) {
      const auto entry = classes.find(std::string(traffic::to_string(v)));
      if (entry == classes.end()) continue;
      ++matched;
      const std::string entry_path = "mobility.speed_classes." +
                                     std::string(traffic::to_string(v));
      if (!entry->second.is_number() || !std::isfinite(entry->second.as_number()) ||
          entry->second.as_number() <= 0.0 || entry->second.as_number() > 1.0e3) {
        return bad(entry_path + ": must be in (0, 1e3] m/s");
      }
      mobility.speed_classes.emplace_back(v, entry->second.as_number());
    }
    if (matched != classes.size()) {
      for (const auto& [key, unused] : classes) {
        bool known = false;
        for (const traffic::Vertical v : traffic::all_verticals()) {
          if (traffic::to_string(v) == key) known = true;
        }
        if (!known)
          return bad("mobility.speed_classes." + key + ": unknown vertical");
      }
    }
  }

  if (const auto it = obj.find("storms"); it != obj.end()) {
    if (!it->second.is_array()) return bad("mobility.storms: must be an array");
    std::size_t index = 0;
    for (const Value& entry : it->second.as_array()) {
      const std::string storm_path = "mobility.storms[" + std::to_string(index++) + "]";
      if (!entry.is_object()) return bad(storm_path + ": must be an object");
      const Object& storm_obj = entry.as_object();

      MobilityStorm storm;
      const Result<std::string> kind_name = string_in(storm_obj, storm_path, "kind", "");
      if (!kind_name.ok()) return kind_name.error();
      bool matched_kind = false;
      for (const mobility::StormKind k : kAllStormKinds) {
        if (mobility::to_string(k) == kind_name.value()) {
          storm.kind = k;
          matched_kind = true;
        }
      }
      if (!matched_kind)
        return bad(path_key(storm_path, "kind") + ": unknown storm kind '" +
                   kind_name.value() + "'");

      std::set<std::string_view> allowed = {"kind", "at_hours", "duration_minutes",
                                            "fraction"};
      const bool stadium = storm.kind != mobility::StormKind::commuter_wave;
      if (stadium) allowed.insert("cell");
      if (metro) allowed.insert("region");
      if (Result<void> r = check_keys(storm_obj, storm_path, allowed); !r.ok())
        return r.error();

      const Result<double> at = require_number(storm_obj, storm_path, "at_hours", 0.0,
                                               kMaxDurationHours, "in [0, 8784] hours");
      if (!at.ok()) return at.error();
      storm.at = hours_dur(at.value());
      if (storm.at > scenario.duration)
        return bad(storm_path + ".at_hours: past the scenario duration");

      const Result<double> dur = require_number(storm_obj, storm_path, "duration_minutes",
                                                1.0e-3, 1.0e6, "> 0 minutes");
      if (!dur.ok()) return dur.error();
      storm.duration = minutes_dur(dur.value());

      const Result<double> fraction = number_in(storm_obj, storm_path, "fraction",
                                                storm.fraction, 1.0e-6, 1.0, "in (0, 1]");
      if (!fraction.ok()) return fraction.error();
      storm.fraction = fraction.value();

      if (stadium) {
        const Result<std::string> cell = string_in(storm_obj, storm_path, "cell", "");
        if (!cell.ok()) return cell.error();
        if (!cell.value().empty()) {
          if (metro) {
            if (Result<std::size_t> k = indexed_name(storm_path, "cell", cell.value(), "c",
                                                     scenario.federation.cells_per_region);
                !k.ok()) {
              return k.error();
            }
          } else if (cell.value() != "a" && cell.value() != "b") {
            return bad(path_key(storm_path, "cell") +
                       ": unknown name '" + cell.value() + "' (expected one of a, b)");
          }
          storm.cell = cell.value();
        }
      }

      if (metro) {
        const Result<std::string> region =
            region_in(storm_obj, storm_path, scenario.federation, /*required=*/false);
        if (!region.ok()) return region.error();
        storm.region = region.value();
      }
      mobility.storms.push_back(std::move(storm));
    }
  }
  return {};
}

Result<void> parse_workload(const Object& obj, core::RequestGeneratorConfig& workload) {
  const std::string path = "workload";
  if (Result<void> r = check_keys(obj, path,
                                  {"arrivals_per_hour", "diurnal_depth", "diurnal_period_hours",
                                   "min_duration_hours", "max_duration_hours",
                                   "price_dispersion", "verticals"});
      !r.ok()) {
    return r.error();
  }

  const Result<double> rate = number_in(obj, path, "arrivals_per_hour",
                                        workload.arrivals_per_hour, 0.0, kMaxArrivalRate,
                                        "in [0, 1e5] per hour");
  if (!rate.ok()) return rate.error();
  workload.arrivals_per_hour = rate.value();

  const Result<double> depth = number_in(obj, path, "diurnal_depth", workload.diurnal_depth,
                                         0.0, 0.999, "in [0, 1)");
  if (!depth.ok()) return depth.error();
  workload.diurnal_depth = depth.value();

  const Result<double> period = number_in(obj, path, "diurnal_period_hours",
                                          workload.diurnal_period.as_hours(), 1.0e-3, 1.0e4,
                                          "in (0, 1e4] hours");
  if (!period.ok()) return period.error();
  workload.diurnal_period = hours_dur(period.value());

  const Result<double> min_d = number_in(obj, path, "min_duration_hours",
                                         workload.min_duration.as_hours(), 1.0e-6, 1.0e4,
                                         "in (0, 1e4] hours");
  if (!min_d.ok()) return min_d.error();
  workload.min_duration = hours_dur(min_d.value());
  const Result<double> max_d = number_in(obj, path, "max_duration_hours",
                                         workload.max_duration.as_hours(), 1.0e-6, 1.0e4,
                                         "in (0, 1e4] hours");
  if (!max_d.ok()) return max_d.error();
  workload.max_duration = hours_dur(max_d.value());
  if (workload.max_duration < workload.min_duration)
    return bad("workload.max_duration_hours: must be >= min_duration_hours");

  const Result<double> dispersion = number_in(obj, path, "price_dispersion",
                                              workload.price_dispersion, 0.0, 0.999,
                                              "in [0, 1)");
  if (!dispersion.ok()) return dispersion.error();
  workload.price_dispersion = dispersion.value();

  if (const Value* verticals = obj.contains("verticals") ? &obj.at("verticals") : nullptr;
      verticals != nullptr) {
    if (!verticals->is_array()) return bad("workload.verticals: must be an array");
    workload.verticals.clear();
    std::size_t index = 0;
    for (const Value& entry : verticals->as_array()) {
      const std::string entry_path = "workload.verticals[" + std::to_string(index++) + "]";
      if (!entry.is_string()) return bad(entry_path + ": must be a string");
      Object probe;
      probe.emplace("vertical", entry);
      const Result<traffic::Vertical> v = vertical_in(probe, entry_path, "vertical");
      if (!v.ok()) return bad(entry_path + ": unknown vertical '" + entry.as_string() + "'");
      workload.verticals.push_back(v.value());
    }
  }
  return {};
}

Result<void> parse_targets(const Object& obj, ScenarioTargets& targets) {
  const std::string path = "targets";
  if (Result<void> r = check_keys(obj, path,
                                  {"min_admission_rate", "max_violation_rate",
                                   "min_net_revenue", "min_multiplexing_gain"});
      !r.ok()) {
    return r.error();
  }
  const auto optional_number = [&](std::string_view key, double lo, double hi,
                                   const char* domain,
                                   std::optional<double>& out) -> Result<void> {
    if (!obj.contains(key)) return {};
    const Result<double> v = number_in(obj, path, key, 0.0, lo, hi, domain);
    if (!v.ok()) return v.error();
    out = v.value();
    return {};
  };
  if (Result<void> r = optional_number("min_admission_rate", 0.0, 1.0, "in [0, 1]",
                                       targets.min_admission_rate);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = optional_number("max_violation_rate", 0.0, 1.0, "in [0, 1]",
                                       targets.max_violation_rate);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = optional_number("min_net_revenue", -1.0e12, 1.0e12,
                                       "in [-1e12, 1e12]", targets.min_net_revenue);
      !r.ok()) {
    return r;
  }
  if (Result<void> r = optional_number("min_multiplexing_gain", 0.0, 1.0e3, "in [0, 1e3]",
                                       targets.min_multiplexing_gain);
      !r.ok()) {
    return r;
  }
  return {};
}

json::Value orchestrator_config_to_json(const core::OrchestratorConfig& config) {
  Object overbooking;
  overbooking.emplace("enabled", config.overbooking.enabled);
  overbooking.emplace("risk_quantile", config.overbooking.risk_quantile);
  overbooking.emplace("horizon", static_cast<double>(config.overbooking.horizon));
  overbooking.emplace("floor_fraction", config.overbooking.floor_fraction);
  overbooking.emplace("headroom", config.overbooking.headroom);
  overbooking.emplace("warmup_observations",
                      static_cast<double>(config.overbooking.warmup_observations));
  overbooking.emplace("season_length", static_cast<double>(config.overbooking.season_length));
  overbooking.emplace("estimator", std::string(core::to_string(config.overbooking.estimator)));

  Object out;
  out.emplace("monitoring_period_minutes", config.monitoring_period.as_seconds() / 60.0);
  out.emplace("admission_policy", config.admission_policy);
  out.emplace("admission_window_hours", config.admission_window.as_hours());
  out.emplace("admission_patience_hours", config.admission_patience.as_hours());
  out.emplace("sla_tolerance", config.sla_tolerance);
  out.emplace("reconfigure_threshold", config.reconfigure_threshold);
  out.emplace("edge_breakout_fraction", config.edge_breakout_fraction);
  out.emplace("overbooking", std::move(overbooking));
  return Value(std::move(out));
}

std::string line_col(std::string_view text, std::size_t offset) {
  std::size_t line = 1;
  std::size_t column = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

}  // namespace

std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::link_down: return "link_down";
    case EventKind::link_up: return "link_up";
    case EventKind::link_flap: return "link_flap";
    case EventKind::cell_down: return "cell_down";
    case EventKind::cell_up: return "cell_up";
    case EventKind::dc_down: return "dc_down";
    case EventKind::dc_up: return "dc_up";
    case EventKind::controller_restart: return "controller_restart";
    case EventKind::churn_storm: return "churn_storm";
  }
  return "?";
}

Result<ScenarioEvent> event_from_json(const json::Value& doc) {
  return event_from_json_at(doc, "event", nullptr);
}

Result<ScenarioRequest> request_from_json(const json::Value& doc) {
  return request_from_json_at(doc, "request", nullptr);
}

Result<ScenarioEvent> event_from_json(const json::Value& doc, const FederationSpec* fed) {
  return event_from_json_at(doc, "event", fed);
}

Result<ScenarioRequest> request_from_json(const json::Value& doc, const FederationSpec* fed) {
  return request_from_json_at(doc, "request", fed);
}

json::Value event_to_json(const ScenarioEvent& event) {
  Object out;
  out.emplace("kind", std::string(to_string(event.kind)));
  out.emplace("at_hours", event.at.as_hours());
  // Only metro events carry a region; fig2 documents keep their exact
  // pre-federation byte layout.
  if (!event.region.empty()) out.emplace("region", event.region);
  switch (event.kind) {
    case EventKind::link_down:
      out.emplace("link", event.target);
      out.emplace("duration_hours", event.duration.as_hours());
      break;
    case EventKind::link_up:
      out.emplace("link", event.target);
      break;
    case EventKind::link_flap:
      out.emplace("link", event.target);
      out.emplace("count", static_cast<double>(event.flap_count));
      out.emplace("period_minutes", event.flap_period.as_seconds() / 60.0);
      out.emplace("down_minutes", event.flap_down.as_seconds() / 60.0);
      break;
    case EventKind::cell_down:
      out.emplace("cell", event.target);
      out.emplace("duration_hours", event.duration.as_hours());
      break;
    case EventKind::cell_up:
      out.emplace("cell", event.target);
      break;
    case EventKind::dc_down:
      out.emplace("dc", event.target);
      out.emplace("duration_hours", event.duration.as_hours());
      break;
    case EventKind::dc_up:
      out.emplace("dc", event.target);
      break;
    case EventKind::controller_restart:
      out.emplace("duration_minutes", event.duration.as_seconds() / 60.0);
      break;
    case EventKind::churn_storm:
      out.emplace("duration_minutes", event.duration.as_seconds() / 60.0);
      out.emplace("ues_per_hour", event.storm_ues_per_hour);
      out.emplace("mean_holding_minutes", event.storm_mean_holding.as_seconds() / 60.0);
      break;
  }
  return Value(std::move(out));
}

json::Value request_to_json(const ScenarioRequest& request) {
  Object out;
  out.emplace("at_hours", request.at.as_hours());
  out.emplace("vertical", std::string(traffic::to_string(request.spec.vertical)));
  out.emplace("tenant", request.spec.tenant_name);
  out.emplace("duration_hours", request.spec.duration.as_hours());
  out.emplace("max_latency_ms", request.spec.max_latency.as_millis());
  out.emplace("throughput_mbps", request.spec.expected_throughput.as_mbps());
  out.emplace("vcpus", request.spec.edge_compute.vcpus);
  out.emplace("memory_mb", request.spec.edge_compute.memory_mb);
  out.emplace("disk_gb", request.spec.edge_compute.disk_gb);
  out.emplace("price_per_hour", request.spec.price_per_hour.as_units());
  out.emplace("penalty_per_violation", request.spec.penalty_per_violation.as_units());
  out.emplace("needs_edge", request.spec.needs_edge);
  out.emplace("workload_seed", Value(std::to_string(request.workload_seed)));
  if (!request.region.empty()) out.emplace("region", request.region);
  return Value(std::move(out));
}

Result<Scenario> scenario_from_json(const json::Value& doc) {
  if (!doc.is_object()) return bad("scenario must be an object");
  const Object& root = doc.as_object();
  if (Result<void> r = check_keys(root, "",
                                  {"name", "description", "seed", "duration_hours", "topology",
                                   "federation", "mobility", "orchestrator", "workload",
                                   "generate_arrivals", "phases", "events", "requests",
                                   "targets"});
      !r.ok()) {
    return r.error();
  }

  Scenario scenario;
  const Result<std::string> name = string_in(root, "", "name", "");
  if (!name.ok()) return name.error();
  if (name.value().empty()) return bad("name: required (non-empty string)");
  scenario.name = name.value();

  const Result<std::string> description = string_in(root, "", "description", "");
  if (!description.ok()) return description.error();
  scenario.description = description.value();

  const Result<std::uint64_t> seed = u64_in(root, "", "seed", scenario.seed);
  if (!seed.ok()) return seed.error();
  scenario.seed = seed.value();

  const Result<double> duration = number_in(root, "", "duration_hours",
                                            scenario.duration.as_hours(), 1.0e-3,
                                            kMaxDurationHours, "in (0, 8784] hours");
  if (!duration.ok()) return duration.error();
  scenario.duration = hours_dur(duration.value());

  const Result<std::string> topology = string_in(root, "", "topology", scenario.topology);
  if (!topology.ok()) return topology.error();
  if (topology.value() != "fig2" && topology.value() != "metro")
    return bad("topology: unknown preset '" + topology.value() +
               "' (\"fig2\" or \"metro\")");
  scenario.topology = topology.value();
  const bool metro = scenario.topology == "metro";

  if (const Value* fed = root.contains("federation") ? &root.at("federation") : nullptr;
      fed != nullptr) {
    if (!metro) return bad("federation: only valid with topology \"metro\"");
    if (!fed->is_object()) return bad("federation: must be an object");
    if (Result<void> r = parse_federation(fed->as_object(), scenario.federation); !r.ok())
      return r.error();
  }

  if (const Value* mob = root.contains("mobility") ? &root.at("mobility") : nullptr;
      mob != nullptr) {
    if (!mob->is_object()) return bad("mobility: must be an object");
    if (Result<void> r = parse_mobility(mob->as_object(), scenario, metro, scenario.mobility);
        !r.ok()) {
      return r.error();
    }
  }

  if (const Value* orch = root.contains("orchestrator") ? &root.at("orchestrator") : nullptr;
      orch != nullptr) {
    if (!orch->is_object()) return bad("orchestrator: must be an object");
    Result<core::OrchestratorConfig> config = core::config_from_json(json::serialize(*orch));
    if (!config.ok())
      return bad("orchestrator: " + std::string(config.error().message));
    scenario.orchestrator = config.value();
  }

  if (const Value* workload = root.contains("workload") ? &root.at("workload") : nullptr;
      workload != nullptr) {
    if (!workload->is_object()) return bad("workload: must be an object");
    if (Result<void> r = parse_workload(workload->as_object(), scenario.workload); !r.ok())
      return r.error();
  }

  const Result<bool> generate = bool_in(root, "", "generate_arrivals", true);
  if (!generate.ok()) return generate.error();
  scenario.generate_arrivals = generate.value();

  if (const Value* phases = root.contains("phases") ? &root.at("phases") : nullptr;
      phases != nullptr) {
    if (!phases->is_array()) return bad("phases: must be an array");
    std::size_t index = 0;
    for (const Value& entry : phases->as_array()) {
      const std::string path = "phases[" + std::to_string(index) + "]";
      if (!entry.is_object()) return bad(path + ": must be an object");
      const Object& obj = entry.as_object();
      if (Result<void> r = check_keys(obj, path,
                                      {"name", "start_hours", "end_hours", "arrivals_per_hour",
                                       "demand_scale"});
          !r.ok()) {
        return r.error();
      }
      Phase phase;
      const Result<std::string> phase_name = string_in(obj, path, "name",
                                                       "phase-" + std::to_string(index));
      if (!phase_name.ok()) return phase_name.error();
      phase.name = phase_name.value();
      const Result<double> start = require_number(obj, path, "start_hours", 0.0,
                                                  kMaxDurationHours, "in [0, 8784] hours");
      if (!start.ok()) return start.error();
      phase.start = hours_dur(start.value());
      const Result<double> end = require_number(obj, path, "end_hours", 0.0, kMaxDurationHours,
                                                "in [0, 8784] hours");
      if (!end.ok()) return end.error();
      phase.end = hours_dur(end.value());
      if (phase.end <= phase.start)
        return bad(path + ".end_hours: must be after start_hours");
      if (phase.end > scenario.duration)
        return bad(path + ".end_hours: extends past the scenario duration");
      const Result<double> rate = number_in(obj, path, "arrivals_per_hour", -1.0, 0.0,
                                            kMaxArrivalRate, "in [0, 1e5] per hour");
      if (!rate.ok()) return rate.error();
      phase.arrivals_per_hour = rate.value();
      const Result<double> scale = number_in(obj, path, "demand_scale", 1.0, 1.0e-3,
                                             kMaxDemandScale, "in (0, 1e3]");
      if (!scale.ok()) return scale.error();
      phase.demand_scale = scale.value();
      if (!scenario.phases.empty() && phase.start < scenario.phases.back().end)
        return bad(path + ": overlaps phases[" + std::to_string(index - 1) +
                   "] (phases must be sorted and disjoint)");
      scenario.phases.push_back(std::move(phase));
      ++index;
    }
  }

  if (const Value* events = root.contains("events") ? &root.at("events") : nullptr;
      events != nullptr) {
    if (!events->is_array()) return bad("events: must be an array");
    std::size_t index = 0;
    for (const Value& entry : events->as_array()) {
      const std::string path = "events[" + std::to_string(index++) + "]";
      Result<ScenarioEvent> event =
          event_from_json_at(entry, path, metro ? &scenario.federation : nullptr);
      if (!event.ok()) return event.error();
      if (event.value().at > scenario.duration)
        return bad(path + ".at_hours: past the scenario duration");
      scenario.events.push_back(std::move(event.value()));
    }
  }

  if (const Value* requests = root.contains("requests") ? &root.at("requests") : nullptr;
      requests != nullptr) {
    if (!requests->is_array()) return bad("requests: must be an array");
    std::size_t index = 0;
    for (const Value& entry : requests->as_array()) {
      const std::string path = "requests[" + std::to_string(index++) + "]";
      Result<ScenarioRequest> request =
          request_from_json_at(entry, path, metro ? &scenario.federation : nullptr);
      if (!request.ok()) return request.error();
      if (request.value().at > scenario.duration)
        return bad(path + ".at_hours: past the scenario duration");
      scenario.requests.push_back(std::move(request.value()));
    }
  }

  if (const Value* targets = root.contains("targets") ? &root.at("targets") : nullptr;
      targets != nullptr) {
    if (!targets->is_object()) return bad("targets: must be an object");
    if (Result<void> r = parse_targets(targets->as_object(), scenario.targets); !r.ok())
      return r.error();
  }

  return scenario;
}

Result<Scenario> parse_scenario(std::string_view text) {
  std::size_t offset = 0;
  json::ParseOptions options;
  options.reject_duplicate_keys = true;
  options.error_offset = &offset;
  Result<json::Value> doc = json::parse(text, options);
  if (!doc.ok()) {
    return make_error(doc.error().code, line_col(text, offset) + ": " +
                                            std::string(doc.error().message));
  }
  return scenario_from_json(doc.value());
}

json::Value scenario_to_json(const Scenario& scenario) {
  Object workload;
  workload.emplace("arrivals_per_hour", scenario.workload.arrivals_per_hour);
  workload.emplace("diurnal_depth", scenario.workload.diurnal_depth);
  workload.emplace("diurnal_period_hours", scenario.workload.diurnal_period.as_hours());
  workload.emplace("min_duration_hours", scenario.workload.min_duration.as_hours());
  workload.emplace("max_duration_hours", scenario.workload.max_duration.as_hours());
  workload.emplace("price_dispersion", scenario.workload.price_dispersion);
  json::Array verticals;
  for (const traffic::Vertical v : scenario.workload.verticals) {
    verticals.push_back(Value(std::string(traffic::to_string(v))));
  }
  workload.emplace("verticals", std::move(verticals));

  json::Array phases;
  for (const Phase& phase : scenario.phases) {
    Object entry;
    entry.emplace("name", phase.name);
    entry.emplace("start_hours", phase.start.as_hours());
    entry.emplace("end_hours", phase.end.as_hours());
    if (phase.arrivals_per_hour >= 0.0)
      entry.emplace("arrivals_per_hour", phase.arrivals_per_hour);
    entry.emplace("demand_scale", phase.demand_scale);
    phases.push_back(Value(std::move(entry)));
  }

  json::Array events;
  for (const ScenarioEvent& event : scenario.events) events.push_back(event_to_json(event));
  json::Array requests;
  for (const ScenarioRequest& request : scenario.requests)
    requests.push_back(request_to_json(request));

  Object targets;
  if (scenario.targets.min_admission_rate)
    targets.emplace("min_admission_rate", *scenario.targets.min_admission_rate);
  if (scenario.targets.max_violation_rate)
    targets.emplace("max_violation_rate", *scenario.targets.max_violation_rate);
  if (scenario.targets.min_net_revenue)
    targets.emplace("min_net_revenue", *scenario.targets.min_net_revenue);
  if (scenario.targets.min_multiplexing_gain)
    targets.emplace("min_multiplexing_gain", *scenario.targets.min_multiplexing_gain);

  Object out;
  out.emplace("name", scenario.name);
  out.emplace("description", scenario.description);
  out.emplace("seed", u64_to_json(scenario.seed));
  out.emplace("duration_hours", scenario.duration.as_hours());
  out.emplace("topology", scenario.topology);
  if (scenario.topology == "metro") {
    Object fed;
    fed.emplace("regions", static_cast<double>(scenario.federation.regions));
    fed.emplace("cells_per_region", static_cast<double>(scenario.federation.cells_per_region));
    fed.emplace("edge_dcs_per_region",
                static_cast<double>(scenario.federation.edge_dcs_per_region));
    fed.emplace("hosts_per_dc", static_cast<double>(scenario.federation.hosts_per_dc));
    fed.emplace("backbone", scenario.federation.backbone);
    fed.emplace("backbone_gbps", scenario.federation.backbone_gbps);
    out.emplace("federation", std::move(fed));
  }
  if (scenario.mobility.enabled) {
    // Documents without moving UEs keep their exact pre-mobility byte
    // layout: the block is only emitted when enabled.
    Object mob;
    mob.emplace("enabled", true);
    mob.emplace("cell_spacing_m", scenario.mobility.cell_spacing_m);
    mob.emplace("default_speed_mps", scenario.mobility.default_speed_mps);
    mob.emplace("ues_per_slice", static_cast<double>(scenario.mobility.ues_per_slice));
    mob.emplace("cqi_min", static_cast<double>(scenario.mobility.cqi_min));
    mob.emplace("cqi_max", static_cast<double>(scenario.mobility.cqi_max));
    Object classes;
    for (const auto& [vertical, mps] : scenario.mobility.speed_classes) {
      classes.emplace(std::string(traffic::to_string(vertical)), mps);
    }
    mob.emplace("speed_classes", std::move(classes));
    json::Array storms;
    for (const MobilityStorm& storm : scenario.mobility.storms) {
      Object entry;
      entry.emplace("kind", std::string(mobility::to_string(storm.kind)));
      entry.emplace("at_hours", storm.at.as_hours());
      entry.emplace("duration_minutes", storm.duration.as_seconds() / 60.0);
      entry.emplace("fraction", storm.fraction);
      if (!storm.cell.empty()) entry.emplace("cell", storm.cell);
      if (!storm.region.empty()) entry.emplace("region", storm.region);
      storms.push_back(Value(std::move(entry)));
    }
    mob.emplace("storms", std::move(storms));
    out.emplace("mobility", std::move(mob));
  }
  out.emplace("orchestrator", orchestrator_config_to_json(scenario.orchestrator));
  out.emplace("workload", std::move(workload));
  out.emplace("generate_arrivals", scenario.generate_arrivals);
  out.emplace("phases", std::move(phases));
  out.emplace("events", std::move(events));
  out.emplace("requests", std::move(requests));
  out.emplace("targets", std::move(targets));
  return Value(std::move(out));
}

std::string serialize_scenario(const Scenario& scenario) {
  return json::serialize_pretty(scenario_to_json(scenario)) + "\n";
}

Result<Scenario> load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(Errc::unavailable, "cannot open scenario file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return make_error(Errc::unavailable, "failed reading '" + path + "'");
  Result<Scenario> scenario = parse_scenario(buffer.str());
  if (!scenario.ok())
    return make_error(scenario.error().code,
                      path + ": " + std::string(scenario.error().message));
  return scenario;
}

}  // namespace slices::scenario
