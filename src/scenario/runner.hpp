#pragma once
// Scenario runner (docs/scenarios.md).
//
// Drives one Scenario end-to-end on the Fig. 2 testbed: builds the
// deployment, compiles phases into the request generator's rate
// schedule and the demand-surge envelope, schedules explicit requests
// and the failure timeline on the simulation clock, samples the
// orchestrator after every monitoring epoch, and distills the run into
// a Scorecard. Runs are deterministic: the same scenario + seed yields
// a byte-identical scorecard at any epoch_threads setting, and a
// recorded run replays to the same scorecard (scenario_test pins both).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "core/request_generator.hpp"
#include "core/testbed.hpp"
#include "core/ue_population.hpp"
#include "mobility/field.hpp"
#include "scenario/recorder.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scorecard.hpp"
#include "telemetry/histogram.hpp"
#include "traffic/model.hpp"

namespace slices::scenario {

/// Runner knobs that are NOT part of the scenario: anything here must
/// leave the scorecard unchanged (threads) or be explicitly excluded
/// from parity checks (wall profiling, recording).
struct RunOptions {
  /// Epoch-serving worker threads; every value produces the same
  /// scorecard (the determinism contract of the epoch pipeline).
  std::size_t epoch_threads = 1;
  /// Record wall-clock epoch latency into the scorecard's
  /// "wall_profile" section (nondeterministic; off by default).
  bool wall_profile = false;
  /// When non-empty, record the run's request/event stream into this
  /// journal for later replay.
  std::string record_path;
};

/// Runs one scenario. Single-use: construct, run(), read the scorecard
/// (and optionally poke at testbed() afterwards — it stays alive until
/// the runner is destroyed).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario, RunOptions options = {});

  /// Execute the scenario to its horizon and score it. Errors:
  /// conflict (already ran), unavailable (recording I/O).
  [[nodiscard]] Result<Scorecard> run();

  /// The live deployment (valid after run(), for tests/inspection).
  [[nodiscard]] const core::Testbed* testbed() const noexcept { return testbed_.get(); }

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

 private:
  /// Compile phases into the generator's piecewise rate schedule.
  [[nodiscard]] std::vector<core::RatePoint> build_rate_schedule() const;

  void schedule_arrival();
  void submit_request(const core::SliceSpec& spec, std::uint64_t workload_seed);
  void flush_deferred();

  void schedule_event(const ScenarioEvent& event);
  void apply_link(const std::string& name, bool up);
  void apply_cell(const std::string& name, bool up);
  void apply_dc(const std::string& name, bool up);
  void apply_restart(Duration duration);
  void start_storm(const ScenarioEvent& event);
  void stop_storms();
  void record_action(const ScenarioEvent& event);

  void build_mobility();
  void step_mobility(SimTime now);
  void sample(SimTime now);
  [[nodiscard]] Scorecard finalize();
  void evaluate_targets(Scorecard& card) const;

  Scenario scenario_;
  RunOptions options_;
  // Declared before every member that schedules into it or holds
  // controller pointers (storm populations), so teardown is safe.
  std::unique_ptr<core::Testbed> testbed_;
  std::unique_ptr<core::RequestGenerator> generator_;
  std::shared_ptr<const traffic::PiecewiseEnvelope> envelope_;
  std::unique_ptr<ScenarioRecorder> recorder_;
  std::vector<std::unique_ptr<core::UePopulation>> storm_populations_;
  /// Moving-UE engine; null unless scenario.mobility.enabled.
  std::unique_ptr<mobility::Field> field_;
  SimTime end_;
  bool ran_ = false;

  /// Requests arriving while the controller is "restarting" queue here
  /// and are submitted, in order, the moment the loop resumes.
  struct Deferred {
    core::SliceSpec spec;
    std::uint64_t workload_seed = 0;
  };
  std::vector<Deferred> deferred_;

  // Sampled statistics (all sim-derived — deterministic).
  std::uint64_t submitted_ = 0;
  std::uint64_t last_event_seq_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t events_injected_ = 0;
  std::uint64_t storm_seq_ = 0;
  std::uint64_t ue_arrivals_ = 0;
  std::uint64_t ue_blocked_ = 0;
  double gain_sum_ = 0.0;
  std::uint64_t gain_samples_ = 0;
  double gain_peak_ = 1.0;
  telemetry::Histogram install_hist_;   ///< install latency, µs (sim)
  telemetry::Histogram active_hist_;    ///< per-epoch active slices
  telemetry::Histogram reserved_hist_;  ///< per-epoch reserved Mb/s
};

}  // namespace slices::scenario
