#pragma once
// Machine-readable outcome of one scenario run (docs/scenarios.md).
//
// Every number in the default scorecard is derived from simulated time
// and deterministic state, so the same scenario + seed serializes to
// byte-identical JSON regardless of epoch_threads or host speed — the
// property scenario_test pins. Wall-clock profiling is opt-in and lands
// in a separate, explicitly nondeterministic section.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "json/value.hpp"
#include "telemetry/histogram.hpp"

namespace slices::scenario {

/// Summary of a telemetry::Histogram, scaled into reporting units.
struct Percentiles {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Percentiles of(const telemetry::Histogram& hist, double scale = 1.0);
  [[nodiscard]] json::Value to_json() const;
};

/// The scored outcome of one run.
struct Scorecard {
  std::string scenario;
  std::uint64_t seed = 0;
  double duration_hours = 0.0;

  // Admission funnel.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double admission_rate = 0.0;  ///< admitted / max(1, admitted + rejected)

  // Lifecycle census at the end of the run.
  std::uint64_t active_at_end = 0;
  std::uint64_t expired = 0;
  std::uint64_t terminated = 0;

  // SLA ledger.
  std::uint64_t served_epochs = 0;
  std::uint64_t violation_epochs = 0;
  double violation_rate = 0.0;  ///< violation / max(1, served)

  // Revenue (integer cents — exact).
  std::int64_t earned_cents = 0;
  std::int64_t penalty_cents = 0;
  std::int64_t net_cents = 0;

  // Overbooking.
  double multiplexing_gain_mean = 1.0;
  double multiplexing_gain_peak = 1.0;
  std::uint64_t reconfigurations = 0;

  // Operations.
  std::uint64_t epochs = 0;           ///< monitoring epochs the loop actually ran
  std::uint64_t events_injected = 0;  ///< concrete failure/chaos actions fired
  std::uint64_t ue_arrivals = 0;      ///< churn-storm UE attach attempts
  std::uint64_t ue_blocked = 0;

  Percentiles install_ms;      ///< end-to-end install latency (simulated, ms)
  Percentiles active_slices;   ///< per-epoch active-slice count
  Percentiles reserved_mbps;   ///< per-epoch total reservation

  // Mobility & handover (only when the scenario has a mobility block;
  // disabled runs keep the exact byte layout of the pre-mobility card).
  bool mobility_enabled = false;
  std::uint64_t handover_attempts = 0;
  std::uint64_t handover_successes = 0;
  std::uint64_t handover_drops = 0;
  std::uint64_t mobility_exits = 0;      ///< UEs that roamed out across a region border
  std::uint64_t roamers_admitted = 0;    ///< inbound roamers re-attached here
  std::uint64_t roamers_dropped = 0;
  std::uint64_t mobile_ues_at_end = 0;   ///< live mobile population at the horizon

  // Target evaluation (empty failures + true when no targets set).
  bool targets_met = true;
  std::vector<std::string> target_failures;

  /// Wall-clock epoch latency (µs); only with RunOptions::wall_profile.
  /// Nondeterministic — excluded from determinism/parity comparisons by
  /// keeping it out of to_json() unless present.
  std::optional<Percentiles> epoch_wall_us;

  [[nodiscard]] json::Value to_json() const;
  /// Pretty JSON with a trailing newline.
  [[nodiscard]] std::string serialize() const;
};

}  // namespace slices::scenario
