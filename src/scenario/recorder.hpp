#pragma once
// Scenario flight recorder (docs/scenarios.md).
//
// Captures the externally-visible input stream of a run — every
// submitted request (with the seed of its demand model) and every
// concrete injected failure action — into an append-only journal using
// the store::Journal CRC-framed record format. A recording loads back
// as a Scenario with generate_arrivals=false whose explicit requests
// and events replay the run bit-identically: the runner schedules the
// recorded stream instead of re-drawing arrivals, and every epoch
// decision follows deterministically.

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "common/units.hpp"
#include "core/orchestrator.hpp"
#include "core/slice.hpp"
#include "scenario/scenario.hpp"
#include "store/journal.hpp"

namespace slices::scenario {

/// Writing side. One recorder per run; records must be appended in
/// simulation order (the runner's event callbacks guarantee it).
class ScenarioRecorder {
 public:
  /// Create/truncate the journal at `path` and write the scenario
  /// header (the scenario stripped of its generated stream: requests
  /// and events cleared, generate_arrivals forced off).
  [[nodiscard]] static Result<std::unique_ptr<ScenarioRecorder>> create(
      const std::string& path, const Scenario& scenario);

  ~ScenarioRecorder() { close(); }
  ScenarioRecorder(const ScenarioRecorder&) = delete;
  ScenarioRecorder& operator=(const ScenarioRecorder&) = delete;

  /// Append one submitted request at its submission time. `region` is
  /// the tenant's home region on metro runs ("" on fig2) — replays
  /// carry it explicitly so the broker never re-draws a home.
  [[nodiscard]] Result<void> record_request(SimTime at, const core::SliceSpec& spec,
                                            std::uint64_t workload_seed,
                                            const std::string& region = {});

  /// Append one concrete injected action (flaps and auto-restores are
  /// recorded as the individual down/up actions they expand to).
  [[nodiscard]] Result<void> record_event(const ScenarioEvent& event);

  /// Write the end-of-run marker and close the journal.
  [[nodiscard]] Result<void> finish(SimTime end);

  /// Live-capture convenience: record every accepted submit() of a
  /// running orchestrator (dashboard/REST-driven runs). Workload seeds
  /// are unknown on this path and recorded as 0 — replay reattaches
  /// the default demand model of each vertical.
  void attach(core::Orchestrator* orchestrator);

  void close() { journal_.close(); }

 private:
  ScenarioRecorder() = default;

  [[nodiscard]] Result<void> append(json::Object record);

  store::Journal journal_;
};

/// Load a recording back into a replayable Scenario. Errors:
/// unavailable (I/O), protocol_error (not a scenario recording),
/// invalid_argument (corrupt entries).
[[nodiscard]] Result<Scenario> load_recording(const std::string& path);

}  // namespace slices::scenario
