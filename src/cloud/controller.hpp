#pragma once
// Cloud domain controller.
//
// Fronts the edge and core datacenters toward the orchestrator: capacity
// queries, Heat stack create/delete, datacenter selection for a slice's
// compute footprint, utilization telemetry and the REST facade.

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/datacenter.hpp"
#include "cloud/heat.hpp"
#include "common/result.hpp"
#include "net/router.hpp"
#include "telemetry/registry.hpp"

namespace slices::cloud {

/// The cloud-domain controller. Construct, add datacenters and hosts,
/// then call finalize() once before first use of the stack engine.
class CloudController {
 public:
  explicit CloudController(telemetry::MonitorRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Register a datacenter (before finalize()).
  DatacenterId add_datacenter(std::string name, DatacenterKind kind,
                              double cpu_allocation_ratio = 1.0);

  /// Add a host to a datacenter (before or after finalize()).
  void add_host(DatacenterId dc, std::string name, ComputeCapacity physical);

  /// Freeze the datacenter set and build the stack engine.
  void finalize(PlacementPolicy policy = PlacementPolicy::first_fit);

  [[nodiscard]] bool finalized() const noexcept { return engine_ != nullptr; }
  [[nodiscard]] StackEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const StackEngine& engine() const noexcept { return *engine_; }

  [[nodiscard]] const Datacenter* find_datacenter(DatacenterId id) const noexcept;
  [[nodiscard]] const Datacenter* find_datacenter_by_name(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<const Datacenter*> datacenters() const;

  /// Pick a datacenter able to host `footprint`. When `require_edge` is
  /// set only edge DCs qualify (latency-bound verticals); otherwise
  /// core DCs are preferred (keep scarce edge capacity free). Failed
  /// (unavailable) datacenters never qualify. Returns nullopt when
  /// nothing fits.
  [[nodiscard]] std::optional<DatacenterId> choose_datacenter(const ComputeCapacity& footprint,
                                                              bool require_edge) const;

  // --- Failure injection -----------------------------------------------------

  /// Mark a datacenter failed/recovered (site outage). A failed DC takes
  /// no new placements — choose_datacenter skips it and create_stack
  /// returns unavailable. Stacks already running there are the caller's
  /// responsibility to tear down (the orchestrator terminates the
  /// affected slices). Errors: not_found.
  [[nodiscard]] Result<void> set_datacenter_available(DatacenterId dc, bool available);

  [[nodiscard]] bool datacenter_available(DatacenterId dc) const noexcept {
    return !failed_dcs_.contains(dc.value());
  }

  /// Create a stack; forwards to the engine. Also records telemetry.
  [[nodiscard]] Result<StackId> create_stack(DatacenterId dc, const StackTemplate& tmpl);

  [[nodiscard]] Result<void> delete_stack(StackId stack);

  /// Deployment-time estimate for a template (used by the install
  /// workflow to model the "few seconds" the demo mentions).
  [[nodiscard]] Duration estimated_deploy_time(const StackTemplate& tmpl) const noexcept {
    return engine_->deploy_time().estimate(tmpl);
  }

  /// Publish per-datacenter utilization telemetry for this epoch.
  void record_epoch(SimTime now);

  /// REST facade (datacenters, stack CRUD, metrics).
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  // Deque-like stable storage: datacenters are appended before
  // finalize(); unique_ptr keeps addresses stable for the engine.
  std::vector<std::unique_ptr<Datacenter>> datacenters_;
  std::unique_ptr<StackEngine> engine_;
  std::set<std::uint64_t> failed_dcs_;  ///< DatacenterId values currently failed
  IdAllocator<DatacenterTag> dc_ids_;
  telemetry::MonitorRegistry* registry_;
  std::string metrics_buffer_;  ///< reused /metrics serialization buffer
};

}  // namespace slices::cloud
