#pragma once
// Compute substrate: datacenters, hosts, flavors and VMs.
//
// The testbed runs "two different data centers configured on top of
// OpenStack deployments to host mobile edge and core networks". We model
// the admission-relevant slice of OpenStack Nova: hosts with
// vCPU/RAM/disk capacity, flavors, VM placement with a configurable
// CPU-allocation (oversubscription) ratio, and boot/delete lifecycle.

#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace slices::cloud {

/// Instance size template (OpenStack flavor).
struct Flavor {
  std::string name;
  ComputeCapacity footprint;
};

/// Where a datacenter sits in the end-to-end path.
enum class DatacenterKind {
  edge,  ///< close to the RAN; low added latency, scarce capacity
  core,  ///< central cloud; plentiful capacity, higher latency
};

[[nodiscard]] std::string_view to_string(DatacenterKind k) noexcept;

/// VM placement strategy across hosts.
enum class PlacementPolicy {
  first_fit,  ///< first host with room (fast, fragments little under churn)
  best_fit,   ///< tightest host (packs, risks hotspots)
  worst_fit,  ///< emptiest host (spreads load)
};

/// A running virtual machine.
struct Vm {
  VmId id;
  std::string name;
  Flavor flavor;
  HostId host;
};

/// One compute host.
struct Host {
  HostId id;
  std::string name;
  ComputeCapacity physical;
  ComputeCapacity used;
};

/// An OpenStack-style datacenter: hosts plus placement.
class Datacenter {
 public:
  /// `cpu_allocation_ratio` >= 1 scales the *schedulable* vCPU capacity
  /// above the physical one, exactly like Nova's ratio; memory and disk
  /// are never oversubscribed.
  Datacenter(DatacenterId id, std::string name, DatacenterKind kind,
             double cpu_allocation_ratio = 1.0);

  void add_host(std::string name, ComputeCapacity physical);

  [[nodiscard]] DatacenterId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] DatacenterKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] const std::vector<Host>& hosts() const noexcept { return hosts_; }

  /// Schedulable capacity of a host (physical with the vCPU ratio applied).
  [[nodiscard]] ComputeCapacity schedulable(const Host& host) const noexcept;

  /// Aggregate schedulable capacity of the whole datacenter.
  [[nodiscard]] ComputeCapacity total_capacity() const noexcept;
  /// Aggregate used capacity.
  [[nodiscard]] ComputeCapacity used_capacity() const noexcept;
  /// Aggregate free capacity (total − used, clamped >= 0 per axis).
  [[nodiscard]] ComputeCapacity free_capacity() const noexcept;

  /// True when some single host could fit `footprint` right now.
  [[nodiscard]] bool can_fit(const ComputeCapacity& footprint) const noexcept;

  /// Boot a VM of `flavor` under `policy`. Errors:
  /// insufficient_capacity when no host fits.
  [[nodiscard]] Result<VmId> boot_vm(std::string name, const Flavor& flavor,
                                     PlacementPolicy policy = PlacementPolicy::first_fit);

  /// Destroy a VM and free its footprint. Errors: not_found.
  [[nodiscard]] Result<void> delete_vm(VmId vm);

  [[nodiscard]] const Vm* find_vm(VmId vm) const noexcept;
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }

 private:
  [[nodiscard]] Host* pick_host(const ComputeCapacity& footprint, PlacementPolicy policy);

  DatacenterId id_;
  std::string name_;
  DatacenterKind kind_;
  double cpu_ratio_;
  std::vector<Host> hosts_;
  std::map<std::uint64_t, Vm> vms_;  // by VmId value
  IdAllocator<HostTag> host_ids_;
  IdAllocator<VmTag> vm_ids_;
};

}  // namespace slices::cloud
