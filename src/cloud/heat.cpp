#include "cloud/heat.hpp"

#include <cassert>

namespace slices::cloud {

StackEngine::StackEngine(std::vector<Datacenter*> datacenters, PlacementPolicy policy)
    : datacenters_(std::move(datacenters)), policy_(policy) {
  for (const Datacenter* dc : datacenters_) {
    assert(dc != nullptr);
    (void)dc;
  }
}

Datacenter* StackEngine::find_datacenter(DatacenterId id) const noexcept {
  for (Datacenter* dc : datacenters_) {
    if (dc->id() == id) return dc;
  }
  return nullptr;
}

Result<StackId> StackEngine::create_stack(DatacenterId dc_id, const StackTemplate& tmpl) {
  Datacenter* dc = find_datacenter(dc_id);
  if (dc == nullptr) return make_error(Errc::not_found, "unknown datacenter");

  Stack stack;
  stack.id = stack_ids_.next();
  stack.name = tmpl.name;
  stack.datacenter = dc_id;

  for (const ResourceSpec& spec : tmpl.resources) {
    Result<VmId> vm = dc->boot_vm(tmpl.name + "." + spec.name, spec.flavor, policy_);
    if (!vm.ok()) {
      // Roll back everything booted so far: stack creation is atomic.
      for (const auto& [name, booted] : stack.resources) {
        const Result<void> r = dc->delete_vm(booted);
        assert(r.ok());
        (void)r;
      }
      return vm.error();
    }
    stack.resources.emplace(spec.name, vm.value());
  }

  const StackId id = stack.id;
  stacks_.emplace(id.value(), std::move(stack));
  return id;
}

Result<void> StackEngine::delete_stack(StackId stack_id) {
  const auto it = stacks_.find(stack_id.value());
  if (it == stacks_.end()) return make_error(Errc::not_found, "unknown stack");
  Datacenter* dc = find_datacenter(it->second.datacenter);
  assert(dc != nullptr);
  for (const auto& [name, vm] : it->second.resources) {
    const Result<void> r = dc->delete_vm(vm);
    assert(r.ok());
    (void)r;
  }
  stacks_.erase(it);
  return {};
}

const Stack* StackEngine::find_stack(StackId stack) const noexcept {
  const auto it = stacks_.find(stack.value());
  return it == stacks_.end() ? nullptr : &it->second;
}

}  // namespace slices::cloud
