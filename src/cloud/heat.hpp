#pragma once
// Heat-style stack orchestration.
//
// "Dynamic configurations of computational resources are performed
// through Heat, an OpenStack orchestration solution." A StackTemplate
// declares a set of named resources (VMs by flavor); the StackEngine
// creates them atomically in a datacenter (all-or-nothing with
// rollback), updates them, and deletes them. Per-slice EPC instances are
// deployed as stacks (see src/epc).

#include <map>
#include <string>
#include <vector>

#include "cloud/datacenter.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace slices::cloud {

/// One declared resource inside a template.
struct ResourceSpec {
  std::string name;  ///< unique within the template
  Flavor flavor;
};

/// Declarative description of a stack.
struct StackTemplate {
  std::string name;
  std::vector<ResourceSpec> resources;

  /// Total compute footprint of the template.
  [[nodiscard]] ComputeCapacity footprint() const noexcept {
    ComputeCapacity sum;
    for (const ResourceSpec& r : resources) sum += r.flavor.footprint;
    return sum;
  }
};

/// A deployed stack: the VMs created from a template.
struct Stack {
  StackId id;
  std::string name;
  DatacenterId datacenter;
  std::map<std::string, VmId> resources;  ///< spec name -> VM
};

/// Time model of stack deployment: base orchestration latency plus
/// per-VM boot time — this is what makes slice installation take
/// "a few seconds" in the demo (mostly the EPC stack).
struct DeployTimeModel {
  Duration base = Duration::seconds(1.5);
  Duration per_vm = Duration::seconds(2.0);

  [[nodiscard]] Duration estimate(const StackTemplate& tmpl) const noexcept {
    return base + per_vm * static_cast<double>(tmpl.resources.size());
  }
};

/// Creates/updates/deletes stacks over a set of datacenters.
class StackEngine {
 public:
  /// Datacenters are owned by the caller and must outlive the engine.
  explicit StackEngine(std::vector<Datacenter*> datacenters,
                       PlacementPolicy policy = PlacementPolicy::first_fit);

  [[nodiscard]] const std::vector<Datacenter*>& datacenters() const noexcept {
    return datacenters_;
  }
  [[nodiscard]] Datacenter* find_datacenter(DatacenterId id) const noexcept;

  /// Create a stack from `tmpl` in `dc`. All-or-nothing: if any VM
  /// fails to place, already-booted ones are destroyed and the error
  /// returned. Errors: not_found (unknown DC), insufficient_capacity.
  [[nodiscard]] Result<StackId> create_stack(DatacenterId dc, const StackTemplate& tmpl);

  /// Delete a stack and all its VMs. Errors: not_found.
  [[nodiscard]] Result<void> delete_stack(StackId stack);

  [[nodiscard]] const Stack* find_stack(StackId stack) const noexcept;
  [[nodiscard]] std::size_t stack_count() const noexcept { return stacks_.size(); }

  [[nodiscard]] const DeployTimeModel& deploy_time() const noexcept { return time_model_; }

 private:
  std::vector<Datacenter*> datacenters_;
  PlacementPolicy policy_;
  std::map<std::uint64_t, Stack> stacks_;  // by StackId value
  IdAllocator<StackTag> stack_ids_;
  DeployTimeModel time_model_;
};

}  // namespace slices::cloud
