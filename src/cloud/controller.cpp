#include "cloud/controller.hpp"

#include <cassert>

#include "json/value.hpp"
#include "telemetry/trace.hpp"

namespace slices::cloud {

DatacenterId CloudController::add_datacenter(std::string name, DatacenterKind kind,
                                             double cpu_allocation_ratio) {
  assert(!finalized() && "add datacenters before finalize()");
  const DatacenterId id = dc_ids_.next();
  datacenters_.push_back(
      std::make_unique<Datacenter>(id, std::move(name), kind, cpu_allocation_ratio));
  return id;
}

void CloudController::add_host(DatacenterId dc, std::string name, ComputeCapacity physical) {
  for (auto& d : datacenters_) {
    if (d->id() == dc) {
      d->add_host(std::move(name), physical);
      return;
    }
  }
  assert(false && "unknown datacenter");
}

void CloudController::finalize(PlacementPolicy policy) {
  assert(!finalized());
  std::vector<Datacenter*> raw;
  raw.reserve(datacenters_.size());
  for (auto& d : datacenters_) raw.push_back(d.get());
  engine_ = std::make_unique<StackEngine>(std::move(raw), policy);
}

const Datacenter* CloudController::find_datacenter(DatacenterId id) const noexcept {
  for (const auto& d : datacenters_) {
    if (d->id() == id) return d.get();
  }
  return nullptr;
}

const Datacenter* CloudController::find_datacenter_by_name(std::string_view name) const noexcept {
  for (const auto& d : datacenters_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

std::vector<const Datacenter*> CloudController::datacenters() const {
  std::vector<const Datacenter*> out;
  out.reserve(datacenters_.size());
  for (const auto& d : datacenters_) out.push_back(d.get());
  return out;
}

std::optional<DatacenterId> CloudController::choose_datacenter(
    const ComputeCapacity& footprint, bool require_edge) const {
  // Pass 1: the kind we prefer; pass 2 (only when edge not required):
  // fall back to the other kind.
  const auto pick = [&](DatacenterKind kind) -> std::optional<DatacenterId> {
    for (const auto& d : datacenters_) {
      if (d->kind() == kind && datacenter_available(d->id()) && d->can_fit(footprint)) {
        return d->id();
      }
    }
    return std::nullopt;
  };
  if (require_edge) return pick(DatacenterKind::edge);
  if (const auto core = pick(DatacenterKind::core)) return core;
  return pick(DatacenterKind::edge);
}

Result<void> CloudController::set_datacenter_available(DatacenterId dc, bool available) {
  if (find_datacenter(dc) == nullptr) {
    return make_error(Errc::not_found, "unknown datacenter " + std::to_string(dc.value()));
  }
  if (available) {
    failed_dcs_.erase(dc.value());
  } else {
    failed_dcs_.insert(dc.value());
  }
  return {};
}

Result<StackId> CloudController::create_stack(DatacenterId dc, const StackTemplate& tmpl) {
  assert(finalized());
  if (!datacenter_available(dc)) {
    return make_error(Errc::unavailable,
                      "datacenter " + std::to_string(dc.value()) + " is failed");
  }
  return engine_->create_stack(dc, tmpl);
}

Result<void> CloudController::delete_stack(StackId stack) {
  assert(finalized());
  return engine_->delete_stack(stack);
}

void CloudController::record_epoch(SimTime now) {
  TRACE_SCOPE("cloud.record_epoch");
  if (registry_ == nullptr) return;
  for (const auto& d : datacenters_) {
    const std::string prefix = "cloud.dc." + std::to_string(d->id().value());
    const ComputeCapacity total = d->total_capacity();
    const ComputeCapacity used = d->used_capacity();
    registry_->observe(prefix + ".vcpu_used", now, used.vcpus);
    registry_->observe(prefix + ".vcpu_total", now, total.vcpus);
    registry_->observe(prefix + ".utilization", now,
                       total.vcpus <= 0.0 ? 0.0 : used.vcpus / total.vcpus);
  }
}

std::shared_ptr<net::Router> CloudController::make_router() {
  auto router = std::make_shared<net::Router>();

  router->add(net::Method::get, "/datacenters", [this](const net::RouteContext&) {
    json::Array dcs;
    for (const auto& d : datacenters_) {
      const ComputeCapacity total = d->total_capacity();
      const ComputeCapacity used = d->used_capacity();
      json::Object entry;
      entry.emplace("id", static_cast<double>(d->id().value()));
      entry.emplace("name", d->name());
      entry.emplace("kind", std::string(to_string(d->kind())));
      entry.emplace("hosts", static_cast<double>(d->host_count()));
      entry.emplace("vcpu_total", total.vcpus);
      entry.emplace("vcpu_used", used.vcpus);
      entry.emplace("memory_mb_total", total.memory_mb);
      entry.emplace("memory_mb_used", used.memory_mb);
      dcs.push_back(std::move(entry));
    }
    json::Object body;
    body.emplace("datacenters", std::move(dcs));
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/stacks", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const json::Value& v = doc.value();
    const Result<double> dc = v.get_number("datacenter");
    if (!dc.ok()) return net::Response::from_error(dc.error());
    const Result<std::string> name = v.get_string("name");
    if (!name.ok()) return net::Response::from_error(name.error());
    const json::Value* resources = v.find("resources");
    if (resources == nullptr || !resources->is_array())
      return net::Response::from_error(
          make_error(Errc::protocol_error, "missing 'resources' array"));

    StackTemplate tmpl;
    tmpl.name = name.value();
    for (const json::Value& r : resources->as_array()) {
      const Result<std::string> rname = r.get_string("name");
      const Result<double> vcpus = r.get_number("vcpus");
      const Result<double> mem = r.get_number("memory_mb");
      const Result<double> disk = r.get_number("disk_gb");
      if (!rname.ok()) return net::Response::from_error(rname.error());
      for (const auto* field : {&vcpus, &mem, &disk}) {
        if (!field->ok()) return net::Response::from_error(field->error());
      }
      tmpl.resources.push_back(ResourceSpec{
          rname.value(),
          Flavor{rname.value(), ComputeCapacity{vcpus.value(), mem.value(), disk.value()}}});
    }

    const Result<StackId> stack =
        create_stack(DatacenterId{static_cast<std::uint64_t>(dc.value())}, tmpl);
    if (!stack.ok()) return net::Response::from_error(stack.error());
    json::Object body;
    body.emplace("stack", static_cast<double>(stack.value().value()));
    body.emplace("deploy_seconds", estimated_deploy_time(tmpl).as_seconds());
    return net::Response::json(net::Status::created,
                               json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::del, "/stacks/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = delete_stack(StackId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::get, "/metrics", [this](const net::RouteContext&) {
    if (registry_ == nullptr) return net::Response::json(net::Status::ok, "{}");
    registry_->metrics_body(metrics_buffer_, "cloud.");
    return net::Response::json(net::Status::ok, metrics_buffer_);
  });

  return router;
}

}  // namespace slices::cloud
