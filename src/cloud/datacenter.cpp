#include "cloud/datacenter.hpp"

#include <cassert>

namespace slices::cloud {

std::string_view to_string(DatacenterKind k) noexcept {
  switch (k) {
    case DatacenterKind::edge: return "edge";
    case DatacenterKind::core: return "core";
  }
  return "?";
}

Datacenter::Datacenter(DatacenterId id, std::string name, DatacenterKind kind,
                       double cpu_allocation_ratio)
    : id_(id), name_(std::move(name)), kind_(kind), cpu_ratio_(cpu_allocation_ratio) {
  assert(cpu_allocation_ratio >= 1.0);
}

void Datacenter::add_host(std::string name, ComputeCapacity physical) {
  assert(physical.non_negative());
  hosts_.push_back(Host{host_ids_.next(), std::move(name), physical, ComputeCapacity{}});
}

ComputeCapacity Datacenter::schedulable(const Host& host) const noexcept {
  ComputeCapacity c = host.physical;
  c.vcpus *= cpu_ratio_;
  return c;
}

ComputeCapacity Datacenter::total_capacity() const noexcept {
  ComputeCapacity sum;
  for (const Host& h : hosts_) sum += schedulable(h);
  return sum;
}

ComputeCapacity Datacenter::used_capacity() const noexcept {
  ComputeCapacity sum;
  for (const Host& h : hosts_) sum += h.used;
  return sum;
}

ComputeCapacity Datacenter::free_capacity() const noexcept {
  ComputeCapacity free = total_capacity() - used_capacity();
  if (free.vcpus < 0.0) free.vcpus = 0.0;
  if (free.memory_mb < 0.0) free.memory_mb = 0.0;
  if (free.disk_gb < 0.0) free.disk_gb = 0.0;
  return free;
}

bool Datacenter::can_fit(const ComputeCapacity& footprint) const noexcept {
  for (const Host& h : hosts_) {
    if ((h.used + footprint).fits_within(schedulable(h))) return true;
  }
  return false;
}

Host* Datacenter::pick_host(const ComputeCapacity& footprint, PlacementPolicy policy) {
  Host* chosen = nullptr;
  for (Host& h : hosts_) {
    if (!(h.used + footprint).fits_within(schedulable(h))) continue;
    if (policy == PlacementPolicy::first_fit) return &h;
    if (chosen == nullptr) {
      chosen = &h;
      continue;
    }
    const double free_h = schedulable(h).vcpus - h.used.vcpus;
    const double free_c = schedulable(*chosen).vcpus - chosen->used.vcpus;
    if (policy == PlacementPolicy::best_fit ? free_h < free_c : free_h > free_c) {
      chosen = &h;
    }
  }
  return chosen;
}

Result<VmId> Datacenter::boot_vm(std::string name, const Flavor& flavor,
                                 PlacementPolicy policy) {
  Host* host = pick_host(flavor.footprint, policy);
  if (host == nullptr) {
    return make_error(Errc::insufficient_capacity,
                      "datacenter " + name_ + " has no host fitting flavor " + flavor.name);
  }
  host->used += flavor.footprint;
  const VmId id = vm_ids_.next();
  vms_.emplace(id.value(), Vm{id, std::move(name), flavor, host->id});
  return id;
}

Result<void> Datacenter::delete_vm(VmId vm) {
  const auto it = vms_.find(vm.value());
  if (it == vms_.end()) return make_error(Errc::not_found, "unknown VM");
  for (Host& h : hosts_) {
    if (h.id == it->second.host) {
      h.used -= it->second.flavor.footprint;
      if (h.used.vcpus < 0.0) h.used.vcpus = 0.0;
      if (h.used.memory_mb < 0.0) h.used.memory_mb = 0.0;
      if (h.used.disk_gb < 0.0) h.used.disk_gb = 0.0;
      break;
    }
  }
  vms_.erase(it);
  return {};
}

const Vm* Datacenter::find_vm(VmId vm) const noexcept {
  const auto it = vms_.find(vm.value());
  return it == vms_.end() ? nullptr : &it->second;
}

}  // namespace slices::cloud
