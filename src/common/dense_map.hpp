#pragma once
// Dense slot-indexed id containers for the per-UE / per-flow data plane.
//
// The orchestrator's hot paths (attach/detach churn, the per-epoch
// demand scans) used to walk node-based red-black trees; every lookup
// chased pointers and every insert allocated. `DenseIdMap` replaces
// them with an open-addressed index over a contiguous slot arena:
//
//  * O(1) insert / erase / lookup (amortized; linear probing with
//    backward-shift deletion, so no tombstone decay);
//  * stable handles — values never move once constructed. The slot
//    arena is a `StableVector` (chunked, pointer-stable growth), so a
//    `T*` from find()/insert() survives any number of later inserts;
//  * deterministic iteration in *slot order*: ascending slot index,
//    i.e. insertion order with erased slots reused LIFO. Slot order is
//    a pure function of the operation history, never of key hashes or
//    addresses — which is what lets the epoch loop iterate UEs while
//    consuming a seeded RNG and still honour the bit-identical results
//    contract pinned by determinism_test (see docs/architecture.md,
//    "Data-plane containers").
//
// Keys default to the strong `Id<Tag>` types via `DenseKeyTraits`;
// other key types (e.g. the flow table's (node, slice) pair) plug in a
// custom traits type providing `invalid()` and `hash()`.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace slices {

/// splitmix64 finalizer: ids are near-sequential, so the index needs a
/// real mixer to spread them over the probe table.
[[nodiscard]] constexpr std::uint64_t dense_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Key requirements for DenseIdMap: an `invalid()` sentinel (marks free
/// slots; never inserted) and a well-mixed `hash()`.
template <typename Key>
struct DenseKeyTraits;

template <typename Tag>
struct DenseKeyTraits<Id<Tag>> {
  [[nodiscard]] static constexpr Id<Tag> invalid() noexcept { return Id<Tag>::invalid(); }
  [[nodiscard]] static constexpr std::uint64_t hash(Id<Tag> id) noexcept {
    return dense_mix64(id.value());
  }
};

/// Chunked vector: grows in fixed-size blocks so existing elements
/// never move (pointer/reference stability under growth). Elements are
/// default-constructed a block at a time; T must be default- and
/// move-constructible. Index access is two loads (block, offset) — the
/// blocks are contiguous runs, so sequential walks stay cache-friendly.
template <typename T, std::size_t BlockSize = 256>
class StableVector {
  static_assert(BlockSize > 0 && (BlockSize & (BlockSize - 1)) == 0,
                "BlockSize must be a power of two");

 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return blocks_[i / BlockSize][i & (BlockSize - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return blocks_[i / BlockSize][i & (BlockSize - 1)];
  }

  /// Append a default-constructed element and return its index.
  std::size_t push_slot() {
    if (size_ == blocks_.size() * BlockSize) {
      blocks_.push_back(std::make_unique<T[]>(BlockSize));
    }
    return size_++;
  }

  void clear() noexcept {
    blocks_.clear();
    size_ = 0;
  }

 private:
  std::vector<std::unique_ptr<T[]>> blocks_;
  std::size_t size_ = 0;
};

/// Open-addressed map from a strong id to a value, with stable value
/// addresses and deterministic slot-order iteration. See file header
/// for the full contract.
template <typename Key, typename T, typename Traits = DenseKeyTraits<Key>>
class DenseIdMap {
 public:
  /// One arena slot. Free slots carry `Traits::invalid()` as key and a
  /// default-constructed value; iteration skips them. The two public
  /// members make range-for structured bindings read like the old map
  /// code: `for (auto& [ue, rec] : ues_)`.
  struct Slot {
    Key key{Traits::invalid()};
    T value{};
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  DenseIdMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(Key key) const noexcept { return find_slot(key) != kNoSlot; }

  [[nodiscard]] T* find(Key key) noexcept {
    const std::uint32_t slot = find_slot(key);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }
  [[nodiscard]] const T* find(Key key) const noexcept {
    const std::uint32_t slot = find_slot(key);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }

  /// Insert; returns nullptr (and leaves the map unchanged) when the
  /// key is already present.
  T* insert(Key key, T value) {
    assert(key != Traits::invalid());
    if (contains(key)) return nullptr;
    return &emplace_new(key, std::move(value));
  }

  /// Insert or overwrite; returns the stored value.
  T& insert_or_assign(Key key, T value) {
    assert(key != Traits::invalid());
    if (T* existing = find(key)) {
      *existing = std::move(value);
      return *existing;
    }
    return emplace_new(key, std::move(value));
  }

  /// Erase; returns false when the key was absent. The freed slot is
  /// pushed on a LIFO free list and reused by the next insert, so slot
  /// assignment stays a pure function of the operation history.
  bool erase(Key key) {
    const std::size_t mask = index_.empty() ? 0 : index_.size() - 1;
    if (index_.empty()) return false;
    std::size_t pos = Traits::hash(key) & mask;
    while (true) {
      const std::uint32_t slot = index_[pos];
      if (slot == kNoSlot) return false;
      if (slots_[slot].key == key) {
        slots_[slot].key = Traits::invalid();
        slots_[slot].value = T{};  // release payload resources now
        free_.push_back(slot);
        index_backward_shift_erase(pos);
        --size_;
        return true;
      }
      pos = (pos + 1) & mask;
    }
  }

  void clear() noexcept {
    slots_.clear();
    index_.clear();
    free_.clear();
    size_ = 0;
  }

  /// Pre-size the probe table for `n` keys (avoids rehashing mid-burst).
  void reserve(std::size_t n) {
    std::size_t cap = kMinIndexSize;
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > index_.size()) rehash(cap);
  }

  /// Slot index of `key`, or kNoSlot. Slot indices are stable until the
  /// key is erased; `slot_at` turns one back into the stored pair.
  [[nodiscard]] std::uint32_t slot_of(Key key) const noexcept { return find_slot(key); }
  [[nodiscard]] Slot& slot_at(std::uint32_t slot) noexcept { return slots_[slot]; }
  [[nodiscard]] const Slot& slot_at(std::uint32_t slot) const noexcept { return slots_[slot]; }
  /// Total arena slots (live + free); the upper bound for slot indices.
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }

  // --- Iteration: ascending slot index, skipping free slots ---------------

  template <bool Const>
  class Iterator {
   public:
    using Map = std::conditional_t<Const, const DenseIdMap, DenseIdMap>;
    using reference = std::conditional_t<Const, const Slot&, Slot&>;

    Iterator(Map* map, std::size_t pos) noexcept : map_(map), pos_(pos) { skip_free(); }

    reference operator*() const noexcept { return map_->slots_[pos_]; }
    Iterator& operator++() noexcept {
      ++pos_;
      skip_free();
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) noexcept {
      return a.pos_ == b.pos_;
    }

   private:
    void skip_free() noexcept {
      while (pos_ < map_->slots_.size() && !(map_->slots_[pos_].key != Traits::invalid())) {
        ++pos_;
      }
    }
    Map* map_;
    std::size_t pos_;
  };

  [[nodiscard]] Iterator<false> begin() noexcept { return {this, 0}; }
  [[nodiscard]] Iterator<false> end() noexcept { return {this, slots_.size()}; }
  [[nodiscard]] Iterator<true> begin() const noexcept { return {this, 0}; }
  [[nodiscard]] Iterator<true> end() const noexcept { return {this, slots_.size()}; }

 private:
  static constexpr std::size_t kMinIndexSize = 16;

  [[nodiscard]] std::uint32_t find_slot(Key key) const noexcept {
    if (index_.empty()) return kNoSlot;
    const std::size_t mask = index_.size() - 1;
    std::size_t pos = Traits::hash(key) & mask;
    while (true) {
      const std::uint32_t slot = index_[pos];
      if (slot == kNoSlot) return kNoSlot;
      if (slots_[slot].key == key) return slot;
      pos = (pos + 1) & mask;
    }
  }

  T& emplace_new(Key key, T&& value) {
    if ((size_ + 1) * 4 > index_.size() * 3) {
      rehash(index_.empty() ? kMinIndexSize : index_.size() * 2);
    }
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.push_slot());
    }
    Slot& s = slots_[slot];
    s.key = key;
    s.value = std::move(value);
    index_insert(slot);
    ++size_;
    return s.value;
  }

  void index_insert(std::uint32_t slot) noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t pos = Traits::hash(slots_[slot].key) & mask;
    while (index_[pos] != kNoSlot) pos = (pos + 1) & mask;
    index_[pos] = slot;
  }

  /// Knuth's algorithm R: close the probe-chain hole left at `pos` by
  /// shifting back any later entry whose home position cannot reach its
  /// current cell once the hole exists. No tombstones, so load factor
  /// tracks live keys exactly.
  void index_backward_shift_erase(std::size_t pos) noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = pos;
    index_[hole] = kNoSlot;
    std::size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask;
      const std::uint32_t slot = index_[probe];
      if (slot == kNoSlot) return;
      const std::size_t home = Traits::hash(slots_[slot].key) & mask;
      // Move unless home lies cyclically within (hole, probe].
      const bool movable = hole <= probe ? (home <= hole || home > probe)
                                         : (home <= hole && home > probe);
      if (movable) {
        index_[hole] = slot;
        index_[probe] = kNoSlot;
        hole = probe;
      }
    }
  }

  void rehash(std::size_t new_size) {
    index_.assign(new_size, kNoSlot);
    const std::size_t mask = new_size - 1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].key == Traits::invalid()) continue;
      std::size_t pos = Traits::hash(slots_[i].key) & mask;
      while (index_[pos] != kNoSlot) pos = (pos + 1) & mask;
      index_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  StableVector<Slot> slots_;         ///< arena; values never move
  std::vector<std::uint32_t> index_; ///< open-addressed key -> slot
  std::vector<std::uint32_t> free_;  ///< LIFO reusable slots
  std::size_t size_ = 0;
};

}  // namespace slices
