#pragma once
// Deterministic random-number generation.
//
// Every stochastic component (traffic models, link fading, arrival
// processes) draws from an explicitly seeded Rng so that a whole
// simulation run is reproducible from a single seed, and independent
// components can be given independent streams via `fork()`.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace slices {

/// SplitMix64-seeded xoshiro256** generator with distribution helpers.
/// Not cryptographic; chosen for speed and well-understood statistical
/// quality in simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (one draw per call, no caching, to
  /// keep the stream position deterministic regardless of call pattern).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate (mean 1/rate). Precondition: rate > 0.
  double exponential(double rate) noexcept {
    assert(rate > 0.0);
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count with given mean. Knuth for small means,
  /// normal approximation above 64 (sufficient for traffic-arrival use).
  std::int64_t poisson(double mean) noexcept {
    assert(mean >= 0.0);
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double draw = normal(mean, std::sqrt(mean));
      return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t count = 0;
    while (prod > limit) {
      prod *= uniform();
      ++count;
    }
    return count;
  }

  /// Pareto with given shape and minimum (heavy-tailed bursts).
  double pareto(double shape, double minimum) noexcept {
    assert(shape > 0.0 && minimum > 0.0);
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return minimum / std::pow(u, 1.0 / shape);
  }

  /// Derive an independent child stream (for per-component determinism).
  [[nodiscard]] Rng fork() noexcept { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace slices
