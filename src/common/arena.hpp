#pragma once
// Monotonic per-epoch arena for hot-loop scratch.
//
// The epoch kernel (RanController::serve_epoch_into and friends) needs
// a handful of flat scratch arrays whose sizes depend on the current
// cell/PLMN counts. Allocating them per epoch would put malloc on the
// hottest path in the system; keeping one named member per array makes
// the scratch set rigid. The Arena splits the difference: callers bump-
// allocate typed arrays out of one contiguous block, and `reset()`
// rewinds the cursor without releasing the block — after a warm-up
// epoch has grown the block to the high-water mark, every later epoch
// allocates nothing (the property epoch_alloc_test pins).
//
// Only trivially-destructible element types are accepted: reset() never
// runs destructors, it just forgets.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

namespace slices {

class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocate a value-initialized array of `n` Ts. The span is valid
  /// until the next reset(). May fall back to a heap allocation (and
  /// grow the block for the next epoch) when the block is exhausted —
  /// steady state never hits that path.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(T);
    std::size_t offset = (cursor_ + alignof(T) - 1) & ~(alignof(T) - 1);
    if (offset + bytes > capacity_) {
      grow(offset + bytes);
      offset = (cursor_ + alignof(T) - 1) & ~(alignof(T) - 1);
    }
    T* data = reinterpret_cast<T*>(block_.get() + offset);
    cursor_ = offset + bytes;
    if (cursor_ > high_water_) high_water_ = cursor_;
    for (std::size_t i = 0; i < n; ++i) new (data + i) T{};
    return {data, n};
  }

  /// Rewind the cursor; capacity is kept so the next epoch reuses the
  /// same block.
  void reset() noexcept { cursor_ = 0; }

  /// Grow the block up front so later alloc_array calls cannot malloc.
  void reserve(std::size_t bytes) {
    if (bytes > capacity_) grow(bytes);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  void grow(std::size_t needed) {
    assert(cursor_ == 0 || needed > capacity_);
    std::size_t next = capacity_ == 0 ? 4096 : capacity_ * 2;
    while (next < needed) next *= 2;
    auto block = std::make_unique<std::byte[]>(next);
    // Live spans from the old block would dangle, so growth is only
    // legal while nothing allocated this epoch is still in use — the
    // kernel allocates everything up front, right after reset().
    if (cursor_ != 0) {
      for (std::size_t i = 0; i < cursor_; ++i) block[i] = block_[i];
    }
    block_ = std::move(block);
    capacity_ = next;
  }

  std::unique_ptr<std::byte[]> block_;
  std::size_t capacity_ = 0;
  std::size_t cursor_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace slices
