#pragma once
// Dimensioned quantities used throughout the orchestrator: data rates,
// simulated time, radio resources (PRBs), compute resources, and money.
// All are small value types with explicit constructors so raw doubles
// cannot silently cross domain boundaries with the wrong unit.

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace slices {

// ---------------------------------------------------------------------------
// Data rate
// ---------------------------------------------------------------------------

/// A (non-negative in normal use) data rate. Stored as bits per second in
/// double precision; helpers construct/extract in Mb/s which is the unit
/// the paper's dashboard and SLAs use.
class DataRate {
 public:
  constexpr DataRate() noexcept = default;

  [[nodiscard]] static constexpr DataRate bps(double v) noexcept { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate kbps(double v) noexcept { return DataRate{v * 1e3}; }
  [[nodiscard]] static constexpr DataRate mbps(double v) noexcept { return DataRate{v * 1e6}; }
  [[nodiscard]] static constexpr DataRate gbps(double v) noexcept { return DataRate{v * 1e9}; }
  [[nodiscard]] static constexpr DataRate zero() noexcept { return DataRate{0.0}; }

  [[nodiscard]] constexpr double bits_per_second() const noexcept { return bps_; }
  [[nodiscard]] constexpr double as_mbps() const noexcept { return bps_ / 1e6; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bps_ == 0.0; }

  friend constexpr auto operator<=>(DataRate, DataRate) noexcept = default;
  friend constexpr DataRate operator+(DataRate a, DataRate b) noexcept { return DataRate{a.bps_ + b.bps_}; }
  friend constexpr DataRate operator-(DataRate a, DataRate b) noexcept { return DataRate{a.bps_ - b.bps_}; }
  friend constexpr DataRate operator*(DataRate a, double k) noexcept { return DataRate{a.bps_ * k}; }
  friend constexpr DataRate operator*(double k, DataRate a) noexcept { return DataRate{a.bps_ * k}; }
  friend constexpr DataRate operator/(DataRate a, double k) noexcept { return DataRate{a.bps_ / k}; }
  /// Dimensionless ratio of two rates (e.g. utilization).
  friend constexpr double operator/(DataRate a, DataRate b) noexcept { return a.bps_ / b.bps_; }
  constexpr DataRate& operator+=(DataRate o) noexcept { bps_ += o.bps_; return *this; }
  constexpr DataRate& operator-=(DataRate o) noexcept { bps_ -= o.bps_; return *this; }

  friend std::ostream& operator<<(std::ostream& os, DataRate r) {
    return os << r.as_mbps() << " Mb/s";
  }

 private:
  constexpr explicit DataRate(double bps) noexcept : bps_(bps) {}
  double bps_ = 0.0;
};

/// Clamp a rate to be non-negative (used after subtractions).
[[nodiscard]] constexpr DataRate clamp_non_negative(DataRate r) noexcept {
  return r < DataRate::zero() ? DataRate::zero() : r;
}

[[nodiscard]] constexpr DataRate min(DataRate a, DataRate b) noexcept { return a < b ? a : b; }
[[nodiscard]] constexpr DataRate max(DataRate a, DataRate b) noexcept { return a < b ? b : a; }

// ---------------------------------------------------------------------------
// Simulated time
// ---------------------------------------------------------------------------

/// Simulated duration with microsecond resolution. Signed so that
/// differences are representable; negative durations are never scheduled.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) noexcept { return Duration{v}; }
  [[nodiscard]] static constexpr Duration millis(double v) noexcept {
    return Duration{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr Duration seconds(double v) noexcept {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr Duration minutes(double v) noexcept { return seconds(v * 60.0); }
  [[nodiscard]] static constexpr Duration hours(double v) noexcept { return seconds(v * 3600.0); }
  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }

  [[nodiscard]] constexpr std::int64_t as_micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double as_millis() const noexcept { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const noexcept { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double as_hours() const noexcept { return as_seconds() / 3600.0; }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;
  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, double k) noexcept {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  friend constexpr double operator/(Duration a, Duration b) noexcept {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  constexpr Duration& operator+=(Duration o) noexcept { us_ += o.us_; return *this; }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.as_seconds() << " s";
  }

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

/// Absolute simulated time (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime origin() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime from_micros(std::int64_t us) noexcept { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double as_seconds() const noexcept { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double as_hours() const noexcept { return as_seconds() / 3600.0; }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime t, Duration d) noexcept { return SimTime{t.us_ + d.as_micros()}; }
  friend constexpr Duration operator-(SimTime a, SimTime b) noexcept { return Duration::micros(a.us_ - b.us_); }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_seconds() << " s";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

// ---------------------------------------------------------------------------
// Radio resources
// ---------------------------------------------------------------------------

/// A count of LTE Physical Resource Blocks (per subframe). PRBs are the
/// currency of the RAN domain: MOCN reservations, scheduler grants and
/// the RAN controller's telemetry are all expressed in PRBs.
struct PrbCount {
  int value = 0;

  friend constexpr auto operator<=>(PrbCount, PrbCount) noexcept = default;
  friend constexpr PrbCount operator+(PrbCount a, PrbCount b) noexcept { return {a.value + b.value}; }
  friend constexpr PrbCount operator-(PrbCount a, PrbCount b) noexcept { return {a.value - b.value}; }
  constexpr PrbCount& operator+=(PrbCount o) noexcept { value += o.value; return *this; }
  constexpr PrbCount& operator-=(PrbCount o) noexcept { value -= o.value; return *this; }

  friend std::ostream& operator<<(std::ostream& os, PrbCount p) { return os << p.value << " PRB"; }
};

// ---------------------------------------------------------------------------
// Compute resources
// ---------------------------------------------------------------------------

/// A bundle of compute resources (a flavor footprint, a host capacity, a
/// datacenter aggregate...). Component-wise arithmetic and comparison:
/// `fits_within` is the admission predicate used by placement.
struct ComputeCapacity {
  double vcpus = 0.0;
  double memory_mb = 0.0;
  double disk_gb = 0.0;

  friend constexpr bool operator==(const ComputeCapacity&, const ComputeCapacity&) noexcept = default;
  friend constexpr ComputeCapacity operator+(ComputeCapacity a, const ComputeCapacity& b) noexcept {
    return {a.vcpus + b.vcpus, a.memory_mb + b.memory_mb, a.disk_gb + b.disk_gb};
  }
  friend constexpr ComputeCapacity operator-(ComputeCapacity a, const ComputeCapacity& b) noexcept {
    return {a.vcpus - b.vcpus, a.memory_mb - b.memory_mb, a.disk_gb - b.disk_gb};
  }
  friend constexpr ComputeCapacity operator*(ComputeCapacity a, double k) noexcept {
    return {a.vcpus * k, a.memory_mb * k, a.disk_gb * k};
  }
  constexpr ComputeCapacity& operator+=(const ComputeCapacity& o) noexcept {
    vcpus += o.vcpus; memory_mb += o.memory_mb; disk_gb += o.disk_gb; return *this;
  }
  constexpr ComputeCapacity& operator-=(const ComputeCapacity& o) noexcept {
    vcpus -= o.vcpus; memory_mb -= o.memory_mb; disk_gb -= o.disk_gb; return *this;
  }

  /// True when this footprint fits inside `cap` on every axis.
  [[nodiscard]] constexpr bool fits_within(const ComputeCapacity& cap) const noexcept {
    return vcpus <= cap.vcpus && memory_mb <= cap.memory_mb && disk_gb <= cap.disk_gb;
  }
  [[nodiscard]] constexpr bool non_negative() const noexcept {
    return vcpus >= 0.0 && memory_mb >= 0.0 && disk_gb >= 0.0;
  }

  friend std::ostream& operator<<(std::ostream& os, const ComputeCapacity& c) {
    return os << c.vcpus << " vCPU / " << c.memory_mb << " MB / " << c.disk_gb << " GB";
  }
};

// ---------------------------------------------------------------------------
// Money
// ---------------------------------------------------------------------------

/// Fixed-point money in integer cents. Revenue accounting (slice prices,
/// SLA penalties, net revenue) must not accumulate floating-point drift,
/// so all bookkeeping is exact; conversion to double happens only for
/// reporting ratios.
class Money {
 public:
  constexpr Money() noexcept = default;

  [[nodiscard]] static constexpr Money cents(std::int64_t v) noexcept { return Money{v}; }
  [[nodiscard]] static constexpr Money units(double v) noexcept {
    // Round half away from zero to the nearest cent.
    const double c = v * 100.0;
    return Money{static_cast<std::int64_t>(c >= 0 ? c + 0.5 : c - 0.5)};
  }
  [[nodiscard]] static constexpr Money zero() noexcept { return Money{0}; }

  [[nodiscard]] constexpr std::int64_t as_cents() const noexcept { return cents_; }
  [[nodiscard]] constexpr double as_units() const noexcept { return static_cast<double>(cents_) / 100.0; }

  friend constexpr auto operator<=>(Money, Money) noexcept = default;
  friend constexpr Money operator+(Money a, Money b) noexcept { return Money{a.cents_ + b.cents_}; }
  friend constexpr Money operator-(Money a, Money b) noexcept { return Money{a.cents_ - b.cents_}; }
  friend constexpr Money operator-(Money a) noexcept { return Money{-a.cents_}; }
  /// Scale by a dimensionless factor, rounding to the nearest cent.
  friend constexpr Money operator*(Money a, double k) noexcept {
    const double c = static_cast<double>(a.cents_) * k;
    return Money{static_cast<std::int64_t>(c >= 0 ? c + 0.5 : c - 0.5)};
  }
  constexpr Money& operator+=(Money o) noexcept { cents_ += o.cents_; return *this; }
  constexpr Money& operator-=(Money o) noexcept { cents_ -= o.cents_; return *this; }

  friend std::ostream& operator<<(std::ostream& os, Money m) { return os << m.as_units(); }

 private:
  constexpr explicit Money(std::int64_t c) noexcept : cents_(c) {}
  std::int64_t cents_ = 0;
};

}  // namespace slices
