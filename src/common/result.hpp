#pragma once
// Error model for fallible operations across module boundaries.
//
// Controllers, allocators and the REST layer return Result<T>: a value on
// success or an Error{code, message} on failure. Exceptions are reserved
// for programming errors (violated preconditions), matching the Core
// Guidelines split between recoverable conditions and logic bugs.

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace slices {

/// Machine-readable failure categories. REST endpoints map these onto
/// HTTP status codes; the orchestrator maps them onto admission verdicts.
enum class Errc {
  invalid_argument,        ///< Malformed request / out-of-domain value.
  not_found,               ///< Unknown id or route.
  conflict,                ///< State conflict (duplicate install, wrong FSM state).
  insufficient_capacity,   ///< Not enough resources in a domain.
  sla_unsatisfiable,       ///< No configuration can meet the requested SLA.
  unavailable,             ///< Dependent subsystem down / unreachable.
  protocol_error,          ///< Bad wire format (HTTP/JSON).
  timeout,                 ///< Deadline exceeded.
  internal,                ///< Invariant breach surfaced as error, not UB.
};

[[nodiscard]] constexpr std::string_view to_string(Errc c) noexcept {
  switch (c) {
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::conflict: return "conflict";
    case Errc::insufficient_capacity: return "insufficient_capacity";
    case Errc::sla_unsatisfiable: return "sla_unsatisfiable";
    case Errc::unavailable: return "unavailable";
    case Errc::protocol_error: return "protocol_error";
    case Errc::timeout: return "timeout";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

/// A failure: category plus a human-oriented message for logs/dashboard.
struct Error {
  Errc code = Errc::internal;
  std::string message;

  friend bool operator==(const Error& a, const Error& b) noexcept { return a.code == b.code; }
  friend std::ostream& operator<<(std::ostream& os, const Error& e) {
    return os << to_string(e.code) << ": " << e.message;
  }
};

/// Result<T>: holds either a T or an Error. Intentionally minimal —
/// `ok()`, `value()`, `error()` plus value_or — because call sites branch
/// immediately; no monadic chains are needed in this codebase.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : v_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok() && "Result::error() on success");
    return std::get<Error>(v_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void>: success carries no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : err_(std::move(error)), has_err_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !has_err_; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const& {
    assert(has_err_ && "Result::error() on success");
    return err_;
  }

 private:
  Error err_;
  bool has_err_ = false;
};

/// Convenience maker used at most error sites.
[[nodiscard]] inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace slices
