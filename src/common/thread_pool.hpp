#pragma once
// Small persistent worker pool for sharding epoch hot loops.
//
// The only primitive is parallel_for(n, fn): run fn(0..n-1) with the
// calling thread participating, returning once every invocation has
// finished. Work is handed out through an atomic index, so the mapping
// of index -> thread is nondeterministic — callers preserve determinism
// by writing into index-addressed slots and reducing sequentially in
// index order afterwards (see RanController::serve_epoch).

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slices {

class ThreadPool {
 public:
  /// `concurrency` counts the calling thread: ThreadPool(1) spawns no
  /// workers and parallel_for runs inline; ThreadPool(4) spawns 3.
  explicit ThreadPool(std::size_t concurrency) {
    const std::size_t workers = concurrency > 1 ? concurrency - 1 : 0;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Calling thread + workers.
  [[nodiscard]] std::size_t concurrency() const noexcept { return threads_.size() + 1; }

  /// Run fn(i) for every i in [0, n). Blocks until all invocations have
  /// returned. fn must not throw and must not call parallel_for on the
  /// same pool reentrantly.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      assert(pending_.load(std::memory_order_relaxed) == 0 && "reentrant parallel_for");
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      pending_.store(n, std::memory_order_relaxed);
      ++generation_;
    }
    wake_cv_.notify_all();
    drain(&fn, n);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 && busy_workers_ == 0;
    });
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::function<void(std::size_t)>* fn = job_fn_;
      const std::size_t n = job_n_;
      ++busy_workers_;
      lock.unlock();
      drain(fn, n);
      lock.lock();
      --busy_workers_;
      // parallel_for may be blocked on the last worker leaving the job.
      if (busy_workers_ == 0) done_cv_.notify_all();
    }
  }

  void drain(const std::function<void(std::size_t)>* fn, std::size_t n) {
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t busy_workers_ = 0;  // workers currently inside drain()
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> pending_{0};
};

}  // namespace slices
