#pragma once
// Strong identifier types used across all domains of the orchestration
// stack. Every entity that crosses a module boundary (slices, cells,
// PLMNs, transport nodes/links, hosts, VMs, Heat stacks, UEs, requests)
// is addressed by a distinct, non-convertible integer id so that, e.g.,
// a CellId can never be passed where a HostId is expected.

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace slices {

/// CRTP-free tagged id: a 64-bit handle distinguished by its Tag type.
/// Ids are orderable and hashable so they can key std:: containers.
template <typename Tag>
class Id {
 public:
  /// Sentinel value used by `invalid()`; never allocated by makers.
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  constexpr Id() noexcept = default;
  constexpr explicit Id(std::uint64_t v) noexcept : value_(v) {}

  /// An id that compares unequal to every allocated id.
  [[nodiscard]] static constexpr Id invalid() noexcept { return Id{kInvalid}; }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  std::uint64_t value_ = kInvalid;
};

/// Monotonic id allocator; one instance per id space.
template <typename Tag>
class IdAllocator {
 public:
  [[nodiscard]] Id<Tag> next() noexcept { return Id<Tag>{next_++}; }

  /// Ensure future next() calls return ids strictly above `id` —
  /// crash-recovery replay restores entities under their original ids
  /// and must keep the allocator ahead of everything restored.
  void advance_past(Id<Tag> id) noexcept {
    if (id.valid() && id.value() >= next_) next_ = id.value() + 1;
  }

 private:
  std::uint64_t next_ = 1;  // 0 is reserved for fixtures / well-known ids
};

struct SliceTag {};
struct RequestTag {};
struct PlmnTag {};
struct CellTag {};
struct UeTag {};
struct NodeTag {};
struct LinkTag {};
struct PathTag {};
struct FlowRuleTag {};
struct DatacenterTag {};
struct HostTag {};
struct VmTag {};
struct StackTag {};
struct TenantTag {};

using SliceId = Id<SliceTag>;           ///< An admitted end-to-end network slice.
using RequestId = Id<RequestTag>;       ///< A slice request (admitted or not).
using PlmnId = Id<PlmnTag>;             ///< Public Land Mobile Network id a slice is mapped to.
using CellId = Id<CellTag>;             ///< One eNB cell in the RAN.
using UeId = Id<UeTag>;                 ///< A user equipment.
using NodeId = Id<NodeTag>;             ///< A transport-network node (switch/router/radio head).
using LinkId = Id<LinkTag>;             ///< A directed transport link.
using PathId = Id<PathTag>;             ///< An installed transport path reservation.
using FlowRuleId = Id<FlowRuleTag>;     ///< An OpenFlow-style rule installed on a node.
using DatacenterId = Id<DatacenterTag>; ///< An edge or core datacenter.
using HostId = Id<HostTag>;             ///< A compute host inside a datacenter.
using VmId = Id<VmTag>;                 ///< A virtual machine.
using StackId = Id<StackTag>;           ///< A Heat-style orchestration stack.
using TenantId = Id<TenantTag>;         ///< The vertical/tenant owning slice requests.

}  // namespace slices

namespace std {
template <typename Tag>
struct hash<slices::Id<Tag>> {
  size_t operator()(slices::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
