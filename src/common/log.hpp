#pragma once
// Minimal leveled logger. Components log through a shared sink with a
// component tag; benchmarks and tests lower the level to keep output
// clean. Thread-safe: the level and sink pointer are atomics, and each
// log line is formatted locally then written under a sink mutex, so
// concurrent epoch workers (`epoch_threads > 1`) never interleave
// characters or race on configuration.

#include <atomic>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>

namespace slices {

enum class LogLevel { trace, debug, info, warn, error, off };

[[nodiscard]] constexpr std::string_view to_string(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

/// Global log configuration (level + output stream).
class LogConfig {
 public:
  [[nodiscard]] static LogLevel level() noexcept {
    return level_cell().load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel l) noexcept {
    level_cell().store(l, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::ostream* stream() noexcept {
    return stream_cell().load(std::memory_order_acquire);
  }
  /// Swap the sink. Takes the sink mutex so no line is mid-write on the
  /// old stream when the pointer changes.
  static void set_stream(std::ostream* os) noexcept {
    std::lock_guard<std::mutex> lock(sink_mutex());
    stream_cell().store(os, std::memory_order_release);
  }

  /// Serializes whole-line writes to the sink.
  [[nodiscard]] static std::mutex& sink_mutex() noexcept {
    static std::mutex m;
    return m;
  }

 private:
  static std::atomic<LogLevel>& level_cell() noexcept {
    static std::atomic<LogLevel> lvl{LogLevel::warn};
    return lvl;
  }
  static std::atomic<std::ostream*>& stream_cell() noexcept {
    static std::atomic<std::ostream*> os{&std::clog};
    return os;
  }
};

/// Log one line at `level` under component tag `tag`. The line is built
/// in a local buffer and written with a single locked insertion.
inline void log_line(LogLevel level, std::string_view tag, std::string_view msg) {
  if (level < LogConfig::level()) return;
  std::string line;
  line.reserve(tag.size() + msg.size() + 16);
  line += '[';
  line += to_string(level);
  line += "] ";
  line += tag;
  line += ": ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(LogConfig::sink_mutex());
  *LogConfig::stream() << line;
}

/// Tagged logger handle owned by a component.
class Logger {
 public:
  explicit Logger(std::string tag) : tag_(std::move(tag)) {}

  void trace(std::string_view msg) const { log_line(LogLevel::trace, tag_, msg); }
  void debug(std::string_view msg) const { log_line(LogLevel::debug, tag_, msg); }
  void info(std::string_view msg) const { log_line(LogLevel::info, tag_, msg); }
  void warn(std::string_view msg) const { log_line(LogLevel::warn, tag_, msg); }
  void error(std::string_view msg) const { log_line(LogLevel::error, tag_, msg); }

  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }

 private:
  std::string tag_;
};

}  // namespace slices
