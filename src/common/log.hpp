#pragma once
// Minimal leveled logger. Components log through a shared sink with a
// component tag; benchmarks and tests lower the level to keep output
// clean. Not thread-safe by design — the simulator is single-threaded.

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace slices {

enum class LogLevel { trace, debug, info, warn, error, off };

[[nodiscard]] constexpr std::string_view to_string(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

/// Global log configuration (level + output stream).
class LogConfig {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = LogLevel::warn;
    return lvl;
  }
  static std::ostream*& stream() noexcept {
    static std::ostream* os = &std::clog;
    return os;
  }
};

/// Log one line at `level` under component tag `tag`.
inline void log_line(LogLevel level, std::string_view tag, std::string_view msg) {
  if (level < LogConfig::level()) return;
  *LogConfig::stream() << "[" << to_string(level) << "] " << tag << ": " << msg << '\n';
}

/// Tagged logger handle owned by a component.
class Logger {
 public:
  explicit Logger(std::string tag) : tag_(std::move(tag)) {}

  void trace(std::string_view msg) const { log_line(LogLevel::trace, tag_, msg); }
  void debug(std::string_view msg) const { log_line(LogLevel::debug, tag_, msg); }
  void info(std::string_view msg) const { log_line(LogLevel::info, tag_, msg); }
  void warn(std::string_view msg) const { log_line(LogLevel::warn, tag_, msg); }
  void error(std::string_view msg) const { log_line(LogLevel::error, tag_, msg); }

  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }

 private:
  std::string tag_;
};

}  // namespace slices
