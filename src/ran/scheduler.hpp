#pragma once
// Per-subframe multi-PLMN scheduling of one MOCN cell.
//
// Each broadcast PLMN (= slice) holds a dedicated PRB reservation; PRBs
// not reserved by anyone form a common pool. The scheduler first serves
// each PLMN from its own reservation, then distributes the common pool
// (and, under `pooled` sharing, unused reserved PRBs) across PLMNs with
// residual demand — the intra-cell statistical multiplexing that MOCN
// RAN sharing provides.

#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "ran/phy.hpp"

namespace slices::ran {

/// How unused *reserved* PRBs are treated.
enum class SharingPolicy {
  strict,  ///< unused reserved PRBs stay idle (hard isolation)
  pooled,  ///< unused reserved PRBs join the common pool (work-conserving)
};

/// Offered load of one PLMN in the scheduling epoch.
struct PlmnLoad {
  PlmnId plmn;
  PrbCount reserved;    ///< dedicated reservation on this cell
  DataRate demand;      ///< offered traffic
  Cqi cqi;              ///< average channel quality of the PLMN's UEs
  /// PRBs granted per water-filling round when competing for the common
  /// pool (>= 1). A weight-2 slice receives twice the pool share of a
  /// weight-1 slice under contention; dedicated reservations are not
  /// affected.
  int pool_weight = 1;
};

/// Scheduling outcome for one PLMN.
struct PlmnGrant {
  PlmnId plmn;
  PrbCount granted;     ///< PRBs actually used
  DataRate served;      ///< min(demand, capacity of granted PRBs)
  DataRate unserved;    ///< demand left unserved (SLA-relevant)
};

/// Allocation-free scheduling core: writes one grant per load into
/// `grants` and uses `want` as residual-need scratch (both sized >=
/// loads.size(), caller-provided — the epoch kernel passes stack or
/// arena storage). Preconditions: sum of reservations <= total;
/// reservations and demands non-negative. Deterministic: pool
/// distribution iterates PLMNs in input order, one PRB at a time
/// (round-robin water-filling), so equal claims split fairly.
inline void schedule_epoch_into(PrbCount total, std::span<const PlmnLoad> loads,
                                SharingPolicy policy, std::span<PlmnGrant> grants,
                                std::span<int> want) noexcept {
  int reserved_sum = 0;
  for (const PlmnLoad& load : loads) reserved_sum += load.reserved.value;

  // Phase 1: serve from dedicated reservations.
  int pool = total.value - reserved_sum;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const PlmnLoad& load = loads[i];
    const PrbCount needed = prbs_needed(load.demand, load.cqi);
    const int from_reservation =
        needed.value < load.reserved.value ? needed.value : load.reserved.value;
    grants[i] = PlmnGrant{load.plmn, PrbCount{from_reservation}, DataRate::zero(),
                          DataRate::zero()};
    want[i] = needed.value - from_reservation;
    if (policy == SharingPolicy::pooled) {
      pool += load.reserved.value - from_reservation;
    }
  }

  // Phase 2: weighted round-robin water-filling of the pool over
  // residual needs — each PLMN draws up to `pool_weight` PRBs per round.
  bool progress = true;
  while (pool > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < loads.size() && pool > 0; ++i) {
      if (want[i] <= 0) continue;
      const int weight = loads[i].pool_weight > 0 ? loads[i].pool_weight : 1;
      int draw = weight < want[i] ? weight : want[i];
      draw = draw < pool ? draw : pool;
      grants[i].granted += PrbCount{draw};
      want[i] -= draw;
      pool -= draw;
      progress = true;
    }
  }

  // Finalize served/unserved rates.
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const DataRate capacity = throughput_of(grants[i].granted, loads[i].cqi);
    grants[i].served = min(loads[i].demand, capacity);
    grants[i].unserved = clamp_non_negative(loads[i].demand - grants[i].served);
  }
}

/// Vector-returning convenience wrapper over schedule_epoch_into.
[[nodiscard]] inline std::vector<PlmnGrant> schedule_epoch(PrbCount total,
                                                           std::span<const PlmnLoad> loads,
                                                           SharingPolicy policy) {
  std::vector<PlmnGrant> grants(loads.size());
  std::vector<int> want(loads.size());
  schedule_epoch_into(total, loads, policy, grants, want);
  return grants;
}

}  // namespace slices::ran
