#include "ran/controller.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "json/value.hpp"

#include "telemetry/trace.hpp"

namespace slices::ran {

void RanController::add_cell(Cell cell) {
  assert(find_cell(cell.id()) == nullptr && "duplicate cell id");
  // Already-installed PLMNs must appear on new cells too.
  for (const auto& [plmn, unused] : installed_) {
    const Result<void> r = cell.broadcast_plmn(plmn);
    assert(r.ok());
    (void)r;
  }
  cell_index_.insert_or_assign(cell.id(), static_cast<std::uint32_t>(cells_.size()));
  cells_.push_back(std::move(cell));
}

const Cell* RanController::find_cell(CellId id) const noexcept {
  const std::uint32_t* index = cell_index_.find(id);
  return index == nullptr ? nullptr : &cells_[*index];
}

Result<void> RanController::install_plmn(PlmnId plmn) {
  if (installed_.contains(plmn))
    return make_error(Errc::conflict, "PLMN already installed");
  // Validate first so failure leaves no cell half-configured.
  for (const Cell& cell : cells_) {
    if (cell.broadcasts(plmn))
      return make_error(Errc::conflict, "PLMN already broadcast on " + cell.name());
    if (cell.broadcast_list().size() >= kMaxBroadcastPlmns)
      return make_error(Errc::insufficient_capacity,
                        "broadcast list full on " + cell.name());
  }
  for (Cell& cell : cells_) {
    const Result<void> r = cell.broadcast_plmn(plmn);
    assert(r.ok());
    (void)r;
  }
  installed_.insert(plmn, std::monostate{});
  return {};
}

Result<void> RanController::remove_plmn(PlmnId plmn) {
  if (!installed_.contains(plmn)) return make_error(Errc::not_found, "PLMN not installed");
  if (allocations_.contains(plmn))
    return make_error(Errc::conflict, "PLMN still holds a radio allocation");
  if (attached_ues(plmn) > 0) return make_error(Errc::conflict, "UEs still attached");
  for (Cell& cell : cells_) {
    const Result<void> r = cell.withdraw_plmn(plmn);
    assert(r.ok());
    (void)r;
  }
  attached_by_plmn_.erase(plmn);
  installed_.erase(plmn);
  return {};
}

Result<RanAllocation> RanController::set_allocation(PlmnId plmn, DataRate rate,
                                                    Cqi planning_cqi) {
  if (!installed_.contains(plmn))
    return make_error(Errc::not_found, "PLMN not installed; install before allocating");
  if (rate < DataRate::zero())
    return make_error(Errc::invalid_argument, "negative rate");

  // Snapshot current reservations of this PLMN for atomic rollback.
  std::map<CellId, PrbCount> previous;
  for (const Cell& cell : cells_) previous[cell.id()] = cell.reservation_of(plmn);

  // Plan: most-free-first over cells, each cell contributing up to its
  // free PRBs (counting this PLMN's own current reservation as free).
  std::vector<Cell*> order;
  order.reserve(cells_.size());
  for (Cell& cell : cells_) {
    if (cell_active(cell.id())) order.push_back(&cell);  // plan on live cells only
  }
  std::sort(order.begin(), order.end(), [&](const Cell* a, const Cell* b) {
    const int free_a = a->unreserved_prbs().value + a->reservation_of(plmn).value;
    const int free_b = b->unreserved_prbs().value + b->reservation_of(plmn).value;
    if (free_a != free_b) return free_a > free_b;
    return a->id() < b->id();
  });

  RanAllocation alloc;
  alloc.plmn = plmn;
  alloc.rate = rate;
  DataRate remaining = rate;
  for (Cell* cell : order) {
    if (remaining <= DataRate::zero()) break;
    const Cqi cqi = cell->mean_cqi(plmn, planning_cqi);
    const int free = cell->unreserved_prbs().value + cell->reservation_of(plmn).value;
    const int needed = prbs_needed(remaining, cqi).value;
    const int grant = needed < free ? needed : free;
    if (grant <= 0) continue;
    alloc.per_cell[cell->id()] = PrbCount{grant};
    remaining -= throughput_of(PrbCount{grant}, cqi);
  }

  if (remaining > DataRate::zero()) {
    return make_error(Errc::insufficient_capacity,
                      "RAN cannot guarantee " + std::to_string(rate.as_mbps()) +
                          " Mb/s; short by " + std::to_string(remaining.as_mbps()) +
                          " Mb/s");
  }

  // Apply. set_reservation can only fail on capacity, which the plan
  // already respected, so failures here are programming errors.
  for (Cell& cell : cells_) {
    const auto it = alloc.per_cell.find(cell.id());
    const PrbCount target = it == alloc.per_cell.end() ? PrbCount{0} : it->second;
    const Result<void> r = cell.set_reservation(plmn, target);
    assert(r.ok());
    (void)r;
  }
  return allocations_.insert_or_assign(plmn, std::move(alloc));
}

void RanController::release_allocation(PlmnId plmn) {
  for (Cell& cell : cells_) cell.clear_reservation(plmn);
  allocations_.erase(plmn);
}

const RanAllocation* RanController::find_allocation(PlmnId plmn) const noexcept {
  return allocations_.find(plmn);
}

DataRate RanController::available_capacity(Cqi planning_cqi) const noexcept {
  DataRate sum = DataRate::zero();
  for (const Cell& cell : cells_) {
    if (!cell_active(cell.id())) continue;
    sum += throughput_of(cell.unreserved_prbs(), planning_cqi);
  }
  return sum;
}

DataRate RanController::total_capacity(Cqi planning_cqi) const noexcept {
  DataRate sum = DataRate::zero();
  for (const Cell& cell : cells_) {
    if (!cell_active(cell.id())) continue;
    sum += throughput_of(cell.total_prbs(), planning_cqi);
  }
  return sum;
}

Result<UeId> RanController::attach_ue(PlmnId plmn, Cqi cqi) {
  if (!installed_.contains(plmn))
    return make_error(Errc::not_found, "PLMN not on the air; UE cannot attach");
  if (cells_.empty()) return make_error(Errc::unavailable, "no cells");

  Cell* least = &cells_.front();
  for (Cell& cell : cells_) {
    if (cell.attached_total() < least->attached_total()) least = &cell;
  }
  const UeId ue = ue_ids_.next();
  const Result<void> r = least->attach_ue(ue, plmn, cqi);
  if (!r.ok()) return r.error();
  ues_.insert(ue, UeRecord{least->id(), plmn});
  if (std::size_t* count = attached_by_plmn_.find(plmn)) {
    ++*count;
  } else {
    attached_by_plmn_.insert(plmn, 1);
  }
  return ue;
}

Result<void> RanController::detach_ue(UeId ue) {
  const UeRecord* record = ues_.find(ue);
  if (record == nullptr) return make_error(Errc::not_found, "unknown UE");
  if (const std::uint32_t* index = cell_index_.find(record->cell)) {
    const Result<void> r = cells_[*index].detach_ue(ue);
    assert(r.ok());
    (void)r;
  }
  if (std::size_t* count = attached_by_plmn_.find(record->plmn)) {
    assert(*count > 0);
    --*count;
  }
  ues_.erase(ue);
  return {};
}

void RanController::wander_cqis(Rng& rng, double step_probability) {
  TRACE_SCOPE("ran.epoch.wander");
  // One independent stream per cell, seeds drawn from the caller's RNG
  // on the calling thread: the per-UE CQI walks — the dominant per-UE
  // epoch cost at city scale — shard across the worker pool as per-cell
  // tasks while staying deterministic at any pool size.
  wander_seeds_.resize(cells_.size());
  for (std::uint64_t& seed : wander_seeds_) seed = rng.next_u64();
  struct WanderCtx {
    RanController* self;
    double p;
    bool legacy;
  } ctx{this, step_probability, legacy_wander_path_};
  const auto wander_cell = [&ctx](std::size_t i) {
    Rng local(ctx.self->wander_seeds_[i]);
    if (ctx.legacy) {
      ctx.self->cells_[i].wander_cqis_legacy(local, ctx.p);
    } else {
      ctx.self->cells_[i].wander_cqis(local, ctx.p);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(cells_.size(), wander_cell);
  } else {
    for (std::size_t i = 0; i < cells_.size(); ++i) wander_cell(i);
  }
}

Result<UeId> RanController::attach_ue_at(CellId cell, PlmnId plmn, Cqi cqi) {
  if (!installed_.contains(plmn))
    return make_error(Errc::not_found, "PLMN not on the air; UE cannot attach");
  const std::uint32_t* index = cell_index_.find(cell);
  if (index == nullptr) return make_error(Errc::not_found, "unknown cell");
  if (!cell_active(cell)) return make_error(Errc::conflict, "cell is inactive");

  const UeId ue = ue_ids_.next();
  if (Result<void> r = cells_[*index].attach_ue(ue, plmn, cqi); !r.ok()) {
    return r.error();
  }
  ues_.insert(ue, UeRecord{cell, plmn});
  if (std::size_t* count = attached_by_plmn_.find(plmn)) {
    ++*count;
  } else {
    attached_by_plmn_.insert(plmn, 1);
  }
  return ue;
}

std::optional<Cqi> RanController::ue_cqi(UeId ue) const noexcept {
  const UeRecord* record = ues_.find(ue);
  if (record == nullptr) return std::nullopt;
  const std::uint32_t* index = cell_index_.find(record->cell);
  if (index == nullptr) return std::nullopt;
  return cells_[*index].ue_cqi(ue);
}

std::vector<PlmnId> RanController::installed_plmns() const {
  std::vector<PlmnId> out;
  out.reserve(installed_.size());
  for (const auto& [plmn, unused] : installed_) out.push_back(plmn);
  return out;
}

HandoverStats RanController::apply_handovers(std::span<const HandoverRequest> batch,
                                             SimTime now,
                                             std::span<std::uint8_t> outcomes) {
  TRACE_SCOPE("ran.handover.apply");
  HandoverStats stats;
  if (batch.empty()) return stats;
  assert(outcomes.empty() || outcomes.size() >= batch.size());
  std::span<std::uint8_t> outs = outcomes;
  if (outs.empty()) {
    // Track per-request outcomes internally so the latency histogram
    // only sees successes; capacity is reused across batches.
    if (outcome_scratch_.size() < batch.size()) outcome_scratch_.resize(batch.size());
    outs = std::span<std::uint8_t>(outcome_scratch_.data(), batch.size());
  }

  const std::size_t n_cells = cells_.size();
  handover_arrivals_.assign(n_cells, 0);
  handover_departures_.assign(n_cells, 0);

  for (std::size_t k = 0; k < batch.size(); ++k) {
    const HandoverRequest& req = batch[k];
    ++stats.attempts;
    bool ok = false;

    UeRecord* record = ues_.find(req.ue);
    const std::uint32_t* dst_index =
        record == nullptr ? nullptr : cell_index_.find(req.target);
    if (record != nullptr && dst_index != nullptr && record->cell != req.target &&
        cell_active(req.target)) {
      Cell& destination = cells_[*dst_index];
      const std::uint32_t* src_index = cell_index_.find(record->cell);
      assert(src_index != nullptr);
      Cell& source = cells_[*src_index];

      const std::optional<Cqi> cqi = source.ue_cqi(req.ue);
      assert(cqi.has_value());
      // PRB migration plan, decided before the row move so the counts
      // reflect the pre-handover population: the leaving UE takes its
      // per-UE share of the source reservation along, clamped to what
      // the target has free. Only live Cell reservations move — the
      // planned RanAllocation::per_cell layout stays as installed (and
      // this loop stays allocation-free).
      const PlmnId plmn = record->plmn;
      int moved = 0;
      const std::size_t src_attached = source.attached_count(plmn);
      if (src_attached > 0) {
        const int src_reserved = source.reservation_of(plmn).value;
        moved = src_reserved / static_cast<int>(src_attached);
        const int target_free = destination.unreserved_prbs().value;
        if (moved > target_free) moved = target_free;
      }
      // Attach on the target first so a failure leaves the UE in place.
      if (destination.attach_ue(req.ue, plmn, *cqi).ok()) {
        const Result<void> detached = source.detach_ue(req.ue);
        assert(detached.ok());
        (void)detached;
        if (moved > 0) {
          const int src_after = source.reservation_of(plmn).value - moved;
          const int dst_after = destination.reservation_of(plmn).value + moved;
          const Result<void> shrink = source.set_reservation(plmn, PrbCount{src_after});
          const Result<void> grow = destination.set_reservation(plmn, PrbCount{dst_after});
          assert(shrink.ok() && grow.ok());
          (void)shrink;
          (void)grow;
        }
        record->cell = req.target;
        ++handover_departures_[*src_index];
        ++handover_arrivals_[*dst_index];
        ok = true;
      }
    }

    if (ok) {
      ++stats.successes;
    } else {
      ++stats.drops;
    }
    outs[k] = ok ? 1 : 0;
  }

  handover_totals_ += stats;

  if (registry_ != nullptr) {
    if (handover_handles_.attempts == nullptr) {
      handover_handles_.attempts = &registry_->counter("ran.handover.attempts");
      handover_handles_.successes = &registry_->counter("ran.handover.success");
      handover_handles_.drops = &registry_->counter("ran.handover.drops");
      handover_handles_.latency = &registry_->histogram("ran.handover.latency_us");
    }
    handover_handles_.attempts->increment(stats.attempts);
    handover_handles_.successes->increment(stats.successes);
    handover_handles_.drops->increment(stats.drops);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (outs[k] == 0) continue;
      // Modelled X2 interruption: ~50 ms baseline plus a per-UE jitter
      // hashed from the UE id, so the histogram is deterministic yet
      // spread like a real handover latency distribution.
      const std::uint64_t h =
          (batch[k].ue.value() * 0x9e3779b97f4a7c15ull) ^ (batch[k].ue.value() >> 7);
      handover_handles_.latency->record(50'000 + h % 30'000);
    }
    if (cell_flow_handles_.size() < n_cells) cell_flow_handles_.resize(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i) {
      if (handover_arrivals_[i] == 0 && handover_departures_[i] == 0) continue;
      CellFlowHandles& h = cell_flow_handles_[i];
      if (!h.arrivals.valid()) {
        const std::string prefix = "ran.cell." + std::to_string(cells_[i].id().value());
        h.arrivals = registry_->handle(prefix + ".ho_in");
        h.departures = registry_->handle(prefix + ".ho_out");
      }
      h.arrivals.observe(now, static_cast<double>(handover_arrivals_[i]));
      h.departures.observe(now, static_cast<double>(handover_departures_[i]));
    }
  }
  return stats;
}

Result<void> RanController::handover_ue(UeId ue, CellId target) {
  UeRecord* record = ues_.find(ue);
  if (record == nullptr) return make_error(Errc::not_found, "unknown UE");
  if (record->cell == target) return make_error(Errc::conflict, "UE already on that cell");
  if (!cell_active(target)) return make_error(Errc::conflict, "target cell is inactive");

  const std::uint32_t* destination_index = cell_index_.find(target);
  if (destination_index == nullptr) return make_error(Errc::not_found, "unknown target cell");
  Cell& destination = cells_[*destination_index];
  const std::uint32_t* source_index = cell_index_.find(record->cell);
  assert(source_index != nullptr);
  Cell& source = cells_[*source_index];

  const std::optional<Cqi> cqi = source.ue_cqi(ue);
  assert(cqi.has_value());
  // Attach on the target first so a failure leaves the UE where it was.
  if (Result<void> r = destination.attach_ue(ue, record->plmn, *cqi); !r.ok()) {
    return r;
  }
  const Result<void> detached = source.detach_ue(ue);
  assert(detached.ok());
  (void)detached;
  record->cell = target;
  return {};
}

std::size_t RanController::rebalance_ues() {
  std::size_t handovers = 0;
  while (true) {
    Cell* most = nullptr;
    Cell* least = nullptr;
    for (Cell& cell : cells_) {
      if (!cell_active(cell.id())) continue;
      if (most == nullptr || cell.attached_total() > most->attached_total()) most = &cell;
      if (least == nullptr || cell.attached_total() < least->attached_total()) least = &cell;
    }
    if (most == nullptr || least == nullptr ||
        most->attached_total() <= least->attached_total() + 1) {
      return handovers;
    }
    // Find any UE on the overloaded cell and move it.
    UeId candidate = UeId::invalid();
    for (const auto& [ue, rec] : ues_) {
      if (rec.cell == most->id()) {
        candidate = ue;
        break;
      }
    }
    if (!candidate.valid()) return handovers;
    if (!handover_ue(candidate, least->id()).ok()) return handovers;
    ++handovers;
  }
}

Result<void> RanController::set_cell_active(CellId cell, bool active) {
  if (find_cell(cell) == nullptr) return make_error(Errc::not_found, "unknown cell");
  if (active) {
    inactive_.erase(cell);
  } else {
    inactive_.insert(cell);
  }
  return {};
}

std::size_t RanController::attached_ues(PlmnId plmn) const noexcept {
  const std::size_t* count = attached_by_plmn_.find(plmn);
  return count == nullptr ? 0 : *count;
}

std::vector<RanServeReport> RanController::serve_epoch(
    std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now) {
  std::vector<RanServeReport> out;
  serve_epoch_into(demands, now, out);
  return out;
}

void RanController::serve_epoch_into(std::span<const std::pair<PlmnId, DataRate>> demands,
                                     SimTime now, std::vector<RanServeReport>& out) {
  if (legacy_epoch_path_) {
    serve_epoch_legacy(demands, now, out);
  } else {
    serve_epoch_batched(demands, now, out);
  }
}

void RanController::observe_cell_telemetry(std::size_t cell_index, SimTime now,
                                           PrbCount used, bool active) {
  if (registry_ == nullptr) return;
  const Cell& cell = cells_[cell_index];
  CellHandles& h = cell_handles_[cell_index];
  if (!active) {
    if (!h.prb_used.valid()) {
      const std::string prefix = "ran.cell." + std::to_string(cell.id().value());
      h.prb_used = registry_->handle(prefix + ".prb_used");
      h.utilization = registry_->handle(prefix + ".utilization");
    }
    h.prb_used.observe(now, 0.0);
    h.utilization.observe(now, 0.0);
    return;
  }
  if (!h.prb_used.valid() || !h.prb_reserved.valid()) {
    const std::string prefix = "ran.cell." + std::to_string(cell.id().value());
    if (!h.prb_used.valid()) {
      h.prb_used = registry_->handle(prefix + ".prb_used");
      h.utilization = registry_->handle(prefix + ".utilization");
    }
    if (!h.prb_reserved.valid()) h.prb_reserved = registry_->handle(prefix + ".prb_reserved");
  }
  h.prb_used.observe(now, static_cast<double>(used.value));
  h.prb_reserved.observe(now, static_cast<double>(cell.reserved_prbs().value));
  h.utilization.observe(now, static_cast<double>(used.value) /
                                 static_cast<double>(cell.total_prbs().value));
}

// The SoA epoch kernel. Shape: prepare flat per-demand indices ->
// per-cell tasks write grants into arena slabs -> sequential slot-order
// reduction. All scratch is arena storage rewound between epochs;
// per-cell working sets are fixed-size stack arrays — the steady-state
// loop performs no heap allocation at any pool size.
void RanController::serve_epoch_batched(
    std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now,
    std::vector<RanServeReport>& out) {
  TRACE_SCOPE("ran.serve_epoch");
  const std::size_t n_demands = demands.size();
  const std::size_t n_cells = cells_.size();
  const std::size_t n_grants = n_cells * kMaxBroadcastPlmns;

  // Reserve the arena's worst case up front: alloc_array must never
  // grow the block after the first span is handed out (growth would
  // dangle the earlier spans).
  epoch_arena_.reset();
  epoch_arena_.reserve(n_demands * (sizeof(RanServeReport) + 2 * sizeof(std::uint64_t) +
                                    sizeof(std::uint32_t)) +
                       n_grants * (sizeof(PlmnGrant) + sizeof(std::int32_t)) +
                       n_cells * (sizeof(std::uint32_t) + sizeof(int) + 1) + 256);
  const std::span<RanServeReport> totals = epoch_arena_.alloc_array<RanServeReport>(n_demands);
  const std::span<std::uint32_t> order = epoch_arena_.alloc_array<std::uint32_t>(n_demands);
  const std::span<std::uint64_t> everywhere = epoch_arena_.alloc_array<std::uint64_t>(n_demands);
  const std::span<std::uint64_t> broadcasting =
      epoch_arena_.alloc_array<std::uint64_t>(n_demands);
  const std::span<PlmnGrant> grants = epoch_arena_.alloc_array<PlmnGrant>(n_grants);
  const std::span<std::int32_t> grant_demand = epoch_arena_.alloc_array<std::int32_t>(n_grants);
  const std::span<std::uint32_t> grant_count = epoch_arena_.alloc_array<std::uint32_t>(n_cells);
  const std::span<int> used = epoch_arena_.alloc_array<int>(n_cells);
  const std::span<std::uint8_t> active = epoch_arena_.alloc_array<std::uint8_t>(n_cells);

  // Phase 0 — per-demand indices shared read-only by every cell task.
  {
    TRACE_SCOPE("ran.epoch.prepare");
    for (std::size_t d = 0; d < n_demands; ++d) {
      const auto& [plmn, demand] = demands[d];
      totals[d] = RanServeReport{plmn, demand, DataRate::zero(), DataRate::zero()};
      order[d] = static_cast<std::uint32_t>(d);
      const std::size_t* count = attached_by_plmn_.find(plmn);
      everywhere[d] = count == nullptr ? 0 : *count;
      std::uint64_t b = 0;
      for (const Cell& c : cells_) {
        if (c.broadcasts(plmn)) ++b;
      }
      broadcasting[d] = b;
    }
    // Reports (and their telemetry) are published in ascending PLMN
    // order — the same order the legacy std::map reduction produced.
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return demands[a].first < demands[b].first;
    });
  }

  // Phase 1 — per-cell tasks: every cell reads itself plus the shared
  // indices and writes only its own grant-slab row, so execution order
  // cannot affect the result.
  struct ServeCtx {
    RanController* self;
    const std::pair<PlmnId, DataRate>* demands;
    std::size_t n_demands;
    const std::uint64_t* everywhere;
    const std::uint64_t* broadcasting;
    PlmnGrant* grants;
    std::int32_t* grant_demand;
    std::uint32_t* grant_count;
    int* used;
    std::uint8_t* active;
  } ctx{this,          demands.data(),     n_demands,          everywhere.data(),
        broadcasting.data(), grants.data(), grant_demand.data(), grant_count.data(),
        used.data(),   active.data()};
  // Captures one pointer so the std::function at the parallel_for call
  // site stays within the small-buffer optimization (no allocation).
  const auto serve_cell = [&ctx](std::size_t i) {
    const Cell& cell = ctx.self->cells_[i];
    ctx.grant_count[i] = 0;
    ctx.used[i] = 0;
    const bool is_active = ctx.self->cell_active(cell.id());
    ctx.active[i] = is_active ? 1 : 0;
    if (!is_active) return;

    const std::size_t b = cell.broadcast_count();
    std::array<DataRate, kMaxBroadcastPlmns> dem{};
    std::int32_t* gd = ctx.grant_demand + i * kMaxBroadcastPlmns;
    for (std::size_t j = 0; j < b; ++j) gd[j] = -1;
    // Split each PLMN's demand across cells: weight by attached UEs,
    // equal split over broadcasting cells when the PLMN has none.
    for (std::size_t d = 0; d < ctx.n_demands; ++d) {
      const std::size_t idx = cell.broadcast_index(ctx.demands[d].first);
      if (idx == b) continue;
      double share = 0.0;
      if (ctx.everywhere[d] > 0) {
        share = static_cast<double>(cell.attached_count_at(idx)) /
                static_cast<double>(ctx.everywhere[d]);
      } else if (ctx.broadcasting[d] > 0) {
        share = 1.0 / static_cast<double>(ctx.broadcasting[d]);
      }
      dem[idx] += ctx.demands[d].second * share;
      if (gd[idx] < 0) gd[idx] = static_cast<std::int32_t>(d);
    }

    PlmnGrant* g = ctx.grants + i * kMaxBroadcastPlmns;
    const std::size_t count = cell.serve_epoch_into(
        std::span<const DataRate>(dem.data(), b), Cqi{10},
        std::span<PlmnGrant>(g, kMaxBroadcastPlmns));
    ctx.grant_count[i] = static_cast<std::uint32_t>(count);
    int prbs = 0;
    for (std::size_t j = 0; j < count; ++j) prbs += g[j].granted.value;
    ctx.used[i] = prbs;
  };
  {
    TRACE_SCOPE("ran.epoch.cells");
    if (pool_ != nullptr) {
      pool_->parallel_for(n_cells, serve_cell);
    } else {
      for (std::size_t i = 0; i < n_cells; ++i) serve_cell(i);
    }
  }

  // Phase 2 — sequential reduction in cell order on the calling thread;
  // this fixed order is what keeps reports and telemetry bit-for-bit
  // identical at any pool size.
  {
    TRACE_SCOPE("ran.epoch.reduce");
    if (registry_ != nullptr && cell_handles_.size() < n_cells) {
      cell_handles_.resize(n_cells);
    }
    for (std::size_t i = 0; i < n_cells; ++i) {
      if (active[i] == 0) {
        // Cell outage: its share of every PLMN's demand goes unserved.
        // Shares are recomputed here with the exact expression the live
        // path uses, in the same demand order.
        const Cell& cell = cells_[i];
        const std::size_t b = cell.broadcast_count();
        for (std::size_t d = 0; d < n_demands; ++d) {
          const std::size_t idx = cell.broadcast_index(demands[d].first);
          if (idx == b) continue;
          double share = 0.0;
          if (everywhere[d] > 0) {
            share = static_cast<double>(cell.attached_count_at(idx)) /
                    static_cast<double>(everywhere[d]);
          } else if (broadcasting[d] > 0) {
            share = 1.0 / static_cast<double>(broadcasting[d]);
          }
          totals[d].unserved += demands[d].second * share;
        }
        observe_cell_telemetry(i, now, PrbCount{0}, /*active=*/false);
        continue;
      }
      const PlmnGrant* g = grants.data() + i * kMaxBroadcastPlmns;
      const std::int32_t* gd = grant_demand.data() + i * kMaxBroadcastPlmns;
      for (std::size_t j = 0; j < grant_count[i]; ++j) {
        if (gd[j] < 0) continue;  // broadcast PLMN with zero offered demand
        RanServeReport& total = totals[static_cast<std::size_t>(gd[j])];
        total.served += g[j].served;
        total.unserved += g[j].unserved;
      }
      observe_cell_telemetry(i, now, PrbCount{used[i]}, /*active=*/true);
    }
  }

  out.clear();
  out.reserve(n_demands);
  for (std::size_t k = 0; k < n_demands; ++k) {
    const RanServeReport& report = totals[order[k]];
    if (registry_ != nullptr) {
      PlmnHandles* handles = plmn_handles_.find(report.plmn);
      if (handles == nullptr) {
        const std::string prefix = "ran.plmn." + std::to_string(report.plmn.value());
        handles = &plmn_handles_.insert_or_assign(
            report.plmn, PlmnHandles{registry_->handle(prefix + ".demand_mbps"),
                                     registry_->handle(prefix + ".served_mbps"),
                                     registry_->handle(prefix + ".unserved_mbps")});
      }
      handles->demand.observe(now, report.demand.as_mbps());
      handles->served.observe(now, report.served.as_mbps());
      handles->unserved.observe(now, report.unserved.as_mbps());
    }
    out.push_back(report);
  }
}

// Pre-SoA reference implementation, kept verbatim as the byte-level
// oracle for the parity suite in determinism_test.
void RanController::serve_epoch_legacy(
    std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now,
    std::vector<RanServeReport>& out) {
  TRACE_SCOPE("ran.serve_epoch");
  // Split each PLMN's demand across cells: weight by attached UEs,
  // equal split when the PLMN has none anywhere.
  //
  // Phase spans mirror the batched kernel's exactly (same labels, same
  // boundaries) so the two paths export byte-identical traces.
  std::map<PlmnId, RanServeReport> totals;
  std::map<PlmnId, std::size_t> broadcasting_by_plmn;
  {
    TRACE_SCOPE("ran.epoch.prepare");
    for (const auto& [plmn, demand] : demands) {
      totals[plmn] = RanServeReport{plmn, demand, DataRate::zero(), DataRate::zero()};
    }

    // Per-PLMN broadcasting-cell counts, built once per epoch. Attached
    // counts need no scan at all: attached_by_plmn_ is maintained
    // incrementally on attach/detach, so the epoch cost is independent
    // of the UE population size.
    for (const auto& [plmn, demand] : demands) {
      std::size_t broadcasting = 0;
      for (const Cell& c : cells_) {
        if (c.broadcasts(plmn)) ++broadcasting;
      }
      broadcasting_by_plmn.emplace(plmn, broadcasting);
    }
  }

  // Phase 1 — per-cell serving, shardable across the pool: every cell
  // only reads itself plus the shared read-only indices above and writes
  // its own outcome slot, so execution order cannot affect the result.
  struct CellOutcome {
    bool active = false;
    std::vector<std::pair<PlmnId, DataRate>> lost;  // outage: demand shares gone unserved
    std::vector<PlmnGrant> grants;
    PrbCount used{0};
  };
  std::vector<CellOutcome> outcomes(cells_.size());

  const auto serve_cell = [&](std::size_t i) {
    const Cell& cell = cells_[i];
    CellOutcome& slot = outcomes[i];
    slot.active = cell_active(cell.id());

    std::vector<std::pair<PlmnId, DataRate>> cell_demand;
    for (const auto& [plmn, demand] : demands) {
      if (!cell.broadcasts(plmn)) continue;
      const std::size_t here = cell.attached_count(plmn);
      const std::size_t* everywhere = attached_by_plmn_.find(plmn);
      double share = 0.0;
      if (everywhere != nullptr && *everywhere > 0) {
        share = static_cast<double>(here) / static_cast<double>(*everywhere);
      } else {
        // Equal split over the cells broadcasting this PLMN.
        const std::size_t broadcasting = broadcasting_by_plmn.at(plmn);
        share = broadcasting == 0 ? 0.0 : 1.0 / static_cast<double>(broadcasting);
      }
      cell_demand.emplace_back(plmn, demand * share);
    }

    if (!slot.active) {
      slot.lost = std::move(cell_demand);
      return;
    }
    slot.grants = cell.serve_epoch(cell_demand);
    for (const PlmnGrant& g : slot.grants) slot.used += g.granted;
  };
  {
    TRACE_SCOPE("ran.epoch.cells");
    if (pool_ != nullptr) {
      pool_->parallel_for(cells_.size(), serve_cell);
    } else {
      for (std::size_t i = 0; i < cells_.size(); ++i) serve_cell(i);
    }
  }

  // Phase 2 — sequential reduction in cell order on the calling thread;
  // this fixed order is what keeps reports and telemetry bit-for-bit
  // identical at any pool size.
  {
    TRACE_SCOPE("ran.epoch.reduce");
    if (registry_ != nullptr && cell_handles_.size() < cells_.size()) {
      cell_handles_.resize(cells_.size());
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      CellOutcome& outcome = outcomes[i];

      if (!outcome.active) {
        // Cell outage: its share of every PLMN's demand goes unserved.
        for (const auto& [plmn, share_demand] : outcome.lost) {
          const auto it = totals.find(plmn);
          if (it != totals.end()) it->second.unserved += share_demand;
        }
        observe_cell_telemetry(i, now, PrbCount{0}, /*active=*/false);
        continue;
      }

      for (const PlmnGrant& g : outcome.grants) {
        auto it = totals.find(g.plmn);
        if (it == totals.end()) continue;  // PLMN with zero offered demand
        it->second.served += g.served;
        it->second.unserved += g.unserved;
      }
      observe_cell_telemetry(i, now, outcome.used, /*active=*/true);
    }
  }

  out.clear();
  out.reserve(totals.size());
  for (const auto& [plmn, report] : totals) {
    if (registry_ != nullptr) {
      PlmnHandles* handles = plmn_handles_.find(plmn);
      if (handles == nullptr) {
        const std::string prefix = "ran.plmn." + std::to_string(plmn.value());
        handles = &plmn_handles_.insert_or_assign(
            plmn, PlmnHandles{registry_->handle(prefix + ".demand_mbps"),
                              registry_->handle(prefix + ".served_mbps"),
                              registry_->handle(prefix + ".unserved_mbps")});
      }
      handles->demand.observe(now, report.demand.as_mbps());
      handles->served.observe(now, report.served.as_mbps());
      handles->unserved.observe(now, report.unserved.as_mbps());
    }
    out.push_back(report);
  }
}

std::shared_ptr<net::Router> RanController::make_router() {
  auto router = std::make_shared<net::Router>();

  router->add(net::Method::get, "/capacity", [this](const net::RouteContext&) {
    json::Array cells;
    for (const Cell& cell : cells_) {
      json::Object entry;
      entry.emplace("id", static_cast<double>(cell.id().value()));
      entry.emplace("name", cell.name());
      entry.emplace("total_prb", cell.total_prbs().value);
      entry.emplace("reserved_prb", cell.reserved_prbs().value);
      entry.emplace("free_prb", cell.unreserved_prbs().value);
      cells.push_back(std::move(entry));
    }
    json::Object body;
    body.emplace("cells", std::move(cells));
    body.emplace("available_mbps", available_capacity().as_mbps());
    body.emplace("total_mbps", total_capacity().as_mbps());
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::post, "/plmns", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> plmn = doc.value().get_number("plmn");
    if (!plmn.ok()) return net::Response::from_error(plmn.error());
    const Result<void> r = install_plmn(PlmnId{static_cast<std::uint64_t>(plmn.value())});
    if (!r.ok()) return net::Response::from_error(r.error());
    return net::Response::json(net::Status::created, "{}");
  });

  router->add(net::Method::del, "/plmns/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = remove_plmn(PlmnId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::put, "/allocations/{plmn}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("plmn");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> rate = doc.value().get_number("rate_mbps");
    if (!rate.ok()) return net::Response::from_error(rate.error());
    const Result<RanAllocation> r =
        set_allocation(PlmnId{id.value()}, DataRate::mbps(rate.value()));
    if (!r.ok()) return net::Response::from_error(r.error());
    json::Object body;
    body.emplace("plmn", static_cast<double>(id.value()));
    body.emplace("rate_mbps", r.value().rate.as_mbps());
    body.emplace("total_prb", r.value().total_prbs().value);
    return net::Response::json(net::Status::ok, json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::del, "/allocations/{plmn}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("plmn");
    if (!id.ok()) return net::Response::from_error(id.error());
    release_allocation(PlmnId{id.value()});
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::post, "/ues", [this](const net::RouteContext& ctx) {
    const Result<json::Value> doc = json::parse(ctx.request->body);
    if (!doc.ok()) return net::Response::from_error(doc.error());
    const Result<double> plmn = doc.value().get_number("plmn");
    if (!plmn.ok()) return net::Response::from_error(plmn.error());
    int cqi = 10;
    if (const json::Value* c = doc.value().find("cqi"); c != nullptr && c->is_number()) {
      cqi = static_cast<int>(c->as_number());
      if (cqi < 1 || cqi > 15)
        return net::Response::from_error(make_error(Errc::invalid_argument, "cqi out of range"));
    }
    const Result<UeId> ue =
        attach_ue(PlmnId{static_cast<std::uint64_t>(plmn.value())}, Cqi{cqi});
    if (!ue.ok()) return net::Response::from_error(ue.error());
    json::Object body;
    body.emplace("ue", static_cast<double>(ue.value().value()));
    return net::Response::json(net::Status::created,
                               json::serialize(json::Value(std::move(body))));
  });

  router->add(net::Method::del, "/ues/{id}", [this](const net::RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return net::Response::from_error(id.error());
    const Result<void> r = detach_ue(UeId{id.value()});
    if (!r.ok()) return net::Response::from_error(r.error());
    net::Response resp;
    resp.status = net::Status::no_content;
    return resp;
  });

  router->add(net::Method::get, "/metrics", [this](const net::RouteContext&) {
    if (registry_ == nullptr)
      return net::Response::json(net::Status::ok, "{}");
    registry_->metrics_body(metrics_buffer_, "ran.");
    return net::Response::json(net::Status::ok, metrics_buffer_);
  });

  return router;
}

}  // namespace slices::ran
