#pragma once
// Structure-of-arrays store for the per-cell attached-UE population.
//
// The epoch hot loops touch exactly three UE attributes — identity,
// broadcast-PLMN membership and reported CQI — and they touch them for
// every attached UE, every epoch (the CQI random walk). The AoS layout
// (`AttachedUe` structs inside a DenseIdMap arena) pulls 32+ bytes per
// UE through the cache for a 2-byte working set; this store keeps each
// attribute in its own contiguous column instead, so the wander loop
// streams a byte array and the batched serve loops index dense rows.
//
// Row discipline is bit-compatible with DenseIdMap's slot discipline:
// rows are assigned in insertion order with erased rows reused LIFO,
// and iteration is ascending row order skipping holes. A given
// attach/detach history therefore yields the *same* visit order as the
// legacy AoS map — the property that keeps RNG consumption (and with it
// every scorecard) byte-identical between the SoA and legacy paths
// (pinned by the parity suite in determinism_test and the randomized
// diff test in dense_map_test).

#include <cstdint>
#include <vector>

#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "ran/phy.hpp"

namespace slices::ran {

class UeSoa {
 public:
  static constexpr std::uint32_t kNoRow = ~std::uint32_t{0};

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Total rows (live + holes); the bound for row iteration.
  [[nodiscard]] std::size_t row_count() const noexcept { return ue_.size(); }

  /// Row of `ue`, or kNoRow.
  [[nodiscard]] std::uint32_t row_of(UeId ue) const noexcept {
    const std::uint32_t* row = index_.find(ue);
    return row == nullptr ? kNoRow : *row;
  }

  [[nodiscard]] bool contains(UeId ue) const noexcept { return index_.contains(ue); }

  /// Insert a row; returns kNoRow when the UE is already present.
  /// `plmn_index` is the position of the UE's PLMN in the cell's
  /// broadcast list (kept index-coded so serve loops never hash).
  std::uint32_t insert(UeId ue, std::uint8_t plmn_index, Cqi cqi) {
    if (index_.contains(ue)) return kNoRow;
    std::uint32_t row;
    if (!free_.empty()) {
      row = free_.back();
      free_.pop_back();
    } else {
      row = static_cast<std::uint32_t>(ue_.size());
      ue_.push_back(UeId::invalid());
      plmn_.push_back(0);
      cqi_.push_back(0);
      live_.push_back(0);
    }
    ue_[row] = ue;
    plmn_[row] = plmn_index;
    cqi_[row] = static_cast<std::uint8_t>(cqi.index());
    live_[row] = 1;
    index_.insert(ue, row);
    ++size_;
    return row;
  }

  /// Erase; returns false when absent. The freed row goes on a LIFO
  /// free list (same reuse order as DenseIdMap slots).
  bool erase(UeId ue) {
    const std::uint32_t* row = index_.find(ue);
    if (row == nullptr) return false;
    ue_[*row] = UeId::invalid();
    live_[*row] = 0;
    free_.push_back(*row);
    index_.erase(ue);
    --size_;
    return true;
  }

  void clear() noexcept {
    ue_.clear();
    plmn_.clear();
    cqi_.clear();
    live_.clear();
    free_.clear();
    index_.clear();
    size_ = 0;
  }

  /// Pre-size columns and index for `n` UEs.
  void reserve(std::size_t n) {
    ue_.reserve(n);
    plmn_.reserve(n);
    cqi_.reserve(n);
    live_.reserve(n);
    index_.reserve(n);
  }

  // --- Column access (row validity: live(row) / ue_at(row).valid()) -------

  [[nodiscard]] bool live(std::uint32_t row) const noexcept { return ue_[row].valid(); }
  [[nodiscard]] UeId ue_at(std::uint32_t row) const noexcept { return ue_[row]; }
  [[nodiscard]] std::uint8_t plmn_index_at(std::uint32_t row) const noexcept {
    return plmn_[row];
  }
  [[nodiscard]] Cqi cqi_at(std::uint32_t row) const noexcept { return Cqi{cqi_[row]}; }

  void set_cqi(std::uint32_t row, Cqi cqi) noexcept {
    cqi_[row] = static_cast<std::uint8_t>(cqi.index());
  }
  /// Re-point a row at another broadcast-list position (PLMN withdrawal
  /// compaction).
  void set_plmn_index(std::uint32_t row, std::uint8_t plmn_index) noexcept {
    plmn_[row] = plmn_index;
  }

  /// Raw columns for the batched kernels. cqi values are the CQI index
  /// (1..15); rows where live() is false hold stale bytes — consult the
  /// ue column.
  [[nodiscard]] const std::uint8_t* cqi_column() const noexcept { return cqi_.data(); }
  [[nodiscard]] std::uint8_t* cqi_column() noexcept { return cqi_.data(); }
  [[nodiscard]] const std::uint8_t* plmn_column() const noexcept { return plmn_.data(); }
  /// 1 for live rows, 0 for holes — the branchless wander kernel masks
  /// with this byte instead of consulting the 8-byte ue column.
  [[nodiscard]] const std::uint8_t* live_column() const noexcept { return live_.data(); }

 private:
  std::vector<UeId> ue_;            ///< row -> UE id; invalid() marks a hole
  std::vector<std::uint8_t> plmn_;  ///< row -> index into the broadcast list
  std::vector<std::uint8_t> cqi_;   ///< row -> CQI index 1..15
  std::vector<std::uint8_t> live_;  ///< row -> 1 when live (mask column)
  std::vector<std::uint32_t> free_; ///< LIFO reusable rows
  DenseIdMap<UeId, std::uint32_t> index_;
  std::size_t size_ = 0;
};

}  // namespace slices::ran
