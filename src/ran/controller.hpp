#pragma once
// RAN domain controller.
//
// Sits between the end-to-end orchestrator and the cells, exactly like
// the radio controller in the paper's hierarchy: it installs PLMNs
// (the slice <-> PLMN mapping of the demo), translates throughput-level
// slice allocations into per-cell PRB reservations, attaches UEs, serves
// offered demand every monitoring epoch and publishes utilization
// telemetry through a REST /metrics endpoint.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/router.hpp"
#include "ran/cell.hpp"
#include "telemetry/registry.hpp"

namespace slices::ran {

/// One slice's radio allocation as installed across cells.
struct RanAllocation {
  PlmnId plmn;
  DataRate rate;                        ///< throughput the reservation guarantees
  std::map<CellId, PrbCount> per_cell;  ///< dedicated PRBs on each cell

  [[nodiscard]] PrbCount total_prbs() const noexcept {
    PrbCount sum{0};
    for (const auto& [cell, prbs] : per_cell) sum += prbs;
    return sum;
  }
};

/// Per-PLMN serving outcome of one epoch, aggregated over cells.
struct RanServeReport {
  PlmnId plmn;
  DataRate demand;
  DataRate served;
  DataRate unserved;
};

/// One requested inter-cell handover (produced per epoch by the
/// mobility Field's transition scan).
struct HandoverRequest {
  UeId ue;
  CellId target;
};

/// Aggregate outcome of one apply_handovers batch.
struct HandoverStats {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t drops = 0;

  HandoverStats& operator+=(const HandoverStats& o) noexcept {
    attempts += o.attempts;
    successes += o.successes;
    drops += o.drops;
    return *this;
  }
};

/// The radio-domain controller.
class RanController {
 public:
  explicit RanController(telemetry::MonitorRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Add a cell to the managed RAN. Cells are fixed infrastructure; add
  /// them before traffic starts.
  void add_cell(Cell cell);

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] const Cell* find_cell(CellId id) const noexcept;

  // --- PLMN lifecycle ----------------------------------------------------

  /// Install `plmn` network-wide (broadcast on every cell). Errors:
  /// conflict (already installed), insufficient_capacity (some cell's
  /// broadcast list is full — nothing is left half-installed).
  [[nodiscard]] Result<void> install_plmn(PlmnId plmn);

  /// Remove `plmn` everywhere. Errors: not_found; conflict while an
  /// allocation or attached UEs exist.
  [[nodiscard]] Result<void> remove_plmn(PlmnId plmn);

  [[nodiscard]] bool plmn_installed(PlmnId plmn) const noexcept {
    return installed_.contains(plmn);
  }

  // --- Slice allocations ---------------------------------------------------

  /// Create or resize the radio allocation of `plmn` to guarantee
  /// `rate`. PRBs are spread over cells (most-free-first) using each
  /// cell's current mean UE CQI (or `planning_cqi` when no UEs yet).
  /// Shrinking always succeeds; growing fails atomically with
  /// insufficient_capacity when the RAN cannot fit the increase.
  [[nodiscard]] Result<RanAllocation> set_allocation(PlmnId plmn, DataRate rate,
                                                     Cqi planning_cqi = Cqi{10});

  /// Drop the allocation of `plmn` (idempotent).
  void release_allocation(PlmnId plmn);

  [[nodiscard]] const RanAllocation* find_allocation(PlmnId plmn) const noexcept;

  /// Throughput still allocatable at `planning_cqi` (sum of unreserved
  /// PRBs across cells, converted).
  [[nodiscard]] DataRate available_capacity(Cqi planning_cqi = Cqi{10}) const noexcept;
  /// Total RAN capacity at `planning_cqi`.
  [[nodiscard]] DataRate total_capacity(Cqi planning_cqi = Cqi{10}) const noexcept;

  // --- UEs -----------------------------------------------------------------

  /// Attach a new UE under `plmn` to the cell with fewest attached UEs.
  /// Errors: not_found when the PLMN is not installed (the demo gating).
  [[nodiscard]] Result<UeId> attach_ue(PlmnId plmn, Cqi cqi);

  [[nodiscard]] Result<void> detach_ue(UeId ue);

  [[nodiscard]] std::size_t attached_ues(PlmnId plmn) const noexcept;

  /// Channel-quality dynamics: random-walk every attached UE's CQI by
  /// ±1 (clamped to [1,15]) with probability `step_probability` each —
  /// the periodic CQI feedback real eNBs receive. Call once per epoch.
  /// Dispatches to the vectorized per-cell kernel (Cell::wander_cqis)
  /// unless set_legacy_wander_path is on.
  void wander_cqis(Rng& rng, double step_probability = 0.3);

  /// Route CQI walks through the pre-vectorization per-row reference
  /// (Cell::wander_cqis_legacy). The two paths consume the per-cell RNG
  /// streams differently, so they produce different (identically
  /// distributed) walks — this switch is separate from
  /// set_legacy_epoch_path so serve-path parity runs wander identically
  /// on both sides.
  void set_legacy_wander_path(bool legacy) noexcept { legacy_wander_path_ = legacy; }

  /// Attach a new UE under `plmn` to a specific cell (mobility placement
  /// — the Field knows where the UE is, so least-loaded selection does
  /// not apply). Errors: not_found (PLMN not installed / unknown cell),
  /// conflict (cell inactive).
  [[nodiscard]] Result<UeId> attach_ue_at(CellId cell, PlmnId plmn, Cqi cqi);

  /// X2-style handover: move `ue` to `target`, preserving its PLMN and
  /// reported CQI. Errors: not_found (unknown UE/cell), conflict (UE
  /// already on the target, or target inactive).
  [[nodiscard]] Result<void> handover_ue(UeId ue, CellId target);

  /// Apply one epoch's batch of mobility handovers, sequentially in
  /// batch order. Each success migrates the UE's share of its PLMN's
  /// source-cell PRB reservation to the target cell (clamped to the
  /// target's free PRBs) — the MOCN reservation follows the load.
  /// Failures (unknown UE/cell, same-cell, inactive target, full
  /// target) count as drops and leave the UE where it was. When
  /// `outcomes` is non-empty it must be at least batch-sized and
  /// receives 1/0 per request. Emits ran.handover.* telemetry (counters,
  /// latency histogram, per-cell arrival/departure series) when a
  /// registry is attached. Steady-state allocation-free: per-cell
  /// scratch is controller-owned and reused (pinned by the zero-alloc
  /// guard in mobility_test).
  HandoverStats apply_handovers(std::span<const HandoverRequest> batch, SimTime now,
                                std::span<std::uint8_t> outcomes = {});

  [[nodiscard]] const HandoverStats& handover_totals() const noexcept {
    return handover_totals_;
  }

  // --- Mobility introspection ---------------------------------------------

  [[nodiscard]] bool ue_attached(UeId ue) const noexcept { return ues_.contains(ue); }
  /// Serving cell of `ue` (invalid id when unknown).
  [[nodiscard]] CellId ue_cell(UeId ue) const noexcept {
    const UeRecord* record = ues_.find(ue);
    return record == nullptr ? CellId::invalid() : record->cell;
  }
  /// Reported CQI of `ue` on its serving cell.
  [[nodiscard]] std::optional<Cqi> ue_cqi(UeId ue) const noexcept;
  /// Cell by dense index (add order); `index` < cell_count().
  [[nodiscard]] const Cell& cell_at(std::size_t index) const noexcept {
    return cells_[index];
  }
  /// Installed PLMNs in deterministic slot (install) order.
  [[nodiscard]] std::vector<PlmnId> installed_plmns() const;

  /// Load-balancing pass: hand UEs over from the most- to the
  /// least-loaded active cell until attach counts differ by at most 1.
  /// Returns the number of handovers performed.
  std::size_t rebalance_ues();

  // --- Failure injection -----------------------------------------------------

  /// Deactivate/reactivate a cell (eNB outage). An inactive cell serves
  /// nothing and its PRBs stop counting toward planning capacity;
  /// existing reservations stay installed and resume on recovery.
  /// Errors: not_found.
  [[nodiscard]] Result<void> set_cell_active(CellId cell, bool active);

  [[nodiscard]] bool cell_active(CellId cell) const noexcept {
    return !inactive_.contains(cell);
  }

  // --- Serving + monitoring -------------------------------------------------

  /// Serve one epoch of offered demand (Mb/s per PLMN). Demand of a
  /// PLMN is split across cells proportionally to its attached UEs
  /// (equally when none). Publishes telemetry when a registry is set.
  /// Reports are returned in ascending PLMN order, one per demanded
  /// PLMN. Precondition: PLMN ids in `demands` are unique.
  ///
  /// When a thread pool is attached, per-cell serving is sharded across
  /// it as one task per cell. Results are written to per-cell slots and
  /// reduced on the calling thread in cell order, so the reports and
  /// telemetry are bit-for-bit identical at any pool size.
  std::vector<RanServeReport> serve_epoch(
      std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now);

  /// Allocation-free variant: writes the reports into `out` (cleared
  /// first; capacity is reused). All per-epoch scratch comes from a
  /// per-controller arena that is rewound, not freed, between epochs —
  /// after a warm-up epoch the steady-state serve loop performs no heap
  /// allocation (pinned by epoch_alloc_test).
  void serve_epoch_into(std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now,
                        std::vector<RanServeReport>& out);

  /// Route epochs through the pre-SoA reference implementation (per-cell
  /// std::vector scratch, std::map reductions). Same results, byte for
  /// byte — kept as the oracle for the SoA-vs-legacy parity suite in
  /// determinism_test; the batched kernel is the default.
  void set_legacy_epoch_path(bool legacy) noexcept { legacy_epoch_path_ = legacy; }

  /// Attach a worker pool (non-owning; may be nullptr to detach).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// REST facade (see DESIGN.md for the route table). The router holds a
  /// non-owning pointer to this controller; keep the controller alive.
  [[nodiscard]] std::shared_ptr<net::Router> make_router();

 private:
  struct UeRecord {
    CellId cell;
    PlmnId plmn;
  };

  void serve_epoch_batched(std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now,
                           std::vector<RanServeReport>& out);
  void serve_epoch_legacy(std::span<const std::pair<PlmnId, DataRate>> demands, SimTime now,
                          std::vector<RanServeReport>& out);
  void observe_cell_telemetry(std::size_t cell_index, SimTime now, PrbCount used,
                              bool active);

  // Telemetry handles interned on first use so the epoch loop never
  // rebuilds "ran.cell.N.*" / "ran.plmn.N.*" key strings.
  struct CellHandles {
    telemetry::SeriesHandle prb_used;
    telemetry::SeriesHandle prb_reserved;
    telemetry::SeriesHandle utilization;
  };
  struct PlmnHandles {
    telemetry::SeriesHandle demand;
    telemetry::SeriesHandle served;
    telemetry::SeriesHandle unserved;
  };
  // Handover instruments, interned on the first apply_handovers call so
  // the steady-state batch path never touches the registry's name maps.
  struct HandoverHandles {
    telemetry::Counter* attempts = nullptr;
    telemetry::Counter* successes = nullptr;
    telemetry::Counter* drops = nullptr;
    telemetry::Histogram* latency = nullptr;
  };
  struct CellFlowHandles {
    telemetry::SeriesHandle arrivals;
    telemetry::SeriesHandle departures;
  };

  // Hot-path state is slot-indexed (common/dense_map.hpp): attach,
  // detach and the epoch demand scans are O(1) lookups / contiguous
  // walks, and iteration is in deterministic slot order.
  std::vector<Cell> cells_;
  DenseIdMap<CellId, std::uint32_t> cell_index_;  ///< cell id -> cells_ index
  std::set<CellId> inactive_;
  DenseIdMap<PlmnId, std::monostate> installed_;
  DenseIdMap<PlmnId, RanAllocation> allocations_;
  DenseIdMap<UeId, UeRecord> ues_;
  /// Attached-UE count per PLMN, maintained incrementally on attach and
  /// detach so serve_epoch never rescans the UE population.
  DenseIdMap<PlmnId, std::size_t> attached_by_plmn_;
  IdAllocator<UeTag> ue_ids_;
  telemetry::MonitorRegistry* registry_;
  ThreadPool* pool_ = nullptr;
  bool legacy_epoch_path_ = false;
  bool legacy_wander_path_ = false;
  /// Per-epoch scratch, reused so steady-state epochs never allocate:
  /// the arena carries all flat per-cell/per-demand arrays of the
  /// batched kernel; wander_seeds carries the per-cell RNG streams.
  Arena epoch_arena_;
  std::vector<std::uint64_t> wander_seeds_;
  std::vector<CellHandles> cell_handles_;  // index-aligned with cells_
  DenseIdMap<PlmnId, PlmnHandles> plmn_handles_;
  std::string metrics_buffer_;  ///< reused /metrics serialization buffer
  /// Handover telemetry + per-batch scratch (reused; see apply_handovers).
  HandoverStats handover_totals_;
  HandoverHandles handover_handles_;
  std::vector<CellFlowHandles> cell_flow_handles_;   // index-aligned with cells_
  std::vector<std::uint32_t> handover_arrivals_;     // per-cell, reused per batch
  std::vector<std::uint32_t> handover_departures_;   // per-cell, reused per batch
  std::vector<std::uint8_t> outcome_scratch_;        // when the caller passes none
};

}  // namespace slices::ran
