#pragma once
// LTE PHY-layer capacity model.
//
// The testbed's radio currency is the Physical Resource Block: the RAN
// controller reserves PRBs per PLMN (slice) on each MOCN cell. This
// header provides the 3GPP-derived tables that convert between PRBs and
// throughput: channel bandwidth -> PRB count (TS 36.101) and CQI ->
// spectral efficiency (TS 36.213 Table 7.2.3-1), with a fixed overhead
// factor for control/reference symbols.

#include <array>
#include <cassert>
#include <cmath>

#include "common/units.hpp"

namespace slices::ran {

/// LTE channel bandwidths supported by commercial small cells.
enum class Bandwidth { mhz1_4, mhz3, mhz5, mhz10, mhz15, mhz20 };

/// Downlink PRBs per subframe for a channel bandwidth (TS 36.101).
[[nodiscard]] constexpr PrbCount prbs_for(Bandwidth bw) noexcept {
  switch (bw) {
    case Bandwidth::mhz1_4: return {6};
    case Bandwidth::mhz3: return {15};
    case Bandwidth::mhz5: return {25};
    case Bandwidth::mhz10: return {50};
    case Bandwidth::mhz15: return {75};
    case Bandwidth::mhz20: return {100};
  }
  return {0};
}

/// Channel quality indicator, 1 (worst) .. 15 (best). CQI 0 = out of
/// range and is not representable here on purpose.
class Cqi {
 public:
  constexpr Cqi() noexcept = default;
  constexpr explicit Cqi(int index) noexcept : index_(index) {
    assert(index >= 1 && index <= 15);
  }
  [[nodiscard]] constexpr int index() const noexcept { return index_; }

  friend constexpr auto operator<=>(Cqi, Cqi) noexcept = default;

 private:
  int index_ = 7;  // mid-range default
};

/// Spectral efficiency in bits per resource element for each CQI
/// (TS 36.213 Table 7.2.3-1).
[[nodiscard]] constexpr double spectral_efficiency(Cqi cqi) noexcept {
  constexpr std::array<double, 16> kEff = {
      0.0,     // unused (CQI 0)
      0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
      1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547};
  return kEff[static_cast<std::size_t>(cqi.index())];
}

/// Resource elements per PRB per subframe (12 subcarriers x 14 OFDM
/// symbols), and the fraction of them carrying user data after control
/// region, reference signals and sync overhead.
inline constexpr double kResourceElementsPerPrbPerMs = 12.0 * 14.0;
inline constexpr double kDataFraction = 0.75;

/// Sustained downlink throughput of one PRB at channel quality `cqi`.
/// One subframe per millisecond => RE/ms * bits/RE * 1000 = bits/s.
[[nodiscard]] constexpr DataRate prb_throughput(Cqi cqi) noexcept {
  const double bits_per_ms =
      kResourceElementsPerPrbPerMs * kDataFraction * spectral_efficiency(cqi);
  return DataRate::bps(bits_per_ms * 1000.0);
}

/// Throughput of `prbs` PRBs at quality `cqi`.
[[nodiscard]] constexpr DataRate throughput_of(PrbCount prbs, Cqi cqi) noexcept {
  return prb_throughput(cqi) * static_cast<double>(prbs.value);
}

/// Precomputed per-CQI lookup tables for the batched epoch kernels.
/// Index is the raw CQI index (1..15; entry 0 unused) so the kernels
/// read straight from a UeSoa cqi column without constructing Cqi
/// values. Same numbers `prb_throughput` computes — the tables are the
/// one shared source for both the scalar and the batched paths.
struct PhyTables {
  double prb_bps[16];      ///< bits/s one PRB carries at each CQI
  double inv_prb_bps[16];  ///< 1 / prb_bps (division-free prbs_needed)
};

[[nodiscard]] constexpr PhyTables make_phy_tables() noexcept {
  PhyTables t{};
  for (int i = 1; i <= 15; ++i) {
    t.prb_bps[i] = prb_throughput(Cqi{i}).bits_per_second();
    t.inv_prb_bps[i] = 1.0 / t.prb_bps[i];
  }
  return t;
}

inline constexpr PhyTables kPhyTables = make_phy_tables();

/// Relative slack when converting a rate into a PRB count: quotients
/// within this fraction of an integer count as that integer, absorbing
/// the FP representation error of rate / per-PRB-throughput.
inline constexpr double kPrbRoundingSlack = 1e-9;

/// Ceiling of `quotient` PRBs with the FP guard: a plain std::ceil
/// returns n+1 when an exactly-integral division lands one ulp above n.
[[nodiscard]] constexpr int prb_ceil(double quotient) noexcept {
  const int whole = static_cast<int>(quotient);
  const double frac = quotient - static_cast<double>(whole);
  return frac <= kPrbRoundingSlack * (quotient + 1.0) ? whole : whole + 1;
}

/// Minimum PRBs needed to carry `rate` at quality `cqi` (ceiling).
[[nodiscard]] inline PrbCount prbs_needed(DataRate rate, Cqi cqi) noexcept {
  if (rate <= DataRate::zero()) return {0};
  return {prb_ceil(rate.bits_per_second() *
                   kPhyTables.inv_prb_bps[static_cast<std::size_t>(cqi.index())])};
}

}  // namespace slices::ran
