#pragma once
// MOCN-sharing LTE cell model.
//
// The testbed's eNBs support the Multi Operator Core Network sharing
// model: one cell broadcasts several PLMN ids and can "reserve radio
// resources for each particular network". A Cell therefore tracks the
// broadcast PLMN set (bounded, as over-the-air SIB1 lists are), a
// dedicated PRB reservation per PLMN, the attached UE population, and
// serves offered demand each monitoring epoch via the MOCN scheduler.
//
// UE state lives in a DenseIdMap (contiguous slots, O(1) attach/detach,
// deterministic slot-order iteration) and each broadcast PLMN keeps a
// running (count, cqi_sum) aggregate, so attached_count / mean_cqi —
// the per-epoch scheduling inputs — are O(1) instead of full-population
// scans.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "ran/phy.hpp"
#include "ran/scheduler.hpp"

namespace slices::ran {

/// Maximum PLMN ids one cell may broadcast (SIB1 PLMN-IdentityList).
inline constexpr std::size_t kMaxBroadcastPlmns = 6;

/// A UE attached to a cell under some PLMN.
struct AttachedUe {
  UeId ue;
  PlmnId plmn;
  Cqi cqi;
};

/// One eNB cell.
class Cell {
 public:
  Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy);

  [[nodiscard]] CellId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PrbCount total_prbs() const noexcept { return total_; }
  [[nodiscard]] SharingPolicy sharing_policy() const noexcept { return policy_; }

  /// Sum of all dedicated reservations.
  [[nodiscard]] PrbCount reserved_prbs() const noexcept;
  /// PRBs not reserved by any PLMN.
  [[nodiscard]] PrbCount unreserved_prbs() const noexcept {
    return total_ - reserved_prbs();
  }

  // --- PLMN broadcast management (slice <-> PLMN mapping) ---------------

  /// Start broadcasting `plmn`. Errors: conflict (already broadcast),
  /// insufficient_capacity (SIB1 list full).
  [[nodiscard]] Result<void> broadcast_plmn(PlmnId plmn);

  /// Stop broadcasting. Errors: not_found; conflict if a reservation or
  /// attached UEs still exist (release/detach first).
  [[nodiscard]] Result<void> withdraw_plmn(PlmnId plmn);

  [[nodiscard]] bool broadcasts(PlmnId plmn) const noexcept;
  [[nodiscard]] std::vector<PlmnId> broadcast_list() const;

  // --- PRB reservations --------------------------------------------------

  /// Set the dedicated reservation of `plmn` to `prbs` (PUT semantics;
  /// both grow and shrink — shrinking is how overbooking reclaims radio
  /// capacity). Errors: not_found (PLMN not broadcast),
  /// invalid_argument (negative), insufficient_capacity.
  [[nodiscard]] Result<void> set_reservation(PlmnId plmn, PrbCount prbs);

  /// Drop the reservation entirely (idempotent).
  void clear_reservation(PlmnId plmn);

  /// Current reservation (0 when none).
  [[nodiscard]] PrbCount reservation_of(PlmnId plmn) const noexcept;

  // --- UE population -----------------------------------------------------

  /// Attach a UE under `plmn`. Errors: not_found (PLMN not broadcast —
  /// the demo's gating: devices connect only once their slice's PLMN is
  /// on the air), conflict (duplicate UE id).
  [[nodiscard]] Result<void> attach_ue(UeId ue, PlmnId plmn, Cqi cqi);

  /// Detach a UE. Errors: not_found.
  [[nodiscard]] Result<void> detach_ue(UeId ue);

  /// Update a UE's reported channel quality (CQI feedback). Errors:
  /// not_found.
  [[nodiscard]] Result<void> update_ue_cqi(UeId ue, Cqi cqi);

  /// Current reported CQI of a UE; nullopt when not attached here.
  [[nodiscard]] std::optional<Cqi> ue_cqi(UeId ue) const noexcept;

  /// Random-walk every attached UE's CQI by ±1 (clamped to [1,15]) with
  /// probability `step_probability` each. Iterates UEs in slot order —
  /// deterministic for a given attach/detach history, which keeps the
  /// RNG consumption order reproducible.
  void wander_cqis(Rng& rng, double step_probability);

  [[nodiscard]] std::size_t attached_count(PlmnId plmn) const noexcept;
  [[nodiscard]] std::size_t attached_total() const noexcept { return ues_.size(); }

  /// Mean CQI of `plmn`'s attached UEs, or `fallback` when none.
  [[nodiscard]] Cqi mean_cqi(PlmnId plmn, Cqi fallback) const noexcept;

  // --- Serving -----------------------------------------------------------

  /// Serve one epoch of per-PLMN offered demand. PLMNs without an entry
  /// offer zero. Returns one grant per *broadcast* PLMN, in broadcast
  /// order. CQI used is the PLMN's mean UE CQI (fallback when no UEs).
  [[nodiscard]] std::vector<PlmnGrant> serve_epoch(
      std::span<const std::pair<PlmnId, DataRate>> demands,
      Cqi fallback_cqi = Cqi{10}) const;

 private:
  /// Running UE aggregate of one broadcast PLMN; index-aligned with
  /// `broadcast_`. Maintained on attach/detach/CQI updates so the
  /// scheduler inputs never rescan the population.
  struct PlmnUeStats {
    std::size_t count = 0;
    std::int64_t cqi_sum = 0;
  };

  [[nodiscard]] std::size_t plmn_index(PlmnId plmn) const noexcept;

  CellId id_;
  std::string name_;
  PrbCount total_;
  SharingPolicy policy_;
  std::vector<PlmnId> broadcast_;               // ordered: deterministic scheduling
  std::vector<PlmnUeStats> plmn_stats_;         // index-aligned with broadcast_
  DenseIdMap<PlmnId, PrbCount> reservations_;
  DenseIdMap<UeId, AttachedUe> ues_;
};

}  // namespace slices::ran
