#pragma once
// MOCN-sharing LTE cell model.
//
// The testbed's eNBs support the Multi Operator Core Network sharing
// model: one cell broadcasts several PLMN ids and can "reserve radio
// resources for each particular network". A Cell therefore tracks the
// broadcast PLMN set (bounded, as over-the-air SIB1 lists are), a
// dedicated PRB reservation per PLMN, the attached UE population, and
// serves offered demand each monitoring epoch via the MOCN scheduler.
//
// UE state is a structure-of-arrays column store (ran/ue_soa.hpp): the
// id / PLMN-index / CQI attributes live in parallel dense columns with
// O(1) attach/detach and deterministic row-order iteration (row
// discipline bit-compatible with the old DenseIdMap slots), so the
// per-epoch CQI walk streams a byte column instead of chasing 32-byte
// AoS slots. Each broadcast PLMN keeps a running (count, cqi_sum)
// aggregate, so attached_count / mean_cqi — the per-epoch scheduling
// inputs — stay O(1).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/dense_map.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "ran/phy.hpp"
#include "ran/scheduler.hpp"
#include "ran/ue_soa.hpp"

namespace slices::ran {

/// Maximum PLMN ids one cell may broadcast (SIB1 PLMN-IdentityList).
inline constexpr std::size_t kMaxBroadcastPlmns = 6;

/// A UE attached to a cell under some PLMN (lookup-result view; the
/// stored representation is columnar).
struct AttachedUe {
  UeId ue;
  PlmnId plmn;
  Cqi cqi;
};

/// One eNB cell.
class Cell {
 public:
  Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy);

  [[nodiscard]] CellId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PrbCount total_prbs() const noexcept { return total_; }
  [[nodiscard]] SharingPolicy sharing_policy() const noexcept { return policy_; }

  /// Sum of all dedicated reservations.
  [[nodiscard]] PrbCount reserved_prbs() const noexcept;
  /// PRBs not reserved by any PLMN.
  [[nodiscard]] PrbCount unreserved_prbs() const noexcept {
    return total_ - reserved_prbs();
  }

  // --- PLMN broadcast management (slice <-> PLMN mapping) ---------------

  /// Start broadcasting `plmn`. Errors: conflict (already broadcast),
  /// insufficient_capacity (SIB1 list full).
  [[nodiscard]] Result<void> broadcast_plmn(PlmnId plmn);

  /// Stop broadcasting. Errors: not_found; conflict if a reservation or
  /// attached UEs still exist (release/detach first).
  [[nodiscard]] Result<void> withdraw_plmn(PlmnId plmn);

  [[nodiscard]] bool broadcasts(PlmnId plmn) const noexcept;
  [[nodiscard]] std::vector<PlmnId> broadcast_list() const;

  /// Number of PLMNs currently broadcast (<= kMaxBroadcastPlmns).
  [[nodiscard]] std::size_t broadcast_count() const noexcept { return broadcast_.size(); }
  /// Position of `plmn` in the broadcast list, or broadcast_count()
  /// when not broadcast. Positions are dense and stable until a
  /// withdraw; the epoch kernel uses them to index per-cell scratch.
  [[nodiscard]] std::size_t broadcast_index(PlmnId plmn) const noexcept {
    return plmn_index(plmn);
  }
  [[nodiscard]] PlmnId broadcast_at(std::size_t index) const noexcept {
    return broadcast_[index];
  }

  // --- PRB reservations --------------------------------------------------

  /// Set the dedicated reservation of `plmn` to `prbs` (PUT semantics;
  /// both grow and shrink — shrinking is how overbooking reclaims radio
  /// capacity). Errors: not_found (PLMN not broadcast),
  /// invalid_argument (negative), insufficient_capacity.
  [[nodiscard]] Result<void> set_reservation(PlmnId plmn, PrbCount prbs);

  /// Drop the reservation entirely (idempotent).
  void clear_reservation(PlmnId plmn);

  /// Current reservation (0 when none).
  [[nodiscard]] PrbCount reservation_of(PlmnId plmn) const noexcept;

  // --- UE population -----------------------------------------------------

  /// Attach a UE under `plmn`. Errors: not_found (PLMN not broadcast —
  /// the demo's gating: devices connect only once their slice's PLMN is
  /// on the air), conflict (duplicate UE id).
  [[nodiscard]] Result<void> attach_ue(UeId ue, PlmnId plmn, Cqi cqi);

  /// Detach a UE. Errors: not_found.
  [[nodiscard]] Result<void> detach_ue(UeId ue);

  /// Update a UE's reported channel quality (CQI feedback). Errors:
  /// not_found.
  [[nodiscard]] Result<void> update_ue_cqi(UeId ue, Cqi cqi);

  /// Current reported CQI of a UE; nullopt when not attached here.
  [[nodiscard]] std::optional<Cqi> ue_cqi(UeId ue) const noexcept;

  /// PLMN a UE is attached under; nullopt when not attached here.
  [[nodiscard]] std::optional<PlmnId> ue_plmn(UeId ue) const noexcept;

  /// Random-walk every attached UE's CQI by ±1 (clamped to [1,15]) with
  /// probability `step_probability` each. Batched branchless kernel over
  /// the SoA byte columns: one RNG word is drawn per *four rows* (live
  /// or hole, in row order; each row consumes an independent 16-bit
  /// lane), so consumption depends only on the row count — never on the
  /// data — and the optional SIMD apply path (see wander_simd_compiled)
  /// is bit-identical to the scalar-blocked core. RNG consumption
  /// differs from wander_cqis_legacy, so the two produce different (but
  /// identically-distributed) walks.
  void wander_cqis(Rng& rng, double step_probability);

  /// Pre-vectorization reference walk: per live row, one bernoulli draw
  /// decides stepping and a second draws the sign. Kept as the oracle
  /// for the distribution-parity suite (ran_test) and reachable via
  /// RanController::set_legacy_wander_path.
  void wander_cqis_legacy(Rng& rng, double step_probability);

  [[nodiscard]] std::size_t attached_count(PlmnId plmn) const noexcept;
  /// Same by broadcast position (no PLMN scan); `index` < broadcast_count().
  [[nodiscard]] std::size_t attached_count_at(std::size_t index) const noexcept {
    return plmn_stats_[index].count;
  }
  [[nodiscard]] std::size_t attached_total() const noexcept { return ues_.size(); }

  /// Mean CQI of `plmn`'s attached UEs, or `fallback` when none.
  [[nodiscard]] Cqi mean_cqi(PlmnId plmn, Cqi fallback) const noexcept;
  /// Same by broadcast position (no PLMN scan); `index` < broadcast_count().
  [[nodiscard]] Cqi mean_cqi_at(std::size_t index, Cqi fallback) const noexcept;

  /// Pre-size the UE columns for an expected population.
  void reserve_ues(std::size_t n) { ues_.reserve(n); }

  // --- Serving -----------------------------------------------------------

  /// Serve one epoch of per-PLMN offered demand. PLMNs without an entry
  /// offer zero. Returns one grant per *broadcast* PLMN, in broadcast
  /// order. CQI used is the PLMN's mean UE CQI (fallback when no UEs).
  [[nodiscard]] std::vector<PlmnGrant> serve_epoch(
      std::span<const std::pair<PlmnId, DataRate>> demands,
      Cqi fallback_cqi = Cqi{10}) const;

  /// Batched allocation-free serve used by the epoch kernel:
  /// `demand_by_index[i]` is the offered demand of broadcast PLMN i
  /// (size >= broadcast_count(), caller-aggregated), `grants` receives
  /// broadcast_count() grants in broadcast order. Identical outcomes to
  /// serve_epoch for the same per-PLMN demand totals.
  std::size_t serve_epoch_into(std::span<const DataRate> demand_by_index,
                               Cqi fallback_cqi, std::span<PlmnGrant> grants) const noexcept;

 private:
  /// Running UE aggregate of one broadcast PLMN; index-aligned with
  /// `broadcast_`. Maintained on attach/detach/CQI updates so the
  /// scheduler inputs never rescan the population.
  struct PlmnUeStats {
    std::size_t count = 0;
    std::int64_t cqi_sum = 0;
  };

  [[nodiscard]] std::size_t plmn_index(PlmnId plmn) const noexcept;

  CellId id_;
  std::string name_;
  PrbCount total_;
  SharingPolicy policy_;
  std::vector<PlmnId> broadcast_;               // ordered: deterministic scheduling
  std::vector<PlmnUeStats> plmn_stats_;         // index-aligned with broadcast_
  DenseIdMap<PlmnId, PrbCount> reservations_;
  UeSoa ues_;                                   // columnar attached-UE store
};

/// True when this binary carries the explicit SIMD wander apply path
/// (built with SLICES_ENABLE_SIMD on an AVX2 target).
[[nodiscard]] bool wander_simd_compiled() noexcept;

/// Runtime toggle for the SIMD apply path (defaults to on when
/// compiled in). The scalar-blocked core is the reference; the parity
/// suite flips this to prove the two variants are bit-identical.
/// No-op when the SIMD path is not compiled in.
void set_wander_simd_enabled(bool enabled) noexcept;
[[nodiscard]] bool wander_simd_enabled() noexcept;

}  // namespace slices::ran
