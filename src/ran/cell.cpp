#include "ran/cell.hpp"

#include <algorithm>
#include <cassert>

namespace slices::ran {

Cell::Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy)
    : id_(id), name_(std::move(name)), total_(prbs_for(bandwidth)), policy_(policy) {}

PrbCount Cell::reserved_prbs() const noexcept {
  PrbCount sum{0};
  for (const auto& [plmn, prbs] : reservations_) sum += prbs;
  return sum;
}

std::size_t Cell::plmn_index(PlmnId plmn) const noexcept {
  for (std::size_t i = 0; i < broadcast_.size(); ++i) {
    if (broadcast_[i] == plmn) return i;
  }
  return broadcast_.size();
}

Result<void> Cell::broadcast_plmn(PlmnId plmn) {
  if (broadcasts(plmn))
    return make_error(Errc::conflict, "cell " + name_ + " already broadcasts this PLMN");
  if (broadcast_.size() >= kMaxBroadcastPlmns)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " SIB1 PLMN list is full");
  broadcast_.push_back(plmn);
  plmn_stats_.push_back(PlmnUeStats{});
  return {};
}

Result<void> Cell::withdraw_plmn(PlmnId plmn) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (reservations_.contains(plmn))
    return make_error(Errc::conflict, "PLMN still holds a PRB reservation");
  if (plmn_stats_[i].count > 0)
    return make_error(Errc::conflict, "UEs still attached under this PLMN");
  broadcast_.erase(broadcast_.begin() + static_cast<std::ptrdiff_t>(i));
  plmn_stats_.erase(plmn_stats_.begin() + static_cast<std::ptrdiff_t>(i));
  return {};
}

bool Cell::broadcasts(PlmnId plmn) const noexcept {
  return plmn_index(plmn) != broadcast_.size();
}

std::vector<PlmnId> Cell::broadcast_list() const { return broadcast_; }

Result<void> Cell::set_reservation(PlmnId plmn, PrbCount prbs) {
  if (!broadcasts(plmn))
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (prbs.value < 0) return make_error(Errc::invalid_argument, "negative PRB reservation");
  const PrbCount others = reserved_prbs() - reservation_of(plmn);
  if (others.value + prbs.value > total_.value)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " has only " +
                          std::to_string(total_.value - others.value) + " PRBs free");
  if (prbs.value == 0) {
    reservations_.erase(plmn);
  } else {
    reservations_.insert_or_assign(plmn, prbs);
  }
  return {};
}

void Cell::clear_reservation(PlmnId plmn) { reservations_.erase(plmn); }

PrbCount Cell::reservation_of(PlmnId plmn) const noexcept {
  const PrbCount* prbs = reservations_.find(plmn);
  return prbs == nullptr ? PrbCount{0} : *prbs;
}

Result<void> Cell::attach_ue(UeId ue, PlmnId plmn, Cqi cqi) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found,
                      "PLMN not on the air on cell " + name_ + "; UE cannot attach");
  if (ues_.insert(ue, AttachedUe{ue, plmn, cqi}) == nullptr)
    return make_error(Errc::conflict, "UE already attached");
  ++plmn_stats_[i].count;
  plmn_stats_[i].cqi_sum += cqi.index();
  return {};
}

Result<void> Cell::update_ue_cqi(UeId ue, Cqi cqi) {
  AttachedUe* attached = ues_.find(ue);
  if (attached == nullptr) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[plmn_index(attached->plmn)];
  stats.cqi_sum += cqi.index() - attached->cqi.index();
  attached->cqi = cqi;
  return {};
}

std::optional<Cqi> Cell::ue_cqi(UeId ue) const noexcept {
  const AttachedUe* attached = ues_.find(ue);
  if (attached == nullptr) return std::nullopt;
  return attached->cqi;
}

void Cell::wander_cqis(Rng& rng, double step_probability) {
  for (auto& [ue, attached] : ues_) {
    if (!rng.bernoulli(step_probability)) continue;
    const int delta = rng.bernoulli(0.5) ? 1 : -1;
    const int next = attached.cqi.index() + delta;
    const Cqi clamped{next < 1 ? 1 : (next > 15 ? 15 : next)};
    plmn_stats_[plmn_index(attached.plmn)].cqi_sum +=
        clamped.index() - attached.cqi.index();
    attached.cqi = clamped;
  }
}

Result<void> Cell::detach_ue(UeId ue) {
  const AttachedUe* attached = ues_.find(ue);
  if (attached == nullptr) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[plmn_index(attached->plmn)];
  assert(stats.count > 0);
  --stats.count;
  stats.cqi_sum -= attached->cqi.index();
  ues_.erase(ue);
  return {};
}

std::size_t Cell::attached_count(PlmnId plmn) const noexcept {
  const std::size_t i = plmn_index(plmn);
  return i == broadcast_.size() ? 0 : plmn_stats_[i].count;
}

Cqi Cell::mean_cqi(PlmnId plmn, Cqi fallback) const noexcept {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size() || plmn_stats_[i].count == 0) return fallback;
  const int mean = static_cast<int>(plmn_stats_[i].cqi_sum /
                                    static_cast<std::int64_t>(plmn_stats_[i].count));
  return Cqi{mean < 1 ? 1 : (mean > 15 ? 15 : mean)};
}

std::vector<PlmnGrant> Cell::serve_epoch(
    std::span<const std::pair<PlmnId, DataRate>> demands, Cqi fallback_cqi) const {
  std::vector<PlmnLoad> loads;
  loads.reserve(broadcast_.size());
  for (const PlmnId plmn : broadcast_) {
    DataRate demand = DataRate::zero();
    for (const auto& [p, d] : demands) {
      if (p == plmn) demand += d;
    }
    loads.push_back(PlmnLoad{plmn, reservation_of(plmn), demand, mean_cqi(plmn, fallback_cqi)});
  }
  return schedule_epoch(total_, loads, policy_);
}

}  // namespace slices::ran
