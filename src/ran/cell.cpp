#include "ran/cell.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace slices::ran {

Cell::Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy)
    : id_(id), name_(std::move(name)), total_(prbs_for(bandwidth)), policy_(policy) {}

PrbCount Cell::reserved_prbs() const noexcept {
  PrbCount sum{0};
  for (const auto& [plmn, prbs] : reservations_) sum += prbs;
  return sum;
}

std::size_t Cell::plmn_index(PlmnId plmn) const noexcept {
  for (std::size_t i = 0; i < broadcast_.size(); ++i) {
    if (broadcast_[i] == plmn) return i;
  }
  return broadcast_.size();
}

Result<void> Cell::broadcast_plmn(PlmnId plmn) {
  if (broadcasts(plmn))
    return make_error(Errc::conflict, "cell " + name_ + " already broadcasts this PLMN");
  if (broadcast_.size() >= kMaxBroadcastPlmns)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " SIB1 PLMN list is full");
  broadcast_.push_back(plmn);
  plmn_stats_.push_back(PlmnUeStats{});
  return {};
}

Result<void> Cell::withdraw_plmn(PlmnId plmn) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (reservations_.contains(plmn))
    return make_error(Errc::conflict, "PLMN still holds a PRB reservation");
  if (plmn_stats_[i].count > 0)
    return make_error(Errc::conflict, "UEs still attached under this PLMN");
  broadcast_.erase(broadcast_.begin() + static_cast<std::ptrdiff_t>(i));
  plmn_stats_.erase(plmn_stats_.begin() + static_cast<std::ptrdiff_t>(i));
  // The UE columns store broadcast positions; every position above the
  // withdrawn one shifted down by one. Cold path (withdrawal requires
  // an empty PLMN), so the full-column sweep is acceptable.
  for (std::uint32_t row = 0; row < ues_.row_count(); ++row) {
    if (!ues_.live(row)) continue;
    const std::uint8_t p = ues_.plmn_index_at(row);
    assert(p != i);
    if (p > i) ues_.set_plmn_index(row, static_cast<std::uint8_t>(p - 1));
  }
  return {};
}

bool Cell::broadcasts(PlmnId plmn) const noexcept {
  return plmn_index(plmn) != broadcast_.size();
}

std::vector<PlmnId> Cell::broadcast_list() const { return broadcast_; }

Result<void> Cell::set_reservation(PlmnId plmn, PrbCount prbs) {
  if (!broadcasts(plmn))
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (prbs.value < 0) return make_error(Errc::invalid_argument, "negative PRB reservation");
  const PrbCount others = reserved_prbs() - reservation_of(plmn);
  if (others.value + prbs.value > total_.value)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " has only " +
                          std::to_string(total_.value - others.value) + " PRBs free");
  if (prbs.value == 0) {
    reservations_.erase(plmn);
  } else {
    reservations_.insert_or_assign(plmn, prbs);
  }
  return {};
}

void Cell::clear_reservation(PlmnId plmn) { reservations_.erase(plmn); }

PrbCount Cell::reservation_of(PlmnId plmn) const noexcept {
  const PrbCount* prbs = reservations_.find(plmn);
  return prbs == nullptr ? PrbCount{0} : *prbs;
}

Result<void> Cell::attach_ue(UeId ue, PlmnId plmn, Cqi cqi) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found,
                      "PLMN not on the air on cell " + name_ + "; UE cannot attach");
  if (ues_.insert(ue, static_cast<std::uint8_t>(i), cqi) == UeSoa::kNoRow)
    return make_error(Errc::conflict, "UE already attached");
  ++plmn_stats_[i].count;
  plmn_stats_[i].cqi_sum += cqi.index();
  return {};
}

Result<void> Cell::update_ue_cqi(UeId ue, Cqi cqi) {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[ues_.plmn_index_at(row)];
  stats.cqi_sum += cqi.index() - ues_.cqi_at(row).index();
  ues_.set_cqi(row, cqi);
  return {};
}

std::optional<Cqi> Cell::ue_cqi(UeId ue) const noexcept {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return std::nullopt;
  return ues_.cqi_at(row);
}

std::optional<PlmnId> Cell::ue_plmn(UeId ue) const noexcept {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return std::nullopt;
  return broadcast_[ues_.plmn_index_at(row)];
}

void Cell::wander_cqis(Rng& rng, double step_probability) {
  // Streams the CQI byte column in row order; per-PLMN aggregate deltas
  // are accumulated locally and folded in once at the end, so the inner
  // loop touches only the two UE columns and the RNG.
  std::uint8_t* cqi = ues_.cqi_column();
  const std::uint8_t* plmn = ues_.plmn_column();
  std::array<std::int64_t, kMaxBroadcastPlmns> delta{};
  const std::size_t rows = ues_.row_count();
  for (std::uint32_t row = 0; row < rows; ++row) {
    if (!ues_.live(row)) continue;
    if (!rng.bernoulli(step_probability)) continue;
    const int step = rng.bernoulli(0.5) ? 1 : -1;
    const int next = static_cast<int>(cqi[row]) + step;
    const int clamped = next < 1 ? 1 : (next > 15 ? 15 : next);
    delta[plmn[row]] += clamped - static_cast<int>(cqi[row]);
    cqi[row] = static_cast<std::uint8_t>(clamped);
  }
  for (std::size_t i = 0; i < broadcast_.size(); ++i) plmn_stats_[i].cqi_sum += delta[i];
}

Result<void> Cell::detach_ue(UeId ue) {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[ues_.plmn_index_at(row)];
  assert(stats.count > 0);
  --stats.count;
  stats.cqi_sum -= ues_.cqi_at(row).index();
  ues_.erase(ue);
  return {};
}

std::size_t Cell::attached_count(PlmnId plmn) const noexcept {
  const std::size_t i = plmn_index(plmn);
  return i == broadcast_.size() ? 0 : plmn_stats_[i].count;
}

Cqi Cell::mean_cqi(PlmnId plmn, Cqi fallback) const noexcept {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size()) return fallback;
  return mean_cqi_at(i, fallback);
}

Cqi Cell::mean_cqi_at(std::size_t index, Cqi fallback) const noexcept {
  if (plmn_stats_[index].count == 0) return fallback;
  const int mean = static_cast<int>(plmn_stats_[index].cqi_sum /
                                    static_cast<std::int64_t>(plmn_stats_[index].count));
  return Cqi{mean < 1 ? 1 : (mean > 15 ? 15 : mean)};
}

std::vector<PlmnGrant> Cell::serve_epoch(
    std::span<const std::pair<PlmnId, DataRate>> demands, Cqi fallback_cqi) const {
  // Aggregate the (plmn, rate) pairs into broadcast order and reuse the
  // batched core; outputs pre-sized from the broadcast count.
  std::array<DataRate, kMaxBroadcastPlmns> demand_by_index{};
  for (const auto& [p, d] : demands) {
    const std::size_t i = plmn_index(p);
    if (i < broadcast_.size()) demand_by_index[i] += d;
  }
  std::vector<PlmnGrant> grants(broadcast_.size());
  serve_epoch_into(std::span<const DataRate>(demand_by_index.data(), broadcast_.size()),
                   fallback_cqi, grants);
  return grants;
}

std::size_t Cell::serve_epoch_into(std::span<const DataRate> demand_by_index,
                                   Cqi fallback_cqi,
                                   std::span<PlmnGrant> grants) const noexcept {
  assert(demand_by_index.size() >= broadcast_.size());
  assert(grants.size() >= broadcast_.size());
  std::array<PlmnLoad, kMaxBroadcastPlmns> loads;
  std::array<int, kMaxBroadcastPlmns> want;
  for (std::size_t i = 0; i < broadcast_.size(); ++i) {
    loads[i] = PlmnLoad{broadcast_[i], reservation_of(broadcast_[i]), demand_by_index[i],
                        mean_cqi_at(i, fallback_cqi)};
  }
  schedule_epoch_into(total_, std::span<const PlmnLoad>(loads.data(), broadcast_.size()),
                      policy_, grants, want);
  return broadcast_.size();
}

}  // namespace slices::ran
