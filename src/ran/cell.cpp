#include "ran/cell.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#if defined(SLICES_ENABLE_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace slices::ran {

namespace {

/// Rows per wander block: one AVX2 register of CQI bytes.
constexpr std::size_t kWanderBlock = 32;

#if defined(SLICES_ENABLE_SIMD) && defined(__AVX2__)
constexpr bool kWanderSimdCompiled = true;
#else
constexpr bool kWanderSimdCompiled = false;
#endif

bool g_wander_simd = kWanderSimdCompiled;

// The fill and apply loops below carry no loop-carried dependence, but
// GCC only proves that (and vectorizes both) when the column pointers
// are restrict-qualified *parameters* and the loops are marked ivdep —
// hence the out-of-line kernel instead of a member-function body.
#if defined(__GNUC__)
#define SLICES_WANDER_IVDEP _Pragma("GCC ivdep")
#else
#define SLICES_WANDER_IVDEP
#endif

/// Block-batched CQI walk over the SoA byte columns. Entropy budget:
/// one xoshiro word per *four* rows — row j of a block reads the 16-bit
/// lane `(word[j/4] >> ((j%4)*16)) & 0xFFFF`, the lane's low bit is the
/// step sign and its upper 15 bits gate the step against p·2^15. Words
/// are drawn for live rows and holes alike, so RNG consumption is a
/// pure function of the row count. Per-PLMN CQI-sum deltas accumulate
/// into `delta` (indexed by broadcast position).
__attribute__((noinline)) void wander_kernel(std::uint8_t* __restrict cqi,
                                             const std::uint8_t* __restrict plmn,
                                             const std::uint8_t* __restrict live,
                                             std::size_t rows, Rng& rng, std::uint32_t thresh,
                                             std::int64_t* __restrict delta) {
  alignas(32) std::array<std::int8_t, kWanderBlock> step;
  alignas(32) std::array<std::int8_t, kWanderBlock> applied;
  for (std::size_t base = 0; base < rows; base += kWanderBlock) {
    const std::size_t n = std::min(kWanderBlock, rows - base);
    // The RNG stream is inherently serial; unpack the block's words
    // into per-row ±1/0 steps so the apply pass below is pure column
    // arithmetic (auto-vectorized, or explicitly SIMD when enabled).
    const std::size_t n_words = (n + 3) / 4;
    for (std::size_t k = 0; k < n_words; ++k) {
      // Unpacking rides along inside the (serial, unvectorizable) RNG
      // loop on purpose: GCC 12's cost model otherwise SSE-widens the
      // 16-bit lane extraction into a spill-heavy dword unpack that is
      // ~3x slower than this scalar form.
      const std::uint64_t w = rng.next_u64();
      std::int8_t* s = step.data() + 4 * k;
      for (std::size_t l = 0; l < 4; ++l) {
        const auto c = static_cast<std::uint32_t>(w >> (l * 16)) & 0xFFFFU;
        s[l] = static_cast<std::int8_t>(((c >> 1) < thresh ? 1 : 0) * ((c & 1U) != 0 ? 1 : -1));
      }
    }
#if defined(SLICES_ENABLE_SIMD) && defined(__AVX2__)
    if (g_wander_simd && n == kWanderBlock) {
      // Vector apply: add the step lanes, clamp to [1,15], keep the old
      // byte on dead rows. CQI values stay within [0,16] so signed
      // 8-bit saturation is never in play; the lane arithmetic matches
      // the scalar core bit for bit.
      const __m256i vold = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cqi + base));
      const __m256i vstep = _mm256_load_si256(reinterpret_cast<const __m256i*>(step.data()));
      const __m256i vlive = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(live + base));
      __m256i vnext = _mm256_add_epi8(vold, vstep);
      vnext = _mm256_max_epi8(vnext, _mm256_set1_epi8(1));
      vnext = _mm256_min_epi8(vnext, _mm256_set1_epi8(15));
      const __m256i vdead = _mm256_cmpeq_epi8(vlive, _mm256_setzero_si256());
      vnext = _mm256_blendv_epi8(vnext, vold, vdead);
      _mm256_store_si256(reinterpret_cast<__m256i*>(applied.data()),
                         _mm256_sub_epi8(vnext, vold));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cqi + base), vnext);
      for (std::size_t j = 0; j < kWanderBlock; ++j) {
        delta[plmn[base + j]] += applied[j];
      }
      continue;
    }
#endif
    SLICES_WANDER_IVDEP
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = base + j;
      const int old = static_cast<int>(cqi[row]);
      int next = old + step[j];
      next = next < 1 ? 1 : (next > 15 ? 15 : next);
      const int d = live[row] != 0 ? next - old : 0;
      applied[j] = static_cast<std::int8_t>(d);
      cqi[row] = static_cast<std::uint8_t>(old + d);
    }
    for (std::size_t j = 0; j < n; ++j) {
      delta[plmn[base + j]] += applied[j];
    }
  }
}

}  // namespace

bool wander_simd_compiled() noexcept { return kWanderSimdCompiled; }

void set_wander_simd_enabled(bool enabled) noexcept {
  g_wander_simd = enabled && kWanderSimdCompiled;
}

bool wander_simd_enabled() noexcept { return g_wander_simd; }

Cell::Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy)
    : id_(id), name_(std::move(name)), total_(prbs_for(bandwidth)), policy_(policy) {}

PrbCount Cell::reserved_prbs() const noexcept {
  PrbCount sum{0};
  for (const auto& [plmn, prbs] : reservations_) sum += prbs;
  return sum;
}

std::size_t Cell::plmn_index(PlmnId plmn) const noexcept {
  for (std::size_t i = 0; i < broadcast_.size(); ++i) {
    if (broadcast_[i] == plmn) return i;
  }
  return broadcast_.size();
}

Result<void> Cell::broadcast_plmn(PlmnId plmn) {
  if (broadcasts(plmn))
    return make_error(Errc::conflict, "cell " + name_ + " already broadcasts this PLMN");
  if (broadcast_.size() >= kMaxBroadcastPlmns)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " SIB1 PLMN list is full");
  broadcast_.push_back(plmn);
  plmn_stats_.push_back(PlmnUeStats{});
  return {};
}

Result<void> Cell::withdraw_plmn(PlmnId plmn) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (reservations_.contains(plmn))
    return make_error(Errc::conflict, "PLMN still holds a PRB reservation");
  if (plmn_stats_[i].count > 0)
    return make_error(Errc::conflict, "UEs still attached under this PLMN");
  broadcast_.erase(broadcast_.begin() + static_cast<std::ptrdiff_t>(i));
  plmn_stats_.erase(plmn_stats_.begin() + static_cast<std::ptrdiff_t>(i));
  // The UE columns store broadcast positions; every position above the
  // withdrawn one shifted down by one. Cold path (withdrawal requires
  // an empty PLMN), so the full-column sweep is acceptable.
  for (std::uint32_t row = 0; row < ues_.row_count(); ++row) {
    if (!ues_.live(row)) continue;
    const std::uint8_t p = ues_.plmn_index_at(row);
    assert(p != i);
    if (p > i) ues_.set_plmn_index(row, static_cast<std::uint8_t>(p - 1));
  }
  return {};
}

bool Cell::broadcasts(PlmnId plmn) const noexcept {
  return plmn_index(plmn) != broadcast_.size();
}

std::vector<PlmnId> Cell::broadcast_list() const { return broadcast_; }

Result<void> Cell::set_reservation(PlmnId plmn, PrbCount prbs) {
  if (!broadcasts(plmn))
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (prbs.value < 0) return make_error(Errc::invalid_argument, "negative PRB reservation");
  const PrbCount others = reserved_prbs() - reservation_of(plmn);
  if (others.value + prbs.value > total_.value)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " has only " +
                          std::to_string(total_.value - others.value) + " PRBs free");
  if (prbs.value == 0) {
    reservations_.erase(plmn);
  } else {
    reservations_.insert_or_assign(plmn, prbs);
  }
  return {};
}

void Cell::clear_reservation(PlmnId plmn) { reservations_.erase(plmn); }

PrbCount Cell::reservation_of(PlmnId plmn) const noexcept {
  const PrbCount* prbs = reservations_.find(plmn);
  return prbs == nullptr ? PrbCount{0} : *prbs;
}

Result<void> Cell::attach_ue(UeId ue, PlmnId plmn, Cqi cqi) {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size())
    return make_error(Errc::not_found,
                      "PLMN not on the air on cell " + name_ + "; UE cannot attach");
  if (ues_.insert(ue, static_cast<std::uint8_t>(i), cqi) == UeSoa::kNoRow)
    return make_error(Errc::conflict, "UE already attached");
  ++plmn_stats_[i].count;
  plmn_stats_[i].cqi_sum += cqi.index();
  return {};
}

Result<void> Cell::update_ue_cqi(UeId ue, Cqi cqi) {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[ues_.plmn_index_at(row)];
  stats.cqi_sum += cqi.index() - ues_.cqi_at(row).index();
  ues_.set_cqi(row, cqi);
  return {};
}

std::optional<Cqi> Cell::ue_cqi(UeId ue) const noexcept {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return std::nullopt;
  return ues_.cqi_at(row);
}

std::optional<PlmnId> Cell::ue_plmn(UeId ue) const noexcept {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return std::nullopt;
  return broadcast_[ues_.plmn_index_at(row)];
}

void Cell::wander_cqis(Rng& rng, double step_probability) {
  // Batched branchless kernel over the SoA byte columns; see
  // wander_kernel above for the lane scheme and RNG-stream contract.
  // 15 bits of threshold resolution (p quantized to 1/32768ths) is far
  // below the sampling noise of any population this walk models.
  const double p = std::clamp(step_probability, 0.0, 1.0);
  const auto thresh = static_cast<std::uint32_t>(p * 32768.0);  // p * 2^15
  std::array<std::int64_t, kMaxBroadcastPlmns> delta{};
  wander_kernel(ues_.cqi_column(), ues_.plmn_column(), ues_.live_column(), ues_.row_count(),
                rng, thresh, delta.data());
  for (std::size_t i = 0; i < broadcast_.size(); ++i) plmn_stats_[i].cqi_sum += delta[i];
}

void Cell::wander_cqis_legacy(Rng& rng, double step_probability) {
  // Pre-vectorization reference: per live row, bernoulli(p) gates the
  // step and a second bernoulli draws the sign. RNG consumption is
  // data-dependent (live rows only, extra draw when stepping).
  std::uint8_t* cqi = ues_.cqi_column();
  const std::uint8_t* plmn = ues_.plmn_column();
  std::array<std::int64_t, kMaxBroadcastPlmns> delta{};
  const std::size_t rows = ues_.row_count();
  for (std::uint32_t row = 0; row < rows; ++row) {
    if (!ues_.live(row)) continue;
    if (!rng.bernoulli(step_probability)) continue;
    const int step = rng.bernoulli(0.5) ? 1 : -1;
    const int next = static_cast<int>(cqi[row]) + step;
    const int clamped = next < 1 ? 1 : (next > 15 ? 15 : next);
    delta[plmn[row]] += clamped - static_cast<int>(cqi[row]);
    cqi[row] = static_cast<std::uint8_t>(clamped);
  }
  for (std::size_t i = 0; i < broadcast_.size(); ++i) plmn_stats_[i].cqi_sum += delta[i];
}

Result<void> Cell::detach_ue(UeId ue) {
  const std::uint32_t row = ues_.row_of(ue);
  if (row == UeSoa::kNoRow) return make_error(Errc::not_found, "UE not attached");
  PlmnUeStats& stats = plmn_stats_[ues_.plmn_index_at(row)];
  assert(stats.count > 0);
  --stats.count;
  stats.cqi_sum -= ues_.cqi_at(row).index();
  ues_.erase(ue);
  return {};
}

std::size_t Cell::attached_count(PlmnId plmn) const noexcept {
  const std::size_t i = plmn_index(plmn);
  return i == broadcast_.size() ? 0 : plmn_stats_[i].count;
}

Cqi Cell::mean_cqi(PlmnId plmn, Cqi fallback) const noexcept {
  const std::size_t i = plmn_index(plmn);
  if (i == broadcast_.size()) return fallback;
  return mean_cqi_at(i, fallback);
}

Cqi Cell::mean_cqi_at(std::size_t index, Cqi fallback) const noexcept {
  if (plmn_stats_[index].count == 0) return fallback;
  const int mean = static_cast<int>(plmn_stats_[index].cqi_sum /
                                    static_cast<std::int64_t>(plmn_stats_[index].count));
  return Cqi{mean < 1 ? 1 : (mean > 15 ? 15 : mean)};
}

std::vector<PlmnGrant> Cell::serve_epoch(
    std::span<const std::pair<PlmnId, DataRate>> demands, Cqi fallback_cqi) const {
  // Aggregate the (plmn, rate) pairs into broadcast order and reuse the
  // batched core; outputs pre-sized from the broadcast count.
  std::array<DataRate, kMaxBroadcastPlmns> demand_by_index{};
  for (const auto& [p, d] : demands) {
    const std::size_t i = plmn_index(p);
    if (i < broadcast_.size()) demand_by_index[i] += d;
  }
  std::vector<PlmnGrant> grants(broadcast_.size());
  serve_epoch_into(std::span<const DataRate>(demand_by_index.data(), broadcast_.size()),
                   fallback_cqi, grants);
  return grants;
}

std::size_t Cell::serve_epoch_into(std::span<const DataRate> demand_by_index,
                                   Cqi fallback_cqi,
                                   std::span<PlmnGrant> grants) const noexcept {
  assert(demand_by_index.size() >= broadcast_.size());
  assert(grants.size() >= broadcast_.size());
  std::array<PlmnLoad, kMaxBroadcastPlmns> loads;
  std::array<int, kMaxBroadcastPlmns> want;
  for (std::size_t i = 0; i < broadcast_.size(); ++i) {
    loads[i] = PlmnLoad{broadcast_[i], reservation_of(broadcast_[i]), demand_by_index[i],
                        mean_cqi_at(i, fallback_cqi)};
  }
  schedule_epoch_into(total_, std::span<const PlmnLoad>(loads.data(), broadcast_.size()),
                      policy_, grants, want);
  return broadcast_.size();
}

}  // namespace slices::ran
