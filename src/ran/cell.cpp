#include "ran/cell.hpp"

#include <algorithm>

namespace slices::ran {

Cell::Cell(CellId id, std::string name, Bandwidth bandwidth, SharingPolicy policy)
    : id_(id), name_(std::move(name)), total_(prbs_for(bandwidth)), policy_(policy) {}

PrbCount Cell::reserved_prbs() const noexcept {
  PrbCount sum{0};
  for (const auto& [plmn, prbs] : reservations_) sum += prbs;
  return sum;
}

Result<void> Cell::broadcast_plmn(PlmnId plmn) {
  if (broadcasts(plmn))
    return make_error(Errc::conflict, "cell " + name_ + " already broadcasts this PLMN");
  if (broadcast_.size() >= kMaxBroadcastPlmns)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " SIB1 PLMN list is full");
  broadcast_.push_back(plmn);
  return {};
}

Result<void> Cell::withdraw_plmn(PlmnId plmn) {
  const auto it = std::find(broadcast_.begin(), broadcast_.end(), plmn);
  if (it == broadcast_.end())
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (reservations_.contains(plmn))
    return make_error(Errc::conflict, "PLMN still holds a PRB reservation");
  for (const auto& [ue, attached] : ues_) {
    if (attached.plmn == plmn)
      return make_error(Errc::conflict, "UEs still attached under this PLMN");
  }
  broadcast_.erase(it);
  return {};
}

bool Cell::broadcasts(PlmnId plmn) const noexcept {
  return std::find(broadcast_.begin(), broadcast_.end(), plmn) != broadcast_.end();
}

std::vector<PlmnId> Cell::broadcast_list() const { return broadcast_; }

Result<void> Cell::set_reservation(PlmnId plmn, PrbCount prbs) {
  if (!broadcasts(plmn))
    return make_error(Errc::not_found, "PLMN not broadcast on cell " + name_);
  if (prbs.value < 0) return make_error(Errc::invalid_argument, "negative PRB reservation");
  const PrbCount others = reserved_prbs() - reservation_of(plmn);
  if (others.value + prbs.value > total_.value)
    return make_error(Errc::insufficient_capacity,
                      "cell " + name_ + " has only " +
                          std::to_string(total_.value - others.value) + " PRBs free");
  if (prbs.value == 0) {
    reservations_.erase(plmn);
  } else {
    reservations_.insert_or_assign(plmn, prbs);
  }
  return {};
}

void Cell::clear_reservation(PlmnId plmn) { reservations_.erase(plmn); }

PrbCount Cell::reservation_of(PlmnId plmn) const noexcept {
  const auto it = reservations_.find(plmn);
  return it == reservations_.end() ? PrbCount{0} : it->second;
}

Result<void> Cell::attach_ue(UeId ue, PlmnId plmn, Cqi cqi) {
  if (!broadcasts(plmn))
    return make_error(Errc::not_found,
                      "PLMN not on the air on cell " + name_ + "; UE cannot attach");
  if (ues_.contains(ue)) return make_error(Errc::conflict, "UE already attached");
  ues_.emplace(ue, AttachedUe{ue, plmn, cqi});
  return {};
}

Result<void> Cell::update_ue_cqi(UeId ue, Cqi cqi) {
  const auto it = ues_.find(ue);
  if (it == ues_.end()) return make_error(Errc::not_found, "UE not attached");
  it->second.cqi = cqi;
  return {};
}

std::optional<Cqi> Cell::ue_cqi(UeId ue) const noexcept {
  const auto it = ues_.find(ue);
  if (it == ues_.end()) return std::nullopt;
  return it->second.cqi;
}

void Cell::wander_cqis(Rng& rng, double step_probability) {
  for (auto& [ue, attached] : ues_) {
    if (!rng.bernoulli(step_probability)) continue;
    const int delta = rng.bernoulli(0.5) ? 1 : -1;
    const int next = attached.cqi.index() + delta;
    attached.cqi = Cqi{next < 1 ? 1 : (next > 15 ? 15 : next)};
  }
}

Result<void> Cell::detach_ue(UeId ue) {
  if (ues_.erase(ue) == 0) return make_error(Errc::not_found, "UE not attached");
  return {};
}

std::size_t Cell::attached_count(PlmnId plmn) const noexcept {
  std::size_t n = 0;
  for (const auto& [ue, attached] : ues_) {
    if (attached.plmn == plmn) ++n;
  }
  return n;
}

Cqi Cell::mean_cqi(PlmnId plmn, Cqi fallback) const noexcept {
  int sum = 0;
  int n = 0;
  for (const auto& [ue, attached] : ues_) {
    if (attached.plmn == plmn) {
      sum += attached.cqi.index();
      ++n;
    }
  }
  if (n == 0) return fallback;
  const int mean = sum / n;
  return Cqi{mean < 1 ? 1 : (mean > 15 ? 15 : mean)};
}

std::vector<PlmnGrant> Cell::serve_epoch(
    std::span<const std::pair<PlmnId, DataRate>> demands, Cqi fallback_cqi) const {
  std::vector<PlmnLoad> loads;
  loads.reserve(broadcast_.size());
  for (const PlmnId plmn : broadcast_) {
    DataRate demand = DataRate::zero();
    for (const auto& [p, d] : demands) {
      if (p == plmn) demand += d;
    }
    loads.push_back(PlmnLoad{plmn, reservation_of(plmn), demand, mean_cqi(plmn, fallback_cqi)});
  }
  return schedule_epoch(total_, loads, policy_);
}

}  // namespace slices::ran
