#pragma once
// Discrete-event simulation kernel.
//
// Everything time-dependent in the reproduction — traffic demand
// evolution, link-capacity fading, monitoring sampling, orchestration
// cycles, slice arrivals/expiries, EPC deployment delays — is driven by
// one Simulator instance. Events at equal timestamps execute in
// scheduling order (a strict total order), which makes whole runs
// reproducible bit-for-bit from a seed.

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace slices::sim {

/// Handle to a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(EventId, EventId) noexcept = default;
};

/// Handle to a periodic task; usable to stop future firings.
struct PeriodicId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(PeriodicId, PeriodicId) noexcept = default;
};

/// Single-threaded discrete-event simulator.
///
/// The pending queue is a binary min-heap ordered by (time, seq) — the
/// same strict total order the original std::map kernel used, so runs
/// remain bit-for-bit reproducible — with O(log n) push/pop instead of
/// balanced-tree rebalancing and per-event index bookkeeping. cancel()
/// is lazy: the entry stays in the heap and is dropped when it reaches
/// the top (or at the next compaction), which makes cancellation O(1).
class Simulator {
 public:
  using Callback = std::function<void()>;
  using PeriodicCallback = std::function<void(SimTime)>;

  /// Current simulated time. Advances only while run_* executes events.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now, else fires immediately
  /// at now — the kernel never travels backwards).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `d` (>= 0) from now.
  EventId schedule_after(Duration d, Callback cb) {
    assert(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already fired/was
  /// cancelled.
  bool cancel(EventId id);

  /// Register a task firing every `period` (> 0), first at now+offset.
  /// The callback receives the firing time.
  PeriodicId add_periodic(Duration period, PeriodicCallback cb,
                          Duration offset = Duration::zero());

  /// Stop a periodic task; returns false when unknown/already stopped.
  bool remove_periodic(PeriodicId id);

  /// Execute the next pending event; false when the queue is empty.
  bool step();

  /// Run all events with time <= `t`, then set now = t.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Run for a duration from the current time.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Number of scheduled-and-not-yet-fired events (cancelled events do
  /// not count, even while their heap entry lingers).
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct QueueKey {
    SimTime time;
    std::uint64_t seq;  // tiebreaker: FIFO among same-time events
    friend constexpr auto operator<=>(const QueueKey&, const QueueKey&) noexcept = default;
  };

  struct HeapEntry {
    QueueKey key;
    Callback callback;
  };

  /// std::push_heap builds a max-heap; ordering by *greater* key makes
  /// the heap top the earliest (time, seq).
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) noexcept {
    return b.key < a.key;
  }

  /// Drop cancelled entries sitting on top of the heap.
  void prune_cancelled();
  /// Rebuild the heap when cancelled entries dominate it.
  void maybe_compact();

  void schedule_periodic_firing(std::uint64_t periodic_key, SimTime at);

  struct PeriodicTask {
    Duration period;
    PeriodicCallback callback;
  };

  SimTime now_ = SimTime::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::unordered_set<std::uint64_t> live_;  // seqs scheduled, not yet fired/cancelled
  std::map<std::uint64_t, PeriodicTask> periodics_;
  std::uint64_t next_periodic_ = 1;
};

}  // namespace slices::sim
